"""Temporal decimation: the baseline the paper's intro describes.

HACC "controls the data size by a temporal decimation (i.e., dumping
the snapshots every k time steps)".  The kept snapshots are exact; the
dropped ones are simply *gone* -- post-analysis that needs them has to
interpolate.  This module implements that workflow so benchmarks can
compare it, at equal storage, against keeping every snapshot with
error-bounded compression:

* :func:`decimate_series` keeps every k-th snapshot;
* :func:`reconstruct_decimated` rebuilds the full series by linear
  interpolation in time (the best generic reconstruction available to
  an analyst);
* :func:`decimation_quality` reports the per-step PSNR of that
  reconstruction, whose sawtooth shape (perfect at kept steps, poor
  between) is exactly the "losing important information unexpectedly"
  of the paper.
"""

from __future__ import annotations

from typing import List, Sequence, Tuple

import numpy as np

from repro.errors import ParameterError
from repro.metrics.distortion import psnr

__all__ = ["decimate_series", "reconstruct_decimated", "decimation_quality"]


def decimate_series(
    snapshots: Sequence[np.ndarray], k: int
) -> Tuple[List[np.ndarray], List[int]]:
    """Keep snapshots ``0, k, 2k, ...`` (always including the last one,
    as checkpoint writers do, so interpolation can bracket the tail).

    Returns ``(kept_snapshots, kept_indices)``.
    """
    if k < 1:
        raise ParameterError("decimation factor must be >= 1")
    snaps = list(snapshots)
    if not snaps:
        raise ParameterError("empty series")
    kept = list(range(0, len(snaps), k))
    if kept[-1] != len(snaps) - 1:
        kept.append(len(snaps) - 1)
    return [snaps[i] for i in kept], kept


def reconstruct_decimated(
    kept_snapshots: Sequence[np.ndarray],
    kept_indices: Sequence[int],
    n_steps: int,
) -> List[np.ndarray]:
    """Linear interpolation in time between kept snapshots."""
    kept_snapshots = list(kept_snapshots)
    kept_indices = list(kept_indices)
    if len(kept_snapshots) != len(kept_indices) or not kept_snapshots:
        raise ParameterError("kept snapshots/indices mismatch")
    if sorted(kept_indices) != kept_indices or kept_indices[0] != 0:
        raise ParameterError("kept indices must be sorted and start at 0")
    if kept_indices[-1] != n_steps - 1:
        raise ParameterError("last snapshot must be kept")
    out: List[np.ndarray] = []
    seg = 0
    for t in range(n_steps):
        # advance segment so kept_indices[seg] <= t <= kept_indices[seg+1]
        while seg + 1 < len(kept_indices) and kept_indices[seg + 1] < t:
            seg += 1
        lo_i, lo = kept_indices[seg], kept_snapshots[seg]
        if t == lo_i or seg + 1 >= len(kept_indices):
            out.append(np.array(lo, dtype=np.float64))
            continue
        hi_i, hi = kept_indices[seg + 1], kept_snapshots[seg + 1]
        w = (t - lo_i) / (hi_i - lo_i)
        out.append((1.0 - w) * np.asarray(lo, np.float64) + w * np.asarray(hi, np.float64))
    return out


def decimation_quality(
    original_series: Sequence[np.ndarray], k: int
) -> List[float]:
    """Per-step PSNR of decimate-then-interpolate at factor ``k``."""
    snaps = list(original_series)
    kept, idx = decimate_series(snaps, k)
    recon = reconstruct_decimated(kept, idx, len(snaps))
    return [psnr(o, r) for o, r in zip(snaps, recon)]
