"""Baselines the paper motivates against.

The introduction describes the practice fixed-quality compression
replaces: **temporal decimation** -- keep every k-th snapshot and
discard the rest.  :mod:`repro.baselines.decimation` implements it
(with interpolated reconstruction) so the benchmarks can compare at
equal storage.
"""

from repro.baselines.decimation import (
    decimate_series,
    reconstruct_decimated,
    decimation_quality,
)
from repro.baselines.lossless import lossless_baseline, lossless_restore

__all__ = [
    "decimate_series",
    "reconstruct_decimated",
    "decimation_quality",
    "lossless_baseline",
    "lossless_restore",
]
