"""Lossless-compression baseline (paper Section II-A).

The paper motivates lossy compression with the observation that
lossless compressors manage "up to 2 in general" on scientific
floating-point data, because the trailing mantissa bits are effectively
random.  This baseline reproduces that claim with the strongest cheap
lossless pipeline available offline: the HDF5-style **byte-shuffle
filter** (transpose the bytes of each value so exponent bytes -- which
correlate across neighbouring values -- become contiguous) followed by
DEFLATE.
"""

from __future__ import annotations

import zlib
from typing import Tuple

import numpy as np

from repro.errors import DecompressionError, ParameterError

__all__ = ["shuffle_bytes", "unshuffle_bytes", "lossless_baseline", "lossless_restore"]


def shuffle_bytes(data: np.ndarray) -> bytes:
    """HDF5-style shuffle: byte plane *p* of every element, contiguous."""
    arr = np.ascontiguousarray(data)
    if arr.size == 0:
        raise ParameterError("nothing to shuffle")
    raw = arr.view(np.uint8).reshape(arr.size, arr.itemsize)
    return raw.T.tobytes()


def unshuffle_bytes(blob: bytes, dtype: np.dtype, n: int) -> np.ndarray:
    """Inverse of :func:`shuffle_bytes` (flat array of ``n`` elements)."""
    dtype = np.dtype(dtype)
    if len(blob) != n * dtype.itemsize:
        raise DecompressionError("shuffled blob has the wrong size")
    planes = np.frombuffer(blob, dtype=np.uint8).reshape(dtype.itemsize, n)
    return np.ascontiguousarray(planes.T).view(dtype).reshape(n)


def lossless_baseline(
    data: np.ndarray, shuffle: bool = True, level: int = 6
) -> Tuple[bytes, float]:
    """Losslessly compress an array; returns ``(blob, ratio)``.

    ``shuffle=True`` is the realistic configuration; ``False`` shows
    how little plain DEFLATE achieves on raw floats.
    """
    arr = np.ascontiguousarray(data)
    if arr.size == 0:
        raise ParameterError("nothing to compress")
    payload = shuffle_bytes(arr) if shuffle else arr.tobytes()
    blob = zlib.compress(payload, level)
    return blob, arr.nbytes / len(blob)


def lossless_restore(
    blob: bytes, dtype: np.dtype, shape: Tuple[int, ...], shuffle: bool = True
) -> np.ndarray:
    """Exact inverse of :func:`lossless_baseline`."""
    try:
        payload = zlib.decompress(blob)
    except zlib.error as exc:
        raise DecompressionError(f"corrupt lossless blob: {exc}") from exc
    n = int(np.prod(shape))
    if shuffle:
        flat = unshuffle_bytes(payload, dtype, n)
    else:
        flat = np.frombuffer(payload, dtype=dtype)
        if flat.size != n:
            raise DecompressionError("lossless blob has the wrong size")
    return flat.reshape(shape)
