"""The self-contained HTML run dashboard behind ``fpzc report --html``.

One call -- :func:`render_dashboard` -- aggregates everything the
observability stack records into a single static HTML file:

* the run ledger (:mod:`repro.telemetry.ledger`): recent runs plus the
  compression-ratio and PSNR-deviation trajectories,
* the PSNR conformance verdicts (:mod:`repro.telemetry.drift`), one
  control-chart row per (dataset, codec, target) series,
* the latest metrics snapshot (:mod:`repro.telemetry.registry`),
* the committed ``BENCH_*.json`` baselines (:mod:`repro.telemetry.bench`),
* a span-timeline strip from an exported Chrome trace
  (:mod:`repro.telemetry.export`).

Design constraints, deliberate and load-bearing:

* **Zero dependencies, zero fetches.**  Pure stdlib; the output embeds
  every byte it needs (inline CSS, inline SVG), references no external
  URL, script, font or image, and therefore renders identically from a
  CI artifact, an email attachment or ``file://``.
* **Every section tolerates empty input** -- a missing ledger, an
  empty snapshot or an absent trace renders as an explicit empty-state
  line, never an exception, so the dashboard is safe to generate at
  any point in a repo's life.
* Charts follow the house style: thin 2 px marks, muted hairline
  chrome, values and labels in text ink (never the series color), a
  table next to every sparkline as the accessible fallback, and status
  conveyed by icon + label, never color alone.
"""

from __future__ import annotations

import html
import json
import math
from typing import Dict, Iterable, List, Optional, Sequence, Tuple

__all__ = [
    "render_dashboard",
    "render_ledger_section",
    "render_drift_section",
    "render_metrics_section",
    "render_bench_section",
    "render_service_section",
    "render_cache_section",
    "render_cluster_section",
    "render_timeline_section",
    "sparkline",
    "load_bench_dir",
]


def _esc(value) -> str:
    """HTML-escape anything user- or data-controlled."""
    return html.escape(str(value), quote=True)


def _fmt(v, spec: str = ".4g") -> str:
    """Format a possibly-missing numeric cell."""
    if v is None:
        return "–"  # en dash: "no value", distinct from 0
    if isinstance(v, bool):
        return "yes" if v else "no"
    if isinstance(v, float):
        if math.isnan(v):
            return "NaN"
        if math.isinf(v):
            return "+Inf" if v > 0 else "-Inf"
        return format(v, spec)
    return str(v)


_BADGES = {
    # status -> (icon, css class); icon + label so color never carries
    # the state alone (the warning step is sub-3:1 on light surfaces).
    "ok": ("✓", "b-ok"),
    "drifting": ("✕", "b-bad"),
    "insufficient": ("△", "b-warn"),
}


def _badge(status: str) -> str:
    icon, cls = _BADGES.get(status, ("•", "b-warn"))
    return (
        f'<span class="badge {cls}"><span class="badge-ic">{icon}</span> '
        f"{_esc(status)}</span>"
    )


def _table(headers: Sequence[str], rows: Sequence[Sequence[str]]) -> str:
    """A plain table from pre-escaped cell fragments."""
    head = "".join(f"<th>{h}</th>" for h in headers)
    body = "".join(
        "<tr>" + "".join(f"<td>{c}</td>" for c in row) + "</tr>"
        for row in rows
    )
    return (
        f'<table><thead><tr>{head}</tr></thead><tbody>{body}</tbody></table>'
    )


def _section(anchor: str, title: str, body: str, note: str = "") -> str:
    note_html = f'<p class="note">{_esc(note)}</p>' if note else ""
    return (
        f'<section id="{_esc(anchor)}"><h2>{_esc(title)}</h2>'
        f"{note_html}{body}</section>"
    )


def _empty(message: str) -> str:
    return f'<p class="empty">{_esc(message)}</p>'


# ---------------------------------------------------------------------------
# sparklines
# ---------------------------------------------------------------------------


def sparkline(
    values: Sequence[float],
    *,
    width: int = 140,
    height: int = 32,
    label: str = "",
) -> str:
    """An inline-SVG sparkline: 2 px line, hairline baseline, a dot on
    the latest point.  Non-finite values are dropped; fewer than two
    finite points render as a flat baseline only (never an error)."""
    pts = [float(v) for v in values if isinstance(v, (int, float))
           and math.isfinite(float(v))]
    pad = 3.0
    base_y = height - pad
    title = f"<title>{_esc(label)}</title>" if label else ""
    baseline = (
        f'<line x1="0" y1="{base_y:g}" x2="{width}" y2="{base_y:g}" '
        f'stroke="var(--axis)" stroke-width="1"/>'
    )
    if len(pts) < 2:
        body = baseline
        if len(pts) == 1:
            body += (
                f'<circle cx="{width - pad:g}" cy="{height / 2:g}" r="2.5" '
                f'fill="var(--series-1)"/>'
            )
        return (
            f'<svg class="spark" role="img" width="{width}" '
            f'height="{height}" viewBox="0 0 {width} {height}">'
            f"{title}{body}</svg>"
        )
    lo, hi = min(pts), max(pts)
    span = (hi - lo) or 1.0
    n = len(pts)
    coords = []
    for i, v in enumerate(pts):
        x = pad + (width - 2 * pad) * i / (n - 1)
        y = pad + (height - 2 * pad) * (1.0 - (v - lo) / span)
        coords.append((x, y))
    points = " ".join(f"{x:.1f},{y:.1f}" for x, y in coords)
    lx, ly = coords[-1]
    return (
        f'<svg class="spark" role="img" width="{width}" height="{height}" '
        f'viewBox="0 0 {width} {height}">{title}{baseline}'
        f'<polyline points="{points}" fill="none" stroke="var(--series-1)" '
        f'stroke-width="2" stroke-linejoin="round" stroke-linecap="round"/>'
        f'<circle cx="{lx:.1f}" cy="{ly:.1f}" r="2.5" '
        f'fill="var(--series-1)"/></svg>'
    )


# ---------------------------------------------------------------------------
# sections
# ---------------------------------------------------------------------------


def render_ledger_section(entries: Sequence, limit: int = 20) -> str:
    """Recent run-ledger entries plus the ratio/deviation trajectories.

    ``entries`` are :class:`repro.telemetry.ledger.LedgerEntry`-shaped
    objects (attribute access, tolerant of missing attributes)."""
    entries = list(entries)
    if not entries:
        return _section(
            "ledger", "Run ledger", _empty("no ledger history yet")
        )
    ratios = [e.ratio for e in entries if getattr(e, "ratio", None)
              is not None]
    devs = [
        e.achieved_psnr - e.target_psnr
        for e in entries
        if getattr(e, "achieved_psnr", None) is not None
        and getattr(e, "target_psnr", None) is not None
    ]
    tiles = (
        '<div class="tiles">'
        f'<div class="tile"><div class="tile-v">{len(entries)}</div>'
        '<div class="tile-l">runs recorded</div></div>'
        '<div class="tile"><div class="tile-v">'
        f'{len({getattr(e, "dataset", "") for e in entries})}</div>'
        '<div class="tile-l">datasets</div></div>'
        '<div class="tile">'
        f"{sparkline(ratios, label='compression ratio per run')}"
        '<div class="tile-l">compression ratio trajectory</div></div>'
        '<div class="tile">'
        f"{sparkline(devs, label='achieved minus target PSNR, dB')}"
        '<div class="tile-l">PSNR deviation trajectory (dB)</div></div>'
        "</div>"
    )
    headers = ["created", "kind", "rev", "dataset/field", "codec", "mode",
               "target", "achieved", "ratio", "bytes"]
    rows = []
    for e in entries[-limit:]:
        field = getattr(e, "field", "")
        where = e.dataset if not field else f"{e.dataset}/{field}"
        mode = getattr(e, "mode", "") or (
            "psnr" if getattr(e, "target_psnr", None) is not None else ""
        )
        target = getattr(e, "target", None)
        if target is None:
            target = getattr(e, "target_psnr", None)
        achieved = getattr(e, "achieved", None)
        if achieved is None:
            achieved = getattr(e, "achieved_psnr", None)
        rows.append([
            _esc(getattr(e, "created", "")), _esc(e.kind),
            _esc(getattr(e, "git_rev", "")), _esc(where),
            _esc(getattr(e, "codec", "")), _esc(mode),
            _esc(_fmt(target)), _esc(_fmt(achieved)),
            _esc(_fmt(getattr(e, "ratio", None))),
            _esc(_fmt(getattr(e, "compressed_bytes", None))),
        ])
    note = (
        f"showing the last {min(limit, len(entries))} of "
        f"{len(entries)} entries"
    )
    return _section(
        "ledger", "Run ledger", tiles + _table(headers, rows), note
    )


def render_drift_section(report) -> str:
    """PSNR-conformance control-chart verdicts, one row per series,
    with each series' deviation history as a sparkline.  ``report`` is
    a :class:`repro.telemetry.drift.DriftReport` or ``None``."""
    if report is None or not report.series:
        return _section(
            "drift", "PSNR conformance",
            _empty("no conformance history (ledger predates schema 3, "
                   "or no fixed-PSNR runs recorded)"),
        )
    headers = ["dataset", "codec", "target dB", "n", "deviation history",
               "mean dev", "latest", "EWMA", "CUSUM±", "status"]
    rows = []
    for s in report.series:
        if s.status == "insufficient":
            stats = ["–"] * 4
        else:
            stats = [
                _esc(f"{s.baseline_mean:+.3f}"),
                _esc(f"{s.latest:+.3f}"),
                _esc(f"{s.ewma:+.3f}"),
                _esc(f"{s.cusum_pos:.2f} / {s.cusum_neg:.2f}"),
            ]
        label = (
            f"{s.dataset}/{s.codec}@{s.target_psnr:g}dB deviation, dB"
        )
        rows.append([
            _esc(s.dataset), _esc(s.codec), _esc(f"{s.target_psnr:g}"),
            _esc(s.n), sparkline(s.deviations, label=label),
            *stats, _badge(s.status),
        ])
    note = (
        "achieved minus predicted PSNR per run; EWMA and CUSUM control "
        f"charts over ledger history — overall: {report.status}"
    )
    body = (
        f'<p class="verdict">overall {_badge(report.status)}</p>'
        + _table(headers, rows)
    )
    return _section("drift", "PSNR conformance", body, note)


def render_metrics_section(snapshot: Optional[Dict]) -> str:
    """The latest metrics snapshot (:meth:`MetricsRegistry.snapshot`)
    as a table; histograms show count/sum plus a bucket sparkline."""
    metrics = (snapshot or {}).get("metrics", {})
    if not metrics:
        return _section(
            "metrics", "Metrics snapshot", _empty("no metrics snapshot")
        )
    headers = ["metric", "kind", "value", "detail", "help"]
    rows = []
    for name, entry in sorted(metrics.items()):
        kind = entry.get("kind", "untyped")
        if kind == "histogram":
            value = _esc(
                f"n={int(entry.get('count', 0))} "
                f"sum={_fmt(entry.get('sum'))}"
            )
            detail = sparkline(
                [float(c) for c in entry.get("counts", [])],
                label=f"{name} bucket counts",
            )
        else:
            value = _esc(_fmt(entry.get("value")))
            detail = ""
        rows.append([
            f"<code>{_esc(name)}</code>", _esc(kind), value, detail,
            _esc(entry.get("help", "")),
        ])
    return _section(
        "metrics", "Metrics snapshot", _table(headers, rows),
        f"{len(rows)} metrics",
    )


def _bench_rows(doc: Dict) -> List[Tuple[str, Dict, Dict]]:
    """Flatten one BENCH_*.json document into (case id, deterministic,
    timing) triples, tolerating each of the three layouts (compress
    ``cases`` list, sweep/autotune single ``case`` with ``results``)."""
    out: List[Tuple[str, Dict, Dict]] = []
    for case in doc.get("cases") or []:
        if isinstance(case, dict):
            out.append((
                str(case.get("id", "?")),
                case.get("deterministic") or {},
                case.get("timing") or {},
            ))
    case = doc.get("case")
    if isinstance(case, dict):
        for res in case.get("results") or []:
            if isinstance(res, dict):
                out.append((
                    str(res.get("id", "?")),
                    res.get("deterministic") or {},
                    res.get("timing") or {},
                ))
    return out


def render_bench_section(bench: Optional[Dict[str, Dict]]) -> str:
    """The committed perf baselines (``BENCH_*.json``), one table per
    document plus a ratio sparkline across cases.  ``bench`` maps a
    display name to the parsed JSON document."""
    bench = bench or {}
    if not bench:
        return _section(
            "bench", "Perf baselines",
            _empty("no BENCH_*.json baselines found"),
        )
    parts = []
    for name in sorted(bench):
        doc = bench[name] if isinstance(bench[name], dict) else {}
        rows_raw = _bench_rows(doc)
        title = (
            f"<h3>{_esc(name)} "
            f'<span class="note">rev {_esc(doc.get("git_rev", "?"))}, '
            f'schema {_esc(doc.get("schema", "?"))}</span></h3>'
        )
        if not rows_raw:
            parts.append(title + _empty("no cases in this baseline"))
            continue
        ratios = [
            det["ratio"] for _, det, _ in rows_raw
            if isinstance(det.get("ratio"), (int, float))
        ]
        spark = ""
        if len(ratios) >= 2:
            spark = (
                '<div class="tile">'
                + sparkline(ratios, label=f"{name} ratio across cases")
                + '<div class="tile-l">ratio across cases</div></div>'
            )
        headers = ["case", "deterministic", "wall"]
        rows = []
        for cid, det, timing in rows_raw:
            det_cells = ", ".join(
                f"{_esc(k)}={_esc(_fmt(v))}"
                for k, v in sorted(det.items())
                if not isinstance(v, (dict, list))
            )
            wall = timing.get("wall_s")
            rows.append([
                f"<code>{_esc(cid)}</code>",
                det_cells or "–",
                _esc("–" if wall is None else f"{1e3 * wall:.1f} ms"),
            ])
        parts.append(title + spark + _table(headers, rows))
    return _section(
        "bench", "Perf baselines", "".join(parts),
        "deterministic fields are golden-compared by fpzc bench --check; "
        "wall times are informational",
    )


#: (metric name, tile label) pairs the service panel summarizes.
_SERVICE_TILES = (
    ("service.jobs_submitted_total", "submitted"),
    ("service.jobs_completed_total", "completed"),
    ("service.jobs_failed_total", "failed"),
    ("service.jobs_rejected_total", "rejected (429)"),
    ("service.jobs_cancelled_total", "cancelled"),
    ("service.jobs_timeout_total", "deadline timeouts"),
)


def render_service_section(
    entries: Sequence = (), snapshot: Optional[Dict] = None
) -> str:
    """The compression service's traffic: job-outcome tiles from the
    ``service.*`` metric family plus the most recent service-submitted
    ledger runs (entries carrying an ``extra.service`` object)."""
    metrics = (snapshot or {}).get("metrics", {})
    tiles = []
    for name, label in _SERVICE_TILES:
        entry = metrics.get(name)
        if entry is None:
            continue
        tiles.append(
            '<div class="tile">'
            f'<div class="tile-v">{_esc(_fmt(entry.get("value")))}</div>'
            f'<div class="tile-l">{_esc(label)}</div></div>'
        )
    service_rows = []
    for entry in entries:
        extra = getattr(entry, "extra", None) or {}
        svc = extra.get("service")
        if isinstance(svc, dict):
            service_rows.append((entry, svc))
    if not tiles and not service_rows:
        return _section(
            "service", "Compression service",
            _empty("no service traffic recorded"),
        )
    parts = []
    if tiles:
        parts.append(f'<div class="tiles">{"".join(tiles)}</div>')
    if service_rows:
        headers = [
            "job", "kind", "dataset", "field", "target", "achieved PSNR",
            "batch", "attempts", "queued",
        ]
        rows = []
        for entry, svc in service_rows[-20:][::-1]:
            queued_s = svc.get("queued_s")
            rows.append([
                f"<code>{_esc(svc.get('job_id', '?'))}</code>",
                _esc(getattr(entry, "kind", "?")),
                _esc(getattr(entry, "dataset", "?")),
                _esc(getattr(entry, "field", "") or "–"),
                _esc(_fmt(getattr(entry, "target", None))),
                _esc(_fmt(getattr(entry, "achieved_psnr", None))),
                _esc(_fmt(svc.get("batched"))),
                _esc(_fmt(svc.get("attempts"))),
                _esc(
                    "–" if queued_s is None else f"{1e3 * queued_s:.1f} ms"
                ),
            ])
        parts.append(_table(headers, rows))
    return _section(
        "service", "Compression service", "".join(parts),
        "job outcomes from the service.* metric family; runs land in "
        "the same ledger and drift history as CLI runs",
    )


#: (metric name, tile label) pairs the cache panel summarizes.
_CACHE_TILES = (
    ("cache.hits_total", "hits"),
    ("cache.misses_total", "misses"),
    ("cache.evictions_total", "evictions"),
    ("cache.bytes", "stored bytes"),
)


def render_cache_section(
    entries: Sequence = (), snapshot: Optional[Dict] = None
) -> str:
    """The blob cache's behaviour: hit/miss/eviction/size tiles from
    the ``cache.*`` metric family, the derived hit rate, and the most
    recent runs that consulted the cache (ledger entries carrying an
    ``extra.cache`` object)."""
    metrics = (snapshot or {}).get("metrics", {})
    tiles = []
    values: Dict[str, float] = {}
    for name, label in _CACHE_TILES:
        entry = metrics.get(name)
        if entry is None:
            continue
        values[name] = float(entry.get("value") or 0.0)
        tiles.append(
            '<div class="tile">'
            f'<div class="tile-v">{_esc(_fmt(entry.get("value")))}</div>'
            f'<div class="tile-l">{_esc(label)}</div></div>'
        )
    lookups = values.get("cache.hits_total", 0.0) + values.get(
        "cache.misses_total", 0.0
    )
    if lookups > 0:
        rate = values.get("cache.hits_total", 0.0) / lookups
        tiles.append(
            '<div class="tile">'
            f'<div class="tile-v">{rate:.0%}</div>'
            '<div class="tile-l">hit rate</div></div>'
        )
    cache_rows = []
    for entry in entries:
        extra = getattr(entry, "extra", None) or {}
        doc = extra.get("cache")
        if isinstance(doc, dict):
            cache_rows.append((entry, doc))
    if not tiles and not cache_rows:
        return _section(
            "cache", "Blob cache",
            _empty("no cache traffic recorded"),
        )
    parts = []
    if tiles:
        parts.append(f'<div class="tiles">{"".join(tiles)}</div>')
    if cache_rows:
        headers = ["kind", "dataset", "field", "outcome", "key / store"]
        rows = []
        for entry, doc in cache_rows[-20:][::-1]:
            if "hit" in doc:
                outcome = "hit" if doc.get("hit") else "miss"
            else:
                outcome = (
                    f"{_fmt(doc.get('hits'))} hit / "
                    f"{_fmt(doc.get('misses'))} miss"
                )
            key = doc.get("key") or doc.get("store") or "–"
            rows.append([
                _esc(getattr(entry, "kind", "?")),
                _esc(getattr(entry, "dataset", "?")),
                _esc(getattr(entry, "field", "") or "–"),
                _esc(outcome),
                f"<code>{_esc(str(key)[:24])}</code>",
            ])
        parts.append(_table(headers, rows))
    return _section(
        "cache", "Blob cache", "".join(parts),
        "content-addressed compression cache (repro.cache); hits serve "
        "stored bytes without running a codec",
    )


#: (metric name, tile label) pairs the cluster panel summarizes.
_CLUSTER_TILES = (
    ("cluster.jobs_routed_total", "jobs routed"),
    ("cluster.failovers_total", "failovers"),
    ("cluster.jobs_exhausted_total", "exhausted"),
    ("cluster.sweep_tasks_total", "sweep tasks"),
    ("cluster.nodes_alive", "nodes alive"),
    ("cluster.nodes_total", "nodes total"),
)


def render_cluster_section(
    entries: Sequence = (), snapshot: Optional[Dict] = None
) -> str:
    """The cluster tier's behaviour: routing/failover tiles from the
    ``cluster.*`` metric family (a coordinator's own snapshot or a
    ``/cluster/metrics`` merged scrape) and the most recent runs that
    went through a coordinator (ledger entries carrying an
    ``extra.cluster`` object -- member-side job records stamped with
    forwarding provenance, or coordinator-side sweep entries)."""
    metrics = (snapshot or {}).get("metrics", {})
    tiles = []
    for name, label in _CLUSTER_TILES:
        entry = metrics.get(name)
        if entry is None:
            continue
        tiles.append(
            '<div class="tile">'
            f'<div class="tile-v">{_esc(_fmt(entry.get("value")))}</div>'
            f'<div class="tile-l">{_esc(label)}</div></div>'
        )
    cluster_rows = []
    for entry in entries:
        extra = getattr(entry, "extra", None) or {}
        doc = extra.get("cluster")
        if isinstance(doc, dict):
            cluster_rows.append((entry, doc))
    if not tiles and not cluster_rows:
        return _section(
            "cluster", "Cluster",
            _empty("no cluster activity recorded"),
        )
    parts = []
    if tiles:
        parts.append(f'<div class="tiles">{"".join(tiles)}</div>')
    if cluster_rows:
        headers = ["kind", "dataset", "field", "node(s)", "route / attempt"]
        rows = []
        for entry, doc in cluster_rows[-20:][::-1]:
            if "node" in doc:
                # Member-side record: one forwarded job.
                nodes = str(doc.get("node") or "?")
                route = (
                    f"<code>{_esc(str(doc.get('key') or '')[:16])}</code> "
                    f"attempt {_fmt(doc.get('attempt', 0))}"
                )
            else:
                # Coordinator-side sweep entry.
                alive = doc.get("alive") or doc.get("nodes") or []
                nodes = f"{len(alive)} alive"
                route = _esc(str(doc.get("topology") or "–"))
            rows.append([
                _esc(getattr(entry, "kind", "?")),
                _esc(getattr(entry, "dataset", "?")),
                _esc(getattr(entry, "field", "") or "–"),
                _esc(nodes),
                route,
            ])
        parts.append(_table(headers, rows))
    return _section(
        "cluster", "Cluster", "".join(parts),
        "coordinator tier (repro.cluster): consistent-hash routing over "
        "member nodes with health-probed failover",
    )


def _trace_events(trace) -> List[Dict]:
    if isinstance(trace, dict):
        events = trace.get("traceEvents", [])
    elif isinstance(trace, list):
        events = trace
    else:
        events = []
    return [e for e in events if isinstance(e, dict)]


def render_timeline_section(trace, *, width: int = 680,
                            max_rows: int = 12) -> str:
    """A span-timeline strip from an exported Chrome trace document
    (the ``--trace-perfetto`` output): one lane per (pid, tid), bars
    nested by depth, plus a top-spans table as the accessible view."""
    events = _trace_events(trace)
    xs = [e for e in events if e.get("ph") == "X"]
    if not xs:
        return _section(
            "timeline", "Span timeline",
            _empty("no trace provided (export one with --trace-perfetto)"),
        )
    # Lane names from process_name metadata when present.
    names: Dict[int, str] = {}
    for e in events:
        if e.get("ph") == "M" and e.get("name") == "process_name":
            try:
                names[int(e["pid"])] = str(
                    (e.get("args") or {}).get("name", "")
                )
            except (KeyError, TypeError, ValueError):
                pass
    t0 = min(float(e.get("ts", 0.0)) for e in xs)
    t1 = max(float(e.get("ts", 0.0)) + float(e.get("dur", 0.0)) for e in xs)
    span = (t1 - t0) or 1.0
    lanes = sorted({(int(e.get("pid", 0)), int(e.get("tid", 0)))
                    for e in xs})
    lane_h, label_w, pad = 22, 150, 4
    svg_h = pad * 2 + lane_h * len(lanes)
    parts = [
        f'<svg class="timeline" role="img" width="{width}" '
        f'height="{svg_h}" viewBox="0 0 {width} {svg_h}">'
        f"<title>span timeline, {span:.0f} µs across "
        f"{len(lanes)} track(s)</title>"
    ]
    plot_w = width - label_w - pad
    for i, (pid, tid) in enumerate(lanes):
        y = pad + i * lane_h
        label = names.get(pid) or f"pid {pid}"
        parts.append(
            f'<text x="0" y="{y + lane_h - 8}" class="lane-label">'
            f"{_esc(label)} / {tid}</text>"
        )
        parts.append(
            f'<line x1="{label_w}" y1="{y + lane_h - 4}" x2="{width - pad}" '
            f'y2="{y + lane_h - 4}" stroke="var(--grid)" stroke-width="1"/>'
        )
        lane_events = sorted(
            (e for e in xs
             if int(e.get("pid", 0)) == pid and int(e.get("tid", 0)) == tid),
            key=lambda e: (float(e.get("ts", 0.0)),
                           -float(e.get("dur", 0.0))),
        )
        open_until: List[float] = []  # enclosing spans' end times
        for e in lane_events:
            ts = float(e.get("ts", 0.0))
            dur = float(e.get("dur", 0.0))
            open_until = [end for end in open_until if end > ts]
            depth = min(len(open_until), 3)
            open_until.append(ts + dur)
            x = label_w + plot_w * (ts - t0) / span
            w = max(plot_w * dur / span, 1.0)
            h = max(lane_h - 8 - 3 * depth, 3)
            parts.append(
                f'<rect x="{x:.1f}" y="{y + 3 * depth}" width="{w:.1f}" '
                f'height="{h}" rx="1.5" fill="var(--series-1)" '
                f'fill-opacity="{1.0 - 0.2 * depth:.1f}">'
                f"<title>{_esc(e.get('name', '?'))} "
                f"({dur:.0f} µs)</title></rect>"
            )
    parts.append("</svg>")
    top = sorted(xs, key=lambda e: -float(e.get("dur", 0.0)))[:max_rows]
    rows = [
        [
            f"<code>{_esc(e.get('name', '?'))}</code>",
            _esc(e.get("cat", "")),
            _esc(f"{int(e.get('pid', 0))}/{int(e.get('tid', 0))}"),
            _esc(f"{float(e.get('ts', 0.0)) - t0:.0f}"),
            _esc(f"{float(e.get('dur', 0.0)):.0f}"),
        ]
        for e in top
    ]
    table = _table(
        ["span", "category", "pid/tid", "start µs", "duration µs"],
        rows,
    )
    note = (
        f"{len(xs)} spans over {len(lanes)} track(s); bar depth = span "
        "nesting; table lists the longest spans"
    )
    return _section(
        "timeline", "Span timeline", "".join(parts) + table, note
    )


# ---------------------------------------------------------------------------
# the page
# ---------------------------------------------------------------------------

# Palette: the validated reference instance (light + dark as selected
# steps of the same hues).  Text wears text ink; series color only ever
# fills marks.  Dark mode follows the OS setting.
_CSS = """
:root {
  color-scheme: light;
  --page: #f9f9f7; --surface: #fcfcfb;
  --text: #0b0b0b; --text-2: #52514e; --muted: #898781;
  --grid: #e1e0d9; --axis: #c3c2b7;
  --border: rgba(11,11,11,0.10);
  --series-1: #2a78d6;
  --good: #0ca30c; --warn: #fab219; --bad: #d03b3b;
}
@media (prefers-color-scheme: dark) {
  :root {
    color-scheme: dark;
    --page: #0d0d0d; --surface: #1a1a19;
    --text: #ffffff; --text-2: #c3c2b7; --muted: #898781;
    --grid: #2c2c2a; --axis: #383835;
    --border: rgba(255,255,255,0.10);
    --series-1: #3987e5;
  }
}
* { box-sizing: border-box; }
body {
  margin: 0; padding: 24px; background: var(--page); color: var(--text);
  font: 14px/1.45 system-ui, -apple-system, "Segoe UI", sans-serif;
}
header h1 { font-size: 20px; margin: 0 0 2px; }
header .sub { color: var(--text-2); margin: 0 0 20px; }
section {
  background: var(--surface); border: 1px solid var(--border);
  border-radius: 8px; padding: 16px 18px; margin: 0 0 16px;
}
h2 { font-size: 15px; margin: 0 0 8px; }
h3 { font-size: 13px; margin: 14px 0 6px; }
.note { color: var(--muted); font-size: 12px; margin: 0 0 8px; }
.empty { color: var(--muted); font-style: italic; margin: 4px 0; }
table { border-collapse: collapse; width: 100%; font-size: 12.5px; }
th {
  text-align: left; color: var(--text-2); font-weight: 600;
  border-bottom: 1px solid var(--axis); padding: 4px 10px 4px 0;
}
td {
  border-bottom: 1px solid var(--grid); padding: 4px 10px 4px 0;
  font-variant-numeric: tabular-nums; vertical-align: middle;
}
code { font-size: 12px; }
.tiles { display: flex; gap: 24px; flex-wrap: wrap; margin: 4px 0 14px; }
.tile-v { font-size: 24px; font-weight: 600; }
.tile-l { color: var(--text-2); font-size: 12px; }
.spark, .timeline { display: block; }
.badge { color: var(--text); white-space: nowrap; }
.badge-ic { font-weight: 700; }
.b-ok .badge-ic { color: var(--good); }
.b-warn .badge-ic { color: var(--warn); }
.b-bad .badge-ic { color: var(--bad); }
.verdict { margin: 0 0 8px; }
.lane-label { font-size: 11px; fill: var(--text-2); }
.timeline text { font-family: inherit; }
footer { color: var(--muted); font-size: 12px; margin-top: 8px; }
"""


def render_dashboard(
    *,
    entries: Sequence = (),
    snapshot: Optional[Dict] = None,
    bench: Optional[Dict[str, Dict]] = None,
    drift=None,
    trace=None,
    title: str = "fpzc run dashboard",
    limit: int = 20,
    generated: str = "",
) -> str:
    """Render the full dashboard as one self-contained HTML document.

    ``entries`` are ledger entries (newest last, as read); ``snapshot``
    a metrics snapshot dict; ``bench`` a ``{name: parsed json}`` map of
    baseline files; ``drift`` a precomputed
    :class:`~repro.telemetry.drift.DriftReport` (computed from
    ``entries`` when omitted); ``trace`` a Chrome trace document.
    Every input is optional; absent ones render as empty states.
    """
    if drift is None and entries:
        from repro.telemetry.drift import drift_report

        drift = drift_report(entries)
    sections = [
        render_ledger_section(entries, limit=limit),
        render_drift_section(drift),
        render_service_section(entries, snapshot),
        render_cache_section(entries, snapshot),
        render_cluster_section(entries, snapshot),
        render_timeline_section(trace),
        render_bench_section(bench),
        render_metrics_section(snapshot),
    ]
    sub = "fixed-PSNR compression · accuracy-conformance observatory"
    if generated:
        sub += f" · generated {_esc(generated)}"
    return (
        "<!DOCTYPE html>\n"
        '<html lang="en"><head><meta charset="utf-8">\n'
        f"<title>{_esc(title)}</title>\n"
        f"<style>{_CSS}</style></head>\n"
        f"<body><header><h1>{_esc(title)}</h1>"
        f'<p class="sub">{sub}</p></header>\n'
        + "\n".join(sections)
        + "\n<footer>self-contained report — no external resources"
        "</footer></body></html>\n"
    )


def load_bench_dir(directory) -> Dict[str, Dict]:
    """Read every ``BENCH_*.json`` under ``directory`` into the map
    :func:`render_dashboard` expects; unreadable files are skipped."""
    from pathlib import Path

    out: Dict[str, Dict] = {}
    for path in sorted(Path(directory).glob("BENCH_*.json")):
        try:
            with open(path, "r", encoding="utf-8") as fh:
                doc = json.load(fh)
        except (OSError, json.JSONDecodeError):
            continue
        if isinstance(doc, dict):
            out[path.name] = doc
    return out
