"""Evaluation reporting: from sweep results to the paper's tables.

The evaluation artefacts of the paper are all aggregations of one
record type -- a :class:`repro.parallel.executor.FieldResult` per
(data set, field, target).  This package turns lists of those records
into Table-II-style summaries and renders them as plain text, Markdown
or CSV, so the CLI, the benchmarks and downstream users share one
implementation.  ``repro.report`` was a single module through PR 5;
it is now a package (the whole historical API lives here unchanged)
with one submodule: :mod:`repro.report.dashboard`, the self-contained
HTML run dashboard behind ``fpzc report --html``, re-exported below.
"""

from __future__ import annotations

import csv
import io
import math
from dataclasses import dataclass, asdict
from typing import Dict, Iterable, List, Sequence

import numpy as np

from repro.errors import ParameterError
from repro.parallel.executor import FieldResult

__all__ = [
    "TargetSummary",
    "summarize_by_target",
    "render_text",
    "render_markdown",
    "render_csv",
    "table2_text",
    "stage_breakdown",
    "render_stage_breakdown",
    "render_prometheus",
    "render_metrics_json",
    "render_ledger_markdown",
    "render_salvage",
    "render_sweep_failures",
    "render_dashboard",
    "render_cache_section",
    "render_cluster_section",
]


@dataclass(frozen=True)
class TargetSummary:
    """One row of a Table-II-style summary."""

    dataset: str
    target_psnr: float
    n_fields: int
    avg_psnr: float
    stdev_psnr: float
    avg_deviation: float
    met_fraction: float
    avg_compression_ratio: float

    def as_dict(self) -> Dict:
        """JSON-friendly representation."""
        return asdict(self)


def summarize_by_target(results: Iterable[FieldResult]) -> List[TargetSummary]:
    """Aggregate per-field results into per-(dataset, target) rows,
    ordered by dataset then target.

    Failed results (``status != "ok"`` from a resilient sweep) are
    excluded -- their NaN measurements would poison every mean -- so a
    partial sweep summarizes what actually completed.  Render the
    failures separately with :func:`render_sweep_failures`.
    """
    results = [r for r in results if getattr(r, "status", "ok") == "ok"]
    if not results:
        raise ParameterError("no results to summarize")
    groups: Dict = {}
    for r in results:
        groups.setdefault((r.dataset, r.target_psnr), []).append(r)
    rows = []
    for (dataset, target), group in sorted(groups.items()):
        actuals = np.array([g.actual_psnr for g in group])
        rows.append(
            TargetSummary(
                dataset=dataset,
                target_psnr=float(target),
                n_fields=len(group),
                avg_psnr=float(actuals.mean()),
                stdev_psnr=float(actuals.std(ddof=0)),
                avg_deviation=float(np.mean([g.deviation for g in group])),
                met_fraction=float(np.mean([g.met for g in group])),
                avg_compression_ratio=float(
                    np.mean([g.compression_ratio for g in group])
                ),
            )
        )
    return rows


_HEADERS = ["dataset", "target", "fields", "AVG", "STDEV", "dev", "met%", "CR"]


def _summary_cells(s: TargetSummary) -> List[str]:
    return [
        s.dataset,
        f"{s.target_psnr:.1f}",
        str(s.n_fields),
        f"{s.avg_psnr:.2f}",
        f"{s.stdev_psnr:.2f}",
        f"{s.avg_deviation:+.2f}",
        f"{100 * s.met_fraction:.1f}",
        f"{s.avg_compression_ratio:.2f}",
    ]


def render_text(summaries: Sequence[TargetSummary], title: str = "") -> str:
    """Fixed-width text table (what the CLI prints).  An empty summary
    list renders as headers only, never raises."""
    rows = [_summary_cells(s) for s in summaries]
    widths = [
        max(len(h), *(len(r[i]) for r in rows)) if rows else len(h)
        for i, h in enumerate(_HEADERS)
    ]
    lines = [title] if title else []
    lines.append("  ".join(h.rjust(w) for h, w in zip(_HEADERS, widths)))
    lines.append("  ".join("-" * w for w in widths))
    for r in rows:
        lines.append("  ".join(c.rjust(w) for c, w in zip(r, widths)))
    return "\n".join(lines)


def render_markdown(summaries: Sequence[TargetSummary], title: str = "") -> str:
    """GitHub-flavoured Markdown table."""
    lines = [f"### {title}", ""] if title else []
    lines.append("| " + " | ".join(_HEADERS) + " |")
    lines.append("|" + "|".join("---" for _ in _HEADERS) + "|")
    for s in summaries:
        lines.append("| " + " | ".join(_summary_cells(s)) + " |")
    return "\n".join(lines)


def render_csv(summaries: Sequence[TargetSummary]) -> str:
    """CSV with full float precision (for plotting pipelines)."""
    buf = io.StringIO()
    writer = csv.DictWriter(
        buf, fieldnames=list(TargetSummary.__dataclass_fields__)
    )
    writer.writeheader()
    for s in summaries:
        writer.writerow(s.as_dict())
    return buf.getvalue()


def table2_text(results: Iterable[FieldResult]) -> str:
    """Render sweep results exactly like the paper's Table II (AVG and
    STDEV per data set and user-set PSNR)."""
    return render_text(
        summarize_by_target(results),
        title="Fixed-PSNR accuracy (paper Table II layout)",
    )


def stage_breakdown(results: Iterable[FieldResult]) -> Dict[str, Dict]:
    """Aggregate the per-field traces attached by ``collect_trace``.

    Returns a mapping ``stage name -> {"duration_s", "calls",
    "counters"}`` summed across every result that carries ``metrics``
    (results without traces are skipped).  The stage name is the leaf
    of the span path, so e.g. every field's ``quantize`` span lands in
    one bucket regardless of codec nesting.
    """
    stages: Dict[str, Dict] = {}
    for r in results:
        if not r.metrics or "records" not in r.metrics:
            continue
        for rec in r.metrics["records"]:
            path = rec.get("path") or ()
            if not path:
                continue
            name = path[-1]
            bucket = stages.setdefault(
                name, {"duration_s": 0.0, "calls": 0, "counters": {}}
            )
            duration = float(rec.get("duration_s", 0.0))
            # A zero or non-finite duration (clock quirks, merged
            # synthetic records) must not poison the aggregate.
            if np.isfinite(duration):
                bucket["duration_s"] += duration
            bucket["calls"] += 1
            for key, val in rec.get("counters", {}).items():
                bucket["counters"][key] = bucket["counters"].get(key, 0) + val
    return stages


def _prom_name(name: str) -> str:
    """Map a registry metric name onto the Prometheus grammar:
    ``fpzc_`` prefix, dots to underscores, anything else unsafe
    replaced."""
    safe = "".join(c if c.isalnum() or c == "_" else "_" for c in name)
    return f"fpzc_{safe}"


def _prom_value(v) -> str:
    """Render a sample value per the Prometheus text exposition
    grammar: non-finite floats must spell ``NaN``/``+Inf``/``-Inf``
    (``repr`` would produce the invalid ``nan``/``inf``)."""
    if isinstance(v, float):
        if math.isnan(v):
            return "NaN"
        if math.isinf(v):
            return "+Inf" if v > 0 else "-Inf"
        if v.is_integer():
            return str(int(v))
        return repr(v)
    return str(v)


def _prom_help(text: str) -> str:
    """Escape a metric description for a ``# HELP`` line: backslash
    and newline are the only characters the format escapes there."""
    return text.replace("\\", "\\\\").replace("\n", "\\n")


def render_prometheus(snapshot: Dict) -> str:
    """Render a :meth:`MetricsRegistry.snapshot` in the Prometheus
    text exposition format (v0.0.4).

    Histogram buckets are emitted cumulatively with ``le`` labels plus
    the standard ``_sum``/``_count`` series, so the output scrapes
    cleanly into any Prometheus-compatible stack.  Metrics registered
    with a description get a ``# HELP`` line (escaped), making scrapes
    self-documenting.  An empty snapshot renders as an empty string.
    """
    lines = []
    for name, entry in sorted(snapshot.get("metrics", {}).items()):
        pname = _prom_name(name)
        kind = entry.get("kind", "untyped")
        doc = entry.get("help", "")
        if doc:
            lines.append(f"# HELP {pname} {_prom_help(doc)}")
        lines.append(f"# TYPE {pname} {kind}")
        if kind == "histogram":
            cumulative = 0
            bounds = list(entry["buckets"]) + [float("inf")]
            for bound, count in zip(bounds, entry["counts"]):
                cumulative += int(count)
                le = "+Inf" if bound == float("inf") else f"{bound:g}"
                lines.append(f'{pname}_bucket{{le="{le}"}} {cumulative}')
            lines.append(f"{pname}_sum {_prom_value(entry['sum'])}")
            lines.append(f"{pname}_count {int(entry['count'])}")
        else:
            lines.append(f"{pname} {_prom_value(entry['value'])}")
    return "\n".join(lines) + ("\n" if lines else "")


def render_metrics_json(snapshot: Dict, indent: int = 2) -> str:
    """Render a metrics snapshot as stable, sorted JSON text."""
    import json

    return json.dumps(snapshot, indent=indent, sort_keys=True)


def render_ledger_markdown(entries: Sequence, limit: int = 20) -> str:
    """A Markdown table of the most recent run-ledger entries (see
    :mod:`repro.telemetry.ledger`).  Well-formed for an empty ledger."""
    headers = [
        "created", "kind", "rev", "dataset/field", "codec", "mode",
        "target", "achieved", "PSNR", "CR", "bytes",
    ]
    lines = ["| " + " | ".join(headers) + " |",
             "|" + "|".join("---" for _ in headers) + "|"]
    for e in list(entries)[-limit:]:
        where = e.dataset if not e.field else f"{e.dataset}/{e.field}"

        def fmt(v, spec=".2f"):
            return "" if v is None else format(v, spec)

        # Schema-1 records carry only the PSNR pair; show it under the
        # generic target/achieved columns so old ledgers stay readable.
        mode = getattr(e, "mode", "") or (
            "psnr" if e.target_psnr is not None else ""
        )
        target = getattr(e, "target", None)
        achieved = getattr(e, "achieved", None)
        if target is None:
            target = e.target_psnr
        if achieved is None:
            achieved = e.achieved_psnr
        lines.append(
            "| " + " | ".join([
                e.created, e.kind, e.git_rev, where, e.codec, mode,
                fmt(target, ".4g"), fmt(achieved, ".4g"),
                fmt(e.achieved_psnr), fmt(e.ratio),
                "" if e.compressed_bytes is None
                else str(e.compressed_bytes),
            ]) + " |"
        )
    return "\n".join(lines)


def render_stage_breakdown(results: Iterable[FieldResult]) -> str:
    """Fixed-width text table of :func:`stage_breakdown` sorted by
    total time (what ``fpzc sweep --trace`` prints)."""
    stages = stage_breakdown(results)
    if not stages:
        return "stage breakdown: no traces collected"
    total = sum(b["duration_s"] for b in stages.values()) or 1.0
    lines = [
        "stage breakdown (timings non-deterministic)",
        f"{'stage':<24} {'time':>10} {'share':>7} {'calls':>7}",
    ]
    for name, b in sorted(
        stages.items(), key=lambda kv: -kv[1]["duration_s"]
    ):
        lines.append(
            f"{name:<24} {1e3 * b['duration_s']:>7.1f} ms "
            f"{100 * b['duration_s'] / total:>6.1f}% {b['calls']:>7}"
        )
    return "\n".join(lines)


def render_salvage(report) -> str:
    """Fixed-width text rendering of a
    :class:`repro.resilience.salvage.SalvageReport` (what
    ``fpzc verify --salvage`` prints)."""
    head = "clean" if report.ok else "DEGRADED"
    expected = "?" if report.expected is None else str(report.expected)
    lines = [
        f"salvage [{report.kind}] {head}: "
        f"{len(report.recovered)}/{expected} recovered, "
        f"{len(report.lost)} lost, {report.resyncs} resync(s), "
        f"{report.total_bytes} bytes",
    ]
    for o in report.recovered:
        lines.append(
            f"  + {o.name:<18} [{o.offset:>8}, {o.offset + o.length:>8}) "
            f"{o.length} bytes"
        )
    for o in report.lost:
        detail = f" -- {o.detail}" if o.detail else ""
        lines.append(
            f"  - {o.name:<18} [{o.offset:>8}, {o.offset + o.length:>8}) "
            f"{o.code}{detail}"
        )
    return "\n".join(lines)


def render_sweep_failures(results: Iterable[FieldResult]) -> str:
    """One line per failed task of a resilient sweep; empty string
    when everything succeeded."""
    failed = [r for r in results if getattr(r, "status", "ok") != "ok"]
    if not failed:
        return ""
    lines = [f"{len(failed)} task(s) failed after retries:"]
    for r in failed:
        lines.append(
            f"  {r.field} @ {r.target_psnr:g} dB: [{r.error_code}] "
            f"{r.error} ({r.attempts} attempt(s))"
        )
    return "\n".join(lines)


# The HTML dashboard lives in its own module (it has no numpy/
# FieldResult dependency); re-exported here so `from repro.report
# import render_dashboard` works like every other renderer.
from repro.report.dashboard import (  # noqa: E402
    render_cache_section,
    render_cluster_section,
    render_dashboard,
)
