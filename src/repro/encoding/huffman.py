"""Canonical Huffman coding with a fully vectorized encoder *and* decoder.

SZ's third stage is a "customized Huffman coding" over quantization
codes (paper Section II-A).  This module implements it from scratch:

* optimal code lengths via the classic two-queue/heap algorithm;
* **length-limited** code lengths via the package-merge (coin
  collector) algorithm, so that decode tables stay small;
* canonical code assignment (codes are recoverable from lengths alone,
  so the serialized table is just ``(symbol, length)`` pairs);
* vectorized encoding: table lookup + :func:`repro.encoding.bitio.pack_codes`;
* vectorized decoding: *speculative decode + pointer-doubling list
  ranking*.  A symbol is decoded at **every** bit offset with one table
  gather, giving a successor array ``nxt[pos] = pos + len(symbol at
  pos)``; the true symbol boundaries are the chain of ``nxt`` starting
  at bit 0, which is materialised in ``O(log n)`` vectorized passes by
  pointer doubling (``A_{k+1} = A_k ++ nxt^{|A_k|}[A_k]``).  This turns
  an inherently sequential decoder into whole-array NumPy work, per the
  HPC-Python guidance to keep Python loops out of per-element paths.

A literal sequential decoder (:meth:`CanonicalHuffman.decode_sequential`)
is kept both as a fallback for pathological alphabets whose codes cannot
be length-limited to the table width and as an oracle in tests.
"""

from __future__ import annotations

import heapq
from typing import Tuple

import numpy as np

import repro.observe as observe
from repro.encoding.bitio import pack_codes
from repro.errors import DecompressionError, ParameterError

__all__ = [
    "CanonicalHuffman",
    "huffman_encode",
    "huffman_decode",
    "optimal_code_lengths",
    "package_merge_lengths",
]

#: Widest decode table we are willing to build: 2**18 entries (~2 MB).
MAX_TABLE_BITS = 18


def optimal_code_lengths(counts: np.ndarray) -> np.ndarray:
    """Return optimal (unlimited) Huffman code lengths for ``counts``.

    Uses the standard heap construction.  A single-symbol alphabet gets
    length 1 (a code must still occupy at least one bit).
    """
    counts = np.asarray(counts, dtype=np.int64)
    if counts.ndim != 1 or counts.size == 0:
        raise ParameterError("counts must be a non-empty 1-D array")
    if (counts <= 0).any():
        raise ParameterError("all symbol counts must be positive")
    n = counts.size
    if n == 1:
        return np.array([1], dtype=np.int64)
    # Heap of (weight, tiebreak, node-id); internal nodes get ids >= n.
    heap = [(int(c), i, i) for i, c in enumerate(counts)]
    heapq.heapify(heap)
    parent = np.full(2 * n - 1, -1, dtype=np.int64)
    next_id = n
    while len(heap) > 1:
        w1, _, a = heapq.heappop(heap)
        w2, _, b = heapq.heappop(heap)
        parent[a] = next_id
        parent[b] = next_id
        heapq.heappush(heap, (w1 + w2, next_id, next_id))
        next_id += 1
    # Depth of each leaf = code length; compute top-down over node ids
    # (a child always has a smaller id than its parent).
    depth = np.zeros(2 * n - 1, dtype=np.int64)
    for node in range(2 * n - 3, -1, -1):
        depth[node] = depth[parent[node]] + 1
    return depth[:n]


def package_merge_lengths(counts: np.ndarray, max_length: int) -> np.ndarray:
    """Optimal length-limited code lengths via package-merge.

    Solves the coin-collector formulation: collect total value ``n - 1``
    using coins of denominations ``2**-1 .. 2**-max_length`` (one coin
    per symbol per denomination, numismatic value = symbol count); the
    number of coins of symbol *i* in the solution is its code length.
    """
    counts = np.asarray(counts, dtype=np.int64)
    if counts.ndim != 1 or counts.size == 0:
        raise ParameterError("counts must be a non-empty 1-D array")
    if (counts <= 0).any():
        raise ParameterError("all symbol counts must be positive")
    n = counts.size
    if n == 1:
        return np.array([1], dtype=np.int64)
    if max_length < 1 or (max_length < 63 and (1 << max_length) < n):
        raise ParameterError(
            f"cannot code {n} symbols with max length {max_length}"
        )
    order = np.argsort(counts, kind="stable")
    sorted_counts = counts[order]
    # Each list entry is (weight, tuple-of-original-item-ranks).
    items = [(int(w), (int(r),)) for r, w in enumerate(sorted_counts)]
    current = list(items)  # denomination 2**-max_length
    for _level in range(max_length - 1):
        packages = [
            (
                current[2 * i][0] + current[2 * i + 1][0],
                current[2 * i][1] + current[2 * i + 1][1],
            )
            for i in range(len(current) // 2)
        ]
        current = sorted(items + packages, key=lambda e: e[0])
    take = current[: 2 * (n - 1)]
    lengths_sorted = np.zeros(n, dtype=np.int64)
    for _w, members in take:
        for r in members:
            lengths_sorted[r] += 1
    lengths = np.zeros(n, dtype=np.int64)
    lengths[order] = lengths_sorted
    return lengths


def _canonical_codes(lengths: np.ndarray) -> np.ndarray:
    """Assign canonical codes given per-symbol lengths.

    Symbols are ranked by (length, position); code values increase with
    rank, shifting left when the length steps up.
    """
    lengths = np.asarray(lengths, dtype=np.int64)
    order = np.lexsort((np.arange(lengths.size), lengths))
    codes = np.zeros(lengths.size, dtype=np.uint64)
    code = 0
    prev_len = int(lengths[order[0]])
    for rank, idx in enumerate(order):
        ln = int(lengths[idx])
        if rank:
            code = (code + 1) << (ln - prev_len)
        codes[idx] = code
        prev_len = ln
    return codes


class CanonicalHuffman:
    """A canonical Huffman code over an integer alphabet.

    Parameters
    ----------
    symbols:
        Sorted, unique integer symbol values (any int64 range).
    lengths:
        Code length of each symbol, Kraft sum <= 1.
    """

    def __init__(self, symbols: np.ndarray, lengths: np.ndarray) -> None:
        symbols = np.asarray(symbols, dtype=np.int64)
        lengths = np.asarray(lengths, dtype=np.int64)
        if symbols.ndim != 1 or symbols.shape != lengths.shape:
            raise ParameterError("symbols/lengths must be matching 1-D arrays")
        if symbols.size == 0:
            raise ParameterError("empty alphabet")
        if (np.diff(symbols) <= 0).any():
            raise ParameterError("symbols must be strictly increasing")
        if lengths.min() < 1 or lengths.max() > 57:
            raise ParameterError("code lengths must be in [1, 57]")
        kraft = np.sum(np.exp2(-lengths.astype(np.float64)))
        if kraft > 1.0 + 1e-9:
            raise ParameterError(f"Kraft inequality violated (sum={kraft})")
        self.symbols = symbols
        self.lengths = lengths
        self.codes = _canonical_codes(lengths)
        self.max_length = int(lengths.max())
        self._table_sym: np.ndarray | None = None
        self._table_len: np.ndarray | None = None

    # -- construction -------------------------------------------------

    @classmethod
    def from_counts(
        cls,
        symbols: np.ndarray,
        counts: np.ndarray,
        max_length: int = MAX_TABLE_BITS,
    ) -> "CanonicalHuffman":
        """Build a code from symbol frequencies.

        Uses the optimal (unlimited) lengths when they already fit in
        ``max_length`` bits, otherwise package-merge.
        """
        symbols = np.asarray(symbols, dtype=np.int64)
        counts = np.asarray(counts, dtype=np.int64)
        lengths = optimal_code_lengths(counts)
        if lengths.max() > max_length:
            lengths = package_merge_lengths(counts, max_length)
        return cls(symbols, lengths)

    @classmethod
    def from_data(
        cls, data: np.ndarray, max_length: int = MAX_TABLE_BITS
    ) -> "CanonicalHuffman":
        """Build a code from the data that will be encoded."""
        trace = observe.current_trace()
        with trace.span("huffman.build") as sp:
            data = np.asarray(data).ravel()
            if data.size == 0:
                raise ParameterError("cannot build a code from empty data")
            symbols, counts = np.unique(data.astype(np.int64), return_counts=True)
            from repro.telemetry.registry import metrics as _metrics

            _metrics().histogram("encoding.huffman.alphabet_size").observe(
                int(symbols.size)
            )
            if trace.enabled:
                sp.set("alphabet_size", int(symbols.size))
            return cls.from_counts(symbols, counts, max_length=max_length)

    # -- encoding ------------------------------------------------------

    def encode(self, data: np.ndarray) -> Tuple[bytes, int]:
        """Encode ``data`` (values must all be in the alphabet).

        Returns ``(payload, total_bits)``.
        """
        trace = observe.current_trace()
        with trace.span("huffman.encode") as sp:
            flat = np.asarray(data, dtype=np.int64).ravel()
            if flat.size == 0:
                return b"", 0
            idx = np.searchsorted(self.symbols, flat)
            bad = (idx >= self.symbols.size) | (self.symbols[
                np.minimum(idx, self.symbols.size - 1)
            ] != flat)
            if bad.any():
                raise ParameterError("data contains symbols outside the alphabet")
            payload, total_bits = pack_codes(self.codes[idx], self.lengths[idx])
            if trace.enabled:
                sp.count("n_symbols", int(flat.size))
                sp.count("total_bits", int(total_bits))
                sp.count("bytes_out", len(payload))
            return payload, total_bits

    # -- decoding ------------------------------------------------------

    def _build_table(self) -> None:
        """Build the flat ``2**max_length`` lookup table (lazily)."""
        if self._table_sym is not None:
            return
        bits = self.max_length
        size = 1 << bits
        fill = (1 << (bits - self.lengths)).astype(np.int64)
        starts = (self.codes << (bits - self.lengths).astype(np.uint64)).astype(
            np.int64
        )
        total = int(fill.sum())
        # Vectorized table fill: every code owns a contiguous entry run.
        reps_idx = np.repeat(np.arange(self.symbols.size), fill)
        run_starts = np.repeat(starts, fill)
        offs = np.arange(total) - np.repeat(
            np.concatenate(([0], np.cumsum(fill)[:-1])), fill
        )
        positions = run_starts + offs
        table_sym = np.zeros(size, dtype=np.int64)
        # Unused entries (incomplete code) get length 1 so the successor
        # array stays monotonic; valid streams never reach them.
        table_len = np.ones(size, dtype=np.int64)
        table_sym[positions] = reps_idx
        table_len[positions] = self.lengths[reps_idx]
        self._table_sym = table_sym
        self._table_len = table_len

    def decode(self, payload: bytes, n_symbols: int, total_bits: int) -> np.ndarray:
        """Decode ``n_symbols`` symbols from ``payload``.

        Uses the vectorized speculative/pointer-doubling decoder when
        the maximum code length permits a flat table, else the
        sequential decoder.
        """
        if n_symbols == 0:
            return np.zeros(0, dtype=np.int64)
        if n_symbols < 0 or total_bits < 0:
            raise ParameterError("negative sizes")
        if self.max_length > MAX_TABLE_BITS:
            return self.decode_sequential(payload, n_symbols, total_bits)
        return self._decode_vectorized(payload, n_symbols, total_bits)

    def _decode_vectorized(
        self, payload: bytes, n_symbols: int, total_bits: int
    ) -> np.ndarray:
        buf = np.frombuffer(payload, dtype=np.uint8)
        if buf.size * 8 < total_bits:
            raise DecompressionError("Huffman payload shorter than declared")
        self._build_table()
        bits = np.unpackbits(buf)[:total_bits]
        L = self.max_length
        # Window value at every bit offset: w[p] = bits[p : p+L] as int.
        padded = np.concatenate([bits, np.zeros(L, dtype=np.uint8)]).astype(
            np.int64
        )
        w = np.zeros(total_bits, dtype=np.int64)
        for j in range(L):
            w = (w << 1) | padded[j : j + total_bits]
        # Speculative decode at every offset -> successor array with a
        # self-looping sentinel at index total_bits.
        step = self._table_len[w]
        nxt = np.minimum(np.arange(total_bits, dtype=np.int64) + step, total_bits)
        nxt = np.concatenate([nxt, [total_bits]])
        # Pointer-doubling list ranking: materialise the first
        # n_symbols positions of the chain starting at 0.
        positions = np.empty(n_symbols, dtype=np.int64)
        positions[0] = 0
        filled = 1
        jump = nxt  # jumps exactly `filled` symbols when applied
        while filled < n_symbols:
            take = min(filled, n_symbols - filled)
            positions[filled : filled + take] = jump[positions[:take]]
            filled += take
            if filled < n_symbols:
                jump = jump[jump]
        if positions[-1] >= total_bits:
            raise DecompressionError("Huffman stream exhausted before n_symbols")
        sym_idx = self._table_sym[w[positions]]
        end = int(positions[-1] + self.lengths[sym_idx[-1]])
        if end > total_bits:
            raise DecompressionError("Huffman stream overruns declared bit count")
        return self.symbols[sym_idx]

    def decode_sequential(
        self, payload: bytes, n_symbols: int, total_bits: int
    ) -> np.ndarray:
        """Literal per-symbol canonical decoder (oracle / fallback)."""
        buf = np.frombuffer(payload, dtype=np.uint8)
        if buf.size * 8 < total_bits:
            raise DecompressionError("Huffman payload shorter than declared")
        bits = np.unpackbits(buf)[:total_bits]
        # Canonical decode needs, per length l: the first code value and
        # the rank offset of the first symbol of that length.
        order = np.lexsort((np.arange(self.symbols.size), self.lengths))
        sym_by_rank = self.symbols[order]
        len_by_rank = self.lengths[order]
        first_code = {}
        first_rank = {}
        for rank in range(order.size):
            ln = int(len_by_rank[rank])
            if ln not in first_code:
                first_code[ln] = int(self.codes[order[rank]])
                first_rank[ln] = rank
        count_by_len = {
            ln: int(np.sum(len_by_rank == ln)) for ln in set(len_by_rank.tolist())
        }
        out = np.empty(n_symbols, dtype=np.int64)
        acc = 0
        ln = 0
        pos = 0
        emitted = 0
        while emitted < n_symbols:
            if pos >= total_bits:
                raise DecompressionError("Huffman stream exhausted")
            acc = (acc << 1) | int(bits[pos])
            pos += 1
            ln += 1
            if ln in first_code and 0 <= acc - first_code[ln] < count_by_len[ln]:
                out[emitted] = sym_by_rank[first_rank[ln] + acc - first_code[ln]]
                emitted += 1
                acc = 0
                ln = 0
            elif ln > self.max_length:
                raise DecompressionError("invalid Huffman code in stream")
        return out

    # -- serialization -------------------------------------------------

    def table_bytes(self) -> bytes:
        """Serialize the code as (n, symbols[int64], lengths[uint8]).

        Canonical codes are reconstructible from lengths alone.
        """
        n = np.array([self.symbols.size], dtype=np.int64)
        return (
            n.tobytes()
            + self.symbols.tobytes()
            + self.lengths.astype(np.uint8).tobytes()
        )

    @classmethod
    def from_table_bytes(cls, blob: bytes) -> "CanonicalHuffman":
        """Inverse of :meth:`table_bytes`."""
        if len(blob) < 8:
            raise DecompressionError("Huffman table blob truncated")
        n = int(np.frombuffer(blob[:8], dtype=np.int64)[0])
        need = 8 + 8 * n + n
        if n <= 0 or len(blob) < need:
            raise DecompressionError("Huffman table blob malformed")
        symbols = np.frombuffer(blob[8 : 8 + 8 * n], dtype=np.int64)
        lengths = np.frombuffer(blob[8 + 8 * n : need], dtype=np.uint8).astype(
            np.int64
        )
        return cls(symbols, lengths)


def huffman_encode(data: np.ndarray) -> Tuple[bytes, int, "CanonicalHuffman"]:
    """One-shot helper: build a code from ``data`` and encode it."""
    code = CanonicalHuffman.from_data(data)
    payload, total_bits = code.encode(data)
    return payload, total_bits, code


def huffman_decode(
    payload: bytes, n_symbols: int, total_bits: int, code: "CanonicalHuffman"
) -> np.ndarray:
    """One-shot helper mirroring :func:`huffman_encode`."""
    return code.decode(payload, n_symbols, total_bits)
