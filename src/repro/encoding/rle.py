"""Run-length preprocessing for mode-dominated code streams.

Ablation X9 shows why the paper's SZ keeps GZIP behind Huffman: at low
PSNR targets nearly every quantization code is 0 and the information
sits in the *run structure*, invisible to any 0-order entropy coder.
This module factors that structure out explicitly: a stream is split
into

* the **dominant symbol** (the mode, usually 0),
* the **literals** -- every non-dominant value in order,
* the **gaps** -- how many dominant symbols precede each literal (plus
  one trailing count),

and the two residual streams are rANS-coded with their own models
(``encode_rle_rans``).  Splitting and merging are fully vectorized
(``nonzero`` / ``diff`` / ``cumsum``).
"""

from __future__ import annotations

import struct
from typing import Tuple

import numpy as np

import repro.observe as observe
from repro.encoding.rans import RansCoder
from repro.errors import DecompressionError, ParameterError

__all__ = ["rle_split", "rle_merge", "encode_rle_rans", "decode_rle_rans"]

_MAGIC = b"RLRN"


def rle_split(data: np.ndarray) -> Tuple[int, np.ndarray, np.ndarray, int]:
    """Split ``data`` into ``(dominant, literals, gaps, n)``.

    ``gaps`` has ``len(literals) + 1`` entries: dominant-run lengths
    before each literal and after the last one.
    """
    q = np.asarray(data, dtype=np.int64).ravel()
    n = q.size
    if n == 0:
        raise ParameterError("cannot RLE-split empty data")
    values, counts = np.unique(q, return_counts=True)
    dominant = int(values[np.argmax(counts)])
    positions = np.nonzero(q != dominant)[0]
    literals = q[positions]
    gaps = np.empty(literals.size + 1, dtype=np.int64)
    if literals.size:
        gaps[:-1] = np.diff(positions, prepend=-1) - 1
        gaps[-1] = n - 1 - positions[-1]
    else:
        gaps[0] = n
    return dominant, literals, gaps, n


def rle_merge(
    dominant: int, literals: np.ndarray, gaps: np.ndarray, n: int
) -> np.ndarray:
    """Exact inverse of :func:`rle_split`."""
    literals = np.asarray(literals, dtype=np.int64)
    gaps = np.asarray(gaps, dtype=np.int64)
    if gaps.size != literals.size + 1:
        raise DecompressionError("RLE gap/literal count mismatch")
    if (gaps < 0).any():
        raise DecompressionError("negative RLE gap")
    total = int(gaps.sum()) + literals.size
    if total != n:
        raise DecompressionError(
            f"RLE geometry reconstructs {total} values, expected {n}"
        )
    out = np.full(n, dominant, dtype=np.int64)
    if literals.size:
        positions = np.cumsum(gaps[:-1] + 1) - 1
        out[positions] = literals
    return out


def _pack_stream(values: np.ndarray) -> bytes:
    """rANS-encode one int64 stream as (table_len, table, payload)."""
    coder = RansCoder.from_data(values)
    table = coder.table_bytes()
    payload = coder.encode(values)
    return struct.pack("<QQ", len(table), len(payload)) + table + payload


def _unpack_stream(blob: bytes, offset: int) -> Tuple[np.ndarray, int]:
    if len(blob) < offset + 16:
        raise DecompressionError("RLE stream truncated")
    table_len, payload_len = struct.unpack_from("<QQ", blob, offset)
    offset += 16
    end = offset + table_len + payload_len
    if len(blob) < end:
        raise DecompressionError("RLE stream truncated")
    coder = RansCoder.from_table_bytes(blob[offset : offset + table_len])
    values = coder.decode(blob[offset + table_len : end])
    return values, end


def encode_rle_rans(data: np.ndarray) -> bytes:
    """RLE-split ``data`` and rANS-code both residual streams."""
    trace = observe.current_trace()
    with trace.span("rle.encode") as sp:
        dominant, literals, gaps, n = rle_split(data)
        if trace.enabled:
            sp.count("n_symbols", int(n))
            sp.count("n_literals", int(literals.size))
        parts = [
            struct.pack("<4sqQQ", _MAGIC, dominant, n, literals.size),
            _pack_stream(gaps),
        ]
        if literals.size:
            parts.append(_pack_stream(literals))
        out = b"".join(parts)
        if trace.enabled:
            sp.count("bytes_out", len(out))
        return out


def decode_rle_rans(blob: bytes) -> np.ndarray:
    """Inverse of :func:`encode_rle_rans`."""
    if len(blob) < 28 or blob[:4] != _MAGIC:
        raise DecompressionError("not an RLE+rANS payload")
    _, dominant, n, n_literals = struct.unpack_from("<4sqQQ", blob, 0)
    gaps, offset = _unpack_stream(blob, 28)
    if n_literals:
        literals, offset = _unpack_stream(blob, offset)
    else:
        literals = np.zeros(0, dtype=np.int64)
    if literals.size != n_literals:
        raise DecompressionError("RLE literal count mismatch")
    if offset != len(blob):
        raise DecompressionError("trailing bytes after RLE payload")
    return rle_merge(int(dominant), literals, gaps, int(n))
