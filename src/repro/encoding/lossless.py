"""Trailing lossless stage of the pipeline.

The paper's SZ applies GZIP to the Huffman-encoded bytes (Section
II-A step 3).  GZIP's algorithm is DEFLATE, which is what :mod:`zlib`
implements; we expose it behind a small method registry so other
lossless back-ends could be slotted in.
"""

from __future__ import annotations

import zlib

import repro.observe as observe
from repro.errors import DecompressionError, ParameterError

__all__ = ["lossless_compress", "lossless_decompress", "METHODS"]

#: Supported lossless back-ends; one byte id is stored in the container.
METHODS = {"none": 0, "zlib": 1}
_IDS = {v: k for k, v in METHODS.items()}


def lossless_compress(data: bytes, method: str = "zlib", level: int = 6) -> bytes:
    """Compress ``data`` with the named lossless back-end.

    ``level`` follows zlib semantics (1 fastest .. 9 best); ignored for
    ``"none"``.
    """
    if method not in METHODS:
        raise ParameterError(f"unknown lossless method {method!r}")
    if method == "none":
        return bytes(data)
    if not 1 <= level <= 9:
        raise ParameterError("zlib level must be in [1, 9]")
    trace = observe.current_trace()
    with trace.span("lossless") as sp:
        out = zlib.compress(bytes(data), level)
        if trace.enabled:
            sp.count("bytes_in", len(data))
            sp.count("bytes_out", len(out))
    return out


def lossless_decompress(data: bytes, method: str = "zlib") -> bytes:
    """Inverse of :func:`lossless_compress`."""
    if method not in METHODS:
        raise ParameterError(f"unknown lossless method {method!r}")
    if method == "none":
        return bytes(data)
    try:
        return zlib.decompress(bytes(data))
    except zlib.error as exc:  # corrupt stream
        raise DecompressionError(f"zlib stream corrupt: {exc}") from exc


def method_id(method: str) -> int:
    """Numeric id of a method (for container headers)."""
    if method not in METHODS:
        raise ParameterError(f"unknown lossless method {method!r}")
    return METHODS[method]


def method_name(mid: int) -> str:
    """Inverse of :func:`method_id`."""
    if mid not in _IDS:
        raise DecompressionError(f"unknown lossless method id {mid}")
    return _IDS[mid]
