"""Vectorized variable-length bit packing and a small sequential bit I/O.

The hot path is :func:`pack_codes`: given per-symbol (code, length)
pairs it produces the concatenated MSB-first bit stream.  Following the
HPC-Python guides, the only Python-level loop is over *bit positions
within a code* (bounded by the maximum code length, <= 32), never over
symbols; each iteration is a full-array NumPy operation.

:class:`BitWriter` / :class:`BitReader` are deliberately simple
sequential implementations used for small headers and as an oracle in
tests of the vectorized path.
"""

from __future__ import annotations

from typing import Tuple

import numpy as np

from repro.errors import ParameterError

__all__ = ["pack_codes", "unpack_bits", "BitWriter", "BitReader"]


def pack_codes(codes: np.ndarray, lengths: np.ndarray) -> Tuple[bytes, int]:
    """Pack variable-length codes into a contiguous MSB-first bit stream.

    Parameters
    ----------
    codes:
        Unsigned integer array; the low ``lengths[i]`` bits of
        ``codes[i]`` are emitted MSB first.
    lengths:
        Bit length of each code, ``1 <= lengths[i] <= 57``.

    Returns
    -------
    (payload, total_bits):
        ``payload`` is the packed byte string (zero-padded to a byte
        boundary); ``total_bits`` the exact number of meaningful bits.
    """
    codes = np.asarray(codes, dtype=np.uint64)
    lengths = np.asarray(lengths, dtype=np.int64)
    if codes.shape != lengths.shape or codes.ndim != 1:
        raise ParameterError("codes and lengths must be equal-length 1-D arrays")
    if codes.size == 0:
        return b"", 0
    if lengths.min() < 1 or lengths.max() > 57:
        raise ParameterError("code lengths must be in [1, 57]")

    total_bits = int(lengths.sum())
    offsets = np.concatenate(([0], np.cumsum(lengths)[:-1]))
    bits = np.zeros(total_bits, dtype=np.uint8)
    max_len = int(lengths.max())
    # Loop over bit positions inside a code (<= max_len iterations);
    # each iteration scatters one bit of every sufficiently long code.
    for j in range(max_len):
        mask = lengths > j
        if not mask.any():
            break
        shift = (lengths[mask] - 1 - j).astype(np.uint64)
        bits[offsets[mask] + j] = ((codes[mask] >> shift) & np.uint64(1)).astype(
            np.uint8
        )
    return np.packbits(bits).tobytes(), total_bits


def unpack_bits(payload: bytes, total_bits: int) -> np.ndarray:
    """Inverse of the packing step: return the first ``total_bits`` bits
    of ``payload`` as a uint8 array of 0/1 values."""
    if total_bits < 0:
        raise ParameterError("total_bits must be non-negative")
    if total_bits == 0:
        return np.zeros(0, dtype=np.uint8)
    buf = np.frombuffer(payload, dtype=np.uint8)
    if buf.size * 8 < total_bits:
        raise ParameterError(
            f"payload of {buf.size} bytes cannot hold {total_bits} bits"
        )
    return np.unpackbits(buf)[:total_bits]


class BitWriter:
    """Sequential MSB-first bit writer (headers, tests, reference path)."""

    def __init__(self) -> None:
        self._bits: list = []

    def write(self, value: int, n_bits: int) -> None:
        """Append the low ``n_bits`` bits of ``value``, MSB first."""
        if n_bits < 0 or n_bits > 64:
            raise ParameterError("n_bits must be in [0, 64]")
        if value < 0 or (n_bits < 64 and value >> n_bits):
            raise ParameterError(f"value {value} does not fit in {n_bits} bits")
        for j in range(n_bits - 1, -1, -1):
            self._bits.append((value >> j) & 1)

    @property
    def bit_length(self) -> int:
        """Number of bits written so far."""
        return len(self._bits)

    def getvalue(self) -> bytes:
        """Return the packed bytes (zero-padded to a byte boundary)."""
        if not self._bits:
            return b""
        return np.packbits(np.asarray(self._bits, dtype=np.uint8)).tobytes()


class BitReader:
    """Sequential MSB-first bit reader matching :class:`BitWriter`."""

    def __init__(self, payload: bytes, total_bits: int | None = None) -> None:
        buf = np.frombuffer(payload, dtype=np.uint8)
        self._bits = np.unpackbits(buf)
        if total_bits is not None:
            if total_bits > self._bits.size:
                raise ParameterError("total_bits exceeds payload size")
            self._bits = self._bits[:total_bits]
        self._pos = 0

    @property
    def remaining(self) -> int:
        """Number of unread bits."""
        return int(self._bits.size - self._pos)

    def read(self, n_bits: int) -> int:
        """Read ``n_bits`` bits MSB-first and return them as an int."""
        if n_bits < 0:
            raise ParameterError("n_bits must be non-negative")
        if self._pos + n_bits > self._bits.size:
            raise ParameterError("bit stream exhausted")
        value = 0
        for j in range(n_bits):
            value = (value << 1) | int(self._bits[self._pos + j])
        self._pos += n_bits
        return value
