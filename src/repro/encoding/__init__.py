"""Entropy-coding stages of the compression pipeline.

SZ's pipeline (paper Section II-A) is: prediction -> error-controlled
quantization -> **customized Huffman coding** -> **GZIP**.  This package
implements the last two stages from scratch:

* :mod:`repro.encoding.bitio` -- vectorized variable-length bit packing.
* :mod:`repro.encoding.huffman` -- canonical Huffman coding with
  package-merge length limiting, a fully vectorized encoder, and a
  vectorized decoder based on speculative decoding plus
  pointer-doubling list ranking.
* :mod:`repro.encoding.lossless` -- the trailing lossless stage (zlib /
  DEFLATE, i.e. what GZIP uses, per the paper).
"""

from repro.encoding.bitio import pack_codes, unpack_bits, BitWriter, BitReader
from repro.encoding.huffman import CanonicalHuffman, huffman_encode, huffman_decode
from repro.encoding.lossless import lossless_compress, lossless_decompress

__all__ = [
    "pack_codes",
    "unpack_bits",
    "BitWriter",
    "BitReader",
    "CanonicalHuffman",
    "huffman_encode",
    "huffman_decode",
    "lossless_compress",
    "lossless_decompress",
]
