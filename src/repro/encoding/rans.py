"""Interleaved range-ANS (rANS) entropy coder, vectorized across lanes.

Huffman coding (the paper's stage 3) loses up to half a bit per symbol
to integer code lengths; ANS-family coders reach the entropy to within
a rounding error and are what later SZ generations adopted.  This is a
static-model rANS with **N interleaved states**: lane *i* codes symbols
``i, i+N, i+2N, ...``, so each coding step advances all lanes at once
with whole-array NumPy operations.  The per-symbol recurrences are the
textbook ones:

encode (processed in reverse):
    ``x = (x // f) << SCALE_BITS | (x % f) + c``      (f: freq, c: cum)
decode:
    ``s = table[x & MASK]; x = f * (x >> SCALE_BITS) + (x & MASK) - c``

with byte renormalisation keeping ``x`` in ``[L, 256*L)``.

The Python-level loop runs ``ceil(n / N)`` times (N = 256 lanes by
default), not ``n`` times -- the same "vectorize the inner dimension"
move the HPC guides prescribe.
"""

from __future__ import annotations

import struct
from typing import Tuple

import numpy as np

import repro.observe as observe
from repro.errors import DecompressionError, ParameterError

__all__ = ["RansCoder", "rans_encode", "rans_decode"]

#: Probability resolution: frequencies sum to 2**SCALE_BITS.
SCALE_BITS = 14
TOTAL = 1 << SCALE_BITS
MASK = TOTAL - 1
#: Lower bound of the state interval [L, 256L).
L = np.uint64(1 << 23)
#: Interleaved lanes (the vectorized dimension).
N_LANES = 256

_MAGIC = b"RANS"


def _normalize_freqs(counts: np.ndarray) -> np.ndarray:
    """Scale counts to frequencies summing to TOTAL, all >= 1.

    Largest-remainder rounding; steals from the most frequent symbols
    when the +1 floors overshoot.
    """
    counts = np.asarray(counts, dtype=np.float64)
    n = counts.size
    if n == 0:
        raise ParameterError("empty alphabet")
    if n > TOTAL:
        raise ParameterError(f"alphabet too large for rANS ({n} > {TOTAL})")
    if (counts <= 0).any():
        raise ParameterError("all counts must be positive")
    ideal = counts * (TOTAL / counts.sum())
    freqs = np.maximum(1, np.floor(ideal)).astype(np.int64)
    deficit = TOTAL - int(freqs.sum())
    if deficit > 0:
        # hand out the remaining mass by largest fractional part
        order = np.argsort(-(ideal - np.floor(ideal)))
        for idx in order[:deficit]:
            freqs[idx] += 1
    elif deficit < 0:
        # take back from the largest frequencies (never below 1)
        order = np.argsort(-freqs)
        i = 0
        while deficit < 0:
            idx = order[i % n]
            if freqs[idx] > 1:
                freqs[idx] -= 1
                deficit += 1
            i += 1
    assert int(freqs.sum()) == TOTAL
    return freqs


class RansCoder:
    """A static-model rANS coder over an int64 alphabet."""

    def __init__(self, symbols: np.ndarray, freqs: np.ndarray) -> None:
        symbols = np.asarray(symbols, dtype=np.int64)
        freqs = np.asarray(freqs, dtype=np.int64)
        if symbols.ndim != 1 or symbols.shape != freqs.shape or symbols.size == 0:
            raise ParameterError("symbols/freqs must be matching 1-D arrays")
        if (np.diff(symbols) <= 0).any():
            raise ParameterError("symbols must be strictly increasing")
        if int(freqs.sum()) != TOTAL or (freqs < 1).any():
            raise ParameterError(f"frequencies must be >= 1 and sum to {TOTAL}")
        self.symbols = symbols
        self.freqs = freqs.astype(np.uint64)
        self.cums = np.concatenate(([0], np.cumsum(freqs)[:-1])).astype(np.uint64)
        # slot -> symbol index lookup
        self._slot_to_sym = np.repeat(
            np.arange(symbols.size, dtype=np.int64), freqs
        )

    @classmethod
    def from_data(cls, data: np.ndarray) -> "RansCoder":
        """Build the model from the data to be encoded."""
        trace = observe.current_trace()
        with trace.span("rans.build") as sp:
            flat = np.asarray(data, dtype=np.int64).ravel()
            if flat.size == 0:
                raise ParameterError("cannot model empty data")
            symbols, counts = np.unique(flat, return_counts=True)
            if trace.enabled:
                sp.set("alphabet_size", int(symbols.size))
            return cls(symbols, _normalize_freqs(counts))

    # -- encoding ------------------------------------------------------

    def encode(self, data: np.ndarray) -> bytes:
        """Encode ``data``; returns a self-contained payload (the model
        itself is serialized separately via :meth:`table_bytes`)."""
        trace = observe.current_trace()
        with trace.span("rans.encode") as sp:
            out = self._encode_impl(data)
            n = int(np.asarray(data).size)
            if n:
                from repro.telemetry.registry import (
                    BITS_BUCKETS,
                    metrics as _metrics,
                )

                _metrics().histogram(
                    "encoding.rans.bits_per_symbol", BITS_BUCKETS
                ).observe(8.0 * len(out) / n)
            if trace.enabled:
                sp.count("n_symbols", n)
                sp.count("bytes_out", len(out))
        return out

    def _encode_impl(self, data: np.ndarray) -> bytes:
        flat = np.asarray(data, dtype=np.int64).ravel()
        n = flat.size
        if n == 0:
            return struct.pack("<4sQI", _MAGIC, 0, 0)
        idx = np.searchsorted(self.symbols, flat)
        if (idx >= self.symbols.size).any() or (
            self.symbols[np.minimum(idx, self.symbols.size - 1)] != flat
        ).any():
            raise ParameterError("data contains symbols outside the alphabet")
        sym_freq = self.freqs[idx]
        sym_cum = self.cums[idx]

        # Each lane carries 8 bytes of fixed overhead (state + length),
        # so lane count scales with input size: >= 512 symbols per lane
        # keeps the overhead below ~0.13 bits/value.
        lanes = int(min(N_LANES, max(1, n // 512)))
        steps = -(-n // lanes)
        # lane l owns positions l, l+lanes, ... ; pad the tail with -1.
        padded = lanes * steps
        freq_grid = np.ones((steps, lanes), dtype=np.uint64)
        cum_grid = np.zeros((steps, lanes), dtype=np.uint64)
        valid = np.zeros((steps, lanes), dtype=bool)
        flat_pos = np.arange(padded)
        take = flat_pos < n
        freq_grid.ravel()[take] = sym_freq
        cum_grid.ravel()[take] = sym_cum
        valid.ravel()[take] = True

        # Per-lane output buffers (bytes are emitted most 2 per symbol).
        cap = 2 * steps + 8
        buf = np.zeros((lanes, cap), dtype=np.uint8)
        ptr = np.zeros(lanes, dtype=np.int64)
        x = np.full(lanes, L, dtype=np.uint64)

        eight = np.uint64(8)
        sb = np.uint64(SCALE_BITS)
        # encode in REVERSE symbol order (rANS is a stack)
        for step in range(steps - 1, -1, -1):
            f = freq_grid[step]
            c = cum_grid[step]
            v = valid[step]
            # renormalise: emit low bytes while x >= x_max
            x_max = (f << np.uint64(23 + 8 - SCALE_BITS))
            while True:
                need = v & (x >= x_max)
                if not need.any():
                    break
                lanes_idx = np.nonzero(need)[0]
                buf[lanes_idx, ptr[lanes_idx]] = (
                    x[lanes_idx] & np.uint64(0xFF)
                ).astype(np.uint8)
                ptr[lanes_idx] += 1
                x[lanes_idx] >>= eight
            # state update
            q, r = np.divmod(x[v], f[v])
            x[v] = (q << sb) + r + c[v]

        # serialize: header, final states (uint32 -- x < 2**31 by the
        # renormalisation invariant), per-lane lengths (uint32), buffers
        # (each lane's bytes reversed so decode reads forward).
        parts = [struct.pack("<4sQI", _MAGIC, n, lanes)]
        parts.append(x.astype("<u4").tobytes())
        parts.append(ptr.astype("<u4").tobytes())
        for lane in range(lanes):
            parts.append(buf[lane, : ptr[lane]][::-1].tobytes())
        return b"".join(parts)

    # -- decoding ------------------------------------------------------

    def decode(self, payload: bytes) -> np.ndarray:
        """Decode a payload produced by :meth:`encode`."""
        if len(payload) < 16 or payload[:4] != _MAGIC:
            raise DecompressionError("not a rANS payload")
        n, lanes = struct.unpack_from("<QI", payload, 4)
        if n == 0:
            return np.zeros(0, dtype=np.int64)
        if lanes < 1 or lanes > N_LANES:
            raise DecompressionError("bad lane count")
        pos = 16
        if len(payload) < pos + 8 * lanes:
            raise DecompressionError("rANS payload truncated")
        x = np.frombuffer(payload, dtype="<u4", count=lanes, offset=pos).astype(
            np.uint64
        )
        pos += 4 * lanes
        lengths = np.frombuffer(
            payload, dtype="<u4", count=lanes, offset=pos
        ).astype(np.int64)
        pos += 4 * lanes
        bufs = np.zeros((lanes, int(lengths.max()) + 1), dtype=np.uint64)
        for lane in range(lanes):
            ln = int(lengths[lane])
            chunk = payload[pos : pos + ln]
            if len(chunk) != ln:
                raise DecompressionError("rANS payload truncated")
            bufs[lane, :ln] = np.frombuffer(chunk, dtype=np.uint8)
            pos += ln
        rptr = np.zeros(lanes, dtype=np.int64)

        steps = -(-n // lanes)
        out = np.zeros((steps, lanes), dtype=np.int64)
        valid = np.zeros((steps, lanes), dtype=bool)
        valid.ravel()[np.arange(lanes * steps) < n] = True

        eight = np.uint64(8)
        sb = np.uint64(SCALE_BITS)
        mask = np.uint64(MASK)
        lane_ids = np.arange(lanes)
        for step in range(steps):
            v = valid[step]
            slot = (x & mask).astype(np.int64)
            sym_idx = self._slot_to_sym[slot]
            out[step][v] = self.symbols[sym_idx][v]
            f = self.freqs[sym_idx]
            c = self.cums[sym_idx]
            x_new = f * (x >> sb) + (x & mask) - c
            x = np.where(v, x_new, x)
            # renormalise: pull bytes while x < L
            while True:
                need_bytes = v & (x < L)
                if not need_bytes.any():
                    break
                li = lane_ids[need_bytes]
                if (rptr[li] >= lengths[li]).any():
                    raise DecompressionError("rANS stream exhausted")
                x[li] = (x[li] << eight) | bufs[li, rptr[li]]
                rptr[li] += 1
        return out.ravel()[: lanes * steps][
            np.arange(lanes * steps) < n
        ]

    # -- model serialization --------------------------------------------

    def table_bytes(self) -> bytes:
        """Serialize the model as (n, symbols[int64], freqs[uint16])."""
        n = np.array([self.symbols.size], dtype=np.int64)
        return (
            n.tobytes()
            + self.symbols.tobytes()
            + self.freqs.astype(np.uint16).tobytes()
        )

    @classmethod
    def from_table_bytes(cls, blob: bytes) -> "RansCoder":
        """Inverse of :meth:`table_bytes`."""
        if len(blob) < 8:
            raise DecompressionError("rANS table truncated")
        n = int(np.frombuffer(blob[:8], dtype=np.int64)[0])
        need = 8 + 8 * n + 2 * n
        if n <= 0 or len(blob) < need:
            raise DecompressionError("rANS table malformed")
        symbols = np.frombuffer(blob[8 : 8 + 8 * n], dtype=np.int64)
        freqs = np.frombuffer(blob[8 + 8 * n : need], dtype=np.uint16).astype(
            np.int64
        )
        return cls(symbols, freqs)


def rans_encode(data: np.ndarray) -> Tuple[bytes, "RansCoder"]:
    """One-shot helper: model from data, then encode."""
    coder = RansCoder.from_data(data)
    return coder.encode(data), coder


def rans_decode(payload: bytes, coder: "RansCoder") -> np.ndarray:
    """One-shot helper mirroring :func:`rans_encode`."""
    return coder.decode(payload)
