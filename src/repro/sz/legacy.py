"""SZ 1.1-style curve-fitting compressor (the paper's reference [9]).

Before the Lorenzo-based SZ 1.4 the paper builds on, Di & Cappello's
original SZ (IPDPS 2016) predicted each value along the 1-D scan with
three "best-fit" models over *preceding reconstructed* values --
preceding neighbour (constant), linear extrapolation and quadratic
extrapolation -- storing a 2-bit flag for the winner:

    P1: x~[i-1]                      (constant fit)
    P2: 2*x~[i-1] - x~[i-2]          (linear fit)
    P3: 3*x~[i-1] - 3*x~[i-2] + x~[i-3]   (quadratic fit)

All three are integer-coefficient combinations summing to 1, so the
lattice equivalence of :mod:`repro.sz.quantizer` applies: the
reconstruction is the global lattice snap regardless of the flags, and
*compression* is fully vectorized (the winning predictor per point is
an argmin over three shifted views of the lattice coordinates).

Decompression has a flag-dependent recurrence that no cumsum inverts,
so it uses the interleaving trick of :mod:`repro.encoding.rans`: the
stream is cut into fixed-length segments and the Python loop runs over
the *within-segment* index (64 iterations) while every segment
advances in lock-step as a NumPy lane.

This codec exists as the historical baseline: ablation X7's
rate-distortion comparison shows how much the multidimensional Lorenzo
of SZ 1.4 (and the paper) gained over it on 2-D/3-D data, which it
treats as a flat 1-D stream.
"""

from __future__ import annotations

import numpy as np

import repro.observe as observe

from repro.encoding.huffman import CanonicalHuffman
from repro.encoding.lossless import (
    lossless_compress,
    lossless_decompress,
    method_id,
    method_name,
)
from repro.errors import (
    CompressionError,
    DecompressionError,
    FormatError,
    ParameterError,
)
from repro.io.container import (
    CODEC_LEGACY,
    Container,
    pack_exact_float,
    unpack_exact_float,
)
from repro.sz.compressor import DEFAULT_RADIUS, _SUPPORTED_DTYPES
from repro.sz.quantizer import MAX_LATTICE_COORD

__all__ = ["Sz11Compressor", "SEGMENT"]

#: Segment length: the decode loop runs SEGMENT iterations regardless
#: of data size, with one lane per segment.
SEGMENT = 64


def _predictions(k: np.ndarray) -> np.ndarray:
    """The three curve-fit predictions per in-segment position.

    ``k`` has shape (n_segments, SEGMENT); returns (3, n_seg, SEGMENT)
    with out-of-segment history treated as 0 (the global anchor) --
    every segment is self-contained so lanes stay independent.
    """
    prev1 = np.zeros_like(k)
    prev2 = np.zeros_like(k)
    prev3 = np.zeros_like(k)
    prev1[:, 1:] = k[:, :-1]
    prev2[:, 2:] = k[:, :-2]
    prev3[:, 3:] = k[:, :-3]
    return np.stack(
        [prev1, 2 * prev1 - prev2, 3 * prev1 - 3 * prev2 + prev3]
    )


class Sz11Compressor:
    """Error-bounded compressor with SZ 1.1 curve-fitting prediction.

    Parameters mirror :class:`repro.sz.SZCompressor` (``mode`` is
    ``"abs"`` or ``"rel"``).
    """

    def __init__(
        self,
        error_bound: float = 1e-4,
        mode: str = "abs",
        lossless: str = "zlib",
        lossless_level: int = 6,
        quantization_radius: int = DEFAULT_RADIUS,
    ) -> None:
        if mode not in ("abs", "rel"):
            raise ParameterError(f"mode must be 'abs' or 'rel', got {mode!r}")
        if not np.isfinite(error_bound) or error_bound <= 0:
            raise ParameterError(f"error bound must be positive, got {error_bound}")
        if quantization_radius < 1:
            raise ParameterError("quantization radius must be >= 1")
        self.error_bound = float(error_bound)
        self.mode = mode
        self.lossless = lossless
        self.lossless_id = method_id(lossless)
        self.lossless_level = int(lossless_level)
        self.radius = int(quantization_radius)
        self.target_psnr = None

    @staticmethod
    def _validate(data) -> np.ndarray:
        arr = np.asarray(data)
        if arr.dtype not in _SUPPORTED_DTYPES:
            raise ParameterError(
                f"dtype {arr.dtype} unsupported; use float32 or float64"
            )
        if arr.ndim == 0 or arr.size == 0:
            raise ParameterError("data must be a non-empty array")
        if not np.all(np.isfinite(arr)):
            raise CompressionError("data contains NaN/Inf")
        return arr

    def compress(self, data) -> bytes:
        """Compress ``data``; returns a serialized container."""
        arr = self._validate(data)
        x = arr.astype(np.float64, copy=False)
        vr = float(x.max() - x.min())
        meta = {
            "dtype": str(arr.dtype),
            "shape": list(arr.shape),
            "mode": self.mode,
            "bound": self.error_bound,
            "lossless": self.lossless_id,
            "radius": self.radius,
            "value_range": vr,
        }
        if self.target_psnr is not None:
            meta["target_psnr"] = float(self.target_psnr)
        if vr == 0.0:
            meta["constant"] = pack_exact_float(float(x.flat[0]))
            return observe.traced_pack(Container(CODEC_LEGACY, meta, []))

        eb_abs = self.error_bound * vr if self.mode == "rel" else self.error_bound
        delta = 2.0 * eb_abs
        anchor = float(x.flat[0])
        meta["eb_abs"] = pack_exact_float(eb_abs)
        meta["anchor"] = pack_exact_float(anchor)

        flat = x.ravel()
        n = flat.size
        kf = np.rint((flat - anchor) / delta)
        if np.abs(kf).max() > MAX_LATTICE_COORD:
            raise CompressionError("error bound too small for exact lattice")
        n_seg = -(-n // SEGMENT)
        k = np.zeros((n_seg, SEGMENT), dtype=np.int64)
        k.ravel()[:n] = kf.astype(np.int64)

        preds = _predictions(k)
        residuals = k[None, :, :] - preds
        # choose the fit with the smallest |residual| per point (2-bit
        # flag, as in SZ 1.1)
        flags = np.abs(residuals).argmin(axis=0).astype(np.uint8)
        q = np.take_along_axis(residuals, flags[None], axis=0)[0]

        meta["n_segments"] = int(n_seg)
        streams = [
            (
                "flags",
                lossless_compress(
                    np.packbits(
                        np.stack([(flags >> 1) & 1, flags & 1], axis=-1)
                        .ravel()
                        .astype(np.uint8)
                    ).tobytes(),
                    self.lossless,
                    self.lossless_level,
                ),
            )
        ]

        q = q.ravel()
        escape_symbol = self.radius + 1
        esc_mask = np.abs(q) > self.radius
        n_escapes = int(esc_mask.sum())
        if n_escapes:
            escaped = q[esc_mask].astype(np.int64)
            q = q.copy()
            q[esc_mask] = escape_symbol
            streams.append(
                (
                    "escapes",
                    lossless_compress(
                        escaped.tobytes(), self.lossless, self.lossless_level
                    ),
                )
            )
        meta["n_escapes"] = n_escapes
        meta["escape_symbol"] = escape_symbol

        code = CanonicalHuffman.from_data(q)
        payload, total_bits = code.encode(q)
        meta["total_bits"] = total_bits
        meta["n_codes"] = int(q.size)
        streams.insert(
            0,
            ("payload", lossless_compress(payload, self.lossless, self.lossless_level)),
        )
        streams.insert(
            0,
            (
                "table",
                lossless_compress(
                    code.table_bytes(), self.lossless, self.lossless_level
                ),
            ),
        )
        return observe.traced_pack(Container(CODEC_LEGACY, meta, streams))

    @staticmethod
    def decompress(blob: bytes) -> np.ndarray:
        """Decompress a container produced by :meth:`compress`."""
        container = Container.from_bytes(blob)
        if container.codec != CODEC_LEGACY:
            raise FormatError("container was not produced by the SZ 1.1 codec")
        meta = container.meta
        try:
            dtype = np.dtype(meta["dtype"])
            shape = tuple(int(s) for s in meta["shape"])
        except (KeyError, TypeError, ValueError) as exc:
            raise FormatError(f"bad container metadata: {exc}") from exc

        if "constant" in meta:
            return np.full(shape, unpack_exact_float(meta["constant"]), dtype=dtype)

        try:
            eb_abs = unpack_exact_float(meta["eb_abs"])
            anchor = unpack_exact_float(meta["anchor"])
            lossless = method_name(int(meta["lossless"]))
            total_bits = int(meta["total_bits"])
            n_codes = int(meta["n_codes"])
            n_seg = int(meta["n_segments"])
            n_escapes = int(meta["n_escapes"])
            escape_symbol = int(meta["escape_symbol"])
        except (KeyError, TypeError, ValueError) as exc:
            raise FormatError(f"bad container metadata: {exc}") from exc

        n = int(np.prod(shape))
        delta = 2.0 * eb_abs
        if n_codes != n_seg * SEGMENT:
            raise DecompressionError("segment geometry mismatch")

        flag_blob = lossless_decompress(container.stream("flags"), lossless)
        bits = np.unpackbits(np.frombuffer(flag_blob, dtype=np.uint8))
        if bits.size < 2 * n_codes:
            raise DecompressionError("flag stream too short")
        bits = bits[: 2 * n_codes].reshape(-1, 2)
        flags = ((bits[:, 0] << 1) | bits[:, 1]).reshape(n_seg, SEGMENT)
        if (flags > 2).any():
            raise DecompressionError("invalid predictor flag")

        table_blob = lossless_decompress(container.stream("table"), lossless)
        code = CanonicalHuffman.from_table_bytes(table_blob)
        payload = lossless_decompress(container.stream("payload"), lossless)
        q = code.decode(payload, n_codes, total_bits)
        if n_escapes:
            esc_blob = lossless_decompress(container.stream("escapes"), lossless)
            escaped = np.frombuffer(esc_blob, dtype=np.int64)
            if escaped.size != n_escapes:
                raise DecompressionError("escape stream length mismatch")
            mask = q == escape_symbol
            if int(mask.sum()) != n_escapes:
                raise DecompressionError("escape marker count mismatch")
            q = q.copy()
            q[mask] = escaped
        q = q.reshape(n_seg, SEGMENT)

        # Lane-parallel recurrence: SEGMENT Python iterations, all
        # segments advancing together.
        k = np.zeros((n_seg, SEGMENT), dtype=np.int64)
        zeros = np.zeros(n_seg, dtype=np.int64)
        for j in range(SEGMENT):
            p1 = k[:, j - 1] if j >= 1 else zeros
            p2 = k[:, j - 2] if j >= 2 else zeros
            p3 = k[:, j - 3] if j >= 3 else zeros
            preds = np.stack([p1, 2 * p1 - p2, 3 * p1 - 3 * p2 + p3])
            f = flags[:, j]
            pred = preds[f, np.arange(n_seg)]
            k[:, j] = pred + q[:, j]

        values = anchor + delta * k.ravel()[:n].astype(np.float64)
        return values.reshape(shape).astype(dtype)
