"""Predictors in the integer-lattice formulation.

A predictor here is a pair of inverse integer transforms on the lattice
coordinate array ``k``:

* ``difference(k) -> q``: quantization codes (small ints near zero for
  smooth data);
* ``reconstruct(q) -> k``: the exact inverse.

The n-dimensional **Lorenzo** predictor (SZ 1.4's default, paper
Section II-A) is the composition of first-difference operators along
every axis -- so its inverse is the composition of prefix sums
(``cumsum``) along every axis.  Both directions are whole-array NumPy
operations: compression and decompression contain no per-element Python
loop at all.

Float-domain helpers (:func:`lorenzo_predict`,
:func:`prediction_errors`) reproduce the quantities of the paper's
Figure 1 (distribution of prediction errors).
"""

from __future__ import annotations

from typing import Callable, Dict, Tuple

import numpy as np

from repro.errors import ParameterError

__all__ = [
    "PREDICTORS",
    "lorenzo_difference",
    "lorenzo_reconstruct",
    "lorenzo_predict",
    "prediction_errors",
    "predictor_by_name",
    "predictor_by_id",
]


def _check_int_array(k: np.ndarray) -> np.ndarray:
    k = np.asarray(k)
    if not np.issubdtype(k.dtype, np.integer):
        raise ParameterError("lattice coordinates must be an integer array")
    if k.ndim == 0:
        raise ParameterError("0-d arrays are not supported")
    return k.astype(np.int64, copy=False)


def lorenzo_difference(k: np.ndarray) -> np.ndarray:
    """n-D Lorenzo difference: ``q = k - pred(k)`` with zero padding.

    Equals ``diff`` with a prepended zero applied along every axis in
    turn; border points thereby degenerate to lower-dimensional Lorenzo
    and the first element carries ``k[0,...,0]`` itself.
    """
    q = _check_int_array(k)
    for axis in range(q.ndim):
        q = np.diff(q, axis=axis, prepend=0)
    return q


def lorenzo_reconstruct(q: np.ndarray) -> np.ndarray:
    """Exact inverse of :func:`lorenzo_difference`: cumsum along each axis."""
    k = _check_int_array(q)
    out = k.astype(np.int64, copy=True)
    for axis in range(out.ndim):
        np.cumsum(out, axis=axis, out=out)
    return out


def _flat_difference(k: np.ndarray) -> np.ndarray:
    """1-D Lorenzo over row-major order regardless of array rank."""
    k = _check_int_array(k)
    return np.diff(k.ravel(), prepend=0).reshape(k.shape)


def _flat_reconstruct(q: np.ndarray) -> np.ndarray:
    q = _check_int_array(q)
    return np.cumsum(q.ravel()).reshape(q.shape)


def _identity_difference(k: np.ndarray) -> np.ndarray:
    """No prediction: codes are the raw lattice coordinates."""
    return _check_int_array(k).copy()


def _identity_reconstruct(q: np.ndarray) -> np.ndarray:
    return _check_int_array(q).copy()


def _lorenzo2_difference(k: np.ndarray) -> np.ndarray:
    """Second-order Lorenzo: the squared difference operator per axis.

    In 1-D the prediction is the linear extrapolation
    ``2*x[i-1] - x[i-2]`` (coefficients sum to 1, so the lattice
    argument of :mod:`repro.sz.quantizer` applies unchanged); SZ 1.4
    offers this as its higher-order Lorenzo variant.  Exact on fields
    with linear trends per axis; noisier on rough data (it amplifies
    noise 3x per axis), which is why it is an option, not the default.
    """
    q = _check_int_array(k)
    for axis in range(q.ndim):
        q = np.diff(q, axis=axis, prepend=0)
        q = np.diff(q, axis=axis, prepend=0)
    return q


def _lorenzo2_reconstruct(q: np.ndarray) -> np.ndarray:
    k = _check_int_array(q).astype(np.int64, copy=True)
    for axis in range(k.ndim):
        np.cumsum(k, axis=axis, out=k)
        np.cumsum(k, axis=axis, out=k)
    return k


#: name -> (numeric id, difference fn, reconstruct fn).  The numeric id
#: is what the container header stores.
PREDICTORS: Dict[str, Tuple[int, Callable, Callable]] = {
    "lorenzo": (0, lorenzo_difference, lorenzo_reconstruct),
    "lorenzo1d": (1, _flat_difference, _flat_reconstruct),
    "none": (2, _identity_difference, _identity_reconstruct),
    "lorenzo2": (3, _lorenzo2_difference, _lorenzo2_reconstruct),
}

_BY_ID = {pid: (name, diff, rec) for name, (pid, diff, rec) in PREDICTORS.items()}


def predictor_by_name(name: str) -> Tuple[int, Callable, Callable]:
    """Look up ``(id, difference, reconstruct)`` by predictor name."""
    if name not in PREDICTORS:
        raise ParameterError(
            f"unknown predictor {name!r}; choose from {sorted(PREDICTORS)}"
        )
    return PREDICTORS[name]


def predictor_by_id(pid: int) -> Tuple[str, Callable, Callable]:
    """Look up ``(name, difference, reconstruct)`` by numeric id."""
    if pid not in _BY_ID:
        raise ParameterError(f"unknown predictor id {pid}")
    return _BY_ID[pid]


# -- float-domain helpers (analysis / Figure 1) ------------------------


def lorenzo_predict(data: np.ndarray) -> np.ndarray:
    """Lorenzo prediction of every element from its *original* preceding
    neighbours (zero outside the array).

    This is the analysis-side quantity: the real compressor predicts
    from reconstructed values, but for estimating the prediction-error
    distribution (Figure 1) the original-data prediction is the standard
    eb-independent proxy.
    """
    x = np.asarray(data, dtype=np.float64)
    if x.ndim == 0:
        raise ParameterError("0-d arrays are not supported")
    d = x.copy()
    for axis in range(x.ndim):
        d = np.diff(d, axis=axis, prepend=0.0)
    return x - d


def prediction_errors(data: np.ndarray) -> np.ndarray:
    """Prediction errors ``X - pred(X)`` of the Lorenzo predictor.

    The histogram of this array is the blue area of the paper's
    Figure 1.
    """
    x = np.asarray(data, dtype=np.float64)
    if x.ndim == 0:
        raise ParameterError("0-d arrays are not supported")
    d = x.copy()
    for axis in range(x.ndim):
        d = np.diff(d, axis=axis, prepend=0.0)
    return d
