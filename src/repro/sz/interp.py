"""Interpolation-based prediction (the SZ 3 generation).

After the regression-augmented SZ 2, the third SZ generation replaced
neighbour prediction with **hierarchical interpolation**: reconstruct a
coarse grid first, then repeatedly halve the stride, predicting each
new point by linear (or cubic) interpolation of already-reconstructed
points along one axis at a time.  Quantization is the same uniform
midpoint scheme, so the error bound holds pointwise and Theorem 3's
fixed-PSNR property carries over unchanged.

The structure is inherently vectorizable without any lattice trick:
every point of a (level, axis) class is predicted from *previous-level*
reconstructions, so each class is one whole-array NumPy step and the
Python loop runs ``O(d * log(max_extent))`` times.

The compressor and decompressor share `_walk`, the deterministic
traversal of (level, axis) classes; the encoder consumes original
values and emits codes, the decoder consumes codes -- both apply
identical predictions to identical reconstructed state, which is the
Theorem 1 discipline that keeps the bound exact.
"""

from __future__ import annotations

from typing import Callable, List, Tuple

import numpy as np

import repro.observe as observe

from repro.encoding.huffman import CanonicalHuffman
from repro.encoding.lossless import (
    lossless_compress,
    lossless_decompress,
    method_id,
    method_name,
)
from repro.errors import (
    CompressionError,
    DecompressionError,
    FormatError,
    ParameterError,
)
from repro.io.container import (
    CODEC_INTERP,
    Container,
    pack_exact_float,
    unpack_exact_float,
)
from repro.sz.compressor import DEFAULT_RADIUS, _SUPPORTED_DTYPES

__all__ = ["InterpolationCompressor"]

_MAX_CODE = 2**52


def _axis_take(recon: np.ndarray, axis: int, coords: np.ndarray, grids) -> np.ndarray:
    """Gather a class of points: ``coords`` along ``axis``, fixed grids
    elsewhere."""
    index = list(grids)
    index[axis] = coords
    return recon[np.ix_(*index)]


def _predict(
    recon: np.ndarray,
    axis: int,
    targets: np.ndarray,
    s: int,
    grids,
    cubic: bool,
) -> np.ndarray:
    """Interpolate the target class from reconstructed neighbours at
    stride ``s`` along ``axis`` (linear, or 4-point cubic where the
    full stencil exists)."""
    extent = recon.shape[axis]
    last = extent - 1
    left = targets - s
    right = np.minimum(targets + s, last - (last % (2 * s)))
    has_right = targets + s < extent
    v_left = _axis_take(recon, axis, left, grids)
    v_right = _axis_take(recon, axis, np.where(has_right, targets + s, left), grids)
    shape = [1] * recon.ndim
    shape[axis] = targets.size
    mask = has_right.reshape(shape)
    pred = np.where(mask, 0.5 * (v_left + v_right), v_left)

    if cubic:
        far_ok = (targets - 3 * s >= 0) & (targets + 3 * s < extent)
        if far_ok.any():
            fl = np.where(far_ok, targets - 3 * s, left)
            fr = np.where(far_ok, targets + 3 * s, left)
            v_fl = _axis_take(recon, axis, fl, grids)
            v_fr = _axis_take(recon, axis, fr, grids)
            cubic_pred = (9.0 * (v_left + v_right) - (v_fl + v_fr)) / 16.0
            pred = np.where(far_ok.reshape(shape), cubic_pred, pred)
    return pred


def _walk(shape: Tuple[int, ...], visit: Callable) -> None:
    """Drive the deterministic coarse-to-fine traversal.

    ``visit(axis, targets, s, grids)`` is called once per (level, axis)
    class; ``grids`` are the fixed index vectors for the other axes.
    """
    max_extent = max(shape)
    top = 1
    while top * 2 < max_extent:
        top *= 2
    s = top
    while s >= 1:
        for axis in range(len(shape)):
            if shape[axis] <= s:
                continue
            targets = np.arange(s, shape[axis], 2 * s)
            if targets.size == 0:
                continue
            grids = []
            for b, extent in enumerate(shape):
                if b == axis:
                    grids.append(None)  # replaced by targets/neighbours
                elif b < axis:
                    grids.append(np.arange(0, extent, s))
                else:
                    grids.append(np.arange(0, extent, 2 * s))
            visit(axis, targets, s, grids)
        s //= 2


def _coarse_grids(shape: Tuple[int, ...]) -> List[np.ndarray]:
    max_extent = max(shape)
    top = 1
    while top * 2 < max_extent:
        top *= 2
    return [np.arange(0, extent, 2 * top) for extent in shape]


class InterpolationCompressor:
    """Error-bounded compressor with hierarchical interpolation
    prediction (SZ3-style).

    Parameters
    ----------
    error_bound / mode:
        As :class:`repro.sz.SZCompressor` (``"abs"`` or ``"rel"``).
    interpolator:
        ``"cubic"`` (default, SZ3's choice -- 4-point splines where the
        stencil fits, linear at borders) or ``"linear"``.
    """

    INTERPOLATORS = {"linear": 0, "cubic": 1}

    def __init__(
        self,
        error_bound: float = 1e-4,
        mode: str = "abs",
        interpolator: str = "cubic",
        lossless: str = "zlib",
        lossless_level: int = 6,
        quantization_radius: int = DEFAULT_RADIUS,
    ) -> None:
        if mode not in ("abs", "rel"):
            raise ParameterError(f"mode must be 'abs' or 'rel', got {mode!r}")
        if not np.isfinite(error_bound) or error_bound <= 0:
            raise ParameterError(f"error bound must be positive, got {error_bound}")
        if interpolator not in self.INTERPOLATORS:
            raise ParameterError(
                f"unknown interpolator {interpolator!r}; "
                f"choose from {sorted(self.INTERPOLATORS)}"
            )
        if quantization_radius < 1:
            raise ParameterError("quantization radius must be >= 1")
        self.error_bound = float(error_bound)
        self.mode = mode
        self.interpolator = interpolator
        self.lossless = lossless
        self.lossless_id = method_id(lossless)
        self.lossless_level = int(lossless_level)
        self.radius = int(quantization_radius)
        self.target_psnr = None

    @staticmethod
    def _validate(data) -> np.ndarray:
        arr = np.asarray(data)
        if arr.dtype not in _SUPPORTED_DTYPES:
            raise ParameterError(
                f"dtype {arr.dtype} unsupported; use float32 or float64"
            )
        if arr.ndim == 0 or arr.size == 0:
            raise ParameterError("data must be a non-empty array")
        if not np.all(np.isfinite(arr)):
            raise CompressionError("data contains NaN/Inf")
        return arr

    def compress(self, data) -> bytes:
        """Compress ``data``; returns a serialized container."""
        arr = self._validate(data)
        x = arr.astype(np.float64, copy=False)
        vr = float(x.max() - x.min())
        meta = {
            "dtype": str(arr.dtype),
            "shape": list(arr.shape),
            "mode": self.mode,
            "bound": self.error_bound,
            "interpolator": self.INTERPOLATORS[self.interpolator],
            "lossless": self.lossless_id,
            "radius": self.radius,
            "value_range": vr,
        }
        if self.target_psnr is not None:
            meta["target_psnr"] = float(self.target_psnr)
        if vr == 0.0:
            meta["constant"] = pack_exact_float(float(x.flat[0]))
            return observe.traced_pack(Container(CODEC_INTERP, meta, []))

        eb_abs = self.error_bound * vr if self.mode == "rel" else self.error_bound
        delta = 2.0 * eb_abs
        anchor = float(x.flat[0])
        meta["eb_abs"] = pack_exact_float(eb_abs)
        meta["anchor"] = pack_exact_float(anchor)
        cubic = self.interpolator == "cubic"

        recon = np.zeros_like(x)
        chunks: List[np.ndarray] = []

        # Coarse seed: quantize against the anchor.
        cg = _coarse_grids(x.shape)
        seed = np.rint((x[np.ix_(*cg)] - anchor) / delta)
        if np.abs(seed).max() > _MAX_CODE:
            raise CompressionError("error bound too small for exact codes")
        chunks.append(seed.astype(np.int64).ravel())
        recon[np.ix_(*cg)] = anchor + delta * seed

        def visit(axis, targets, s, grids):
            full = [g if g is not None else targets for g in grids]
            pred = _predict(recon, axis, targets, s, grids, cubic)
            q = np.rint((x[np.ix_(*full)] - pred) / delta)
            if np.abs(q).max(initial=0) > _MAX_CODE:
                raise CompressionError("error bound too small for exact codes")
            chunks.append(q.astype(np.int64).ravel())
            recon[np.ix_(*full)] = pred + delta * q

        _walk(x.shape, visit)
        q = np.concatenate(chunks)
        if q.size != x.size:
            raise CompressionError("traversal did not cover the array")

        streams = []
        escape_symbol = self.radius + 1
        esc_mask = np.abs(q) > self.radius
        n_escapes = int(esc_mask.sum())
        if n_escapes:
            escaped = q[esc_mask].astype(np.int64)
            q = q.copy()
            q[esc_mask] = escape_symbol
            streams.append(
                (
                    "escapes",
                    lossless_compress(
                        escaped.tobytes(), self.lossless, self.lossless_level
                    ),
                )
            )
        meta["n_escapes"] = n_escapes
        meta["escape_symbol"] = escape_symbol

        code = CanonicalHuffman.from_data(q)
        payload, total_bits = code.encode(q)
        meta["total_bits"] = total_bits
        meta["n_codes"] = int(q.size)
        streams.insert(
            0,
            ("payload", lossless_compress(payload, self.lossless, self.lossless_level)),
        )
        streams.insert(
            0,
            (
                "table",
                lossless_compress(
                    code.table_bytes(), self.lossless, self.lossless_level
                ),
            ),
        )
        return observe.traced_pack(Container(CODEC_INTERP, meta, streams))

    @staticmethod
    def decompress(blob: bytes) -> np.ndarray:
        """Decompress a container produced by :meth:`compress`."""
        container = Container.from_bytes(blob)
        if container.codec != CODEC_INTERP:
            raise FormatError(
                "container was not produced by the interpolation codec"
            )
        meta = container.meta
        try:
            dtype = np.dtype(meta["dtype"])
            shape = tuple(int(s) for s in meta["shape"])
        except (KeyError, TypeError, ValueError) as exc:
            raise FormatError(f"bad container metadata: {exc}") from exc

        if "constant" in meta:
            return np.full(shape, unpack_exact_float(meta["constant"]), dtype=dtype)

        try:
            eb_abs = unpack_exact_float(meta["eb_abs"])
            anchor = unpack_exact_float(meta["anchor"])
            cubic = int(meta["interpolator"]) == 1
            lossless = method_name(int(meta["lossless"]))
            total_bits = int(meta["total_bits"])
            n_codes = int(meta["n_codes"])
            n_escapes = int(meta["n_escapes"])
            escape_symbol = int(meta["escape_symbol"])
        except (KeyError, TypeError, ValueError) as exc:
            raise FormatError(f"bad container metadata: {exc}") from exc

        n = int(np.prod(shape))
        if n_codes != n:
            raise DecompressionError("code count does not match the array")
        delta = 2.0 * eb_abs

        table_blob = lossless_decompress(container.stream("table"), lossless)
        code = CanonicalHuffman.from_table_bytes(table_blob)
        payload = lossless_decompress(container.stream("payload"), lossless)
        q = code.decode(payload, n_codes, total_bits)
        if n_escapes:
            esc_blob = lossless_decompress(container.stream("escapes"), lossless)
            escaped = np.frombuffer(esc_blob, dtype=np.int64)
            if escaped.size != n_escapes:
                raise DecompressionError("escape stream length mismatch")
            mask = q == escape_symbol
            if int(mask.sum()) != n_escapes:
                raise DecompressionError("escape marker count mismatch")
            q = q.copy()
            q[mask] = escaped

        recon = np.zeros(shape, dtype=np.float64)
        pos = 0

        cg = _coarse_grids(shape)
        n_seed = int(np.prod([g.size for g in cg]))
        seed = q[:n_seed].reshape([g.size for g in cg])
        recon[np.ix_(*cg)] = anchor + delta * seed
        pos = n_seed

        def visit(axis, targets, s, grids):
            nonlocal pos
            full = [g if g is not None else targets for g in grids]
            pred = _predict(recon, axis, targets, s, grids, cubic)
            count = int(np.prod([len(g) for g in full]))
            block = q[pos : pos + count].reshape([len(g) for g in full])
            pos += count
            recon[np.ix_(*full)] = pred + delta * block

        _walk(shape, visit)
        if pos != n:
            raise DecompressionError("traversal did not consume every code")
        return recon.astype(dtype)
