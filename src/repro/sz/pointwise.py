"""Pointwise-relative error bound support (SZ's third traditional mode).

Section II-B of the paper catalogues three SZ error controls: absolute,
value-range relative, and **pointwise relative** (each reconstructed
value within ``eb * |x_i|`` of ``x_i``, like ISABELA guarantees).  The
standard implementation is logarithmic preprocessing: compress
``ln|x|`` with the absolute bound ``ln(1 + eb)``.  Then

``exp(y~ - y) in [1/(1+eb), 1+eb]``  =>  ``|x~ - x| <= eb * |x|``,

using the sharp side ``1/(1+eb) >= 1 - eb`` for the lower bound.

Zeros have no logarithm and are reproduced exactly; signs are carried
in a ternary side stream (-1/0/+1 per point, zlib-compressed — it is
nearly constant for physical fields, so it costs almost nothing).
"""

from __future__ import annotations

from typing import Tuple

import numpy as np

from repro.errors import DecompressionError, ParameterError

__all__ = [
    "pointwise_bound_to_log_bound",
    "forward_log_transform",
    "inverse_log_transform",
]


def pointwise_bound_to_log_bound(eb_pointwise: float) -> float:
    """Absolute bound on ``ln|x|`` that guarantees a pointwise relative
    bound of ``eb_pointwise`` on ``x``."""
    if not np.isfinite(eb_pointwise) or not (0.0 < eb_pointwise < 1.0):
        raise ParameterError(
            f"pointwise relative bound must be in (0, 1), got {eb_pointwise}"
        )
    return float(np.log1p(eb_pointwise))


def forward_log_transform(data: np.ndarray) -> Tuple[np.ndarray, np.ndarray]:
    """Split ``data`` into ``(signs, log_magnitudes)``.

    ``signs`` is int8 in {-1, 0, +1}; ``log_magnitudes`` is ``ln|x|``
    with zeros replaced by 0.0 (their sign entry marks them; the value
    is never used on reconstruction).
    """
    x = np.asarray(data, dtype=np.float64)
    signs = np.sign(x).astype(np.int8)
    mag = np.abs(x)
    # Zeros: park them at 1.0 so log() stays finite; masked on inverse.
    safe = np.where(signs == 0, 1.0, mag)
    return signs, np.log(safe)


def inverse_log_transform(signs: np.ndarray, log_mag: np.ndarray) -> np.ndarray:
    """Rebuild values from ``(signs, ln|x|)``; sign 0 means exactly 0."""
    signs = np.asarray(signs)
    log_mag = np.asarray(log_mag, dtype=np.float64)
    if signs.shape != log_mag.shape:
        raise DecompressionError("sign/magnitude stream shape mismatch")
    return signs.astype(np.float64) * np.exp(log_mag)
