"""Streaming compression of snapshot *sequences* (time dimension).

The paper's introduction describes the practice this replaces: HACC
keeps only every k-th snapshot because storage cannot hold them all --
"degrading the consecutiveness of simulation in time dimension and
losing important information unexpectedly".  With error-bounded
compression cheap enough per step, one can keep **every** snapshot.

This module adds temporal prediction to the lattice codec: time is
treated as one more Lorenzo axis.  In lattice terms the step-t codes
are

    q_t = Delta_spatial(k_t) - Delta_spatial(k_{t-1}),

the finite difference *in time* of the spatial difference codes --
exactly what (d+1)-dimensional Lorenzo over the stacked array would
produce, but computed streamingly with O(1) snapshots of state.  For
slowly evolving fields ``q_t`` is concentrated near zero and the rate
drops well below per-snapshot compression.

Guarantees: every snapshot individually satisfies the absolute error
bound (all steps share one lattice, so there is **no drift across
time**), and any *keyframe* (every ``keyframe_interval``-th step) can
start decompression mid-stream.
"""

from __future__ import annotations

from typing import Iterable, Iterator, List, Optional

import numpy as np

import repro.observe as observe

from repro.encoding.huffman import CanonicalHuffman
from repro.encoding.lossless import (
    lossless_compress,
    lossless_decompress,
    method_id,
    method_name,
)
from repro.errors import (
    DecompressionError,
    FormatError,
    ParameterError,
)
from repro.io.container import (
    CODEC_SZ,
    Container,
    pack_exact_float,
    unpack_exact_float,
)
from repro.sz.compressor import DEFAULT_RADIUS, SZCompressor
from repro.sz.predictors import lorenzo_difference, lorenzo_reconstruct
from repro.sz.quantizer import LatticeQuantizer

__all__ = [
    "TemporalCompressor",
    "TemporalDecompressor",
    "compress_series",
    "decompress_series",
]


class TemporalCompressor:
    """Stateful compressor for a sequence of same-shaped snapshots.

    Parameters
    ----------
    error_bound / mode:
        As :class:`repro.sz.SZCompressor` (``"abs"`` or ``"rel"``).
        A relative bound resolves against the *first* snapshot's value
        range (the lattice must stay fixed across the stream).
    target_psnr:
        Alternative to ``error_bound``: fixed-PSNR mode via Eq. 8,
        again anchored to the first snapshot's range.
    keyframe_interval:
        Every k-th frame is coded without temporal prediction, so
        decompression can start there.  1 disables temporal prediction
        entirely (every frame independent).
    temporal_order:
        1 (default): predict frame t from frame t-1 (persistence);
        2: linear extrapolation from frames t-1 and t-2.  Higher order
        removes steady trends but *amplifies lattice-quantization
        noise* (a second difference triples the code-noise variance a
        first difference doubles), so in practice order 1 wins unless
        the inter-frame change is large against the error bound and
        strongly trending -- the same trade-off that makes order-1
        Lorenzo SZ's spatial default.  Exposed for experimentation;
        ablation X8 quantifies it.
    """

    def __init__(
        self,
        error_bound: Optional[float] = None,
        mode: str = "abs",
        target_psnr: Optional[float] = None,
        keyframe_interval: int = 16,
        lossless: str = "zlib",
        lossless_level: int = 6,
        quantization_radius: int = DEFAULT_RADIUS,
        temporal_order: int = 1,
    ) -> None:
        if (error_bound is None) == (target_psnr is None):
            raise ParameterError("give exactly one of error_bound / target_psnr")
        if error_bound is not None and (
            not np.isfinite(error_bound) or error_bound <= 0
        ):
            raise ParameterError("error bound must be positive")
        if mode not in ("abs", "rel"):
            raise ParameterError("temporal mode must be 'abs' or 'rel'")
        if keyframe_interval < 1:
            raise ParameterError("keyframe interval must be >= 1")
        if temporal_order not in (1, 2):
            raise ParameterError("temporal_order must be 1 or 2")
        self.error_bound = error_bound
        self.mode = mode
        self.target_psnr = target_psnr
        self.keyframe_interval = int(keyframe_interval)
        self.temporal_order = int(temporal_order)
        self.lossless = lossless
        self.lossless_id = method_id(lossless)
        self.lossless_level = int(lossless_level)
        self.radius = int(quantization_radius)
        self._quantizer: Optional[LatticeQuantizer] = None
        self._prev_spatial: Optional[np.ndarray] = None
        self._prev2_spatial: Optional[np.ndarray] = None
        self._chain_pos = 0  # frames since the last keyframe
        self._shape = None
        self._dtype = None
        self._step = 0

    def _initialise(self, first: np.ndarray) -> None:
        x = first.astype(np.float64, copy=False)
        vr = float(x.max() - x.min())
        if self.target_psnr is not None:
            from repro.core.fixed_psnr import psnr_to_absolute_bound

            if vr == 0.0:
                raise ParameterError(
                    "fixed-PSNR temporal mode needs a non-constant first snapshot"
                )
            eb_abs = psnr_to_absolute_bound(self.target_psnr, vr)
        elif self.mode == "rel":
            if vr == 0.0:
                raise ParameterError(
                    "relative temporal mode needs a non-constant first snapshot"
                )
            eb_abs = self.error_bound * vr
        else:
            eb_abs = self.error_bound
        self._quantizer = LatticeQuantizer(eb_abs, float(x.flat[0]))
        self._shape = first.shape
        self._dtype = first.dtype

    def push(self, snapshot) -> bytes:
        """Compress the next snapshot; returns a self-describing blob."""
        arr = SZCompressor._validate(snapshot)
        keyframe = (
            self._quantizer is None or self._step % self.keyframe_interval == 0
        )
        if self._quantizer is None:
            self._initialise(arr)
        elif arr.shape != self._shape or arr.dtype != self._dtype:
            raise ParameterError("all snapshots must share shape and dtype")
        elif keyframe and (self.mode == "rel" or self.target_psnr is not None):
            # Prediction chains restart at keyframes, so the lattice may
            # be re-derived there: range-relative and fixed-PSNR bounds
            # then track the stream's drifting value range instead of
            # staying pinned to the first snapshot.
            self._initialise(arr)

        x = arr.astype(np.float64, copy=False)
        k = self._quantizer.quantize(x)
        spatial = lorenzo_difference(k)
        # Pick the prediction order for THIS frame: order 2 needs two
        # prior frames on the *current* lattice (never across a
        # keyframe, where the lattice may have been re-derived).
        if keyframe:
            used_order = 0
        elif self.temporal_order == 2 and self._chain_pos >= 2:
            used_order = 2
        else:
            used_order = 1
        if used_order == 0:
            q = spatial
            self._chain_pos = 1
        elif used_order == 1:
            q = spatial - self._prev_spatial
            self._chain_pos += 1
        else:
            # linear extrapolation: pred = 2*prev - prev2
            q = spatial - 2 * self._prev_spatial + self._prev2_spatial
            self._chain_pos += 1
        self._prev2_spatial = self._prev_spatial
        self._prev_spatial = spatial
        meta = {
            "dtype": str(arr.dtype),
            "shape": list(arr.shape),
            "temporal": True,
            "step": self._step,
            "keyframe": bool(keyframe),
            "order": used_order,
            "lossless": self.lossless_id,
            "radius": self.radius,
            "eb_abs": pack_exact_float(self._quantizer.error_bound),
            "anchor": pack_exact_float(self._quantizer.anchor),
        }
        if self.target_psnr is not None:
            meta["target_psnr"] = float(self.target_psnr)
        self._step += 1

        streams = []
        escape_symbol = self.radius + 1
        esc_mask = np.abs(q) > self.radius
        n_escapes = int(esc_mask.sum())
        if n_escapes:
            escaped = q[esc_mask].astype(np.int64)
            q = q.copy()
            q[esc_mask] = escape_symbol
            streams.append(
                (
                    "escapes",
                    lossless_compress(
                        escaped.tobytes(), self.lossless, self.lossless_level
                    ),
                )
            )
        meta["n_escapes"] = n_escapes
        meta["escape_symbol"] = escape_symbol

        code = CanonicalHuffman.from_data(q)
        payload, total_bits = code.encode(q)
        meta["total_bits"] = total_bits
        streams.insert(
            0,
            ("payload", lossless_compress(payload, self.lossless, self.lossless_level)),
        )
        streams.insert(
            0,
            (
                "table",
                lossless_compress(
                    code.table_bytes(), self.lossless, self.lossless_level
                ),
            ),
        )
        return observe.traced_pack(Container(CODEC_SZ, meta, streams))


class TemporalDecompressor:
    """Stateful inverse of :class:`TemporalCompressor`.

    Feed blobs in stream order (or start at any keyframe).
    """

    def __init__(self) -> None:
        self._prev_spatial: Optional[np.ndarray] = None
        self._prev2_spatial: Optional[np.ndarray] = None
        self._step: Optional[int] = None

    def push(self, blob: bytes) -> np.ndarray:
        """Decompress the next snapshot in the stream."""
        container = Container.from_bytes(blob)
        if container.codec != CODEC_SZ or not container.meta.get("temporal"):
            raise FormatError("not a temporal-stream container")
        meta = container.meta
        try:
            dtype = np.dtype(meta["dtype"])
            shape = tuple(int(s) for s in meta["shape"])
            step = int(meta["step"])
            keyframe = bool(meta["keyframe"])
            order = int(meta.get("order", 0 if meta["keyframe"] else 1))
            lossless = method_name(int(meta["lossless"]))
            eb_abs = unpack_exact_float(meta["eb_abs"])
            anchor = unpack_exact_float(meta["anchor"])
            total_bits = int(meta["total_bits"])
            n_escapes = int(meta["n_escapes"])
            escape_symbol = int(meta["escape_symbol"])
        except (KeyError, TypeError, ValueError) as exc:
            raise FormatError(f"bad temporal metadata: {exc}") from exc
        if order not in (0, 1, 2):
            raise FormatError(f"unknown temporal prediction order {order}")

        if not keyframe:
            if self._prev_spatial is None or (
                order == 2 and self._prev2_spatial is None
            ):
                raise DecompressionError(
                    "stream must start at a keyframe (step "
                    f"{step} is predicted)"
                )
            if self._step is not None and step != self._step + 1:
                raise DecompressionError(
                    f"out-of-order temporal frame: got step {step} "
                    f"after {self._step}"
                )

        n = int(np.prod(shape))
        table_blob = lossless_decompress(container.stream("table"), lossless)
        code = CanonicalHuffman.from_table_bytes(table_blob)
        payload = lossless_decompress(container.stream("payload"), lossless)
        q = code.decode(payload, n, total_bits).reshape(shape)
        if n_escapes:
            esc_blob = lossless_decompress(container.stream("escapes"), lossless)
            escaped = np.frombuffer(esc_blob, dtype=np.int64)
            if escaped.size != n_escapes:
                raise DecompressionError("escape stream length mismatch")
            mask = q == escape_symbol
            if int(mask.sum()) != n_escapes:
                raise DecompressionError("escape marker count mismatch")
            q = q.copy()
            q[mask] = escaped

        if order == 0:
            spatial = q
        elif order == 1:
            spatial = q + self._prev_spatial
        else:
            spatial = q + 2 * self._prev_spatial - self._prev2_spatial
        self._prev2_spatial = self._prev_spatial
        self._prev_spatial = spatial
        self._step = step
        k = lorenzo_reconstruct(spatial)
        quantizer = LatticeQuantizer(eb_abs, anchor)
        return quantizer.dequantize(k).astype(dtype)


def compress_series(snapshots: Iterable[np.ndarray], **options) -> List[bytes]:
    """Compress an iterable of snapshots; returns one blob per step."""
    comp = TemporalCompressor(**options)
    return [comp.push(s) for s in snapshots]


def decompress_series(blobs: Iterable[bytes]) -> Iterator[np.ndarray]:
    """Decompress a stream of temporal blobs in order."""
    dec = TemporalDecompressor()
    for blob in blobs:
        yield dec.push(blob)
