"""Literal sequential SZ recurrence -- the correctness oracle.

This module implements the prediction/quantization loop exactly the way
SZ describes it (and the paper's Section III analyses it): point by
point in row-major order, predicting from already-**reconstructed**
neighbour values, quantizing the prediction error to a uniform bin, and
reconstructing with the bin midpoint before moving on.

It is deliberately slow (pure Python loops) and exists to validate the
vectorized lattice formulation in :mod:`repro.sz.quantizer` /
:mod:`repro.sz.predictors`: the two must agree bit-for-bit on both the
quantization codes and the reconstruction (see
``tests/sz/test_reference_equivalence.py``).

Border handling matches SZ: a missing neighbour contributes the lattice
anchor (the exactly-stored first value), which makes border points
degenerate to lower-dimensional Lorenzo prediction and the very first
point predict the anchor itself.
"""

from __future__ import annotations

from itertools import product
from typing import Tuple

import numpy as np

from repro.errors import ParameterError

__all__ = ["sequential_lorenzo_quantize", "lorenzo_offsets"]


def lorenzo_offsets(ndim: int):
    """Lorenzo stencil: offsets ``s in {0,1}^d, s != 0`` with
    inclusion-exclusion coefficients ``(-1)**(|s|+1)``.

    For 2-D this yields ``+x[i-1,j] +x[i,j-1] -x[i-1,j-1]``; the
    coefficients always sum to 1.
    """
    if ndim < 1:
        raise ParameterError("ndim must be >= 1")
    stencil = []
    for s in product((0, 1), repeat=ndim):
        if not any(s):
            continue
        coeff = -1 if (sum(s) % 2 == 0) else 1
        stencil.append((tuple(-o for o in s), coeff))
    return stencil


def sequential_lorenzo_quantize(
    data: np.ndarray, error_bound: float
) -> Tuple[np.ndarray, np.ndarray]:
    """Run the literal SZ recurrence.

    Returns ``(q, recon)``: the integer quantization codes and the
    reconstructed float64 array.  The prediction for each point is the
    Lorenzo combination of *reconstructed* neighbours, with the anchor
    value substituted for out-of-range neighbours.
    """
    x = np.asarray(data, dtype=np.float64)
    if x.ndim == 0 or x.size == 0:
        raise ParameterError("data must be a non-empty array")
    if not np.isfinite(error_bound) or error_bound <= 0:
        raise ParameterError("error bound must be positive")
    delta = 2.0 * float(error_bound)
    anchor = float(x[(0,) * x.ndim])
    stencil = lorenzo_offsets(x.ndim)

    recon = np.empty_like(x)
    q = np.empty(x.shape, dtype=np.int64)
    for idx in np.ndindex(*x.shape):
        pred = 0.0
        coeff_sum = 0
        for offset, coeff in stencil:
            nidx = tuple(i + o for i, o in zip(idx, offset))
            if any(j < 0 for j in nidx):
                continue
            pred += coeff * recon[nidx]
            coeff_sum += coeff
        # Missing neighbours contribute the anchor (stored exactly).
        pred += (1 - coeff_sum) * anchor
        code = int(np.rint((x[idx] - pred) / delta))
        q[idx] = code
        recon[idx] = pred + delta * code
    return q, recon
