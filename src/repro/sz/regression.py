"""Regression-based prediction (the SZ 2.x predictor family).

The paper builds on SZ 1.4, whose Lorenzo predictor chains through
reconstructed neighbours.  SZ 2 introduced an alternative that this
module implements: fit a linear model ``x ~ b0 + b1*i + b2*j (+ b3*k)``
over each ``m^d`` block, store the (float32) coefficients, and quantize
the residuals with the same error-controlled uniform quantizer.

Two properties make it attractive here:

* prediction depends only on the *stored coefficients and block
  coordinates* -- there is no sequential dependency whatsoever, so both
  directions are embarrassingly data-parallel;
* the second stage is still uniform midpoint quantization, so
  Theorem 3 applies verbatim and the fixed-PSNR derivation (Eq. 8)
  drives this codec unchanged.

The least-squares fit is closed-form: with ``A`` the fixed
``(m^d, d+1)`` design matrix of block coordinates, the coefficient
matrix for *all* blocks at once is one matmul with the precomputed
pseudo-inverse.
"""

from __future__ import annotations

from functools import lru_cache
from typing import Tuple

import numpy as np

import repro.observe as observe

from repro.encoding.huffman import CanonicalHuffman
from repro.encoding.lossless import (
    lossless_compress,
    lossless_decompress,
    method_id,
    method_name,
)
from repro.errors import (
    CompressionError,
    DecompressionError,
    FormatError,
    ParameterError,
)
from repro.io.container import (
    CODEC_REGRESSION,
    Container,
    pack_exact_float,
    unpack_exact_float,
)
from repro.sz.compressor import DEFAULT_RADIUS, _SUPPORTED_DTYPES
from repro.transform.blocking import merge_blocks, split_blocks

__all__ = ["RegressionCompressor", "design_matrix", "fit_block_planes"]

#: Quantized residual codes must stay exact in float64 (cf. quantizer).
_MAX_CODE = 2**52


@lru_cache(maxsize=32)
def design_matrix(m: int, ndim: int) -> Tuple[np.ndarray, np.ndarray]:
    """Return ``(A, pinv)`` for ``m**ndim`` points.

    ``A`` has a row per block cell and columns ``[1, i0, ..., i_{d-1}]``
    (coordinates centred at the block middle for numerical symmetry);
    ``pinv = (A^T A)^-1 A^T``.
    """
    if m < 2 or ndim < 1:
        raise ParameterError("regression blocks need m >= 2, ndim >= 1")
    coords = np.indices((m,) * ndim).reshape(ndim, -1).T.astype(np.float64)
    coords -= (m - 1) / 2.0
    A = np.concatenate([np.ones((coords.shape[0], 1)), coords], axis=1)
    pinv = np.linalg.pinv(A)
    return A, pinv


def fit_block_planes(blocks: np.ndarray, m: int) -> np.ndarray:
    """Least-squares hyperplane coefficients for every block at once.

    ``blocks`` is ``(n_blocks, m, ..., m)``; returns float32
    ``(n_blocks, d+1)`` coefficients (float32 because that is what the
    container stores -- predictions must be computed from the *stored*
    precision in both directions).
    """
    b = np.asarray(blocks, dtype=np.float64)
    d = b.ndim - 1
    _, pinv = design_matrix(m, d)
    flat = b.reshape(b.shape[0], -1)
    return (flat @ pinv.T).astype(np.float32)


def _predict(coeffs: np.ndarray, m: int, ndim: int) -> np.ndarray:
    """Predictions for every block from (stored) float32 coefficients."""
    A, _ = design_matrix(m, ndim)
    flat = coeffs.astype(np.float64) @ A.T
    return flat.reshape((coeffs.shape[0],) + (m,) * ndim)


class RegressionCompressor:
    """Error-bounded compressor with per-block hyperplane prediction.

    Parameters mirror :class:`repro.sz.SZCompressor`; ``block_size``
    sets the regression block edge (SZ 2 uses 6 for 3-D data; 8 is a
    good 2-D default).
    """

    def __init__(
        self,
        error_bound: float = 1e-4,
        mode: str = "abs",
        block_size: int = 8,
        lossless: str = "zlib",
        lossless_level: int = 6,
        quantization_radius: int = DEFAULT_RADIUS,
    ) -> None:
        if mode not in ("abs", "rel"):
            raise ParameterError(f"mode must be 'abs' or 'rel', got {mode!r}")
        if not np.isfinite(error_bound) or error_bound <= 0:
            raise ParameterError(f"error bound must be positive, got {error_bound}")
        if block_size < 2:
            raise ParameterError("block size must be >= 2")
        if quantization_radius < 1:
            raise ParameterError("quantization radius must be >= 1")
        self.error_bound = float(error_bound)
        self.mode = mode
        self.block_size = int(block_size)
        self.lossless = lossless
        self.lossless_id = method_id(lossless)
        self.lossless_level = int(lossless_level)
        self.radius = int(quantization_radius)
        self.target_psnr = None

    @staticmethod
    def _validate(data) -> np.ndarray:
        arr = np.asarray(data)
        if arr.dtype not in _SUPPORTED_DTYPES:
            raise ParameterError(
                f"dtype {arr.dtype} unsupported; use float32 or float64"
            )
        if arr.ndim == 0 or arr.size == 0:
            raise ParameterError("data must be a non-empty array")
        if not np.all(np.isfinite(arr)):
            raise CompressionError("data contains NaN/Inf")
        return arr

    def compress(self, data) -> bytes:
        """Compress ``data``; returns a serialized container."""
        arr = self._validate(data)
        x = arr.astype(np.float64, copy=False)
        vr = float(x.max() - x.min())
        meta = {
            "dtype": str(arr.dtype),
            "shape": list(arr.shape),
            "mode": self.mode,
            "bound": self.error_bound,
            "block_size": self.block_size,
            "lossless": self.lossless_id,
            "radius": self.radius,
            "value_range": vr,
        }
        if self.target_psnr is not None:
            meta["target_psnr"] = float(self.target_psnr)
        if vr == 0.0:
            meta["constant"] = pack_exact_float(float(x.flat[0]))
            return observe.traced_pack(Container(CODEC_REGRESSION, meta, []))

        eb_abs = self.error_bound * vr if self.mode == "rel" else self.error_bound
        delta = 2.0 * eb_abs
        meta["eb_abs"] = pack_exact_float(eb_abs)

        m = self.block_size
        blocks = split_blocks(x, m)
        coeffs = fit_block_planes(blocks, m)
        pred = _predict(coeffs, m, x.ndim)
        residuals = blocks - pred
        codes_f = np.rint(residuals / delta)
        if np.abs(codes_f).max() > _MAX_CODE:
            raise CompressionError(
                "error bound too small: residual codes exceed exact range"
            )
        q = codes_f.astype(np.int64).ravel()

        escape_symbol = self.radius + 1
        esc_mask = np.abs(q) > self.radius
        n_escapes = int(esc_mask.sum())
        streams = [
            (
                "coeffs",
                lossless_compress(
                    coeffs.tobytes(), self.lossless, self.lossless_level
                ),
            )
        ]
        if n_escapes:
            escaped = q[esc_mask].astype(np.int64)
            q = q.copy()
            q[esc_mask] = escape_symbol
            streams.append(
                (
                    "escapes",
                    lossless_compress(
                        escaped.tobytes(), self.lossless, self.lossless_level
                    ),
                )
            )
        meta["n_escapes"] = n_escapes
        meta["escape_symbol"] = escape_symbol
        meta["n_blocks"] = int(blocks.shape[0])

        code = CanonicalHuffman.from_data(q)
        payload, total_bits = code.encode(q)
        meta["total_bits"] = total_bits
        meta["n_codes"] = int(q.size)
        streams.insert(
            0,
            ("payload", lossless_compress(payload, self.lossless, self.lossless_level)),
        )
        streams.insert(
            0,
            (
                "table",
                lossless_compress(
                    code.table_bytes(), self.lossless, self.lossless_level
                ),
            ),
        )
        return observe.traced_pack(Container(CODEC_REGRESSION, meta, streams))

    @staticmethod
    def decompress(blob: bytes) -> np.ndarray:
        """Decompress a container produced by :meth:`compress`."""
        container = Container.from_bytes(blob)
        if container.codec != CODEC_REGRESSION:
            raise FormatError("container was not produced by the regression codec")
        meta = container.meta
        try:
            dtype = np.dtype(meta["dtype"])
            shape = tuple(int(s) for s in meta["shape"])
        except (KeyError, TypeError, ValueError) as exc:
            raise FormatError(f"bad container metadata: {exc}") from exc

        if "constant" in meta:
            return np.full(shape, unpack_exact_float(meta["constant"]), dtype=dtype)

        try:
            eb_abs = unpack_exact_float(meta["eb_abs"])
            m = int(meta["block_size"])
            lossless = method_name(int(meta["lossless"]))
            total_bits = int(meta["total_bits"])
            n_codes = int(meta["n_codes"])
            n_blocks = int(meta["n_blocks"])
            n_escapes = int(meta["n_escapes"])
            escape_symbol = int(meta["escape_symbol"])
        except (KeyError, TypeError, ValueError) as exc:
            raise FormatError(f"bad container metadata: {exc}") from exc

        d = len(shape)
        delta = 2.0 * eb_abs

        coeff_blob = lossless_decompress(container.stream("coeffs"), lossless)
        coeffs = np.frombuffer(coeff_blob, dtype=np.float32)
        if coeffs.size != n_blocks * (d + 1):
            raise DecompressionError("coefficient stream length mismatch")
        coeffs = coeffs.reshape(n_blocks, d + 1)

        table_blob = lossless_decompress(container.stream("table"), lossless)
        code = CanonicalHuffman.from_table_bytes(table_blob)
        payload = lossless_decompress(container.stream("payload"), lossless)
        q = code.decode(payload, n_codes, total_bits)

        if n_escapes:
            esc_blob = lossless_decompress(container.stream("escapes"), lossless)
            escaped = np.frombuffer(esc_blob, dtype=np.int64)
            if escaped.size != n_escapes:
                raise DecompressionError("escape stream length mismatch")
            esc_mask = q == escape_symbol
            if int(esc_mask.sum()) != n_escapes:
                raise DecompressionError("escape marker count mismatch")
            q = q.copy()
            q[esc_mask] = escaped

        pred = _predict(coeffs, m, d)
        recon = pred + delta * q.astype(np.float64).reshape(pred.shape)
        return merge_blocks(recon, m, shape).astype(dtype)
