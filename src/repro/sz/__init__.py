"""SZ-1.4-style prediction-based error-bounded lossy compressor.

This is the substrate the paper's fixed-PSNR mode is built on
(Section II-A): Lorenzo prediction, error-controlled uniform
("linear-scaling") quantization, customized Huffman coding, and a
trailing GZIP stage.

The implementation is exactly vectorized via the lattice equivalence
documented in :mod:`repro.sz.quantizer` and validated against the
literal sequential algorithm in :mod:`repro.sz.reference`.
"""

from repro.sz.compressor import SZCompressor, compress, decompress
from repro.sz.regression import RegressionCompressor
from repro.sz.hybrid import HybridCompressor
from repro.sz.legacy import Sz11Compressor
from repro.sz.interp import InterpolationCompressor
from repro.sz.temporal import (
    TemporalCompressor,
    TemporalDecompressor,
    compress_series,
    decompress_series,
)
from repro.sz.predictors import (
    PREDICTORS,
    lorenzo_difference,
    lorenzo_reconstruct,
    lorenzo_predict,
    prediction_errors,
)
from repro.sz.quantizer import LatticeQuantizer

__all__ = [
    "SZCompressor",
    "RegressionCompressor",
    "HybridCompressor",
    "Sz11Compressor",
    "InterpolationCompressor",
    "TemporalCompressor",
    "TemporalDecompressor",
    "compress_series",
    "decompress_series",
    "compress",
    "decompress",
    "PREDICTORS",
    "lorenzo_difference",
    "lorenzo_reconstruct",
    "lorenzo_predict",
    "prediction_errors",
    "LatticeQuantizer",
]
