"""Hybrid per-block predictor selection (the SZ 2 design).

SZ 2's central improvement over the paper's SZ 1.4 is *adaptive
prediction*: the field is tiled into blocks and each block picks the
predictor that will cost fewer bits -- Lorenzo where the field is
smooth at the stencil scale, a fitted hyperplane where it is dominated
by local trends.  This codec implements that scheme on top of the same
lattice quantization / Huffman / GZIP stages:

* a global lattice (anchor = first value, ``delta = 2*eb``) carries
  the Lorenzo blocks, whose codes are the block-local Lorenzo
  differences of the lattice coordinates (block corners fall back to
  raw coordinates and ride the escape channel);
* regression blocks quantize the residual against a float32 hyperplane
  fit (coefficients stored only for the blocks that chose regression);
* the per-block choice minimises an estimated code length
  ``sum(log2(2|q|+1))`` plus the 32*(d+1)-bit coefficient overhead for
  regression;
* one selector bitmap, one combined code stream.

Both paths quantize uniformly with the same ``delta``, so Theorem 3
holds and the fixed-PSNR derivation drives this codec unchanged.
Everything is vectorized across blocks -- there is no per-block Python
loop on the hot path.
"""

from __future__ import annotations

import numpy as np

import repro.observe as observe

from repro.encoding.huffman import CanonicalHuffman
from repro.encoding.lossless import (
    lossless_compress,
    lossless_decompress,
    method_id,
    method_name,
)
from repro.errors import (
    CompressionError,
    DecompressionError,
    FormatError,
    ParameterError,
)
from repro.io.container import (
    CODEC_HYBRID,
    Container,
    pack_exact_float,
    unpack_exact_float,
)
from repro.sz.compressor import DEFAULT_RADIUS, _SUPPORTED_DTYPES
from repro.sz.quantizer import MAX_LATTICE_COORD
from repro.sz.regression import design_matrix, fit_block_planes
from repro.transform.blocking import merge_blocks, split_blocks

__all__ = ["HybridCompressor"]


def _block_lorenzo_diff(blocks: np.ndarray) -> np.ndarray:
    """Block-local Lorenzo difference along every non-block axis."""
    q = blocks
    for axis in range(1, blocks.ndim):
        q = np.diff(q, axis=axis, prepend=0)
    return q


def _block_lorenzo_rec(q: np.ndarray) -> np.ndarray:
    out = q.astype(np.int64, copy=True)
    for axis in range(1, out.ndim):
        np.cumsum(out, axis=axis, out=out)
    return out


def _estimated_bits(q: np.ndarray) -> np.ndarray:
    """Per-block estimated code length: sum(log2(2|q|+1)) over the
    block (the Elias-gamma-style proxy SZ 2 uses for selection)."""
    mag = np.abs(q.astype(np.float64))
    bits = np.log2(2.0 * mag + 1.0)
    return bits.reshape(q.shape[0], -1).sum(axis=1)


class HybridCompressor:
    """Error-bounded codec with per-block Lorenzo/regression selection.

    Parameters mirror :class:`repro.sz.SZCompressor`; ``block_size``
    sets the tile edge (SZ 2 uses 6 for 3-D, 8 is a good 2-D default).
    """

    def __init__(
        self,
        error_bound: float = 1e-4,
        mode: str = "abs",
        block_size: int = 8,
        lossless: str = "zlib",
        lossless_level: int = 6,
        quantization_radius: int = DEFAULT_RADIUS,
    ) -> None:
        if mode not in ("abs", "rel"):
            raise ParameterError(f"mode must be 'abs' or 'rel', got {mode!r}")
        if not np.isfinite(error_bound) or error_bound <= 0:
            raise ParameterError(f"error bound must be positive, got {error_bound}")
        if block_size < 2:
            raise ParameterError("block size must be >= 2")
        if quantization_radius < 1:
            raise ParameterError("quantization radius must be >= 1")
        self.error_bound = float(error_bound)
        self.mode = mode
        self.block_size = int(block_size)
        self.lossless = lossless
        self.lossless_id = method_id(lossless)
        self.lossless_level = int(lossless_level)
        self.radius = int(quantization_radius)
        self.target_psnr = None

    @staticmethod
    def _validate(data) -> np.ndarray:
        arr = np.asarray(data)
        if arr.dtype not in _SUPPORTED_DTYPES:
            raise ParameterError(
                f"dtype {arr.dtype} unsupported; use float32 or float64"
            )
        if arr.ndim == 0 or arr.size == 0:
            raise ParameterError("data must be a non-empty array")
        if not np.all(np.isfinite(arr)):
            raise CompressionError("data contains NaN/Inf")
        return arr

    def compress(self, data) -> bytes:
        """Compress ``data``; returns a serialized container."""
        arr = self._validate(data)
        x = arr.astype(np.float64, copy=False)
        vr = float(x.max() - x.min())
        meta = {
            "dtype": str(arr.dtype),
            "shape": list(arr.shape),
            "mode": self.mode,
            "bound": self.error_bound,
            "block_size": self.block_size,
            "lossless": self.lossless_id,
            "radius": self.radius,
            "value_range": vr,
        }
        if self.target_psnr is not None:
            meta["target_psnr"] = float(self.target_psnr)
        if vr == 0.0:
            meta["constant"] = pack_exact_float(float(x.flat[0]))
            return observe.traced_pack(Container(CODEC_HYBRID, meta, []))

        eb_abs = self.error_bound * vr if self.mode == "rel" else self.error_bound
        delta = 2.0 * eb_abs
        anchor = float(x.flat[0])
        meta["eb_abs"] = pack_exact_float(eb_abs)
        meta["anchor"] = pack_exact_float(anchor)

        d = x.ndim
        m = self.block_size
        blocks_f = split_blocks(x, m)
        n_blocks = blocks_f.shape[0]

        # Lorenzo path: global lattice coordinates, block-local stencil.
        k = np.rint((blocks_f - anchor) / delta)
        if np.abs(k).max() > MAX_LATTICE_COORD:
            raise CompressionError("error bound too small for exact lattice")
        k = k.astype(np.int64)
        q_lor = _block_lorenzo_diff(k)

        # Regression path: float32 hyperplane residuals.
        coeffs = fit_block_planes(blocks_f, m)
        A, _ = design_matrix(m, d)
        pred = (coeffs.astype(np.float64) @ A.T).reshape(blocks_f.shape)
        resid = np.rint((blocks_f - pred) / delta)
        if np.abs(resid).max() > MAX_LATTICE_COORD:
            raise CompressionError("error bound too small for exact residuals")
        q_reg = resid.astype(np.int64)

        # Selection: estimated code bits + regression coefficient cost.
        coeff_bits = 32.0 * (d + 1)
        cost_lor = _estimated_bits(q_lor)
        cost_reg = _estimated_bits(q_reg) + coeff_bits
        use_reg = cost_reg < cost_lor
        meta["n_blocks"] = int(n_blocks)
        meta["n_regression"] = int(use_reg.sum())

        q = np.where(use_reg.reshape((-1,) + (1,) * d), q_reg, q_lor).ravel()

        streams = [
            (
                "selector",
                lossless_compress(
                    np.packbits(use_reg).tobytes(),
                    self.lossless,
                    self.lossless_level,
                ),
            )
        ]
        if use_reg.any():
            streams.append(
                (
                    "coeffs",
                    lossless_compress(
                        coeffs[use_reg].tobytes(),
                        self.lossless,
                        self.lossless_level,
                    ),
                )
            )

        escape_symbol = self.radius + 1
        esc_mask = np.abs(q) > self.radius
        n_escapes = int(esc_mask.sum())
        if n_escapes:
            escaped = q[esc_mask].astype(np.int64)
            q = q.copy()
            q[esc_mask] = escape_symbol
            streams.append(
                (
                    "escapes",
                    lossless_compress(
                        escaped.tobytes(), self.lossless, self.lossless_level
                    ),
                )
            )
        meta["n_escapes"] = n_escapes
        meta["escape_symbol"] = escape_symbol

        code = CanonicalHuffman.from_data(q)
        payload, total_bits = code.encode(q)
        meta["total_bits"] = total_bits
        meta["n_codes"] = int(q.size)
        streams.insert(
            0,
            ("payload", lossless_compress(payload, self.lossless, self.lossless_level)),
        )
        streams.insert(
            0,
            (
                "table",
                lossless_compress(
                    code.table_bytes(), self.lossless, self.lossless_level
                ),
            ),
        )
        return observe.traced_pack(Container(CODEC_HYBRID, meta, streams))

    @staticmethod
    def decompress(blob: bytes) -> np.ndarray:
        """Decompress a container produced by :meth:`compress`."""
        container = Container.from_bytes(blob)
        if container.codec != CODEC_HYBRID:
            raise FormatError("container was not produced by the hybrid codec")
        meta = container.meta
        try:
            dtype = np.dtype(meta["dtype"])
            shape = tuple(int(s) for s in meta["shape"])
        except (KeyError, TypeError, ValueError) as exc:
            raise FormatError(f"bad container metadata: {exc}") from exc

        if "constant" in meta:
            return np.full(shape, unpack_exact_float(meta["constant"]), dtype=dtype)

        try:
            eb_abs = unpack_exact_float(meta["eb_abs"])
            anchor = unpack_exact_float(meta["anchor"])
            m = int(meta["block_size"])
            lossless = method_name(int(meta["lossless"]))
            total_bits = int(meta["total_bits"])
            n_codes = int(meta["n_codes"])
            n_blocks = int(meta["n_blocks"])
            n_regression = int(meta["n_regression"])
            n_escapes = int(meta["n_escapes"])
            escape_symbol = int(meta["escape_symbol"])
        except (KeyError, TypeError, ValueError) as exc:
            raise FormatError(f"bad container metadata: {exc}") from exc

        d = len(shape)
        delta = 2.0 * eb_abs

        sel_blob = lossless_decompress(container.stream("selector"), lossless)
        bits = np.unpackbits(np.frombuffer(sel_blob, dtype=np.uint8))
        if bits.size < n_blocks:
            raise DecompressionError("selector bitmap too short")
        use_reg = bits[:n_blocks].astype(bool)
        if int(use_reg.sum()) != n_regression:
            raise DecompressionError("selector/regression count mismatch")

        table_blob = lossless_decompress(container.stream("table"), lossless)
        code = CanonicalHuffman.from_table_bytes(table_blob)
        payload = lossless_decompress(container.stream("payload"), lossless)
        q = code.decode(payload, n_codes, total_bits)

        if n_escapes:
            esc_blob = lossless_decompress(container.stream("escapes"), lossless)
            escaped = np.frombuffer(esc_blob, dtype=np.int64)
            if escaped.size != n_escapes:
                raise DecompressionError("escape stream length mismatch")
            mask = q == escape_symbol
            if int(mask.sum()) != n_escapes:
                raise DecompressionError("escape marker count mismatch")
            q = q.copy()
            q[mask] = escaped

        q = q.reshape((n_blocks,) + (m,) * d)
        recon = np.empty(q.shape, dtype=np.float64)

        # Lorenzo blocks: cumsum back to lattice coordinates.
        lor = ~use_reg
        if lor.any():
            k = _block_lorenzo_rec(q[lor])
            recon[lor] = anchor + delta * k.astype(np.float64)

        if use_reg.any():
            coeff_blob = lossless_decompress(container.stream("coeffs"), lossless)
            coeffs = np.frombuffer(coeff_blob, dtype=np.float32)
            if coeffs.size != n_regression * (d + 1):
                raise DecompressionError("coefficient stream length mismatch")
            coeffs = coeffs.reshape(n_regression, d + 1)
            A, _ = design_matrix(m, d)
            pred = (coeffs.astype(np.float64) @ A.T).reshape(
                (n_regression,) + (m,) * d
            )
            recon[use_reg] = pred + delta * q[use_reg].astype(np.float64)

        return merge_blocks(recon, m, shape).astype(dtype)
