"""The SZ-style compression pipeline.

Compression (paper Section II-A):

1. **Predict** each point with the Lorenzo predictor and quantize the
   prediction error with error-controlled uniform quantization.  Both
   happen at once in the lattice formulation (see
   :mod:`repro.sz.quantizer`): snap values to the lattice, then take the
   integer Lorenzo difference of the lattice coordinates.
2. **Escape** rare codes outside the quantization-bin radius into a
   side stream, so the Huffman alphabet stays bounded (SZ 1.4's
   "unpredictable data" path; see DESIGN.md for the documented
   deviation -- escaped points store their lattice-snapped value, which
   keeps every point's error uniform in ``[-eb, +eb]``).
3. **Huffman-code** the quantization codes (:mod:`repro.encoding.huffman`).
4. **GZIP** (zlib/DEFLATE) the encoded streams
   (:mod:`repro.encoding.lossless`).

Decompression inverts each stage; the predictor inverse is a cumsum, so
neither direction has a per-element Python loop.
"""

from __future__ import annotations

from typing import Optional

import numpy as np

import repro.observe as observe
from repro.telemetry.registry import (
    BITS_BUCKETS,
    RATIO_BUCKETS,
    metrics as _metrics,
)
from repro.encoding.huffman import CanonicalHuffman
from repro.encoding.lossless import (
    lossless_compress,
    lossless_decompress,
    method_id,
    method_name,
)
from repro.errors import (
    CompressionError,
    DecompressionError,
    FormatError,
    ParameterError,
)
from repro.io.container import (
    CODEC_CHUNKED,
    CODEC_EMBEDDED,
    CODEC_HYBRID,
    CODEC_INTERP,
    CODEC_LEGACY,
    CODEC_REGRESSION,
    CODEC_SZ,
    Container,
    pack_exact_float,
    unpack_exact_float,
)
from repro.sz.pointwise import (
    forward_log_transform,
    inverse_log_transform,
    pointwise_bound_to_log_bound,
)
from repro.sz.predictors import predictor_by_id, predictor_by_name
from repro.sz.quantizer import LatticeQuantizer

__all__ = ["SZCompressor", "compress", "decompress"]

#: Default quantization-bin index radius; SZ 1.4 defaults to 65536
#: intervals, i.e. indices in [-32768, 32767].  Codes outside are escaped.
DEFAULT_RADIUS = 32767

#: Supported input dtypes (the paper evaluates single-precision data).
_SUPPORTED_DTYPES = (np.float32, np.float64)


class SZCompressor:
    """Error-bounded lossy compressor with SZ semantics.

    Parameters
    ----------
    error_bound:
        The bound value.  Interpretation depends on ``mode``:
        ``"abs"`` -- absolute error bound ``eb_abs``;
        ``"rel"`` -- value-range-based relative bound, ``eb_abs =
        error_bound * (max(X) - min(X))``;
        ``"pw_rel"`` -- pointwise relative bound: every value within
        ``error_bound * |x_i|`` of ``x_i`` (via logarithmic
        preprocessing; see :mod:`repro.sz.pointwise`).  Must be < 1.
    mode:
        ``"abs"``, ``"rel"`` or ``"pw_rel"`` (the three traditional SZ
        error controls of paper Section II-B).
    predictor:
        ``"lorenzo"`` (default, SZ 1.4), ``"lorenzo1d"`` or ``"none"``.
    lossless:
        Trailing lossless stage: ``"zlib"`` (GZIP's DEFLATE, the paper's
        choice) or ``"none"``.
    lossless_level:
        zlib effort level, 1..9.
    quantization_radius:
        Codes with ``|q| > radius`` take the escape path.
    entropy:
        Third-stage entropy coder: ``"huffman"`` (the paper's SZ 1.4),
        ``"rans"`` (interleaved range-ANS; see
        :mod:`repro.encoding.rans`), or ``"rans_rle"`` (run-length
        split + rANS -- factors out the run structure that dominates
        low-PSNR code streams; see :mod:`repro.encoding.rle`).  The two
        rANS variants fall back to Huffman on pathological alphabets.
    fill_value:
        Sentinel marking missing points (production climate data uses
        values like 1e20/1e35 over land; ``np.nan`` is accepted too).
        Masked points are restored **exactly** on decompression, are
        excluded from the value range (so relative bounds mean what
        they should), and do not pollute prediction -- internally they
        are replaced by the valid mean and the bit mask travels in its
        own stream.
    """

    #: entropy-stage ids stored in the container
    ENTROPY_CODERS = {"huffman": 0, "rans": 1, "rans_rle": 2}

    def __init__(
        self,
        error_bound: float = 1e-4,
        mode: str = "abs",
        predictor: str = "lorenzo",
        lossless: str = "zlib",
        lossless_level: int = 6,
        quantization_radius: int = DEFAULT_RADIUS,
        entropy: str = "huffman",
        fill_value: Optional[float] = None,
    ) -> None:
        if mode not in ("abs", "rel", "pw_rel"):
            raise ParameterError(
                f"mode must be 'abs', 'rel' or 'pw_rel', got {mode!r}"
            )
        if not np.isfinite(error_bound) or error_bound <= 0:
            raise ParameterError(f"error bound must be positive, got {error_bound}")
        if mode == "pw_rel" and error_bound >= 1.0:
            raise ParameterError("pointwise relative bound must be < 1")
        if quantization_radius < 1:
            raise ParameterError("quantization radius must be >= 1")
        self.error_bound = float(error_bound)
        self.mode = mode
        self.predictor = predictor
        self.predictor_id, self._difference, _ = predictor_by_name(predictor)
        self.lossless = lossless
        self.lossless_id = method_id(lossless)
        self.lossless_level = int(lossless_level)
        self.radius = int(quantization_radius)
        if entropy not in self.ENTROPY_CODERS:
            raise ParameterError(
                f"unknown entropy coder {entropy!r}; "
                f"choose from {sorted(self.ENTROPY_CODERS)}"
            )
        self.entropy = entropy
        if fill_value is not None and np.isinf(fill_value):
            raise ParameterError("fill_value must be finite or NaN")
        self.fill_value = None if fill_value is None else float(fill_value)
        #: set by the fixed-PSNR wrapper so the container records intent
        self.target_psnr: Optional[float] = None

    # -- helpers --------------------------------------------------------

    @staticmethod
    def _validate(data) -> np.ndarray:
        arr = np.asarray(data)
        if arr.dtype not in _SUPPORTED_DTYPES:
            raise ParameterError(
                f"dtype {arr.dtype} unsupported; use float32 or float64"
            )
        if arr.ndim == 0 or arr.size == 0:
            raise ParameterError("data must be a non-empty array")
        if not np.all(np.isfinite(arr)):
            raise CompressionError(
                "data contains NaN/Inf; error-bounded compression of "
                "non-finite values is undefined"
            )
        return arr

    def resolve_error_bound(self, data: np.ndarray) -> float:
        """Return the absolute bound the quantizer will use under
        ``mode`` (for ``"pw_rel"`` it is the bound in the log domain)."""
        _, x, _ = self._split_fill(data)
        if self.mode == "abs":
            return self.error_bound
        if self.mode == "pw_rel":
            return pointwise_bound_to_log_bound(self.error_bound)
        vr = float(x.max() - x.min())
        if vr == 0.0:
            # Constant field: any positive bound works; pick the bound
            # itself so downstream math stays finite.
            return self.error_bound
        return self.error_bound * vr

    # -- compression -----------------------------------------------------

    def _encode_lattice(self, y: np.ndarray, eb_abs: float, meta, streams) -> None:
        """Core pipeline on a float64 array: lattice snap, predictor
        difference, escape, Huffman; appends to ``meta``/``streams``."""
        trace = observe.current_trace()
        anchor = float(y.flat[0])
        meta["eb_abs"] = pack_exact_float(eb_abs)
        meta["anchor"] = pack_exact_float(anchor)

        with trace.span("quantize") as sp:
            quantizer = LatticeQuantizer(eb_abs, anchor)
            k = quantizer.quantize(y)
            q = self._difference(k)
            if trace.enabled:
                sp.count("n_points", int(q.size))
                sp.set("bin_size", 2.0 * eb_abs)

        escape_symbol = self.radius + 1
        with trace.span("escape") as sp:
            esc_mask = np.abs(q) > self.radius
            n_escapes = int(esc_mask.sum())
            reg = _metrics()
            reg.histogram(
                "sz.quantization.hit_ratio", RATIO_BUCKETS
            ).observe(1.0 - n_escapes / q.size)
            reg.histogram(
                "sz.quantization.outlier_rate", RATIO_BUCKETS
            ).observe(n_escapes / q.size)
            if trace.enabled:
                sp.count("n_outliers", n_escapes)
                sp.set("hit_ratio", 1.0 - n_escapes / q.size)
            if n_escapes:
                escaped_values = q[esc_mask].astype(np.int64)
                q = q.copy()
                q[esc_mask] = escape_symbol
                streams.append(
                    (
                        "escapes",
                        lossless_compress(
                            escaped_values.tobytes(),
                            self.lossless,
                            self.lossless_level,
                        ),
                    )
                )
        meta["n_escapes"] = n_escapes
        meta["escape_symbol"] = escape_symbol
        meta["entropy"] = self.ENTROPY_CODERS[self.entropy]

        with trace.span("entropy") as sp:
            if trace.enabled:
                sp.count("n_symbols", int(q.size))
                sp.set("coder_id", self.ENTROPY_CODERS[self.entropy])
            if self.entropy == "rans_rle":
                from repro.encoding.rle import encode_rle_rans

                try:
                    streams.insert(0, ("payload", encode_rle_rans(q)))
                    return
                except ParameterError:
                    meta["entropy"] = self.ENTROPY_CODERS["huffman"]
                    if trace.enabled:
                        sp.set("coder_id", self.ENTROPY_CODERS["huffman"])
            elif self.entropy == "rans":
                from repro.encoding.rans import RansCoder

                try:
                    coder = RansCoder.from_data(q)
                except ParameterError:
                    meta["entropy"] = self.ENTROPY_CODERS["huffman"]
                    if trace.enabled:
                        sp.set("coder_id", self.ENTROPY_CODERS["huffman"])
                else:
                    # rANS output is already near-incompressible; only the
                    # model table goes through the lossless stage.
                    streams.insert(0, ("payload", coder.encode(q)))
                    streams.insert(
                        0,
                        (
                            "table",
                            lossless_compress(
                                coder.table_bytes(),
                                self.lossless,
                                self.lossless_level,
                            ),
                        ),
                    )
                    return

            code = CanonicalHuffman.from_data(q)
            payload, total_bits = code.encode(q)
            meta["total_bits"] = total_bits
            _metrics().histogram(
                "sz.entropy.bits_per_symbol", BITS_BUCKETS
            ).observe(total_bits / q.size)
            if trace.enabled:
                sp.count("total_bits", int(total_bits))
            streams.insert(
                0,
                (
                    "payload",
                    lossless_compress(payload, self.lossless, self.lossless_level),
                ),
            )
            streams.insert(
                0,
                (
                    "table",
                    lossless_compress(
                        code.table_bytes(), self.lossless, self.lossless_level
                    ),
                ),
            )

    def _split_fill(self, data):
        """Separate the fill mask from the data; returns
        ``(float64 array with fill replaced, mask or None)``."""
        arr = np.asarray(data)
        if arr.dtype not in _SUPPORTED_DTYPES:
            raise ParameterError(
                f"dtype {arr.dtype} unsupported; use float32 or float64"
            )
        if arr.ndim == 0 or arr.size == 0:
            raise ParameterError("data must be a non-empty array")
        x = arr.astype(np.float64, copy=False)
        if self.fill_value is None:
            if not np.all(np.isfinite(x)):
                raise CompressionError(
                    "data contains NaN/Inf; error-bounded compression of "
                    "non-finite values is undefined (set fill_value to "
                    "treat a sentinel as missing data)"
                )
            return arr, x, None
        if np.isnan(self.fill_value):
            mask = np.isnan(x)
        else:
            mask = x == self.fill_value
        valid = x[~mask]
        if valid.size and not np.all(np.isfinite(valid)):
            raise CompressionError("non-fill data contains NaN/Inf")
        if not mask.any():
            return arr, x, None
        # Replace fill by the valid mean: prediction stays well-behaved
        # and the value range reflects only real data.
        replacement = float(valid.mean()) if valid.size else 0.0
        x = x.copy()
        x[mask] = replacement
        return arr, x, mask

    def _pack(self, meta, streams) -> bytes:
        """Serialize the container, with exact byte accounting when a
        trace is active (see :mod:`repro.observe`)."""
        blob = observe.traced_pack(Container(CODEC_SZ, meta, streams))
        _metrics().counter("pipeline.compressed_bytes_total").inc(len(blob))
        return blob

    def compress(self, data) -> bytes:
        """Compress ``data`` and return the serialized container."""
        trace = observe.current_trace()
        with trace.span("sz.compress") as root:
            arr, x, fill_mask = self._split_fill(data)
            reg = _metrics()
            reg.counter("pipeline.compress_calls").inc()
            reg.counter("pipeline.raw_bytes_total").inc(int(arr.nbytes))
            if trace.enabled:
                root.count("n_points", int(arr.size))
                root.count("raw_bytes", int(arr.nbytes))
            vr = float(x.max() - x.min())
            meta = {
                "dtype": str(arr.dtype),
                "shape": list(arr.shape),
                "mode": self.mode,
                "bound": self.error_bound,
                "predictor": self.predictor_id,
                "lossless": self.lossless_id,
                "radius": self.radius,
                "value_range": vr,
            }
            if self.target_psnr is not None:
                meta["target_psnr"] = float(self.target_psnr)

            streams = []
            if fill_mask is not None:
                meta["fill_value"] = pack_exact_float(self.fill_value)
                streams.append(
                    (
                        "fillmask",
                        lossless_compress(
                            np.packbits(fill_mask).tobytes(),
                            self.lossless,
                            self.lossless_level,
                        ),
                    )
                )
            if self.mode == "pw_rel":
                signs, y = forward_log_transform(x)
                streams.append(
                    (
                        "signs",
                        lossless_compress(
                            signs.tobytes(), self.lossless, self.lossless_level
                        ),
                    )
                )
                eb_abs = pointwise_bound_to_log_bound(self.error_bound)
                if float(y.max() - y.min()) == 0.0:
                    meta["constant"] = pack_exact_float(float(y.flat[0]))
                    return self._pack(meta, streams)
                self._encode_lattice(y, eb_abs, meta, streams)
                return self._pack(meta, streams)

            if vr == 0.0:
                # Constant field: store the value exactly.
                meta["constant"] = pack_exact_float(float(x.flat[0]))
                return self._pack(meta, streams)

            if self.mode == "abs":
                eb_abs = self.error_bound
            else:
                eb_abs = self.error_bound * vr
            self._encode_lattice(x, eb_abs, meta, streams)
            return self._pack(meta, streams)

    # -- decompression ----------------------------------------------------

    @staticmethod
    def decompress(blob: bytes) -> np.ndarray:
        """Decompress a container produced by :meth:`compress`."""
        container = Container.from_bytes(blob)
        if container.codec != CODEC_SZ:
            raise FormatError("container was not produced by the SZ codec")
        meta = container.meta
        try:
            dtype = np.dtype(meta["dtype"])
            shape = tuple(int(s) for s in meta["shape"])
        except (KeyError, TypeError, ValueError) as exc:
            raise FormatError(f"bad container metadata: {exc}") from exc

        try:
            lossless = method_name(int(meta["lossless"]))
        except (KeyError, TypeError, ValueError) as exc:
            raise FormatError(f"bad container metadata: {exc}") from exc

        pointwise = meta.get("mode") == "pw_rel"
        signs = None
        if pointwise:
            sign_blob = lossless_decompress(container.stream("signs"), lossless)
            signs = np.frombuffer(sign_blob, dtype=np.int8)
            if signs.size != int(np.prod(shape)):
                raise DecompressionError("sign stream length mismatch")
            signs = signs.reshape(shape)

        fill_value = None
        fill_mask = None
        if "fill_value" in meta:
            fill_value = unpack_exact_float(meta["fill_value"])
            mask_blob = lossless_decompress(container.stream("fillmask"), lossless)
            bits = np.unpackbits(np.frombuffer(mask_blob, dtype=np.uint8))
            n_points = int(np.prod(shape))
            if bits.size < n_points:
                raise DecompressionError("fill mask shorter than the array")
            fill_mask = bits[:n_points].astype(bool).reshape(shape)

        def _restore_fill(values: np.ndarray) -> np.ndarray:
            if fill_mask is not None:
                values = values.copy()
                values[fill_mask] = fill_value
            return values

        if "constant" in meta:
            value = unpack_exact_float(meta["constant"])
            if pointwise:
                y = np.full(shape, value, dtype=np.float64)
                out = inverse_log_transform(signs, y)
            else:
                out = np.full(shape, value, dtype=np.float64)
            return _restore_fill(out).astype(dtype)

        try:
            eb_abs = unpack_exact_float(meta["eb_abs"])
            anchor = unpack_exact_float(meta["anchor"])
            predictor_id = int(meta["predictor"])
            total_bits = int(meta.get("total_bits", 0))
            entropy_id = int(meta.get("entropy", 0))
            n_escapes = int(meta["n_escapes"])
            escape_symbol = int(meta["escape_symbol"])
        except (KeyError, TypeError, ValueError) as exc:
            raise FormatError(f"bad container metadata: {exc}") from exc

        n = int(np.prod(shape))
        _, _, reconstruct = predictor_by_id(predictor_id)

        trace = observe.current_trace()
        with trace.span("sz.decode") as sp:
            if trace.enabled:
                sp.count("n_points", n)
                sp.set("coder_id", entropy_id)
            q = SZCompressor._decode_codes(
                container, lossless, entropy_id, n, total_bits, shape
            )

        if n_escapes:
            esc_blob = lossless_decompress(container.stream("escapes"), lossless)
            escaped_values = np.frombuffer(esc_blob, dtype=np.int64)
            if escaped_values.size != n_escapes:
                raise DecompressionError(
                    f"escape stream has {escaped_values.size} values, "
                    f"expected {n_escapes}"
                )
            esc_mask = q == escape_symbol
            if int(esc_mask.sum()) != n_escapes:
                raise DecompressionError("escape marker count mismatch")
            q = q.copy()
            q[esc_mask] = escaped_values

        with trace.span("sz.reconstruct"):
            k = reconstruct(q)
            quantizer = LatticeQuantizer(eb_abs, anchor)
            values = quantizer.dequantize(k)
            if pointwise:
                values = inverse_log_transform(signs, values)
        return _restore_fill(values).astype(dtype)

    @staticmethod
    def _decode_codes(container, lossless, entropy_id, n, total_bits, shape):
        """Entropy-decode the quantization codes of one container."""
        if entropy_id == 2:
            from repro.encoding.rle import decode_rle_rans

            q = decode_rle_rans(container.stream("payload"))
            if q.size != n:
                raise DecompressionError("RLE symbol count mismatch")
            q = q.reshape(shape)
        elif entropy_id == 1:
            from repro.encoding.rans import RansCoder

            table_blob = lossless_decompress(container.stream("table"), lossless)
            coder = RansCoder.from_table_bytes(table_blob)
            q = coder.decode(container.stream("payload"))
            if q.size != n:
                raise DecompressionError("rANS symbol count mismatch")
            q = q.reshape(shape)
        elif entropy_id == 0:
            table_blob = lossless_decompress(container.stream("table"), lossless)
            code = CanonicalHuffman.from_table_bytes(table_blob)
            payload = lossless_decompress(container.stream("payload"), lossless)
            q = code.decode(payload, n, total_bits).reshape(shape)
        else:
            raise FormatError(f"unknown entropy coder id {entropy_id}")
        return q


def compress(
    data,
    error_bound: float,
    mode: str = "abs",
    n_chunks: int = 0,
    n_workers: int = 0,
    transport: str = "auto",
    **kwargs,
) -> bytes:
    """Functional one-shot front end to :class:`SZCompressor`.

    ``n_chunks >= 1`` routes through the slab-parallel
    :func:`repro.parallel.chunking.compress_chunked` path instead
    (``n_workers`` processes, array payloads moved over ``transport``
    -- see :mod:`repro.parallel.shm`); the default stays the plain
    single-container compressor.
    """
    if n_chunks >= 1:
        from repro.parallel.chunking import compress_chunked

        return compress_chunked(
            data,
            error_bound,
            mode=mode,
            n_chunks=n_chunks,
            n_workers=n_workers,
            transport=transport,
            **kwargs,
        )
    return SZCompressor(error_bound=error_bound, mode=mode, **kwargs).compress(data)


def decompress(
    blob: bytes, n_workers: int = 0, transport: str = "auto"
) -> np.ndarray:
    """Decompress any container produced by this package (SZ,
    transform, regression, embedded, or chunked).  ``n_workers`` and
    ``transport`` apply only to chunked containers, whose slabs can be
    decoded in parallel."""
    container = Container.from_bytes(blob)
    if container.codec == CODEC_SZ:
        return SZCompressor.decompress(blob)
    # Deferred imports: these codecs depend on this module's helpers.
    if container.codec == CODEC_CHUNKED:
        from repro.parallel.chunking import decompress_chunked

        return decompress_chunked(blob, n_workers=n_workers, transport=transport)
    if container.codec == CODEC_REGRESSION:
        from repro.sz.regression import RegressionCompressor

        return RegressionCompressor.decompress(blob)
    if container.codec == CODEC_HYBRID:
        from repro.sz.hybrid import HybridCompressor

        return HybridCompressor.decompress(blob)
    if container.codec == CODEC_LEGACY:
        from repro.sz.legacy import Sz11Compressor

        return Sz11Compressor.decompress(blob)
    if container.codec == CODEC_INTERP:
        from repro.sz.interp import InterpolationCompressor

        return InterpolationCompressor.decompress(blob)
    if container.codec == CODEC_EMBEDDED:
        from repro.transform.embedded import EmbeddedTransformCompressor

        return EmbeddedTransformCompressor.decompress(blob)
    from repro.transform.compressor import TransformCompressor

    return TransformCompressor.decompress(blob)
