"""Error-controlled uniform quantization via the lattice equivalence.

The exact vectorization of SZ
-----------------------------
SZ's compression loop looks inherently sequential: each point is
predicted from already-*reconstructed* neighbours, the prediction error
is quantized to a bin index, and the reconstruction feeds the next
prediction.  The following equivalence removes the dependency exactly.

With uniform bins of size ``delta = 2*eb`` and midpoint reconstruction,
``x~ = pred + delta * rint((x - pred)/delta)``.  Define the lattice
``L = {anchor + delta*k : k integer}`` anchored at the first data value
(which SZ stores exactly, so ``anchor`` is on ``L`` with ``k = 0``).
The Lorenzo predictor is an integer-coefficient combination of
neighbours whose coefficients sum to 1 (2-D: ``+1 +1 -1``; 3-D:
``+1+1+1 -1-1-1 +1``), so if every reconstructed neighbour is on ``L``
then so is the prediction, and therefore

``x~ = pred + delta * rint((x - pred)/delta)``  =  nearest point of
``L`` to ``x``  =  ``anchor + delta * rint((x - anchor)/delta)``,

independent of the predictor path.  By induction every reconstruction
is the straight lattice snap, computable for the whole array in one
vectorized expression, and the quantization codes are the (integer)
Lorenzo differences of the lattice coordinates ``k``.  Border points
degenerate to lower-dimensional Lorenzo by zero-padding ``k``, exactly
as SZ treats borders.  The sequential reference implementation in
:mod:`repro.sz.reference` verifies the equivalence bit-for-bit.

(The argument needs a consistent tie-breaking rule in ``rint``; we use
NumPy's round-half-to-even everywhere, including the reference.)
"""

from __future__ import annotations

from typing import Tuple

import numpy as np

from repro.errors import CompressionError, ParameterError

__all__ = ["LatticeQuantizer", "snap_to_lattice", "lattice_values"]

#: Largest |lattice coordinate| we allow; keeps int64 arithmetic exact
#: with a wide margin (Lorenzo differences multiply by at most 2**ndim).
MAX_LATTICE_COORD = 2**52


def snap_to_lattice(data: np.ndarray, anchor: float, delta: float) -> np.ndarray:
    """Return integer lattice coordinates ``k = rint((data - anchor)/delta)``."""
    if not np.isfinite(delta) or delta <= 0.0:
        raise ParameterError(f"bin size delta must be positive, got {delta}")
    k = np.rint((np.asarray(data, dtype=np.float64) - anchor) / delta)
    if np.abs(k).max(initial=0.0) > MAX_LATTICE_COORD:
        raise CompressionError(
            "error bound too small relative to the value range: lattice "
            "coordinates exceed exact-integer range"
        )
    return k.astype(np.int64)


def lattice_values(k: np.ndarray, anchor: float, delta: float) -> np.ndarray:
    """Map lattice coordinates back to values, ``anchor + delta*k``."""
    return anchor + delta * np.asarray(k, dtype=np.float64)


class LatticeQuantizer:
    """Uniform quantizer with bin size ``delta = 2*eb`` on a value lattice.

    Parameters
    ----------
    error_bound:
        Absolute error bound ``eb``; every reconstructed value is within
        ``eb`` of the original (up to one float64 ulp).
    anchor:
        The lattice origin; by convention the first value of the array.
    """

    def __init__(self, error_bound: float, anchor: float) -> None:
        if not np.isfinite(error_bound) or error_bound <= 0.0:
            raise ParameterError(f"error bound must be positive, got {error_bound}")
        if not np.isfinite(anchor):
            raise ParameterError("anchor must be finite")
        self.error_bound = float(error_bound)
        self.delta = 2.0 * float(error_bound)
        self.anchor = float(anchor)

    def quantize(self, data: np.ndarray) -> np.ndarray:
        """Snap ``data`` to the lattice; returns int64 coordinates."""
        return snap_to_lattice(data, self.anchor, self.delta)

    def dequantize(self, k: np.ndarray) -> np.ndarray:
        """Reconstruct float64 values from lattice coordinates."""
        return lattice_values(k, self.anchor, self.delta)

    def roundtrip(self, data: np.ndarray) -> Tuple[np.ndarray, np.ndarray]:
        """Quantize and reconstruct in one call: ``(k, x~)``."""
        k = self.quantize(data)
        return k, self.dequantize(k)
