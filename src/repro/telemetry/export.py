"""Trace export: Chrome trace-event JSON and collapsed flame stacks.

:mod:`repro.observe` keeps span data in a private schema.  That is the
right storage format, but it locks the data away from the mature
timeline tooling everyone already has: Perfetto (ui.perfetto.dev) and
``chrome://tracing`` both read the Chrome *trace-event* JSON format,
and the flamegraph ecosystem reads collapsed-stack text.  This module
is the bridge -- a pure function of a finished
:class:`~repro.observe.Trace`, no new dependencies.

Chrome trace-event mapping
--------------------------
One complete ``"X"`` (duration) event per :class:`SpanRecord`:

* ``name`` -- the leaf stage name, ``cat`` -- the root of the span
  path (so Perfetto can filter by pipeline),
* ``ts``/``dur`` -- microseconds; ``ts`` is the record's
  ``t_start`` normalized so the earliest span starts at 0.  On every
  mainstream platform ``time.perf_counter`` reads a system-wide
  monotonic clock, so spans recorded in *worker processes* land on the
  same timeline as the parent's,
* ``pid``/``tid`` -- the **real** OS ids captured when the span
  closed, which is what makes a pool- or shm-mode sweep render as
  parallel per-worker tracks instead of one serial lane,
* ``args`` -- the span's exact counters and gauges.

Span counters additionally emit ``"C"`` (counter) events -- cumulative
per ``(pid, counter-name)``, stamped at each span's end -- so byte
accounting draws as rising counter tracks next to the timeline.  A
registry snapshot can be appended as final ``"C"`` samples too.

Every event carries the four keys ``ph``/``ts``/``dur``/``pid`` (CI
validates exactly that), all numeric fields are non-negative, and the
document is a single JSON object ``{"traceEvents": [...]}`` -- the
strict form both viewers accept.

Records from producers that predate timeline capture (``t_start == 0``)
still export: they are placed at ``ts = 0`` with their real duration,
so old worker pickles degrade to a stacked-at-origin view instead of
failing.

Collapsed stacks
----------------
:func:`to_collapsed_stacks` emits the classic ``a;b;c <weight>`` text
(one line per unique span path, weight = **self** time in integer
microseconds) consumed by flamegraph.pl, speedscope, inferno et al.
"""

from __future__ import annotations

import json
from pathlib import Path
from typing import Dict, List, Optional, Tuple

__all__ = [
    "chrome_trace_events",
    "to_chrome_trace",
    "write_chrome_trace",
    "to_collapsed_stacks",
    "validate_chrome_trace",
    "REQUIRED_EVENT_KEYS",
]

#: Keys every exported event must carry (what CI asserts on the
#: artifact).  ``dur`` is meaningful only on ``"X"`` events but is
#: emitted as 0 elsewhere so one validation rule covers the file.
REQUIRED_EVENT_KEYS = ("ph", "ts", "dur", "pid", "tid", "name")


def _us(seconds: float) -> float:
    """Seconds -> non-negative microseconds, rounded for stable JSON."""
    return max(0.0, round(float(seconds) * 1e6, 3))


def chrome_trace_events(
    trace,
    snapshot: Optional[Dict] = None,
    process_names: Optional[Dict[int, str]] = None,
) -> List[Dict]:
    """Flatten ``trace`` into a list of Chrome trace events.

    ``snapshot`` is an optional :meth:`MetricsRegistry.snapshot`; its
    counters are appended as final ``"C"`` samples (name
    ``metric:<name>``) at the end of the timeline, so process-lifetime
    aggregates sit next to the per-span series.

    ``process_names`` optionally maps pids to display names for the
    ``process_name`` metadata events.  The cluster tier uses this to
    label each member node's synthetic lane with its URL; unmapped
    pids keep the ``fpzc pid N`` default.
    """
    records = list(getattr(trace, "records", ()) or ())
    starts = [r.t_start for r in records if r.t_start > 0.0]
    t0 = min(starts) if starts else 0.0
    events: List[Dict] = []
    seen_procs: Dict[Tuple[int, int], bool] = {}
    cumulative: Dict[Tuple[int, str], float] = {}
    end_of_time = 0.0
    for rec in sorted(records, key=lambda r: (r.t_start, r.seq)):
        pid = int(rec.pid)
        tid = int(rec.tid) or pid
        ts = _us(rec.t_start - t0) if rec.t_start > 0.0 else 0.0
        dur = _us(rec.duration_s)
        end_of_time = max(end_of_time, ts + dur)
        if (pid, tid) not in seen_procs:
            seen_procs[(pid, tid)] = True
            events.append(
                {
                    "name": "process_name",
                    "ph": "M",
                    "ts": 0.0,
                    "dur": 0.0,
                    "pid": pid,
                    "tid": tid,
                    "args": {
                        "name": (process_names or {}).get(
                            pid, f"fpzc pid {pid}"
                        )
                    },
                }
            )
        args: Dict[str, float] = {}
        args.update(rec.counters)
        for k, v in rec.gauges.items():
            if isinstance(v, (int, float)):
                args[k] = v
        events.append(
            {
                "name": rec.path[-1],
                "cat": rec.path[0],
                "ph": "X",
                "ts": ts,
                "dur": dur,
                "pid": pid,
                "tid": tid,
                "args": args,
            }
        )
        for key in sorted(rec.counters):
            slot = (pid, key)
            cumulative[slot] = cumulative.get(slot, 0.0) + rec.counters[key]
            events.append(
                {
                    "name": key,
                    "cat": "counters",
                    "ph": "C",
                    "ts": ts + dur,
                    "dur": 0.0,
                    "pid": pid,
                    "tid": tid,
                    "args": {key.rpartition(".")[2]: cumulative[slot]},
                }
            )
    if snapshot:
        import os

        pid = os.getpid()
        for name, entry in sorted(snapshot.get("metrics", {}).items()):
            if entry.get("kind") != "counter":
                continue
            events.append(
                {
                    "name": f"metric:{name}",
                    "cat": "metrics",
                    "ph": "C",
                    "ts": end_of_time,
                    "dur": 0.0,
                    "pid": pid,
                    "tid": pid,
                    "args": {name.rpartition(".")[2]: entry.get("value", 0)},
                }
            )
    return events


def to_chrome_trace(
    trace,
    snapshot: Optional[Dict] = None,
    process_names: Optional[Dict[int, str]] = None,
) -> Dict:
    """The full trace-event JSON document for ``trace`` (the object
    form with ``traceEvents``, which both Perfetto and
    ``chrome://tracing`` load directly)."""
    return {
        "traceEvents": chrome_trace_events(
            trace, snapshot=snapshot, process_names=process_names
        ),
        "displayTimeUnit": "ms",
        "otherData": {"producer": "fpzc", "spans": len(trace.records)},
    }


def write_chrome_trace(
    trace,
    path,
    snapshot: Optional[Dict] = None,
    process_names: Optional[Dict[int, str]] = None,
) -> Path:
    """Serialize :func:`to_chrome_trace` to ``path``; returns the path."""
    target = Path(path)
    doc = to_chrome_trace(
        trace, snapshot=snapshot, process_names=process_names
    )
    target.write_text(json.dumps(doc, sort_keys=True), encoding="utf-8")
    return target


def validate_chrome_trace(doc) -> List[str]:
    """Sanity-check an exported document; returns a list of problems
    (empty means valid).  This is what the CI smoke step and the unit
    tests run against the real artifact."""
    problems: List[str] = []
    if not isinstance(doc, dict) or "traceEvents" not in doc:
        return ["document is not an object with a traceEvents list"]
    events = doc["traceEvents"]
    if not isinstance(events, list):
        return ["traceEvents is not a list"]
    for i, ev in enumerate(events):
        if not isinstance(ev, dict):
            problems.append(f"event {i}: not an object")
            continue
        for key in REQUIRED_EVENT_KEYS:
            if key not in ev:
                problems.append(f"event {i}: missing {key!r}")
        for key in ("ts", "dur"):
            v = ev.get(key, 0)
            if not isinstance(v, (int, float)) or v < 0:
                problems.append(f"event {i}: {key} must be a number >= 0")
        if not isinstance(ev.get("pid", 0), int):
            problems.append(f"event {i}: pid must be an int")
    return problems


def to_collapsed_stacks(trace) -> str:
    """Collapsed-stack text: one ``a;b;c <self-time-us>`` line per
    unique span path, sorted, for flamegraph tooling.

    The weight is **self** time -- the path's total duration minus the
    total duration of its direct children -- clamped at zero, so a
    flame graph built from the output sums to the real wall time
    instead of double-counting nested spans.
    """
    totals: Dict[Tuple[str, ...], float] = {}
    for rec in trace.records:
        totals[rec.path] = totals.get(rec.path, 0.0) + rec.duration_s
    child_time: Dict[Tuple[str, ...], float] = {}
    for path, total in totals.items():
        if len(path) > 1:
            parent = path[:-1]
            child_time[parent] = child_time.get(parent, 0.0) + total
    lines = []
    for path in sorted(totals):
        self_s = max(0.0, totals[path] - child_time.get(path, 0.0))
        lines.append(";".join(path) + f" {int(round(self_s * 1e6))}")
    return "\n".join(lines) + ("\n" if lines else "")
