"""The perf-regression gate behind ``fpzc bench``.

``fpzc bench`` runs a small fixed corpus (a handful of (data set,
field, codec, target) compressions, one mini sweep and two autotune
searches), collects stage traces, and writes three top-level baseline
files:

* ``BENCH_compress.json`` -- one entry per compress case,
* ``BENCH_sweep.json`` -- the mini sweep's outcome,
* ``BENCH_autotune.json`` -- the measurement-driven searches' cost
  (trial count, convergence, converged bound),
* ``BENCH_service.json`` -- the same jobs submitted through a live
  in-process compression service (``repro.service``): per-job bytes
  and achieved PSNR must match the serial pipeline exactly, plus
  service throughput timing.
* ``BENCH_cache.json`` -- the blob cache's correctness wall: a cold
  run misses, the warm rerun hits with bit-identical bytes and zero
  codec spans, and an undersized store evicts; warm-over-cold wall
  ratio lands under timing.

``fpzc bench --check`` re-runs the same corpus and compares against
the committed baselines:

* **hard failures** (exit 1) on any drift in a *deterministic* field
  -- compressed bytes, compression ratio, achieved PSNR, exact span
  counters.  These cannot drift from noise; a change means the
  pipeline's output changed.
* **soft warnings** on wall-time drift beyond ``--time-factor`` in
  either direction.  Timing varies across machines and CI runners, so
  the gate reports it without failing.

Every field of a baseline entry lives under either ``deterministic``
or ``timing`` -- the comparison logic never has to guess which is
which, and adding a new measurement forces the author to classify it.
"""

from __future__ import annotations

import json
from pathlib import Path
from typing import Dict, List, Optional, Tuple

import repro.observe as observe
from repro.telemetry.ledger import git_rev

__all__ = [
    "BENCH_SCHEMA_VERSION",
    "COMPRESS_CASES",
    "SWEEP_CASE",
    "TRANSPORT_SWEEP_CASE",
    "SHM_SPEEDUP_THRESHOLD",
    "AUTOTUNE_CASES",
    "SERVICE_CASES",
    "CACHE_CASE",
    "CACHE_WARM_THRESHOLD",
    "run_compress_bench",
    "run_sweep_bench",
    "run_autotune_bench",
    "run_service_bench",
    "run_cache_bench",
    "write_baselines",
    "compare_bench",
    "check_baselines",
    "BASELINE_FILES",
]

#: Version of the baseline file schema (bump on incompatible change).
BENCH_SCHEMA_VERSION = 1

#: Baseline file names, keyed by corpus part.
BASELINE_FILES = {
    "compress": "BENCH_compress.json",
    "sweep": "BENCH_sweep.json",
    "autotune": "BENCH_autotune.json",
    "service": "BENCH_service.json",
    "cache": "BENCH_cache.json",
}

#: The compress corpus: (dataset, field, codec, target PSNR).  Small
#: laptop-scale fields chosen to cover the prediction, transform and
#: block-selection pipelines without making the gate slow.
COMPRESS_CASES: Tuple[Tuple[str, str, str, float], ...] = (
    ("ATM", "CLDHGH", "sz", 80.0),
    ("ATM", "FLDS", "transform", 60.0),
    ("Hurricane", "TC", "sz", 80.0),
    ("NYX", "temperature", "hybrid", 60.0),
)

#: The sweep corpus: one dataset, two fields, two targets.
SWEEP_CASE = {
    "dataset": "ATM",
    "fields": ("CLDHGH", "FLDS"),
    "targets": (40.0, 80.0),
}

#: The transport corpus: the same sweep run twice on a small pool --
#: once over the pickle channel, once over the shared-memory data
#: plane (:mod:`repro.parallel.shm`).  Deterministically the two runs
#: must be identical (``transports_match``); their relative wall time
#: is recorded so the gate can warn when shm stops paying for itself.
TRANSPORT_SWEEP_CASE = {
    "dataset": "NYX",
    "fields": ("temperature",),
    "targets": (30.0, 40.0, 50.0, 60.0),
    "n_workers": 4,
}

#: Warn when the shm sweep takes more than this fraction of the
#: pickle sweep's wall time (the data plane should win, not tie).
SHM_SPEEDUP_THRESHOLD = 0.8

#: The autotune corpus: (dataset, field, codec, objective, target).
#: Tracks the cost of the measurement-driven search (trial count,
#: convergence, achieved value) so a regression in the search -- more
#: trials, a wider miss -- fails the gate like any byte drift.
AUTOTUNE_CASES: Tuple[Tuple[str, str, str, str, float], ...] = (
    ("ATM", "CLDHGH", "sz", "ratio", 10.0),
    ("ATM", "FLDS", "sz", "bitrate", 4.0),
)

#: The service corpus: compress jobs submitted concurrently through a
#: live in-process service (``kind`` is the job route).  Per-job bytes
#: and PSNR are deterministic -- the service runs the exact serial
#: pipeline -- while throughput lands under ``timing``.
SERVICE_CASES: Tuple[Tuple[str, str, str, float], ...] = (
    ("compress", "ATM", "CLDHGH", 40.0),
    ("compress", "ATM", "CLDHGH", 80.0),
    ("compress", "ATM", "FLDS", 40.0),
    ("compress", "ATM", "FLDS", 80.0),
)

#: The blob-cache corpus: one fixed-PSNR compression, cold then warm,
#: through a throwaway :class:`repro.cache.CacheStore`.  The warm run
#: must hit, must return bit-identical bytes and must run **zero**
#: codec spans -- a warm hit that recompresses is a hard gate failure.
CACHE_CASE = {
    "dataset": "ATM",
    "field": "CLDHGH",
    "codec": "sz",
    "target": 60.0,
}

#: Warn when the warm (cache-hit) run takes more than this fraction of
#: the cold run's wall time -- a hit is one file read and should be
#: orders of magnitude cheaper than a compression.
CACHE_WARM_THRESHOLD = 0.5

#: Span names that mean a codec actually ran (the warm-run trace must
#: contain none of them).
_CODEC_SPAN_NAMES = frozenset(
    (
        "fixed_psnr.compress",
        "sz.compress",
        "derive_bound",
        "quantize",
        "escape",
        "entropy",
    )
)


def _case_id(dataset: str, field: str, codec: str, target: float) -> str:
    return f"{dataset}/{field}/{codec}/{target:g}dB"


def run_compress_bench() -> Dict:
    """Run every compress case under a trace; returns the
    ``BENCH_compress.json`` document (schema + per-case entries, each
    split into ``deterministic`` and ``timing``)."""
    from repro.core.fixed_psnr import FixedPSNRCompressor
    from repro.datasets.registry import get_dataset
    from repro.metrics.distortion import psnr as measure_psnr
    from repro.telemetry.registry import record_trace

    cases: List[Dict] = []
    for dataset, field, codec, target in COMPRESS_CASES:
        data = get_dataset(dataset).field(field)
        comp = FixedPSNRCompressor(target, codec=codec)
        tr = observe.Trace()
        with observe.use_trace(tr):
            blob = comp.compress(data)
        record_trace(tr)
        recon = comp.decompress(blob)
        achieved = float(measure_psnr(data, recon))
        stage_seconds = {
            path[-1]: agg["duration_s"]
            for path, agg in tr.aggregate().items()
        }
        cases.append(
            {
                "id": _case_id(dataset, field, codec, target),
                "dataset": dataset,
                "field": field,
                "codec": codec,
                "target_psnr": target,
                "deterministic": {
                    "raw_bytes": int(data.nbytes),
                    "compressed_bytes": len(blob),
                    "ratio": round(data.nbytes / len(blob), 6),
                    "achieved_psnr": round(achieved, 6),
                    "trace": tr.deterministic_dict(),
                },
                "timing": {
                    "wall_s": sum(
                        agg["duration_s"]
                        for path, agg in tr.aggregate().items()
                        if len(path) == 1
                    ),
                    "stage_seconds": stage_seconds,
                },
            }
        )
    return {
        "schema": BENCH_SCHEMA_VERSION,
        "kind": "compress",
        "git_rev": git_rev(),
        "cases": cases,
    }


def _run_transport_case() -> Tuple[Dict, Dict[str, float]]:
    """Run the 4-worker sweep over both transports; returns the
    synthetic deterministic row and the transport timing block."""
    import time

    from repro.parallel.executor import sweep_dataset

    tc = TRANSPORT_SWEEP_CASE
    kwargs = dict(
        targets=list(tc["targets"]),
        fields=list(tc["fields"]),
        n_workers=int(tc["n_workers"]),
    )
    t0 = time.perf_counter()
    res_pickle = sweep_dataset(tc["dataset"], transport="pickle", **kwargs)
    pickle_wall = time.perf_counter() - t0
    t0 = time.perf_counter()
    res_shm = sweep_dataset(tc["dataset"], transport="shm", **kwargs)
    shm_wall = time.perf_counter() - t0
    # The data plane's correctness contract, asserted on the real
    # corpus: transports may only change *when* bytes move, never
    # *which* bytes come out.
    match = [r.as_dict() for r in res_pickle] == [r.as_dict() for r in res_shm]
    row = {
        "id": (
            f"{tc['dataset']}/{'+'.join(tc['fields'])}/transport-differential"
            f"/{tc['n_workers']}workers"
        ),
        "deterministic": {
            "transports_match": bool(match),
            "n_tasks": len(res_pickle),
        },
    }
    timing = {
        "pickle_wall_s": pickle_wall,
        "shm_wall_s": shm_wall,
        "shm_over_pickle": (
            round(shm_wall / pickle_wall, 4) if pickle_wall > 0 else 0.0
        ),
    }
    return row, timing


def run_sweep_bench() -> Dict:
    """Run the mini sweep under a trace, plus the shm-vs-pickle
    transport case; returns the ``BENCH_sweep.json`` document."""
    from repro.parallel.executor import sweep_dataset

    tr = observe.Trace()
    with observe.use_trace(tr):
        results = sweep_dataset(
            SWEEP_CASE["dataset"],
            targets=list(SWEEP_CASE["targets"]),
            fields=list(SWEEP_CASE["fields"]),
            n_workers=0,
            collect_trace=True,
        )
    per_field = [
        {
            "id": _case_id(r.dataset, r.field, "sz", r.target_psnr),
            "deterministic": {
                "achieved_psnr": round(r.actual_psnr, 6),
                "ratio": round(r.compression_ratio, 6),
                "bit_rate": round(r.bit_rate, 6),
                "met": bool(r.met),
            },
        }
        for r in results
    ]
    transport_row, transport_timing = _run_transport_case()
    per_field.append(transport_row)
    wall = sum(
        agg["duration_s"]
        for path, agg in tr.aggregate().items()
        if len(path) == 1
    )
    timing = {"wall_s": wall}
    timing.update(transport_timing)
    return {
        "schema": BENCH_SCHEMA_VERSION,
        "kind": "sweep",
        "git_rev": git_rev(),
        "case": {
            "dataset": SWEEP_CASE["dataset"],
            "fields": list(SWEEP_CASE["fields"]),
            "targets": list(SWEEP_CASE["targets"]),
            "results": per_field,
            "timing": timing,
        },
    }


def run_autotune_bench() -> Dict:
    """Run every autotune case under a trace; returns the
    ``BENCH_autotune.json`` document.

    Deterministic fields are everything the search's arithmetic pins
    down: the converged bound, the achieved value, the trial count and
    whether it converged.  The search runs without wall budgets,
    workers or ledger warm starts, so repeated runs are bit-identical.
    """
    from repro.autotune import autotune
    from repro.datasets.registry import get_dataset
    from repro.telemetry.registry import record_trace

    rows: List[Dict] = []
    wall = 0.0
    for dataset, field, codec, objective, target in AUTOTUNE_CASES:
        data = get_dataset(dataset).field(field)
        tr = observe.Trace()
        with observe.use_trace(tr):
            result = autotune(
                data,
                objective,
                target,
                codec=codec,
                tol=0.05,
                n_workers=0,
                keep_blob=False,
            )
        record_trace(tr)
        case_wall = sum(
            agg["duration_s"]
            for path, agg in tr.aggregate().items()
            if len(path) == 1
        )
        wall += case_wall
        rows.append(
            {
                "id": f"{dataset}/{field}/{codec}/{objective}={target:g}",
                "deterministic": {
                    "converged": bool(result.converged),
                    "eb_rel": round(result.eb_rel, 12),
                    "achieved": round(result.achieved, 6),
                    "n_trials": int(result.n_trials),
                    "subsample_trials": int(result.subsample_trials),
                    "stop_reason": result.stop_reason,
                },
                "timing": {"wall_s": case_wall},
            }
        )
    return {
        "schema": BENCH_SCHEMA_VERSION,
        "kind": "autotune",
        "git_rev": git_rev(),
        "case": {
            "cases": [
                f"{d}/{f}/{c}/{o}={t:g}" for d, f, c, o, t in AUTOTUNE_CASES
            ],
            "results": rows,
            "timing": {"wall_s": wall},
        },
    }


def run_service_bench() -> Dict:
    """Submit the service corpus through a live in-process service and
    return the ``BENCH_service.json`` document.

    Every job is submitted up front (so micro-batching and the queue
    actually engage) and awaited; the deterministic block per job is
    the serial pipeline's output -- compressed bytes, ratio, achieved
    PSNR, terminal state -- which the service must reproduce exactly.
    Queue/batch scheduling shows up only under ``timing``.
    """
    import time

    from repro.service.testing import ServiceThread

    t0 = time.perf_counter()
    rows: List[Dict] = []
    with ServiceThread(n_workers=2, no_ledger=True) as st:
        client = st.client(timeout=300)
        jobs = [
            (
                client.submit(
                    kind,
                    {
                        "dataset": dataset,
                        "field": field,
                        "target": target,
                    },
                ),
                (kind, dataset, field, target),
            )
            for kind, dataset, field, target in SERVICE_CASES
        ]
        for job_id, (kind, dataset, field, target) in jobs:
            doc = client.wait(job_id, timeout=300)
            result = doc.get("result") or {}
            rows.append(
                {
                    "id": f"{kind}:{_case_id(dataset, field, 'sz', target)}",
                    "deterministic": {
                        "state": doc.get("state"),
                        "compressed_bytes": result.get("compressed_bytes"),
                        "ratio": round(float(result.get("ratio", 0.0)), 6),
                        "achieved_psnr": round(
                            float(result.get("achieved_psnr", 0.0)), 6
                        ),
                    },
                    "timing": {
                        "queued_s": doc.get("queued_s"),
                        "running_s": doc.get("running_s"),
                    },
                }
            )
    wall = time.perf_counter() - t0
    return {
        "schema": BENCH_SCHEMA_VERSION,
        "kind": "service",
        "git_rev": git_rev(),
        "case": {
            "cases": [r["id"] for r in rows],
            "results": rows,
            "timing": {
                "wall_s": wall,
                "jobs_per_s": round(len(rows) / wall, 4) if wall > 0 else 0.0,
            },
        },
    }


def run_cache_bench() -> Dict:
    """Cold-vs-warm fixed-PSNR compression through a throwaway blob
    cache; returns the ``BENCH_cache.json`` document.

    Deterministic block: the cold run misses, the warm run hits, the
    warm bytes equal the cold bytes and the warm trace contains zero
    codec spans.  Any drift there means the cache is serving wrong
    bytes or silently recompressing -- both hard failures.  The
    warm-over-cold wall ratio lands under ``timing`` (soft warning via
    :data:`CACHE_WARM_THRESHOLD`).
    """
    import tempfile
    import time

    from repro.cache import CacheStore, blob_key, data_digest
    from repro.core.fixed_psnr import FixedPSNRCompressor
    from repro.datasets.registry import get_dataset

    cc = CACHE_CASE
    data = get_dataset(cc["dataset"]).field(cc["field"])
    target = float(cc["target"])

    def _cached_compress(store: CacheStore):
        """The CLI's compress-through-cache path, inlined."""
        key = blob_key(
            data_digest(data),
            codec=cc["codec"],
            mode="psnr",
            target=target,
            refine=None,
            entropy="huffman",
        )
        entry = store.get(key)
        if entry is not None:
            return entry.payload, True, key
        blob = FixedPSNRCompressor(target, codec=cc["codec"]).compress(data)
        store.put(key, blob, {"kind": "blob", "mode": "psnr"})
        return blob, False, key

    with tempfile.TemporaryDirectory() as tmp:
        store = CacheStore(root=tmp)
        t0 = time.perf_counter()
        cold_blob, cold_hit, key = _cached_compress(store)
        cold_wall = time.perf_counter() - t0
        tr = observe.Trace()
        t0 = time.perf_counter()
        with observe.use_trace(tr):
            warm_blob, warm_hit, _ = _cached_compress(store)
        warm_wall = time.perf_counter() - t0
        codec_spans = sum(
            1
            for rec in tr.records
            if rec.path and rec.path[-1] in _CODEC_SPAN_NAMES
        )
        # Eviction under pressure: a bound smaller than the one entry
        # must leave the store empty after the next sweep.
        tight = CacheStore(root=tmp, max_bytes=max(1, len(cold_blob) // 2))
        tight.evict()
        evicted = len(tight) == 0
    base_id = _case_id(cc["dataset"], cc["field"], cc["codec"], target)
    rows = [
        {
            "id": f"{base_id}/cold",
            "deterministic": {
                "hit": bool(cold_hit),
                "compressed_bytes": len(cold_blob),
                "ratio": round(data.nbytes / len(cold_blob), 6),
            },
        },
        {
            "id": f"{base_id}/warm",
            "deterministic": {
                "hit": bool(warm_hit),
                "identical": warm_blob == cold_blob,
                "codec_spans": codec_spans,
            },
        },
        {
            "id": f"{base_id}/eviction",
            "deterministic": {"evicted_under_pressure": bool(evicted)},
        },
    ]
    return {
        "schema": BENCH_SCHEMA_VERSION,
        "kind": "cache",
        "git_rev": git_rev(),
        "case": {
            "dataset": cc["dataset"],
            "cases": [r["id"] for r in rows],
            "results": rows,
            "timing": {
                "wall_s": cold_wall + warm_wall,
                "cold_wall_s": cold_wall,
                "warm_wall_s": warm_wall,
                "warm_over_cold": (
                    round(warm_wall / cold_wall, 4) if cold_wall > 0 else 0.0
                ),
            },
        },
    }


def write_baselines(directory: str = ".") -> List[Path]:
    """Run the full corpus and write both baseline files into
    ``directory``.  Returns the paths written."""
    outdir = Path(directory)
    outdir.mkdir(parents=True, exist_ok=True)
    written = []
    for name, doc in (
        ("compress", run_compress_bench()),
        ("sweep", run_sweep_bench()),
        ("autotune", run_autotune_bench()),
        ("service", run_service_bench()),
        ("cache", run_cache_bench()),
    ):
        path = outdir / BASELINE_FILES[name]
        path.write_text(json.dumps(doc, indent=2, sort_keys=True) + "\n")
        written.append(path)
    return written


# -- comparison ---------------------------------------------------------


def _diff_deterministic(prefix: str, base, fresh, failures: List[str]) -> None:
    """Recursively compare two deterministic sub-documents exactly."""
    if isinstance(base, dict) and isinstance(fresh, dict):
        for key in sorted(set(base) | set(fresh)):
            if key not in base:
                failures.append(f"{prefix}.{key}: new field (not in baseline)")
            elif key not in fresh:
                failures.append(f"{prefix}.{key}: missing from fresh run")
            else:
                _diff_deterministic(
                    f"{prefix}.{key}", base[key], fresh[key], failures
                )
        return
    if isinstance(base, list) and isinstance(fresh, list):
        if len(base) != len(fresh):
            failures.append(
                f"{prefix}: length {len(base)} -> {len(fresh)}"
            )
            return
        for i, (b, f) in enumerate(zip(base, fresh)):
            _diff_deterministic(f"{prefix}[{i}]", b, f, failures)
        return
    if base != fresh:
        failures.append(f"{prefix}: {base!r} -> {fresh!r}")


def _check_timing(
    prefix: str,
    base: Dict,
    fresh: Dict,
    time_factor: float,
    warnings: List[str],
) -> None:
    ratio = fresh.get("shm_over_pickle")
    if ratio is not None and float(ratio) > SHM_SPEEDUP_THRESHOLD:
        warnings.append(
            f"{prefix}: shm sweep took {float(ratio):.2f}x the pickle "
            f"sweep (target <= {SHM_SPEEDUP_THRESHOLD:g}x -- the "
            "shared-memory transport should be winning here)"
        )
    warm = fresh.get("warm_over_cold")
    if warm is not None and float(warm) > CACHE_WARM_THRESHOLD:
        warnings.append(
            f"{prefix}: warm (cache-hit) run took {float(warm):.2f}x the "
            f"cold run (target <= {CACHE_WARM_THRESHOLD:g}x -- a hit "
            "should be one file read, not a recompression)"
        )
    base_wall = float(base.get("wall_s", 0.0))
    fresh_wall = float(fresh.get("wall_s", 0.0))
    # Sub-millisecond walls are pure noise; don't warn on them.
    if base_wall < 1e-3 or fresh_wall < 1e-3:
        return
    if fresh_wall > base_wall * time_factor:
        warnings.append(
            f"{prefix}: wall time {base_wall:.4f}s -> {fresh_wall:.4f}s "
            f"(> x{time_factor:g} slower)"
        )
    elif fresh_wall * time_factor < base_wall:
        warnings.append(
            f"{prefix}: wall time {base_wall:.4f}s -> {fresh_wall:.4f}s "
            f"(> x{time_factor:g} faster -- update the baseline?)"
        )


def compare_bench(
    baseline: Dict, fresh: Dict, time_factor: float = 3.0
) -> Tuple[List[str], List[str]]:
    """Compare a fresh bench document against its baseline.

    Returns ``(failures, warnings)``: failures are deterministic-field
    drifts (the gate hard-fails), warnings are wall-time drifts beyond
    ``time_factor`` (the gate reports but passes).
    """
    failures: List[str] = []
    warnings: List[str] = []
    if baseline.get("schema") != fresh.get("schema"):
        failures.append(
            f"schema: {baseline.get('schema')} -> {fresh.get('schema')}"
        )
        return failures, warnings
    if baseline.get("kind") == "compress":
        base_cases = {c["id"]: c for c in baseline.get("cases", ())}
        fresh_cases = {c["id"]: c for c in fresh.get("cases", ())}
        for cid in sorted(set(base_cases) | set(fresh_cases)):
            if cid not in base_cases:
                failures.append(f"{cid}: case not in baseline")
                continue
            if cid not in fresh_cases:
                failures.append(f"{cid}: case missing from fresh run")
                continue
            _diff_deterministic(
                cid,
                base_cases[cid].get("deterministic", {}),
                fresh_cases[cid].get("deterministic", {}),
                failures,
            )
            _check_timing(
                cid,
                base_cases[cid].get("timing", {}),
                fresh_cases[cid].get("timing", {}),
                time_factor,
                warnings,
            )
    else:
        base_case = baseline.get("case", {})
        fresh_case = fresh.get("case", {})
        base_rows = {r["id"]: r for r in base_case.get("results", ())}
        fresh_rows = {r["id"]: r for r in fresh_case.get("results", ())}
        for rid in sorted(set(base_rows) | set(fresh_rows)):
            if rid not in base_rows:
                failures.append(f"{rid}: result not in baseline")
            elif rid not in fresh_rows:
                failures.append(f"{rid}: result missing from fresh run")
            else:
                _diff_deterministic(
                    rid,
                    base_rows[rid].get("deterministic", {}),
                    fresh_rows[rid].get("deterministic", {}),
                    failures,
                )
        _check_timing(
            f"{baseline.get('kind', 'sweep')}:"
            f"{base_case.get('dataset', 'corpus')}",
            base_case.get("timing", {}),
            fresh_case.get("timing", {}),
            time_factor,
            warnings,
        )
    return failures, warnings


def check_baselines(
    directory: str = ".",
    time_factor: float = 3.0,
    fresh_docs: Optional[Dict[str, Dict]] = None,
) -> Tuple[List[str], List[str]]:
    """Re-run the corpus (or use ``fresh_docs``, for tests) and compare
    against the baselines in ``directory``.

    Returns accumulated ``(failures, warnings)`` across both baseline
    files; a missing baseline file is itself a failure.
    """
    outdir = Path(directory)
    runners = {
        "compress": run_compress_bench,
        "sweep": run_sweep_bench,
        "autotune": run_autotune_bench,
        "service": run_service_bench,
        "cache": run_cache_bench,
    }
    failures: List[str] = []
    warnings: List[str] = []
    for name, runner in runners.items():
        path = outdir / BASELINE_FILES[name]
        if not path.exists():
            failures.append(
                f"{BASELINE_FILES[name]}: baseline missing "
                f"(run `fpzc bench` to create it)"
            )
            continue
        try:
            baseline = json.loads(path.read_text())
        except json.JSONDecodeError as exc:
            failures.append(f"{BASELINE_FILES[name]}: unreadable ({exc})")
            continue
        fresh = (
            fresh_docs[name] if fresh_docs and name in fresh_docs else runner()
        )
        f, w = compare_bench(baseline, fresh, time_factor=time_factor)
        failures.extend(f"{name}: {msg}" for msg in f)
        warnings.extend(f"{name}: {msg}" for msg in w)
    return failures, warnings
