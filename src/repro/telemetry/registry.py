"""Process-wide metrics registry with deterministic snapshots.

Three metric kinds, Prometheus-flavoured but dependency-free:

``Counter``
    Monotonically increasing additive quantity (bytes packed, fields
    compressed).  Integer-exact when fed integers.
``Gauge``
    Last-written reading (active worker count, last bin size).
``Histogram``
    **Fixed-bucket** distribution: the bucket boundaries are frozen at
    creation, observations land in a bucket via binary search, and the
    per-bucket counts are exact integers.  No adaptive resizing, no
    quantile sketches -- so a snapshot of two identical runs is
    bit-identical and can be golden-tested.

Determinism contract
--------------------
Everything in :meth:`MetricsRegistry.snapshot` is reproducible for a
deterministic workload **except** metrics registered with
``deterministic=False`` (wall-clock-derived rates, durations).
``snapshot(deterministic_only=True)`` drops those, mirroring
``Trace.deterministic_dict()``; regression tests must compare only
that view.

The module-level default registry (:func:`metrics`) is what the
pipeline's direct instrumentation writes to; tests that assert on it
should call :func:`reset_metrics` first.
"""

from __future__ import annotations

from bisect import bisect_left
from typing import Dict, Iterable, List, Optional, Sequence, Tuple

from repro.errors import ParameterError

__all__ = [
    "Counter",
    "Gauge",
    "Histogram",
    "MetricsRegistry",
    "metrics",
    "reset_metrics",
    "record_trace",
    "DEFAULT_BUCKETS",
    "RATIO_BUCKETS",
    "BYTE_BUCKETS",
    "BITS_BUCKETS",
    "THROUGHPUT_BUCKETS",
    "DB_DEVIATION_BUCKETS",
]

#: Generic magnitude buckets (decades with a 1-2-5 ladder would be
#: overkill; decades suffice for order-of-magnitude dashboards).
DEFAULT_BUCKETS: Tuple[float, ...] = (
    0.0, 1e-6, 1e-4, 1e-2, 0.1, 1.0, 10.0, 1e2, 1e3, 1e4, 1e6, 1e9,
)

#: Buckets for quantities in [0, 1] (hit ratios, outlier rates).
RATIO_BUCKETS: Tuple[float, ...] = (
    0.0, 0.001, 0.01, 0.05, 0.1, 0.25, 0.5, 0.75,
    0.9, 0.95, 0.99, 0.999, 1.0,
)

#: Byte-count buckets: powers of four from 64 B to 1 GiB.
BYTE_BUCKETS: Tuple[float, ...] = tuple(float(4**k * 64) for k in range(13))

#: Bits-per-symbol buckets (entropy-coder output rates).
BITS_BUCKETS: Tuple[float, ...] = (
    0.0, 0.1, 0.25, 0.5, 1.0, 2.0, 4.0, 8.0, 16.0, 32.0, 64.0,
)

#: MB/s throughput buckets (wall-clock-derived -> non-deterministic).
THROUGHPUT_BUCKETS: Tuple[float, ...] = tuple(float(2**k) for k in range(17))

#: Signed dB-deviation buckets for PSNR conformance (achieved minus
#: predicted): symmetric about zero, resolved to 0.1 dB near it because
#: the paper's Eq. 8 claim is a 0.1-5.0 dB corridor.
DB_DEVIATION_BUCKETS: Tuple[float, ...] = (
    -20.0, -10.0, -5.0, -2.0, -1.0, -0.5, -0.1, 0.0,
    0.1, 0.5, 1.0, 2.0, 5.0, 10.0, 20.0,
)


class Counter:
    """A monotonically increasing sum."""

    __slots__ = ("name", "help", "deterministic", "value")

    kind = "counter"

    def __init__(self, name: str, help: str = "", deterministic: bool = True):
        self.name = name
        self.help = help
        self.deterministic = deterministic
        self.value: float = 0

    def inc(self, n=1) -> None:
        """Add ``n`` (must be >= 0) to the counter."""
        if n < 0:
            raise ParameterError(f"counter {self.name} cannot decrease")
        self.value += n

    def as_dict(self) -> Dict:
        return {
            "kind": "counter",
            "value": self.value,
            "deterministic": self.deterministic,
            "help": self.help,
        }


class Gauge:
    """A last-written reading."""

    __slots__ = ("name", "help", "deterministic", "value")

    kind = "gauge"

    def __init__(self, name: str, help: str = "", deterministic: bool = True):
        self.name = name
        self.help = help
        self.deterministic = deterministic
        self.value: float = 0.0

    def set(self, v) -> None:
        """Overwrite the reading."""
        self.value = v

    def as_dict(self) -> Dict:
        return {
            "kind": "gauge",
            "value": self.value,
            "deterministic": self.deterministic,
            "help": self.help,
        }


class Histogram:
    """Fixed-bucket histogram with exact integer bucket counts.

    ``buckets`` are *upper* bounds, strictly increasing; an implicit
    ``+Inf`` bucket catches everything above the last bound.  An
    observation ``v`` lands in the first bucket with ``v <= bound``
    (Prometheus ``le`` semantics), found by binary search -- no float
    arithmetic is involved in the placement, so the mapping is exact.
    """

    __slots__ = ("name", "help", "deterministic", "buckets", "counts",
                 "count", "sum")

    kind = "histogram"

    def __init__(
        self,
        name: str,
        buckets: Sequence[float] = DEFAULT_BUCKETS,
        help: str = "",
        deterministic: bool = True,
    ):
        bounds = tuple(float(b) for b in buckets)
        if len(bounds) < 1 or any(
            b2 <= b1 for b1, b2 in zip(bounds, bounds[1:])
        ):
            raise ParameterError(
                f"histogram {name}: buckets must be strictly increasing"
            )
        self.name = name
        self.help = help
        self.deterministic = deterministic
        self.buckets = bounds
        self.counts: List[int] = [0] * (len(bounds) + 1)  # +Inf last
        self.count = 0
        self.sum: float = 0.0

    def observe(self, v) -> None:
        """Record one observation."""
        v = float(v)
        self.counts[bisect_left(self.buckets, v)] += 1
        self.count += 1
        self.sum += v

    def as_dict(self) -> Dict:
        return {
            "kind": "histogram",
            "buckets": list(self.buckets),
            "counts": list(self.counts),
            "count": self.count,
            "sum": self.sum,
            "deterministic": self.deterministic,
            "help": self.help,
        }


class MetricsRegistry:
    """Named metrics with get-or-create semantics and mergeable,
    deterministic snapshots."""

    def __init__(self) -> None:
        self._metrics: Dict[str, object] = {}

    # -- creation -------------------------------------------------------

    def _get_or_create(self, name: str, kind, **kwargs):
        existing = self._metrics.get(name)
        if existing is not None:
            if not isinstance(existing, kind):
                raise ParameterError(
                    f"metric {name!r} already registered as "
                    f"{type(existing).kind}, not {kind.kind}"
                )
            return existing
        metric = kind(name, **kwargs)
        self._metrics[name] = metric
        return metric

    def counter(
        self, name: str, help: str = "", deterministic: bool = True
    ) -> Counter:
        """Get or create the named counter."""
        return self._get_or_create(
            name, Counter, help=help, deterministic=deterministic
        )

    def gauge(
        self, name: str, help: str = "", deterministic: bool = True
    ) -> Gauge:
        """Get or create the named gauge."""
        return self._get_or_create(
            name, Gauge, help=help, deterministic=deterministic
        )

    def histogram(
        self,
        name: str,
        buckets: Sequence[float] = DEFAULT_BUCKETS,
        help: str = "",
        deterministic: bool = True,
    ) -> Histogram:
        """Get or create the named histogram.  The bucket layout is
        frozen by whichever call creates it first."""
        return self._get_or_create(
            name, Histogram, buckets=buckets, help=help,
            deterministic=deterministic,
        )

    # -- inspection -----------------------------------------------------

    def __contains__(self, name: str) -> bool:
        return name in self._metrics

    def names(self) -> List[str]:
        """Registered metric names, sorted."""
        return sorted(self._metrics)

    def get(self, name: str):
        """The metric object, or None."""
        return self._metrics.get(name)

    def snapshot(self, deterministic_only: bool = False) -> Dict:
        """All metrics as a JSON-able dict, sorted by name.

        ``deterministic_only=True`` drops metrics registered with
        ``deterministic=False`` (wall-clock-derived values) -- the view
        golden/regression tests must compare.
        """
        out: Dict[str, Dict] = {}
        for name in sorted(self._metrics):
            m = self._metrics[name]
            if deterministic_only and not m.deterministic:
                continue
            out[name] = m.as_dict()
        return {"schema": 1, "metrics": out}

    def reset(self) -> None:
        """Drop every metric (tests and process recycling)."""
        self._metrics.clear()

    # -- merging --------------------------------------------------------

    def merge_snapshot(self, snap: Dict) -> None:
        """Fold another registry's :meth:`snapshot` into this one
        (e.g. shipped back from a worker process).  Counters and
        histogram counts add; gauges take the incoming reading;
        histogram layouts must match.

        The determinism classification travels with the snapshot: a
        worker's wall-clock metrics stay non-deterministic after the
        merge, and a merge that would flip the flag on an existing
        metric is refused -- otherwise timing data could leak into
        ``snapshot(deterministic_only=True)`` and break golden
        comparisons.
        """
        for name, entry in snap.get("metrics", {}).items():
            kind = entry.get("kind")
            det = bool(entry.get("deterministic", True))
            # The description travels with the snapshot so a registry
            # built purely from merges still renders # HELP lines.
            doc = str(entry.get("help", ""))
            if kind == "counter":
                m = self.counter(name, help=doc, deterministic=det)
            elif kind == "gauge":
                m = self.gauge(name, help=doc, deterministic=det)
            elif kind == "histogram":
                m = self.histogram(
                    name, buckets=entry["buckets"], help=doc,
                    deterministic=det,
                )
            else:
                raise ParameterError(f"unknown metric kind {kind!r}")
            if m.deterministic != det:
                raise ParameterError(
                    f"metric {name!r}: merge would flip the deterministic "
                    f"flag ({m.deterministic} -> {det})"
                )
            if kind == "counter":
                m.inc(entry["value"])
            elif kind == "gauge":
                m.set(entry["value"])
            else:
                if list(m.buckets) != [float(b) for b in entry["buckets"]]:
                    raise ParameterError(
                        f"histogram {name!r}: incompatible bucket layouts"
                    )
                for i, c in enumerate(entry["counts"]):
                    m.counts[i] += int(c)
                m.count += int(entry["count"])
                m.sum += float(entry["sum"])


# -- the process-wide default registry ---------------------------------

_REGISTRY = MetricsRegistry()


def metrics() -> MetricsRegistry:
    """The process-wide registry the pipeline instruments into."""
    return _REGISTRY


def reset_metrics() -> None:
    """Reset the process-wide registry (tests)."""
    _REGISTRY.reset()


# -- feeding the registry from finished traces -------------------------

#: Span gauge keys that are wall-clock-derived and therefore land in
#: non-deterministic metrics.
_NON_DETERMINISTIC_GAUGES = ("throughput", "mb_per_s")


def record_trace(trace, registry: Optional[MetricsRegistry] = None) -> int:
    """Feed every finished :class:`~repro.observe.SpanRecord` of
    ``trace`` into ``registry`` (default: the process-wide one).

    Mapping, per record with leaf stage name ``<leaf>``:

    * ``trace.<leaf>.calls`` counter += 1,
    * ``trace.<leaf>.duration_s`` counter += duration
      (non-deterministic),
    * each span counter ``k`` -> counter ``trace.<leaf>.<k>`` += v,
    * each span gauge ``k`` -> histogram ``trace.<leaf>.<k>``
      observation (ratio-like keys get :data:`RATIO_BUCKETS`).

    Returns the number of records ingested.  Call this once per
    finished trace -- it is the single ingestion point, so no record is
    ever double-counted regardless of worker topology (worker records
    are merged into the parent trace first, then the parent ingests).
    """
    reg = registry if registry is not None else _REGISTRY
    n = 0
    for rec in trace.records:
        leaf = rec.path[-1]
        reg.counter(f"trace.{leaf}.calls").inc()
        reg.counter(
            f"trace.{leaf}.duration_s", deterministic=False
        ).inc(rec.duration_s)
        for k, v in rec.counters.items():
            reg.counter(f"trace.{leaf}.{k}").inc(v)
        for k, v in rec.gauges.items():
            if not isinstance(v, (int, float)):
                continue
            ratio_like = k.endswith(("ratio", "rate", "fraction"))
            deterministic = not any(
                tag in k for tag in _NON_DETERMINISTIC_GAUGES
            ) and not k.startswith("mem.")
            reg.histogram(
                f"trace.{leaf}.{k}",
                buckets=RATIO_BUCKETS if ratio_like else DEFAULT_BUCKETS,
                deterministic=deterministic,
            ).observe(v)
        n += 1
    return n
