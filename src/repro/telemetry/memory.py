"""Opt-in per-span peak-memory profiling via ``tracemalloc``.

``tracemalloc`` slows allocation-heavy code noticeably (every malloc
takes a bookkeeping detour), so this is strictly opt-in
(``--profile-mem``) and never part of the default trace overhead
budget.

The mechanics: :class:`profile_memory` starts ``tracemalloc`` and
installs itself as a span hook in :mod:`repro.observe`.  On span
entry it resets the peak accounting; on span exit it writes the peak
traced bytes observed *during* that span into the span's gauges as
``mem.peak_bytes``.  Because the reading lives in the ordinary span
gauges, it is picklable, crosses process boundaries inside span
records, and merges into parent traces exactly like every other
measurement -- no second transport needed.

Nesting: ``tracemalloc`` keeps a single global peak, so the profiler
maintains a frame stack.  Entering a child folds the peak observed so
far into the parent's running maximum before resetting; exiting a
child folds the child's peak back up.  A parent's reported peak is
therefore ``max(own allocations, any child's peak)`` -- the intuitive
"high-water mark while this span was open".

The peak is *traced Python allocation* bytes, an RSS-equivalent proxy:
numpy array buffers dominate this pipeline and are fully visible to
``tracemalloc``, while interpreter overhead and memory-mapped pages
are not.  Readings are non-deterministic in general (allocator
behaviour, GC timing) and are excluded from deterministic snapshots.
"""

from __future__ import annotations

import tracemalloc
from typing import List, Optional

import repro.observe as observe
from repro.errors import ParameterError

__all__ = ["profile_memory", "MEM_PEAK_KEY", "trace_peak_bytes"]

#: Span gauge key carrying the per-span peak traced bytes.
MEM_PEAK_KEY = "mem.peak_bytes"

#: The profiler currently installed, if any.  ``tracemalloc`` keeps one
#: global peak, so two overlapping profilers would double-register the
#: span hooks and fold every reading twice.
_ACTIVE: Optional["profile_memory"] = None


class profile_memory:
    """Context manager enabling per-span peak-memory profiling.

    Usage (a trace must be active for readings to land anywhere)::

        tr = observe.Trace()
        with observe.use_trace(tr), telemetry.memory.profile_memory():
            blob = compressor.compress(data)
        peak = trace_peak_bytes(tr)

    Re-entrant use is rejected: ``tracemalloc`` has one global state.
    """

    def __init__(self) -> None:
        # Each frame: the running maximum peak seen by that span,
        # including folded-up child peaks.
        self._frames: List[float] = []
        self._started_tracemalloc = False

    # -- span hooks -----------------------------------------------------

    def _on_enter(self, span) -> None:
        _, peak = tracemalloc.get_traced_memory()
        if self._frames:
            self._frames[-1] = max(self._frames[-1], float(peak))
        self._frames.append(0.0)
        tracemalloc.reset_peak()

    def _on_exit(self, span) -> None:
        if not self._frames:  # span opened before profiling started
            return
        _, peak = tracemalloc.get_traced_memory()
        own = max(self._frames.pop(), float(peak))
        span.set(MEM_PEAK_KEY, own)
        if self._frames:
            self._frames[-1] = max(self._frames[-1], own)
        tracemalloc.reset_peak()

    # -- context management ---------------------------------------------

    def __enter__(self) -> "profile_memory":
        global _ACTIVE
        if _ACTIVE is not None:
            raise ParameterError(
                "profile_memory is already active: tracemalloc keeps one "
                "global peak, so profilers cannot nest or overlap"
            )
        _ACTIVE = self
        if not tracemalloc.is_tracing():
            tracemalloc.start()
            self._started_tracemalloc = True
        observe.add_span_hook(self._on_enter, self._on_exit)
        return self

    def __exit__(self, exc_type, exc, tb) -> bool:
        global _ACTIVE
        observe.remove_span_hook(self._on_enter, self._on_exit)
        if self._started_tracemalloc:
            tracemalloc.stop()
            self._started_tracemalloc = False
        if _ACTIVE is self:
            _ACTIVE = None
        return False


def trace_peak_bytes(trace) -> Optional[float]:
    """The highest ``mem.peak_bytes`` reading anywhere in ``trace``
    (including records merged from worker processes), or None if the
    trace carries no memory readings."""
    peaks = [
        rec.gauges[MEM_PEAK_KEY]
        for rec in trace.records
        if MEM_PEAK_KEY in rec.gauges
    ]
    return max(peaks) if peaks else None
