"""The run ledger: durable per-run records in append-only JSONL.

Every traced ``compress``/``sweep`` appends one schema-versioned
record to ``.fpzc/ledger.jsonl`` (override with ``FPZC_LEDGER`` or the
CLI's ``--ledger``).  The ledger is what turns observability from
"what did this run cost" into "is the repo getting faster or slower"
-- FRaZ's fixed-ratio mode is literally an optimization loop over
repeated measured runs, and the ROADMAP judges every PR against the
perf trajectory this file accumulates.

Record layout (one JSON object per line)::

    {"schema": 2, "kind": "compress", "git_rev": "15d5cf0",
     "created": "2026-08-06T12:00:00+00:00",
     "dataset": "ATM", "field": "CLDHGH", "codec": "sz",
     "mode": "psnr",                 # psnr/nrmse/mse/ratio/bitrate/...
     "target": 80.0, "achieved": 80.4,
     "target_psnr": 80.0, "achieved_psnr": 80.4,
     "ratio": 11.2, "raw_bytes": 259200, "compressed_bytes": 23143,
     "counters": {...},              # deterministic, golden-comparable
     "stage_seconds": {...},         # per-stage wall time (noisy)
     "mem_peak_bytes": 1234567.0,    # present with --profile-mem
     "extra": {...}}                 # forward-compat spillover

Schema 2 adds the generic target triple (``mode``/``target``/
``achieved``): ``mode`` names the error-control mode the run used
(``psnr``, ``nrmse``, ``mse``, ``abs``, ``rel``, ``pw_rel``,
``bit_rate``, or an autotune objective such as ``ratio``) and
``target``/``achieved`` carry that mode's requested and measured
values.  ``target_psnr``/``achieved_psnr`` remain for PSNR runs and
for schema-1 readers.  Autotune runs append ``kind: "autotune"``
records whose ``extra`` holds the converged ``eb_rel``, trial counts
and the search trajectory -- the warm-start source for later searches
(:func:`repro.autotune.cache.warm_start`).

Resilient sweeps (``fpzc sweep --max-retries/--task-timeout``) add a
``resilience`` object to ``extra``: the policy knobs, a
``failed_fields`` list (field, target, error code, attempts) and the
``retries``/``timeouts`` totals for the run -- so the ledger records
not just how fast a sweep was but how much of it survived.

Schema 3 adds the **conformance payload**: fixed-PSNR runs store
``extra["conformance"]`` -- a single object for ``compress`` runs, a
list of per-target objects for ``sweep`` runs -- holding the Eq. 7/8
*predicted* PSNR next to the achieved one plus their signed
``deviation_db`` (see :mod:`repro.telemetry.drift`, which charts these
across history).  No top-level key changed, so the skew story is
unchanged in both directions: a schema-2 reader keeps the payload as
opaque ``extra`` content, and the schema-3 reader treats its absence
as "no conformance recorded".

Determinism contract: ``counters`` (and the byte/ratio fields) are
exact and reproducible; ``created``, ``stage_seconds`` and
``mem_peak_bytes`` are not.  Consumers comparing runs must restrict
themselves to the deterministic fields -- :func:`deterministic_view`
does exactly that.

Schema skew: readers keep unknown top-level keys in ``extra`` and
tolerate missing ones (-> None), so a ledger written by a newer schema
still loads; records that do not parse as JSON objects are skipped
with a count rather than poisoning the whole file.
"""

from __future__ import annotations

import datetime as _dt
import json
import os
import subprocess
from dataclasses import dataclass, field as dc_field, fields as dc_fields
from pathlib import Path
from typing import Dict, List, Optional, Tuple

from repro.errors import ParameterError

__all__ = [
    "LEDGER_SCHEMA_VERSION",
    "DEFAULT_LEDGER_PATH",
    "LedgerEntry",
    "ledger_path",
    "append_entry",
    "read_entries",
    "entry_from_trace",
    "deterministic_view",
    "git_rev",
]

#: Version of the ledger record schema (bumped to 3 for the
#: ``extra.conformance`` payload; readers tolerate either direction).
LEDGER_SCHEMA_VERSION = 3

#: Default ledger location, relative to the working directory.
DEFAULT_LEDGER_PATH = Path(".fpzc") / "ledger.jsonl"


@dataclass
class LedgerEntry:
    """One run's durable outcome."""

    kind: str
    schema: int = LEDGER_SCHEMA_VERSION
    git_rev: str = ""
    created: str = ""
    dataset: str = ""
    field: str = ""
    codec: str = ""
    mode: str = ""
    target: Optional[float] = None
    achieved: Optional[float] = None
    target_psnr: Optional[float] = None
    achieved_psnr: Optional[float] = None
    ratio: Optional[float] = None
    raw_bytes: Optional[int] = None
    compressed_bytes: Optional[int] = None
    counters: Dict = dc_field(default_factory=dict)
    stage_seconds: Dict = dc_field(default_factory=dict)
    mem_peak_bytes: Optional[float] = None
    extra: Dict = dc_field(default_factory=dict)

    def as_dict(self) -> Dict:
        """JSON-friendly representation (stable key order via dump)."""
        return {
            "schema": self.schema,
            "kind": self.kind,
            "git_rev": self.git_rev,
            "created": self.created,
            "dataset": self.dataset,
            "field": self.field,
            "codec": self.codec,
            "mode": self.mode,
            "target": self.target,
            "achieved": self.achieved,
            "target_psnr": self.target_psnr,
            "achieved_psnr": self.achieved_psnr,
            "ratio": self.ratio,
            "raw_bytes": self.raw_bytes,
            "compressed_bytes": self.compressed_bytes,
            "counters": dict(self.counters),
            "stage_seconds": dict(self.stage_seconds),
            "mem_peak_bytes": self.mem_peak_bytes,
            "extra": dict(self.extra),
        }

    @classmethod
    def from_dict(cls, d: Dict) -> "LedgerEntry":
        """Tolerant inverse of :meth:`as_dict` (see schema-skew notes
        in the module docstring)."""
        known = {f.name for f in dc_fields(cls)}
        kwargs = {k: v for k, v in d.items() if k in known}
        kwargs.setdefault("kind", "unknown")
        entry = cls(**kwargs)
        spill = {k: v for k, v in d.items() if k not in known}
        if spill:
            entry.extra = {**entry.extra, **spill}
        return entry


def git_rev(cwd: Optional[Path] = None) -> str:
    """The short git revision of ``cwd`` (or the working directory),
    with ``+dirty`` appended when the tree has local modifications;
    ``"unknown"`` outside a repository."""
    try:
        rev = subprocess.run(
            ["git", "rev-parse", "--short", "HEAD"],
            cwd=cwd, capture_output=True, text=True, timeout=10,
        )
        if rev.returncode != 0:
            return "unknown"
        out = rev.stdout.strip()
        dirty = subprocess.run(
            ["git", "status", "--porcelain"],
            cwd=cwd, capture_output=True, text=True, timeout=10,
        )
        if dirty.returncode == 0 and dirty.stdout.strip():
            out += "+dirty"
        return out
    except (OSError, subprocess.SubprocessError):
        return "unknown"


def ledger_path(override: Optional[str] = None) -> Path:
    """Resolve the ledger file path: explicit override, then the
    ``FPZC_LEDGER`` environment variable, then the default."""
    if override:
        return Path(override)
    env = os.environ.get("FPZC_LEDGER")
    if env:
        return Path(env)
    return DEFAULT_LEDGER_PATH


try:  # POSIX advisory locking; absent on some platforms.
    import fcntl as _fcntl
except ImportError:  # pragma: no cover - non-POSIX fallback
    _fcntl = None


def _write_line(target: Path, line: str) -> None:
    """Write one complete ledger line, safely under concurrent writers.

    Two layers of protection: the line goes out as a **single**
    ``os.write`` on an ``O_APPEND`` descriptor -- POSIX appends each
    ``write`` atomically at the current end of file, so concurrent
    writers cannot interleave *within* a line (pipe-style splitting
    only starts past ``PIPE_BUF``-ish sizes on regular files, which is
    why the advisory lock below also holds) -- and, where available, an
    ``flock`` around the write serializes whole lines even for records
    larger than any atomicity guarantee (autotune trajectories can run
    to tens of kilobytes).  The lock is advisory: foreign writers that
    skip it still can't corrupt readers worse than today, and
    :func:`read_entries` already skips torn lines by design.
    """
    data = line.encode("utf-8")
    fd = os.open(
        target, os.O_WRONLY | os.O_CREAT | os.O_APPEND, 0o644
    )
    try:
        if _fcntl is not None:
            _fcntl.flock(fd, _fcntl.LOCK_EX)
        try:
            view = memoryview(data)
            while view:  # a short write would tear the line; finish it
                n = os.write(fd, view)
                view = view[n:]
        finally:
            if _fcntl is not None:
                _fcntl.flock(fd, _fcntl.LOCK_UN)
    finally:
        os.close(fd)


def append_entry(entry: LedgerEntry, path: Optional[str] = None) -> Path:
    """Append ``entry`` to the ledger, creating directories as needed.
    Returns the path written.

    Safe under concurrent writers (multiple service workers, parallel
    CLI runs): the whole record is serialized first and written as one
    atomic append -- see :func:`_write_line`.
    """
    target = ledger_path(path)
    if target.parent != Path("."):
        target.parent.mkdir(parents=True, exist_ok=True)
    if not entry.created:
        entry.created = _dt.datetime.now(_dt.timezone.utc).isoformat(
            timespec="seconds"
        )
    if not entry.git_rev:
        entry.git_rev = git_rev()
    _write_line(target, json.dumps(entry.as_dict(), sort_keys=True) + "\n")
    return target


def read_entries(
    path: Optional[str] = None,
) -> Tuple[List[LedgerEntry], int]:
    """Read the ledger; returns ``(entries, n_skipped)`` where
    ``n_skipped`` counts unparseable lines (corrupt or foreign)."""
    target = ledger_path(path)
    if not target.exists():
        return [], 0
    entries: List[LedgerEntry] = []
    skipped = 0
    with open(target, "r", encoding="utf-8") as fh:
        for line in fh:
            line = line.strip()
            if not line:
                continue
            try:
                doc = json.loads(line)
            except json.JSONDecodeError:
                skipped += 1
                continue
            if not isinstance(doc, dict):
                skipped += 1
                continue
            try:
                entries.append(LedgerEntry.from_dict(doc))
            except TypeError:
                skipped += 1
    return entries, skipped


def deterministic_view(entry: LedgerEntry) -> Dict:
    """The golden-comparable part of an entry: exact counters and the
    byte/ratio/PSNR outcome, with every wall-clock or environmental
    field (timestamps, git rev, stage seconds, memory peaks) dropped."""
    return {
        "kind": entry.kind,
        "dataset": entry.dataset,
        "field": entry.field,
        "codec": entry.codec,
        "mode": entry.mode,
        "target": entry.target,
        "achieved": entry.achieved,
        "target_psnr": entry.target_psnr,
        "achieved_psnr": entry.achieved_psnr,
        "ratio": entry.ratio,
        "raw_bytes": entry.raw_bytes,
        "compressed_bytes": entry.compressed_bytes,
        "counters": dict(entry.counters),
    }


def entry_from_trace(
    kind: str,
    trace,
    *,
    dataset: str = "",
    field: str = "",
    codec: str = "",
    mode: str = "",
    target: Optional[float] = None,
    achieved: Optional[float] = None,
    target_psnr: Optional[float] = None,
    achieved_psnr: Optional[float] = None,
    ratio: Optional[float] = None,
    raw_bytes: Optional[int] = None,
    compressed_bytes: Optional[int] = None,
    extra: Optional[Dict] = None,
) -> LedgerEntry:
    """Build a ledger entry from a finished trace.

    Per-stage wall times come from the aggregated trace (keyed by leaf
    stage name, summed over repeats); deterministic counters are the
    summed span counters under the same keys; the memory peak is the
    highest ``mem.peak_bytes`` gauge, when profiling was on.
    """
    if kind not in ("compress", "sweep", "bench", "autotune"):
        raise ParameterError(f"unknown ledger entry kind {kind!r}")
    stage_seconds: Dict[str, float] = {}
    counters: Dict[str, float] = {}
    for path, agg in trace.aggregate().items():
        leaf = path[-1]
        stage_seconds[leaf] = stage_seconds.get(leaf, 0.0) + agg["duration_s"]
        for k, v in agg["counters"].items():
            key = f"{leaf}.{k}"
            counters[key] = counters.get(key, 0) + v
    from repro.telemetry.memory import trace_peak_bytes

    return LedgerEntry(
        kind=kind,
        dataset=dataset,
        field=field,
        codec=codec,
        mode=mode,
        target=target,
        achieved=achieved,
        target_psnr=target_psnr,
        achieved_psnr=achieved_psnr,
        ratio=ratio,
        raw_bytes=raw_bytes,
        compressed_bytes=compressed_bytes,
        counters=counters,
        stage_seconds=stage_seconds,
        mem_peak_bytes=trace_peak_bytes(trace),
        extra=dict(extra or {}),
    )
