"""Fixed-PSNR conformance monitoring: is Eq. 8 still holding?

The paper's headline claim (Section V, Eq. 7/8) is that the derived
error bound lands the achieved PSNR within 0.1-5.0 dB of the request,
tighter at high targets.  The ledger has recorded *achieved* values
since schema 1, but nothing compared them against the *prediction*
across runs -- a codec regression that silently widens the deviation
(a quantizer bias, a predictor bug that Eq. 7 no longer models) would
sail through ``fpzc bench --check``, which only guards bytes and wall
time.  This module closes that gap:

1. **At run time** :func:`record_conformance` stores the model's
   predicted PSNR next to the measured one -- as ``psnr.*`` metrics in
   the process registry and as an ``extra.conformance`` payload on the
   run's ledger entry (ledger schema 3; readers of either vintage
   tolerate the other).
2. **Over history** :func:`drift_report` groups conformance points
   per ``(dataset, codec, target)`` series and runs two standard
   control charts over each series' deviation (achieved - predicted,
   in dB):

   * **EWMA** (exponentially weighted moving average,
     ``z_i = lambda*x_i + (1-lambda)*z_{i-1}``) with the classic
     asymptotic control limit ``L * sigma * sqrt(lambda/(2-lambda))``
     -- sensitive to small sustained shifts;
   * **CUSUM** (tabular, in sigma units, slack ``k``, decision
     interval ``h``) -- sensitive to accumulating one-sided drift.

   The baseline mean/sigma come from the *first* half of the series
   (at least ``min_history`` points), so a recent regression cannot
   inflate its own yardstick.  Deterministic replays produce
   zero-variance series; ``sigma_floor`` (default 0.05 dB) keeps the
   limits finite and meaningfully tight.

3. **In CI** ``fpzc drift --check`` turns the verdict into an exit
   code: 0 in-control, 1 drifting, 2 insufficient history -- the
   accuracy-side sibling of ``fpzc bench --check``.
"""

from __future__ import annotations

import math
from dataclasses import dataclass, field as dc_field
from typing import Dict, Iterable, List, Optional, Sequence, Tuple

from repro.errors import ParameterError

__all__ = [
    "ConformancePoint",
    "record_conformance",
    "conformance_points",
    "SeriesVerdict",
    "DriftReport",
    "drift_report",
    "EXIT_IN_CONTROL",
    "EXIT_DRIFTING",
    "EXIT_INSUFFICIENT",
]

#: ``fpzc drift --check`` exit codes.
EXIT_IN_CONTROL = 0
EXIT_DRIFTING = 1
EXIT_INSUFFICIENT = 2


# ---------------------------------------------------------------------------
# recording
# ---------------------------------------------------------------------------


def record_conformance(
    dataset: str,
    codec: str,
    target_psnr: float,
    predicted_psnr: float,
    achieved_psnr: float,
    n_fields: int = 1,
    registry=None,
) -> Dict:
    """Record one conformance observation; returns the JSON payload
    destined for the ledger entry's ``extra["conformance"]``.

    Metrics written (all deterministic -- the deviation is a function
    of the data and the codec, never of the clock):

    * gauge ``psnr.predicted_db`` / ``psnr.achieved_db`` -- the pair,
    * histogram ``psnr.deviation_db`` -- achieved minus predicted,
      signed dB buckets,
    * counter ``psnr.conformance_records_total``.
    """
    if n_fields < 1:
        raise ParameterError("n_fields must be >= 1")
    deviation = float(achieved_psnr) - float(predicted_psnr)
    from repro.telemetry.registry import DB_DEVIATION_BUCKETS, metrics

    reg = registry if registry is not None else metrics()
    reg.gauge(
        "psnr.predicted_db", help="Eq. 7/8 predicted PSNR of the last run"
    ).set(float(predicted_psnr))
    reg.gauge(
        "psnr.achieved_db", help="measured PSNR of the last run"
    ).set(float(achieved_psnr))
    reg.histogram(
        "psnr.deviation_db",
        buckets=DB_DEVIATION_BUCKETS,
        help="achieved minus predicted PSNR per conformance record",
    ).observe(deviation)
    reg.counter(
        "psnr.conformance_records_total",
        help="conformance observations recorded",
    ).inc()
    return {
        "dataset": str(dataset),
        "codec": str(codec),
        "target_psnr": float(target_psnr),
        "predicted_psnr": float(predicted_psnr),
        "achieved_psnr": float(achieved_psnr),
        "deviation_db": deviation,
        "n_fields": int(n_fields),
    }


# ---------------------------------------------------------------------------
# reading history
# ---------------------------------------------------------------------------


@dataclass(frozen=True)
class ConformancePoint:
    """One historical conformance observation, flattened from a ledger
    entry's ``extra.conformance`` (a dict for ``compress`` runs, a list
    of per-target dicts for ``sweep`` runs)."""

    created: str
    dataset: str
    codec: str
    target_psnr: float
    predicted_psnr: float
    achieved_psnr: float
    deviation_db: float
    n_fields: int = 1

    @property
    def key(self) -> Tuple[str, str, float]:
        return (self.dataset, self.codec, self.target_psnr)


def _point_from_payload(created: str, doc: Dict) -> Optional[ConformancePoint]:
    try:
        return ConformancePoint(
            created=created,
            dataset=str(doc["dataset"]),
            codec=str(doc["codec"]),
            target_psnr=float(doc["target_psnr"]),
            predicted_psnr=float(doc["predicted_psnr"]),
            achieved_psnr=float(doc["achieved_psnr"]),
            deviation_db=float(
                doc.get(
                    "deviation_db",
                    float(doc["achieved_psnr"]) - float(doc["predicted_psnr"]),
                )
            ),
            n_fields=int(doc.get("n_fields", 1)),
        )
    except (KeyError, TypeError, ValueError):
        # A malformed payload (hand-edited ledger, foreign writer) is
        # skipped, never fatal -- same tolerance as the ledger reader.
        return None


def conformance_points(entries: Iterable) -> List[ConformancePoint]:
    """Extract every conformance observation from ledger ``entries``
    in file order.  Entries without one (schema <= 2, or untargeted
    runs) contribute nothing; malformed payloads are skipped."""
    points: List[ConformancePoint] = []
    for e in entries:
        payload = (getattr(e, "extra", None) or {}).get("conformance")
        if payload is None:
            continue
        docs = payload if isinstance(payload, (list, tuple)) else (payload,)
        for doc in docs:
            if isinstance(doc, dict):
                p = _point_from_payload(getattr(e, "created", ""), doc)
                if p is not None:
                    points.append(p)
    return points


# ---------------------------------------------------------------------------
# control charts
# ---------------------------------------------------------------------------


@dataclass(frozen=True)
class SeriesVerdict:
    """The chart state of one ``(dataset, codec, target)`` series."""

    dataset: str
    codec: str
    target_psnr: float
    n: int
    deviations: Tuple[float, ...]
    status: str  # "ok" | "drifting" | "insufficient"
    baseline_mean: float = 0.0
    baseline_sigma: float = 0.0
    latest: float = 0.0
    ewma: float = 0.0
    ewma_limit: float = 0.0
    cusum_pos: float = 0.0
    cusum_neg: float = 0.0
    cusum_limit: float = 0.0
    reason: str = ""

    @property
    def key(self) -> Tuple[str, str, float]:
        return (self.dataset, self.codec, self.target_psnr)

    def as_dict(self) -> Dict:
        return {
            "dataset": self.dataset,
            "codec": self.codec,
            "target_psnr": self.target_psnr,
            "n": self.n,
            "deviations": list(self.deviations),
            "status": self.status,
            "baseline_mean": self.baseline_mean,
            "baseline_sigma": self.baseline_sigma,
            "latest": self.latest,
            "ewma": self.ewma,
            "ewma_limit": self.ewma_limit,
            "cusum_pos": self.cusum_pos,
            "cusum_neg": self.cusum_neg,
            "cusum_limit": self.cusum_limit,
            "reason": self.reason,
        }


@dataclass(frozen=True)
class DriftReport:
    """Every series' verdict plus the parameters that produced them."""

    series: Tuple[SeriesVerdict, ...]
    params: Dict = dc_field(default_factory=dict)

    @property
    def status(self) -> str:
        """``"drifting"`` if any series alarms; ``"insufficient"``
        when *no* series has enough history to judge (including an
        empty ledger); ``"ok"`` otherwise."""
        if any(s.status == "drifting" for s in self.series):
            return "drifting"
        if not any(s.status == "ok" for s in self.series):
            return "insufficient"
        return "ok"

    @property
    def exit_code(self) -> int:
        return {
            "ok": EXIT_IN_CONTROL,
            "drifting": EXIT_DRIFTING,
            "insufficient": EXIT_INSUFFICIENT,
        }[self.status]

    def as_dict(self) -> Dict:
        return {
            "status": self.status,
            "params": dict(self.params),
            "series": [s.as_dict() for s in self.series],
        }

    def render(self) -> str:
        """Fixed-width text table (what ``fpzc drift`` prints)."""
        if not self.series:
            return "drift: no conformance history in the ledger"
        header = (
            f"{'dataset':<14} {'codec':<9} {'target':>7} {'n':>4} "
            f"{'mean dev':>9} {'latest':>8} {'EWMA':>8} {'CUSUM+':>7} "
            f"{'CUSUM-':>7}  status"
        )
        lines = [
            f"PSNR conformance drift ({self.status})",
            header,
            "-" * len(header),
        ]
        for s in self.series:
            if s.status == "insufficient":
                tail = f"{'-':>9} {'-':>8} {'-':>8} {'-':>7} {'-':>7}"
            else:
                tail = (
                    f"{s.baseline_mean:>+9.3f} {s.latest:>+8.3f} "
                    f"{s.ewma:>+8.3f} {s.cusum_pos:>7.2f} {s.cusum_neg:>7.2f}"
                )
            line = (
                f"{s.dataset:<14.14} {s.codec:<9.9} {s.target_psnr:>7.1f} "
                f"{s.n:>4} {tail}  {s.status}"
            )
            if s.reason:
                line += f" ({s.reason})"
            lines.append(line)
        return "\n".join(lines)


def _mean_std(xs: Sequence[float]) -> Tuple[float, float]:
    n = len(xs)
    mean = sum(xs) / n
    var = sum((x - mean) ** 2 for x in xs) / n
    return mean, math.sqrt(var)


def _judge_series(
    key: Tuple[str, str, float],
    deviations: Sequence[float],
    *,
    ewma_lambda: float,
    sigma_limit: float,
    cusum_k: float,
    cusum_h: float,
    min_history: int,
    sigma_floor: float,
) -> SeriesVerdict:
    dataset, codec, target = key
    n = len(deviations)
    if n < min_history:
        return SeriesVerdict(
            dataset=dataset,
            codec=codec,
            target_psnr=target,
            n=n,
            deviations=tuple(deviations),
            status="insufficient",
            reason=f"need >= {min_history} runs, have {n}",
        )
    # Baseline window: the first half of the series, but never fewer
    # than min_history points.  A fresh regression only appears in the
    # *tail*, so it cannot widen the sigma it is judged against.
    baseline_n = max(min_history, n // 2)
    mean0, sigma0 = _mean_std(deviations[:baseline_n])
    sigma = max(sigma0, sigma_floor)
    ewma = deviations[0]
    for x in deviations[1:]:
        ewma = ewma_lambda * x + (1.0 - ewma_lambda) * ewma
    ewma_limit = (
        sigma_limit * sigma * math.sqrt(ewma_lambda / (2.0 - ewma_lambda))
    )
    s_pos = s_neg = 0.0
    for x in deviations:
        z = (x - mean0) / sigma
        s_pos = max(0.0, s_pos + z - cusum_k)
        s_neg = max(0.0, s_neg - z - cusum_k)
    reasons = []
    if abs(ewma - mean0) > ewma_limit:
        reasons.append(
            f"EWMA {ewma:+.3f} dB outside "
            f"{mean0:+.3f}+/-{ewma_limit:.3f} dB"
        )
    if max(s_pos, s_neg) > cusum_h:
        reasons.append(
            f"CUSUM {max(s_pos, s_neg):.2f} sigma > {cusum_h:g}"
        )
    return SeriesVerdict(
        dataset=dataset,
        codec=codec,
        target_psnr=target,
        n=n,
        deviations=tuple(deviations),
        status="drifting" if reasons else "ok",
        baseline_mean=mean0,
        baseline_sigma=sigma,
        latest=deviations[-1],
        ewma=ewma,
        ewma_limit=ewma_limit,
        cusum_pos=s_pos,
        cusum_neg=s_neg,
        cusum_limit=cusum_h,
        reason="; ".join(reasons),
    )


def drift_report(
    entries: Iterable,
    *,
    ewma_lambda: float = 0.3,
    sigma_limit: float = 3.0,
    cusum_k: float = 0.5,
    cusum_h: float = 5.0,
    min_history: int = 2,
    sigma_floor: float = 0.05,
) -> DriftReport:
    """Chart every conformance series found in ledger ``entries``.

    Parameters are the standard control-chart knobs: ``ewma_lambda``
    the EWMA smoothing weight in (0, 1], ``sigma_limit`` the EWMA
    limit in sigmas, ``cusum_k``/``cusum_h`` the CUSUM slack and
    decision interval in sigma units, ``min_history`` the minimum
    series length to judge at all, and ``sigma_floor`` the smallest
    usable sigma in dB (deterministic replays have zero variance).
    """
    if not (0.0 < ewma_lambda <= 1.0):
        raise ParameterError("ewma_lambda must be in (0, 1]")
    if sigma_limit <= 0 or cusum_h <= 0 or cusum_k < 0:
        raise ParameterError(
            "sigma_limit/cusum_h must be positive and cusum_k >= 0"
        )
    if min_history < 2:
        raise ParameterError(
            "min_history must be >= 2 (one point cannot chart)"
        )
    if sigma_floor <= 0:
        raise ParameterError("sigma_floor must be positive")
    groups: Dict[Tuple[str, str, float], List[float]] = {}
    for p in conformance_points(entries):
        groups.setdefault(p.key, []).append(p.deviation_db)
    params = {
        "ewma_lambda": ewma_lambda,
        "sigma_limit": sigma_limit,
        "cusum_k": cusum_k,
        "cusum_h": cusum_h,
        "min_history": min_history,
        "sigma_floor": sigma_floor,
    }
    series = tuple(
        _judge_series(
            key,
            groups[key],
            ewma_lambda=ewma_lambda,
            sigma_limit=sigma_limit,
            cusum_k=cusum_k,
            cusum_h=cusum_h,
            min_history=min_history,
            sigma_floor=sigma_floor,
        )
        for key in sorted(groups)
    )
    return DriftReport(series=series, params=params)
