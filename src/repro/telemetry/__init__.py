"""Durable observability: metrics, memory profiles, and the run ledger.

:mod:`repro.observe` answers "what did *this* run cost, stage by
stage" -- and the answer dies with the process.  This package is the
durable layer on top of it, the foundation the regression gate and the
perf trajectory are built on:

* :mod:`repro.telemetry.registry` -- a process-wide
  :class:`MetricsRegistry` of counters, gauges and **deterministic
  fixed-bucket histograms** (exact integer bucket counts, so two
  identical runs produce bit-identical snapshots).  Fed from finished
  :class:`repro.observe.SpanRecord` instances via :func:`record_trace`
  plus direct instrumentation in the pipeline packages.
* :mod:`repro.telemetry.memory` -- opt-in per-span peak-memory
  profiling via ``tracemalloc`` (``--profile-mem``); readings travel
  inside span records, so they merge across worker processes exactly
  like every other trace datum.
* :mod:`repro.telemetry.ledger` -- the run ledger: one schema-versioned
  JSONL record per traced ``compress``/``sweep``, appended to
  ``.fpzc/ledger.jsonl``, so the repo can answer "did this PR make
  compression slower or hungrier?" across commits.
* :mod:`repro.telemetry.bench` -- the regression gate: ``fpzc bench``
  writes ``BENCH_compress.json``/``BENCH_sweep.json`` baselines,
  ``fpzc bench --check`` re-runs the corpus and compares (hard-fail on
  deterministic counter drift, soft-warn on wall-time drift).
* :mod:`repro.telemetry.export` -- trace interchange: span trees as
  Chrome trace-event JSON (``--trace-perfetto``; pool sweeps render as
  parallel per-worker tracks in Perfetto) and collapsed-stack text for
  flamegraph tooling.
* :mod:`repro.telemetry.drift` -- the accuracy gate: every fixed-PSNR
  run records the Eq. 7/8 *predicted* PSNR next to the achieved one
  (ledger schema 3), and ``fpzc drift --check`` runs EWMA/CUSUM
  control charts over that history (exit 0 in-control, 1 drifting,
  2 insufficient history).

Separation of concerns (see docs/OBSERVABILITY.md for the full
decision table): a **trace** is one run's stage tree, a **metric** is a
process-lifetime aggregate, a **ledger entry** is one run's outcome
made durable.  ``bench`` and ``ledger`` import data sets and
subprocess machinery, so they stay lazy; importing this package costs
only the registry.
"""

from __future__ import annotations

from repro.telemetry.registry import (
    BYTE_BUCKETS,
    DEFAULT_BUCKETS,
    RATIO_BUCKETS,
    Counter,
    Gauge,
    Histogram,
    MetricsRegistry,
    metrics,
    record_trace,
    reset_metrics,
)

__all__ = [
    "Counter",
    "Gauge",
    "Histogram",
    "MetricsRegistry",
    "metrics",
    "record_trace",
    "reset_metrics",
    "DEFAULT_BUCKETS",
    "RATIO_BUCKETS",
    "BYTE_BUCKETS",
]
