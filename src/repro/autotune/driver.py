"""The autotune driver: subsampling, caching, fan-out, telemetry.

:func:`autotune` is the subsystem's front door.  It layers, from the
inside out:

1. the raw objective evaluation (one trial compression,
   :mod:`repro.autotune.objective`),
2. trial memoization (:class:`repro.autotune.cache.TrialCache`),
3. **subsampled early iterations**: above a size threshold the search
   first runs on a strided subsample (~``subsample_target`` elements,
   dimensionality preserved), then re-anchors on the full data from
   the subsample's converged bound.  Small-field trials are an order
   of magnitude cheaper, and the full-data confirmation pass corrects
   the subsample's rate bias within a couple of trials;
4. **parallel pre-probes**: with ``n_workers > 0`` a small geometric
   fan of bounds around the warm start is evaluated concurrently
   through :func:`repro.parallel.executor.map_tasks` and fed into the
   cache, so the sequential search's first probes are cache hits;
5. the searcher itself (:mod:`repro.autotune.search`);
6. telemetry: the whole run is an ``autotune`` span, every trial an
   ``autotune.trial`` span, and the process
   :class:`~repro.telemetry.registry.MetricsRegistry` accumulates
   search counters (trials, cache hits, convergence, bound
   trajectory).

Degenerate inputs fail fast: a constant (zero-range) field has no
meaningful rate-distortion trade-off, so the driver raises
:class:`~repro.errors.ParameterError` instead of looping a search that
cannot converge.
"""

from __future__ import annotations

from dataclasses import dataclass, field as dc_field
from typing import Dict, List, Optional, Sequence

import numpy as np

import repro.observe as observe
from repro.autotune.cache import (
    TrialCache,
    fingerprint,
    warm_start,
    warm_start_from_store,
)
from repro.autotune.objective import Objective, get_objective
from repro.autotune.search import (
    DEFAULT_EB_HI,
    DEFAULT_EB_LO,
    SearchResult,
    relative_error,
    search,
)
from repro.errors import ParameterError
from repro.metrics.distortion import value_range

__all__ = ["AutotuneResult", "autotune"]

#: Fields above this many elements run the subsampled pre-search.
SUBSAMPLE_THRESHOLD = 1 << 17

#: Approximate element count of the strided subsample.
SUBSAMPLE_TARGET = 1 << 15

#: Geometric spacing of the parallel pre-probe fan (in eb space).
_PROBE_SPREAD = 8.0


@dataclass
class AutotuneResult:
    """A finished autotune run: the converged bound and how it was
    found.  ``search`` is the full-data :class:`SearchResult`;
    ``blob`` is the compressed container at the returned bound."""

    objective: str
    codec: str
    target: float
    tolerance: float
    converged: bool
    eb_rel: float
    achieved: float
    n_trials: int
    cache_hits: int
    subsample_trials: int
    stop_reason: str
    search: SearchResult
    subsample_search: Optional[SearchResult] = None
    blob: Optional[bytes] = dc_field(default=None, repr=False)
    trial_history: List = dc_field(default_factory=list)

    @property
    def deviation(self) -> float:
        return relative_error(self.achieved, self.target)

    def as_dict(self) -> Dict:
        """JSON-friendly summary (without the payload)."""
        return {
            "objective": self.objective,
            "codec": self.codec,
            "target": self.target,
            "tolerance": self.tolerance,
            "converged": self.converged,
            "eb_rel": self.eb_rel,
            "achieved": self.achieved,
            "deviation": self.deviation,
            "n_trials": self.n_trials,
            "cache_hits": self.cache_hits,
            "subsample_trials": self.subsample_trials,
            "stop_reason": self.stop_reason,
            "search": self.search.as_dict(),
        }

    def report(self) -> str:
        """Human-readable convergence report."""
        head = (
            f"autotune[{self.objective} -> {self.target:g} "
            f"+/- {100 * self.tolerance:g}%, codec {self.codec}]: "
            f"{self.n_trials} trials "
            f"({self.subsample_trials} subsampled, "
            f"{self.cache_hits} cache hits)"
        )
        return head + "\n" + self.search.report()


def _strided_subsample(data: np.ndarray, target_elements: int) -> np.ndarray:
    """Deterministic strided subsample preserving dimensionality.

    One shared stride per axis (ceil of the per-axis reduction factor),
    so the subsample keeps the field's smoothness structure -- which is
    what the codecs' rate depends on -- rather than shuffling points.
    """
    if data.size <= target_elements:
        return data
    ndim = max(1, data.ndim)
    factor = (data.size / target_elements) ** (1.0 / ndim)
    strides = tuple(
        max(1, int(np.ceil(min(factor, n)))) for n in data.shape
    )
    view = data[tuple(slice(None, None, s) for s in strides)]
    return np.ascontiguousarray(view)


def _probe_task(spec: Dict, payload, eb_rel: float):
    """Module-level trial evaluation for worker processes: rebuild the
    objective from its picklable spec and run one trial.  ``payload``
    is any :mod:`repro.parallel.shm` array payload -- a plain ndarray
    on the pickle path, a zero-copy ref on the shm path."""
    from repro.parallel.shm import open_payload

    obj = get_objective(
        spec["name"], spec["target"], codec=spec["codec"],
        **spec["codec_options"],
    )
    with open_payload(payload) as data:
        return obj.evaluate(data, eb_rel)


def _prefill_probes(
    objective: Objective,
    data: np.ndarray,
    fp: str,
    cache: TrialCache,
    center: float,
    n_workers: int,
    lo: float,
    hi: float,
    transport: str = "auto",
    executor=None,
) -> None:
    """Evaluate a geometric fan of bounds around ``center`` in
    parallel and feed the cache (speculative FRaZ-style fan-out).

    Every probe evaluates the *same* array, so with shm transport the
    field is shared once and each worker attaches to it -- the probe
    fan's payload cost no longer scales with the number of bounds.
    With ``executor`` the fan runs on a long-lived
    :class:`repro.parallel.executor.Executor` (its arena shares the
    payload; nothing is torn down here).
    """
    from repro.parallel.executor import map_tasks
    from repro.parallel.shm import ShmArena, resolve_transport

    bounds = sorted(
        {
            min(hi, max(lo, b))
            for b in (
                center / _PROBE_SPREAD,
                center,
                center * _PROBE_SPREAD,
            )
        }
    )
    todo = [
        b for b in bounds
        if cache.get(fp, objective.codec, objective.name, b) is None
    ]
    # The misses get re-counted when the search probes them via the
    # cache; correct the double count.
    cache.misses -= len(todo)
    spec = objective.spec()
    arena: Optional[ShmArena] = None
    try:
        if executor is not None:
            from repro.parallel.shm import ShmArrayRef

            shared = None
            if todo and executor.arena is not None:
                shared = executor.arena.share(data)
            payload = shared if shared is not None else data
            try:
                trials = map_tasks(
                    _probe_task,
                    [(spec, payload, b) for b in todo],
                    executor=executor,
                )
            finally:
                # Probe payloads are one-shot; don't pin the segment
                # for the executor's whole lifetime.
                if isinstance(shared, ShmArrayRef):
                    executor.arena.release(shared)
        else:
            if todo and resolve_transport(transport, n_workers):
                arena = ShmArena()
                payload = arena.share(data)
            else:
                payload = data
            trials = map_tasks(
                _probe_task,
                [(spec, payload, b) for b in todo],
                n_workers=n_workers,
            )
    finally:
        if arena is not None:
            arena.close()
    for t in trials:
        cache.put(fp, objective.codec, objective.name, t)


def autotune(
    data,
    objective,
    target: Optional[float] = None,
    *,
    codec: str = "sz",
    tol: float = 0.05,
    max_trials: int = 12,
    max_seconds: Optional[float] = None,
    eb_lo: float = DEFAULT_EB_LO,
    eb_hi: float = DEFAULT_EB_HI,
    initial: Optional[float] = None,
    subsample_threshold: int = SUBSAMPLE_THRESHOLD,
    subsample_target: int = SUBSAMPLE_TARGET,
    n_workers: int = 0,
    transport: str = "auto",
    executor=None,
    cache: Optional[TrialCache] = None,
    store=None,
    ledger_entries: Optional[Sequence] = None,
    keep_blob: bool = True,
    **codec_options,
) -> AutotuneResult:
    """Search the error-bound space until ``objective`` meets its
    target on ``data``.

    Parameters
    ----------
    data:
        The array to tune for (float32/float64, any dimensionality).
    objective:
        A built-in objective name (``"ratio"``, ``"bitrate"``,
        ``"psnr"``, ``"nrmse"``, ``"mse"``, ``"ssim"``,
        ``"max_error"``) with ``target`` giving the value to hit, or a
        ready :class:`~repro.autotune.objective.Objective` instance
        (then ``target``/``codec``/``codec_options`` are taken from
        it).
    tol:
        Relative convergence tolerance (0.05 = within 5%).
    max_trials, max_seconds:
        Hard budget across subsampled *and* full-data trials.
    initial:
        Explicit warm-start bound; otherwise mined from
        ``ledger_entries`` (see :func:`repro.autotune.cache.warm_start`)
        and finally the objective's model-based default guess.
    n_workers:
        Parallel pre-probe fan-out through
        :func:`repro.parallel.executor.map_tasks` (0 = inline, no fan).
    transport:
        How probe payloads reach the workers: ``"auto"``/``"shm"``
        share the field once through :mod:`repro.parallel.shm`,
        ``"pickle"`` ships a copy per probe.  Results are identical.
    executor:
        An optional long-lived
        :class:`repro.parallel.executor.Executor`; the probe fan then
        runs on its warm pool (``n_workers``/``transport`` are taken
        from it) instead of spawning one per call.
    cache:
        A :class:`TrialCache` to reuse across calls (sibling fields,
        repeated targets); a private one is created per call otherwise.
    store:
        A :class:`repro.cache.CacheStore` backing the trial cache, so
        trials persist across processes and the warm start can mine
        prior runs' achieved PSNR from the store when the ledger has
        nothing (ignored when an explicit ``cache`` is passed that
        already has a backend).
    keep_blob:
        Keep the compressed container of the best full-data trial on
        the result (so converged output needs no recompression).

    Raises
    ------
    ParameterError
        On a constant (zero-range), empty or non-finite field, bad
        budgets/tolerances, or an unknown objective/codec.
    """
    data = np.asarray(data)
    if data.size == 0:
        raise ParameterError("cannot autotune an empty array")
    if value_range(data) == 0.0:
        raise ParameterError(
            "cannot autotune a constant field: every bound yields the "
            "same degenerate container, so no target is reachable"
        )
    if isinstance(objective, str):
        if target is None:
            raise ParameterError(
                f"objective {objective!r} needs a target value"
            )
        obj = get_objective(objective, target, codec=codec, **codec_options)
    else:
        obj = objective
        if target is not None and float(target) != obj.target:
            raise ParameterError(
                "pass the target either on the objective or as an "
                "argument, not two different values"
            )
    from repro.telemetry.registry import RATIO_BUCKETS, metrics

    reg = metrics()
    if cache is None:
        cache = TrialCache(store=store)
    elif store is not None and cache.store is None:
        cache.store = store
    fan_out = (
        executor is not None and not executor.inline
    ) or n_workers > 0
    fp = fingerprint(data)
    trace = observe.current_trace()
    with trace.span("autotune") as root:
        if trace.enabled:
            # Gauges are numeric; the objective name travels in the
            # ledger record, not the trace.
            root.set("target", float(obj.target))
        # -- warm start --------------------------------------------------
        guess = initial
        if guess is None and ledger_entries:
            guess = warm_start(obj, ledger_entries)
        if guess is None and cache.store is not None:
            guess = warm_start_from_store(obj, cache.store, fp)
        if guess is None:
            guess = obj.default_guess(data)
        guess = min(eb_hi, max(eb_lo, float(guess)))
        history: List = []
        budget_left = int(max_trials)

        def tracked(evaluate):
            def wrapped(eb_rel: float):
                t = evaluate(eb_rel)
                history.append(t)
                if not t.cached:
                    reg.counter("autotune.trials_total").inc()
                    reg.histogram("autotune.trial_eb_rel").observe(t.eb_rel)
                return t

            return wrapped

        # -- subsampled pre-search --------------------------------------
        sub_result = None
        sub_trials = 0
        if data.size > subsample_threshold:
            sub = _strided_subsample(data, subsample_target)
            sub_fp = fingerprint(sub)
            with trace.span("autotune.subsample") as sp:
                if trace.enabled:
                    sp.set("elements", int(sub.size))
                if fan_out:
                    _prefill_probes(
                        obj, sub, sub_fp, cache, guess, n_workers,
                        eb_lo, eb_hi, transport=transport,
                        executor=executor,
                    )
                sub_eval = tracked(
                    cache.wrap(
                        lambda eb: obj.evaluate(sub, eb),
                        sub_fp, obj.codec, obj.name,
                    )
                )
                # Leave at least a third of the budget for the
                # full-data confirmation search.
                sub_budget = max(1, budget_left - max(2, budget_left // 3))
                sub_result = search(
                    sub_eval,
                    obj.target,
                    increasing=obj.increasing,
                    tol=tol,
                    initial=guess,
                    lo=eb_lo,
                    hi=eb_hi,
                    max_trials=sub_budget,
                    max_seconds=max_seconds,
                )
            sub_trials = sub_result.n_trials
            budget_left -= sub_trials
            guess = sub_result.eb_rel
        elif fan_out:
            _prefill_probes(
                obj, data, fp, cache, guess, n_workers, eb_lo, eb_hi,
                transport=transport, executor=executor,
            )
        # -- full-data search -------------------------------------------
        full_eval = tracked(
            cache.wrap(
                lambda eb: obj.evaluate(data, eb, keep_blob=keep_blob),
                fp, obj.codec, obj.name,
            )
        )
        result = search(
            full_eval,
            obj.target,
            increasing=obj.increasing,
            tol=tol,
            initial=guess,
            lo=eb_lo,
            hi=eb_hi,
            max_trials=max(1, budget_left),
            max_seconds=max_seconds,
        )
        best_blob: Optional[bytes] = None
        if keep_blob:
            for t in result.trials:
                if t.eb_rel == result.eb_rel and t.blob is not None:
                    best_blob = t.blob
            if best_blob is None:
                # Best trial came from the cache (no payload retained);
                # recompress once at the converged bound.
                best_blob = obj.evaluate(
                    data, result.eb_rel, keep_blob=True
                ).blob
        n_trials = len(history)
        if trace.enabled:
            root.set("n_trials", n_trials)
            root.set("converged", 1 if result.converged else 0)
            root.set("eb_rel", result.eb_rel)
    reg.counter("autotune.searches_total").inc()
    if result.converged:
        reg.counter("autotune.converged_total").inc()
    reg.counter("autotune.cache_hits_total").inc(cache.hits)
    if cache.store_hits:
        reg.counter(
            "autotune.store_hits_total",
            help="trial-cache hits served by the persistent store",
            deterministic=False,
        ).inc(cache.store_hits)
    reg.gauge("autotune.last_trials").set(n_trials)
    reg.histogram(
        "autotune.cache_hit_ratio", buckets=RATIO_BUCKETS
    ).observe(cache.hit_ratio)
    return AutotuneResult(
        objective=obj.name,
        codec=obj.codec,
        target=obj.target,
        tolerance=tol,
        converged=result.converged,
        eb_rel=result.eb_rel,
        achieved=result.achieved,
        n_trials=n_trials,
        cache_hits=cache.hits,
        subsample_trials=sub_trials,
        stop_reason=result.stop_reason,
        search=result,
        subsample_search=sub_result,
        blob=best_blob if keep_blob else None,
        trial_history=history,
    )
