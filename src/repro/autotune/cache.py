"""Trial memoization and warm starts for the autotune search.

Two cost-avoidance layers:

``TrialCache``
    In-process memoization keyed by *data fingerprint x codec x exact
    bound x container format version*.  The search revisits bounds
    freely (parallel pre-probes, subsample-then-confirm, repeated
    searches over the same field), so hits are common; a hit returns
    the recorded :class:`Trial` marked ``cached=True`` and must never
    change a search's converged result (property-tested).  Handed a
    :class:`repro.cache.CacheStore`, memory misses fall through to the
    shared on-disk store, so trials persist across invocations --
    FRaZ's amortization across whole runs, not just within one search.

``warm_start``
    An initial-bound guess mined from the run ledger
    (:mod:`repro.telemetry.ledger`):

    1. prior ``autotune`` records for the same codec and objective are
       log-log interpolated to the new target (compression ratio is
       near power-law in the bound, so two prior points predict well);
    2. failing that, sibling ``compress``/``sweep`` records carrying an
       achieved PSNR are converted to the bound that produced them via
       Eq. 8 (``repro.core.fixed_psnr.psnr_to_relative_bound``) and
       paired with their recorded ratio -- the paper's closed form is
       exactly the bridge from a *measured* sibling run to a bound
       guess for this one.

    A good warm start typically saves 2-4 of the 12-trial budget.

``warm_start_from_store``
    The same two-pass mining applied to the shared cache store's
    metadata instead of the ledger: prior trial entries for the same
    (fingerprint, codec, objective) are interpolated directly, and
    sibling blob entries contribute their achieved PSNR via Eq. 8.
"""

from __future__ import annotations

import hashlib
import math
from typing import Dict, List, Optional, Sequence, Tuple

import numpy as np

__all__ = [
    "fingerprint",
    "TrialCache",
    "warm_start",
    "warm_start_from_store",
]


def fingerprint(data) -> str:
    """Stable content hash of an array: dtype, shape and raw bytes.

    SHA-1 over the C-contiguous buffer; two arrays share a fingerprint
    iff they are element-wise identical with the same dtype and shape.
    """
    a = np.ascontiguousarray(data)
    h = hashlib.sha1()
    h.update(str(a.dtype).encode())
    h.update(str(a.shape).encode())
    h.update(a.tobytes())
    return h.hexdigest()


class TrialCache:
    """Memoized trials keyed by (fingerprint, codec, objective, bound,
    container format version).

    The bound enters the key exactly (``float.hex``), so only a probe
    at the *identical* bound hits -- no tolerance matching, which keeps
    cached searches bit-identical to uncached ones.  The container
    format version is part of the key because a trial's measurements
    (compressed bytes, ratio) describe blobs in *that* format -- after
    a format bump, replaying them would report sizes no current run
    can produce.

    ``store`` (a :class:`repro.cache.CacheStore`) adds a persistent
    second level: memory misses consult the disk store, and fresh
    trials are written through (without blobs -- the driver recompresses
    once when the converged trial kept no payload).  ``store_hits``
    counts the hits the disk level served.
    """

    def __init__(self, store=None) -> None:
        self._store: Dict[Tuple[str, str, str, str, int], object] = {}
        self.store = store
        self.hits = 0
        self.misses = 0
        self.store_hits = 0

    def __len__(self) -> int:
        return len(self._store)

    @property
    def hit_ratio(self) -> float:
        total = self.hits + self.misses
        return self.hits / total if total else 0.0

    @staticmethod
    def _key(fp: str, codec: str, objective: str, eb_rel: float):
        from repro.io import container

        return (
            fp, codec, objective, float(eb_rel).hex(),
            int(container.VERSION),
        )

    def get(self, fp: str, codec: str, objective: str, eb_rel: float):
        """The cached trial (marked ``cached=True``) or None."""
        trial = self._store.get(self._key(fp, codec, objective, eb_rel))
        if trial is None and self.store is not None:
            trial = self._disk_get(fp, codec, objective, eb_rel)
        if trial is None:
            self.misses += 1
            return None
        self.hits += 1
        return trial.replace(cached=True)

    def put(self, fp: str, codec: str, objective: str, trial) -> None:
        """Record a freshly evaluated trial."""
        self._store[self._key(fp, codec, objective, trial.eb_rel)] = trial
        if self.store is not None:
            self._disk_put(fp, codec, objective, trial)

    # -- persistent second level ---------------------------------------

    def _disk_get(self, fp: str, codec: str, objective: str, eb_rel: float):
        from repro.autotune.objective import Trial
        from repro.cache.store import trial_key

        key = trial_key(fp, codec=codec, objective=objective, eb_rel=eb_rel)
        entry = self.store.get(key)
        if entry is None:
            return None
        doc = entry.meta.get("trial")
        if not isinstance(doc, dict):
            return None
        try:
            trial = Trial(
                eb_rel=float(doc["eb_rel"]),
                value=float(doc["value"]),
                ratio=float(doc["ratio"]),
                bit_rate=float(doc["bit_rate"]),
                psnr=float(doc["psnr"]),
                nrmse=float(doc["nrmse"]),
                max_abs_error=float(doc["max_abs_error"]),
                raw_bytes=int(doc["raw_bytes"]),
                compressed_bytes=int(doc["compressed_bytes"]),
            )
        except (KeyError, TypeError, ValueError):
            return None
        self.store_hits += 1
        # Promote to the memory level so repeat probes skip the disk.
        self._store[self._key(fp, codec, objective, eb_rel)] = trial
        return trial

    def _disk_put(self, fp: str, codec: str, objective: str, trial) -> None:
        from repro.cache.store import trial_key

        doc = trial.as_dict()
        doc.pop("cached", None)
        key = trial_key(
            fp, codec=codec, objective=objective, eb_rel=trial.eb_rel
        )
        self.store.put(
            key,
            b"",
            {
                "kind": "trial",
                "digest": fp,
                "codec": codec,
                "objective": objective,
                "trial": doc,
            },
        )

    def wrap(self, evaluate, fp: str, codec: str, objective: str):
        """A cache-through version of ``evaluate(eb_rel) -> Trial``."""

        def cached_evaluate(eb_rel: float):
            hit = self.get(fp, codec, objective, eb_rel)
            if hit is not None:
                return hit
            trial = evaluate(eb_rel)
            self.put(fp, codec, objective, trial)
            return trial

        return cached_evaluate


# -- ledger mining ------------------------------------------------------


def _interp_points(
    points: Sequence[Tuple[float, float]], target: float
) -> Optional[float]:
    """Log-log interpolate/extrapolate ``(eb, value)`` points to the eb
    whose value would be ``target``; None when the points cannot say."""
    pts = [
        (float(e), float(v))
        for e, v in points
        if e > 0 and v > 0 and math.isfinite(e) and math.isfinite(v)
    ]
    if not pts or target <= 0:
        return None
    if len(pts) == 1:
        return pts[0][0]
    xs = [math.log(e) for e, _ in pts]
    ys = [math.log(v) for _, v in pts]
    n = len(pts)
    mx, my = sum(xs) / n, sum(ys) / n
    sxx = sum((x - mx) ** 2 for x in xs)
    sxy = sum((x - mx) * (y - my) for x, y in zip(xs, ys))
    if sxx == 0 or sxy == 0:
        return pts[0][0]
    slope = sxy / sxx
    return math.exp(mx + (math.log(target) - my) / slope)


def warm_start(
    objective,
    entries: Sequence,
    dataset: str = "",
) -> Optional[float]:
    """Mine ledger ``entries`` for an initial bound for ``objective``.

    Prefers prior autotune records matching the objective and codec
    (the ledger's ``extra`` carries their converged ``eb_rel`` and
    achieved value); falls back to sibling compress/sweep records via
    Eq. 8.  ``dataset``, when given, restricts the sibling pass to runs
    of the same data set.  Returns None when the ledger has nothing
    usable -- the caller then uses ``objective.default_guess``.
    """
    auto_points: List[Tuple[float, float]] = []
    sibling_points: List[Tuple[float, float]] = []
    for e in entries:
        codec = getattr(e, "codec", "")
        if codec and codec != objective.codec:
            continue
        if getattr(e, "kind", "") == "autotune":
            extra = getattr(e, "extra", {}) or {}
            if extra.get("objective") != objective.name:
                continue
            eb = extra.get("eb_rel")
            achieved = getattr(e, "achieved", None)
            if eb and achieved:
                auto_points.append((float(eb), float(achieved)))
            continue
        if objective.name not in ("ratio", "bitrate"):
            continue
        if dataset and getattr(e, "dataset", "") != dataset:
            continue
        psnr = getattr(e, "achieved_psnr", None)
        ratio = getattr(e, "ratio", None)
        if not psnr or not ratio or not math.isfinite(psnr):
            continue
        # Eq. 8: the bound that produced this sibling's measured PSNR.
        from repro.core.fixed_psnr import (
            MAX_TARGET_PSNR,
            MIN_TARGET_PSNR,
            psnr_to_relative_bound,
        )

        if not (MIN_TARGET_PSNR < psnr < MAX_TARGET_PSNR):
            continue
        eb = psnr_to_relative_bound(psnr)
        value = (
            float(ratio)
            if objective.name == "ratio"
            else 8.0 * 4.0 / float(ratio)  # bits/value assuming float32
        )
        sibling_points.append((eb, value))
    guess = _interp_points(auto_points, objective.target)
    if guess is None:
        guess = _interp_points(sibling_points, objective.target)
    return guess


def _eq8_sibling_point(
    objective, achieved_psnr, ratio
) -> Optional[Tuple[float, float]]:
    """One (eb, value) point from a sibling run's achieved PSNR via
    Eq. 8, or None when the record cannot contribute."""
    if objective.name not in ("ratio", "bitrate"):
        return None
    try:
        psnr = float(achieved_psnr)
        ratio = float(ratio)
    except (TypeError, ValueError):
        return None
    if not (math.isfinite(psnr) and ratio > 0):
        return None
    from repro.core.fixed_psnr import (
        MAX_TARGET_PSNR,
        MIN_TARGET_PSNR,
        psnr_to_relative_bound,
    )

    if not (MIN_TARGET_PSNR < psnr < MAX_TARGET_PSNR):
        return None
    eb = psnr_to_relative_bound(psnr)
    value = (
        ratio if objective.name == "ratio"
        else 8.0 * 4.0 / ratio  # bits/value assuming float32
    )
    return (eb, value)


def warm_start_from_store(
    objective, store, fp: str = ""
) -> Optional[float]:
    """Mine the shared cache store's metadata for an initial bound.

    The persistent sibling of :func:`warm_start`: prior **trial**
    entries for the same codec and objective (same field when ``fp``
    is given) are log-log interpolated to the new target, and failing
    that, **blob** entries carrying an achieved PSNR contribute Eq.-8
    points exactly like ledger siblings.  Returns None when the store
    holds nothing usable.

    One refinement over the ledger pass: when a prior trial measured a
    value *near* the target (within ~25%), its **exact** bound is
    returned instead of a regression estimate.  Seeding at an exact
    prior bound turns a repeated search's first probe into a store hit
    -- an identical invocation replays entirely from cache and
    converges to the identical bound, which is what makes warm-cache
    autotune output bit-reproducible.
    """
    if store is None:
        return None
    auto_points: List[Tuple[float, float]] = []
    sibling_points: List[Tuple[float, float]] = []
    for _key, meta in store.iter_meta():
        kind = meta.get("kind")
        if kind == "trial":
            if meta.get("codec") != objective.codec:
                continue
            if meta.get("objective") != objective.name:
                continue
            if fp and meta.get("digest") != fp:
                continue
            doc = meta.get("trial") or {}
            eb, value = doc.get("eb_rel"), doc.get("value")
            if eb and value:
                auto_points.append((float(eb), float(value)))
        elif kind == "blob":
            if meta.get("codec") != objective.codec:
                continue
            metrics = meta.get("metrics") or {}
            point = _eq8_sibling_point(
                objective,
                metrics.get("achieved_psnr"),
                metrics.get("ratio"),
            )
            if point is not None:
                sibling_points.append(point)
    target = float(objective.target)
    if target > 0:
        near = [
            (abs(math.log(v / target)), eb)
            for eb, v in auto_points
            if eb > 0 and v > 0 and math.isfinite(v)
        ]
        if near:
            err, eb = min(near)
            if err <= math.log(1.25):
                return eb
    guess = _interp_points(auto_points, objective.target)
    if guess is None:
        guess = _interp_points(sibling_points, objective.target)
    return guess
