"""Trial memoization and warm starts for the autotune search.

Two cost-avoidance layers:

``TrialCache``
    In-process memoization keyed by *data fingerprint x codec x exact
    bound*.  The search revisits bounds freely (parallel pre-probes,
    subsample-then-confirm, repeated searches over the same field), so
    hits are common; a hit returns the recorded :class:`Trial` marked
    ``cached=True`` and must never change a search's converged result
    (property-tested).

``warm_start``
    An initial-bound guess mined from the run ledger
    (:mod:`repro.telemetry.ledger`):

    1. prior ``autotune`` records for the same codec and objective are
       log-log interpolated to the new target (compression ratio is
       near power-law in the bound, so two prior points predict well);
    2. failing that, sibling ``compress``/``sweep`` records carrying an
       achieved PSNR are converted to the bound that produced them via
       Eq. 8 (``repro.core.fixed_psnr.psnr_to_relative_bound``) and
       paired with their recorded ratio -- the paper's closed form is
       exactly the bridge from a *measured* sibling run to a bound
       guess for this one.

    A good warm start typically saves 2-4 of the 12-trial budget.
"""

from __future__ import annotations

import hashlib
import math
from typing import Dict, List, Optional, Sequence, Tuple

import numpy as np

__all__ = ["fingerprint", "TrialCache", "warm_start"]


def fingerprint(data) -> str:
    """Stable content hash of an array: dtype, shape and raw bytes.

    SHA-1 over the C-contiguous buffer; two arrays share a fingerprint
    iff they are element-wise identical with the same dtype and shape.
    """
    a = np.ascontiguousarray(data)
    h = hashlib.sha1()
    h.update(str(a.dtype).encode())
    h.update(str(a.shape).encode())
    h.update(a.tobytes())
    return h.hexdigest()


class TrialCache:
    """Memoized trials keyed by (fingerprint, codec, objective, bound).

    The bound enters the key exactly (``float.hex``), so only a probe
    at the *identical* bound hits -- no tolerance matching, which keeps
    cached searches bit-identical to uncached ones.
    """

    def __init__(self) -> None:
        self._store: Dict[Tuple[str, str, str, str], object] = {}
        self.hits = 0
        self.misses = 0

    def __len__(self) -> int:
        return len(self._store)

    @property
    def hit_ratio(self) -> float:
        total = self.hits + self.misses
        return self.hits / total if total else 0.0

    @staticmethod
    def _key(fp: str, codec: str, objective: str, eb_rel: float):
        return (fp, codec, objective, float(eb_rel).hex())

    def get(self, fp: str, codec: str, objective: str, eb_rel: float):
        """The cached trial (marked ``cached=True``) or None."""
        trial = self._store.get(self._key(fp, codec, objective, eb_rel))
        if trial is None:
            self.misses += 1
            return None
        self.hits += 1
        return trial.replace(cached=True)

    def put(self, fp: str, codec: str, objective: str, trial) -> None:
        """Record a freshly evaluated trial."""
        self._store[self._key(fp, codec, objective, trial.eb_rel)] = trial

    def wrap(self, evaluate, fp: str, codec: str, objective: str):
        """A cache-through version of ``evaluate(eb_rel) -> Trial``."""

        def cached_evaluate(eb_rel: float):
            hit = self.get(fp, codec, objective, eb_rel)
            if hit is not None:
                return hit
            trial = evaluate(eb_rel)
            self.put(fp, codec, objective, trial)
            return trial

        return cached_evaluate


# -- ledger mining ------------------------------------------------------


def _interp_points(
    points: Sequence[Tuple[float, float]], target: float
) -> Optional[float]:
    """Log-log interpolate/extrapolate ``(eb, value)`` points to the eb
    whose value would be ``target``; None when the points cannot say."""
    pts = [
        (float(e), float(v))
        for e, v in points
        if e > 0 and v > 0 and math.isfinite(e) and math.isfinite(v)
    ]
    if not pts or target <= 0:
        return None
    if len(pts) == 1:
        return pts[0][0]
    xs = [math.log(e) for e, _ in pts]
    ys = [math.log(v) for _, v in pts]
    n = len(pts)
    mx, my = sum(xs) / n, sum(ys) / n
    sxx = sum((x - mx) ** 2 for x in xs)
    sxy = sum((x - mx) * (y - my) for x, y in zip(xs, ys))
    if sxx == 0 or sxy == 0:
        return pts[0][0]
    slope = sxy / sxx
    return math.exp(mx + (math.log(target) - my) / slope)


def warm_start(
    objective,
    entries: Sequence,
    dataset: str = "",
) -> Optional[float]:
    """Mine ledger ``entries`` for an initial bound for ``objective``.

    Prefers prior autotune records matching the objective and codec
    (the ledger's ``extra`` carries their converged ``eb_rel`` and
    achieved value); falls back to sibling compress/sweep records via
    Eq. 8.  ``dataset``, when given, restricts the sibling pass to runs
    of the same data set.  Returns None when the ledger has nothing
    usable -- the caller then uses ``objective.default_guess``.
    """
    auto_points: List[Tuple[float, float]] = []
    sibling_points: List[Tuple[float, float]] = []
    for e in entries:
        codec = getattr(e, "codec", "")
        if codec and codec != objective.codec:
            continue
        if getattr(e, "kind", "") == "autotune":
            extra = getattr(e, "extra", {}) or {}
            if extra.get("objective") != objective.name:
                continue
            eb = extra.get("eb_rel")
            achieved = getattr(e, "achieved", None)
            if eb and achieved:
                auto_points.append((float(eb), float(achieved)))
            continue
        if objective.name not in ("ratio", "bitrate"):
            continue
        if dataset and getattr(e, "dataset", "") != dataset:
            continue
        psnr = getattr(e, "achieved_psnr", None)
        ratio = getattr(e, "ratio", None)
        if not psnr or not ratio or not math.isfinite(psnr):
            continue
        # Eq. 8: the bound that produced this sibling's measured PSNR.
        from repro.core.fixed_psnr import (
            MAX_TARGET_PSNR,
            MIN_TARGET_PSNR,
            psnr_to_relative_bound,
        )

        if not (MIN_TARGET_PSNR < psnr < MAX_TARGET_PSNR):
            continue
        eb = psnr_to_relative_bound(psnr)
        value = (
            float(ratio)
            if objective.name == "ratio"
            else 8.0 * 4.0 / float(ratio)  # bits/value assuming float32
        )
        sibling_points.append((eb, value))
    guess = _interp_points(auto_points, objective.target)
    if guess is None:
        guess = _interp_points(sibling_points, objective.target)
    return guess
