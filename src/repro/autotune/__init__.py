"""Measurement-driven autotuning: fixed-ratio and fixed-quality modes.

The paper solves fixed-PSNR analytically (Eq. 8); this subsystem
covers everything Eq. 8 cannot: storage budgets (fixed compression
ratio / bit rate, FRaZ-style, arXiv:2001.06139) and non-l2 quality
targets (SSIM, max pointwise error, arbitrary user metrics,
arXiv:2310.14133) -- by running trial compressions and searching the
error-bound space until the *measured* quantity meets the target.

Layout
------
:mod:`~repro.autotune.search`
    Bracketing + log-log secant for monotone objectives, coarse scan +
    golden section for unknown shapes; iteration/wall budgets.
:mod:`~repro.autotune.objective`
    The pluggable objective protocol and the built-in
    ratio/bitrate/psnr/nrmse/mse/ssim/max-error objectives.
:mod:`~repro.autotune.cache`
    Trial memoization and ledger/Eq.-8 warm starts.
:mod:`~repro.autotune.driver`
    The front door: subsampled early trials, parallel pre-probes,
    telemetry, and the :func:`~repro.autotune.driver.autotune` entry
    point.

Quickstart
----------
>>> import numpy as np
>>> from repro.autotune import autotune
>>> data = np.cumsum(np.random.default_rng(0).normal(
...     size=10000)).reshape(100, 100)
>>> result = autotune(data, "ratio", 10.0, tol=0.05)
>>> result.converged and abs(result.achieved - 10.0) <= 0.5
True
"""

from repro.autotune.cache import TrialCache, fingerprint, warm_start
from repro.autotune.driver import AutotuneResult, autotune
from repro.autotune.objective import (
    BUILTIN_OBJECTIVES,
    MetricObjective,
    Objective,
    Trial,
    get_objective,
)
from repro.autotune.search import SearchBudget, SearchResult, search

__all__ = [
    "autotune",
    "AutotuneResult",
    "search",
    "SearchResult",
    "SearchBudget",
    "Objective",
    "MetricObjective",
    "Trial",
    "BUILTIN_OBJECTIVES",
    "get_objective",
    "TrialCache",
    "fingerprint",
    "warm_start",
]
