"""Error-bound search: the measurement loop at the heart of autotuning.

FRaZ (arXiv:2001.06139) showed that a *generic* fixed-ratio mode for
error-bounded compressors needs no analytical model at all: run trial
compressions, measure, and iterate the error bound until the measured
quantity hits the target.  This module implements that loop over
``log10(eb_rel)`` with two strategies:

* **Monotone fast path** (ratio, bit rate, max pointwise error, PSNR,
  SSIM -- anything that moves one way as the bound grows): geometric
  bracket expansion from the warm-start guess, then a log-log secant
  step (regula falsi with a bisection clamp) inside the bracket.
  Compression ratio is close to log-log-linear in the bound, so the
  secant usually lands within tolerance in 2-4 trials once bracketed.
* **Derivative-free global path** (user metrics with unknown shape):
  a coarse scan over the search interval followed by golden-section
  refinement of ``|measured - target| / |target|`` around the best
  probe.  (A full Davis-King-style LIPO global optimizer is overkill
  at <= a dozen affordable trials; the scan + golden section keeps the
  same "no gradients, bounded evaluations" contract.)

The searcher never compresses anything itself: it drives an
``evaluate(eb_rel) -> Trial`` callable supplied by the driver, which
layers caching, subsampling and telemetry underneath (see
:mod:`repro.autotune.driver`).

Budgets are hard limits: ``max_trials`` counts evaluate calls (cache
hits included -- determinism requires the trajectory, not the cost, to
be bounded) and ``max_seconds`` is a wall-clock cap checked between
trials.  Either stop yields the best trial seen so far with
``converged=False`` and an explanatory ``stop_reason``.
"""

from __future__ import annotations

import math
import time
from dataclasses import dataclass, field as dc_field
from typing import Callable, Dict, List, Optional

from repro.errors import ParameterError

__all__ = ["SearchBudget", "SearchResult", "search", "relative_error"]

#: Default search interval for the value-range-relative bound.  The
#: lower end is float64 noise; above ~0.5 the quantizer bin exceeds
#: the value range and every codec degenerates to a constant field.
DEFAULT_EB_LO = 1e-12
DEFAULT_EB_HI = 0.5

#: Geometric bracket-expansion factor (in eb space) per probe.
_EXPAND_FACTOR = 32.0

#: Golden ratio complement for the global path.
_INV_PHI = 0.6180339887498949


def relative_error(value: float, target: float) -> float:
    """``|value - target| / |target|`` -- the convergence criterion."""
    return abs(value - target) / abs(target)


@dataclass
class SearchBudget:
    """Iteration and wall-clock limits for one search."""

    max_trials: int = 12
    max_seconds: Optional[float] = None
    _t0: float = dc_field(default=0.0, repr=False)

    def __post_init__(self) -> None:
        if self.max_trials < 1:
            raise ParameterError("max_trials must be >= 1")
        if self.max_seconds is not None and self.max_seconds <= 0:
            raise ParameterError("max_seconds must be positive")

    def start(self) -> None:
        self._t0 = time.monotonic()

    def exhausted(self, trials_done: int) -> Optional[str]:
        """The stop reason if the budget is spent, else None."""
        if trials_done >= self.max_trials:
            return "max_trials"
        if (
            self.max_seconds is not None
            and time.monotonic() - self._t0 >= self.max_seconds
        ):
            return "max_seconds"
        return None


@dataclass
class SearchResult:
    """Outcome of one error-bound search (the convergence report)."""

    converged: bool
    eb_rel: float
    achieved: float
    target: float
    tolerance: float
    stop_reason: str
    trials: List = dc_field(default_factory=list)

    @property
    def n_trials(self) -> int:
        return len(self.trials)

    @property
    def deviation(self) -> float:
        """Relative miss of the best trial."""
        return relative_error(self.achieved, self.target)

    def as_dict(self) -> Dict:
        """JSON-friendly representation (trial trajectory included)."""
        return {
            "converged": self.converged,
            "eb_rel": self.eb_rel,
            "achieved": self.achieved,
            "target": self.target,
            "tolerance": self.tolerance,
            "deviation": self.deviation,
            "stop_reason": self.stop_reason,
            "n_trials": self.n_trials,
            "trajectory": [
                {"eb_rel": t.eb_rel, "value": t.value, "cached": t.cached}
                for t in self.trials
            ],
        }

    def report(self) -> str:
        """Human-readable convergence report."""
        lines = [
            f"{'converged' if self.converged else 'NOT converged'} "
            f"after {self.n_trials} trials ({self.stop_reason}): "
            f"eb_rel {self.eb_rel:.6g} -> {self.achieved:.6g} "
            f"(target {self.target:.6g} +/- {100 * self.tolerance:g}%, "
            f"miss {100 * self.deviation:.2f}%)"
        ]
        for i, t in enumerate(self.trials):
            tag = " (cached)" if t.cached else ""
            lines.append(
                f"  trial {i + 1:2d}: eb_rel {t.eb_rel:<12.6g} "
                f"-> {t.value:.6g}{tag}"
            )
        return "\n".join(lines)


def _log_interp(lo_eb, lo_v, hi_eb, hi_v, target) -> float:
    """Secant step in (log eb, log value) space, clamped to the middle
    of the bracket so a flat segment cannot stall the search."""
    la, lb = math.log(lo_eb), math.log(hi_eb)
    if lo_v > 0 and hi_v > 0 and lo_v != hi_v:
        f = (math.log(target) - math.log(lo_v)) / (
            math.log(hi_v) - math.log(lo_v)
        )
    else:
        f = 0.5
    f = min(0.9, max(0.1, f))
    return math.exp(la + f * (lb - la))


def _search_monotone(
    evaluate: Callable,
    target: float,
    increasing: bool,
    tol: float,
    initial: float,
    lo: float,
    hi: float,
    budget: SearchBudget,
) -> SearchResult:
    """Bracket + log-log secant for a monotone objective."""
    trials: List = []

    def probe(eb: float):
        t = evaluate(eb)
        trials.append(t)
        return t

    def result(best, reason: str) -> SearchResult:
        conv = relative_error(best.value, target) <= tol
        return SearchResult(
            converged=conv,
            eb_rel=best.eb_rel,
            achieved=best.value,
            target=target,
            tolerance=tol,
            stop_reason="converged" if conv else reason,
            trials=trials,
        )

    # Orient so "below" always means the measured value is under the
    # target on the low-eb side of the crossing.
    def signed(v: float) -> float:
        return (v - target) if increasing else (target - v)

    cur = probe(initial)
    best = cur
    below = cur if signed(cur.value) < 0 else None
    above = cur if signed(cur.value) >= 0 else None
    # Expand geometrically until the target is bracketed.
    while below is None or above is None:
        if relative_error(best.value, target) <= tol:
            return result(best, "converged")
        reason = budget.exhausted(len(trials))
        if reason:
            return result(best, reason)
        if below is None:
            # The orientation puts "below" on the low-eb side for both
            # directions, so a missing "below" always means: probe a
            # smaller bound.
            nxt = max(lo, above.eb_rel / _EXPAND_FACTOR)
            at_edge = nxt <= lo
        else:
            nxt = min(hi, below.eb_rel * _EXPAND_FACTOR)
            at_edge = nxt >= hi
        if trials and abs(nxt - trials[-1].eb_rel) == 0.0:
            return result(best, "bracket_exhausted")
        cur = probe(nxt)
        if relative_error(cur.value, target) < relative_error(best.value, target):
            best = cur
        if signed(cur.value) < 0:
            below = cur
        else:
            above = cur
        if at_edge and (below is None or above is None):
            # The target lies outside the reachable range.
            return result(best, "bracket_exhausted")
    # Refine inside the bracket.
    while True:
        if relative_error(best.value, target) <= tol:
            return result(best, "converged")
        reason = budget.exhausted(len(trials))
        if reason:
            return result(best, reason)
        lo_eb, hi_eb = sorted((below.eb_rel, above.eb_rel))
        if hi_eb / lo_eb <= 1.0 + 1e-9:
            # Degenerate bracket: the objective steps over the target
            # (discrete plateau); best effort is the closest side.
            return result(best, "plateau")
        lo_t = below if below.eb_rel < above.eb_rel else above
        hi_t = above if below.eb_rel < above.eb_rel else below
        nxt = _log_interp(
            lo_t.eb_rel, lo_t.value, hi_t.eb_rel, hi_t.value, target
        )
        cur = probe(nxt)
        if relative_error(cur.value, target) < relative_error(best.value, target):
            best = cur
        if signed(cur.value) < 0:
            below = cur
        else:
            above = cur


def _search_global(
    evaluate: Callable,
    target: float,
    tol: float,
    initial: Optional[float],
    lo: float,
    hi: float,
    budget: SearchBudget,
    scan_points: int = 4,
) -> SearchResult:
    """Coarse scan + golden-section refinement for unknown shapes."""
    trials: List = []

    def probe(eb: float):
        t = evaluate(eb)
        trials.append(t)
        return t

    def miss(t) -> float:
        return relative_error(t.value, target)

    def result(best, reason: str) -> SearchResult:
        conv = miss(best) <= tol
        return SearchResult(
            converged=conv,
            eb_rel=best.eb_rel,
            achieved=best.value,
            target=target,
            tolerance=tol,
            stop_reason="converged" if conv else reason,
            trials=trials,
        )

    la, lb = math.log(lo), math.log(hi)
    grid = [math.exp(la + (lb - la) * i / (scan_points - 1))
            for i in range(scan_points)]
    if initial is not None and lo <= initial <= hi:
        grid.append(initial)
    best = None
    for eb in sorted(grid):
        reason = budget.exhausted(len(trials))
        if reason:
            return result(best, reason)
        t = probe(eb)
        if best is None or miss(t) < miss(best):
            best = t
        if miss(best) <= tol:
            return result(best, "converged")
    # Golden-section around the best probe: bracket = neighbours of the
    # best scan point in eb order.
    by_eb = sorted(trials, key=lambda t: t.eb_rel)
    i = by_eb.index(best)
    a = math.log(by_eb[max(0, i - 1)].eb_rel)
    b = math.log(by_eb[min(len(by_eb) - 1, i + 1)].eb_rel)
    c = b - _INV_PHI * (b - a)
    d = a + _INV_PHI * (b - a)
    fc = fd = None
    while True:
        reason = budget.exhausted(len(trials))
        if reason:
            return result(best, reason)
        if b - a < 1e-9:
            return result(best, "plateau")
        if fc is None:
            fc = probe(math.exp(c))
            if miss(fc) < miss(best):
                best = fc
            if miss(best) <= tol:
                return result(best, "converged")
            continue
        if fd is None:
            fd = probe(math.exp(d))
            if miss(fd) < miss(best):
                best = fd
            if miss(best) <= tol:
                return result(best, "converged")
            continue
        if miss(fc) < miss(fd):
            b, d, fd = d, c, fc
            c = b - _INV_PHI * (b - a)
            fc = None
        else:
            a, c, fc = c, d, fd
            d = a + _INV_PHI * (b - a)
            fd = None


def search(
    evaluate: Callable,
    target: float,
    *,
    increasing: Optional[bool] = None,
    tol: float = 0.05,
    initial: Optional[float] = None,
    lo: float = DEFAULT_EB_LO,
    hi: float = DEFAULT_EB_HI,
    max_trials: int = 12,
    max_seconds: Optional[float] = None,
) -> SearchResult:
    """Find the error bound whose measured objective value hits
    ``target`` within relative tolerance ``tol``.

    Parameters
    ----------
    evaluate:
        ``evaluate(eb_rel) -> Trial`` -- runs one trial compression and
        returns its measurements (see :mod:`repro.autotune.objective`).
    target:
        The value to hit; must be finite and non-zero (the criterion is
        relative).
    increasing:
        Monotone direction of the objective value in ``eb_rel``:
        ``True`` (ratio, max error), ``False`` (bit rate, PSNR, SSIM)
        or ``None`` for the derivative-free global path.
    initial:
        Warm-start bound (cache / ledger / Eq. 8 -- see
        :mod:`repro.autotune.cache`); defaults to the log-midpoint of
        ``[lo, hi]``.
    lo, hi:
        Search interval for ``eb_rel``; ``0 < lo < hi``.
    max_trials, max_seconds:
        Hard budget (see :class:`SearchBudget`).
    """
    if not (target == target) or target in (float("inf"), float("-inf")):
        raise ParameterError("target must be finite")
    if target == 0:
        raise ParameterError(
            "target must be non-zero (convergence is relative)"
        )
    if not (0.0 < tol < 1.0):
        raise ParameterError("tol must be in (0, 1)")
    if not (0.0 < lo < hi):
        raise ParameterError("need 0 < lo < hi for the eb search interval")
    if initial is not None:
        if initial <= 0:
            raise ParameterError("initial bound must be positive")
        initial = min(hi, max(lo, float(initial)))
    budget = SearchBudget(max_trials=max_trials, max_seconds=max_seconds)
    budget.start()
    if increasing is None:
        return _search_global(
            evaluate, float(target), tol, initial, lo, hi, budget
        )
    if initial is None:
        initial = math.exp(0.5 * (math.log(lo) + math.log(hi)))
    return _search_monotone(
        evaluate, float(target), bool(increasing), tol, initial, lo, hi,
        budget,
    )
