"""Trial objectives: what a trial compression measures, and how.

An *objective* turns one ``(data, eb_rel)`` pair into a measured
:class:`Trial` by actually running a codec from the error-bounded
family (:mod:`repro.core.codecs`), decompressing, and reading off the
quantity being tuned.  The searcher (:mod:`repro.autotune.search`)
only ever sees the scalar ``Trial.value``; everything else rides along
for reporting and warm starts.

Built-in objectives (the FRaZ / dynamic-quality-metric set):

========== ============================== ====================
name       value                          monotone in eb_rel
========== ============================== ====================
ratio      compression ratio              increasing
bitrate    bits per value                 decreasing
psnr       achieved PSNR (dB)             decreasing
nrmse      achieved NRMSE                 increasing
mse        achieved MSE                   increasing
ssim       block SSIM                     decreasing
max_error  max pointwise absolute error   increasing
========== ============================== ====================

Arbitrary quality metrics (arXiv:2310.14133's generalization) plug in
via :class:`MetricObjective` with any ``metric(original, recon) ->
float`` callable; declare its monotone direction if known, else the
search falls back to the derivative-free global path.
"""

from __future__ import annotations

from dataclasses import dataclass, field as dc_field
from typing import Callable, Dict, Optional

import numpy as np

import repro.observe as observe
from repro.core.codecs import make_compressor
from repro.errors import ParameterError
from repro.metrics.distortion import distortion_report, ssim as _ssim

__all__ = [
    "Trial",
    "Objective",
    "MetricObjective",
    "BUILTIN_OBJECTIVES",
    "get_objective",
]


@dataclass(frozen=True)
class Trial:
    """One trial compression's measurements.

    ``value`` is the objective's own reading; the standard rate and
    distortion numbers are always populated so a converged search can
    report them without recompressing.  ``blob`` (the compressed
    container) is retained only when the evaluator was asked to keep
    it; it is excluded from equality so trials compare by outcome.
    """

    eb_rel: float
    value: float
    ratio: float
    bit_rate: float
    psnr: float
    nrmse: float
    max_abs_error: float
    raw_bytes: int
    compressed_bytes: int
    cached: bool = False
    blob: Optional[bytes] = dc_field(default=None, compare=False, repr=False)

    def as_dict(self) -> Dict:
        """JSON-friendly representation (without the payload)."""
        return {
            "eb_rel": self.eb_rel,
            "value": self.value,
            "ratio": self.ratio,
            "bit_rate": self.bit_rate,
            "psnr": self.psnr,
            "nrmse": self.nrmse,
            "max_abs_error": self.max_abs_error,
            "raw_bytes": self.raw_bytes,
            "compressed_bytes": self.compressed_bytes,
            "cached": self.cached,
        }

    def replace(self, **changes) -> "Trial":
        """Dataclass-style copy with field overrides."""
        from dataclasses import replace as dc_replace

        return dc_replace(self, **changes)


class Objective:
    """Base objective: run a codec trial and measure one quantity.

    Subclasses (or instances constructed via :func:`get_objective`) set

    ``name``
        Stable identifier (ledger records and cache keys use it).
    ``increasing``
        Monotone direction of ``value`` in ``eb_rel``: ``True``,
        ``False``, or ``None`` when unknown (global search path).
    ``target``
        The value the search should reach.

    The evaluation protocol is duck-typed -- anything with ``name``,
    ``increasing``, ``target`` and ``evaluate(data, eb_rel)`` works,
    so tests substitute synthetic objectives freely.
    """

    name = "objective"
    increasing: Optional[bool] = None

    def __init__(self, target: float, codec: str = "sz", **codec_options):
        t = float(target)
        if not np.isfinite(t) or t <= 0:
            raise ParameterError(
                f"{self.name} target must be positive and finite, got {target}"
            )
        self.target = t
        self.codec = codec
        self.codec_options = dict(codec_options)
        # Fail fast on an unknown codec, not at the first trial.
        make_compressor(codec, 1e-3, mode="rel", **codec_options)

    # -- measurement ----------------------------------------------------

    def measure(self, data, recon, blob: bytes, report) -> float:
        """The objective's scalar reading for one finished trial.
        ``report`` is the precomputed :class:`DistortionReport`."""
        raise NotImplementedError

    def evaluate(self, data, eb_rel: float, keep_blob: bool = False) -> Trial:
        """Run one trial compression at ``eb_rel`` and measure it.

        Each trial is a traced ``autotune.trial`` span carrying the
        bound and the measured value, so ``--trace`` shows the whole
        search trajectory stage by stage.
        """
        if eb_rel <= 0 or not np.isfinite(eb_rel):
            raise ParameterError(f"trial bound must be positive, got {eb_rel}")
        trace = observe.current_trace()
        with trace.span("autotune.trial") as sp:
            comp = make_compressor(
                self.codec, eb_rel, mode="rel", **self.codec_options
            )
            blob = comp.compress(data)
            from repro.sz.compressor import decompress

            recon = decompress(blob)
            rep = distortion_report(data, recon)
            value = float(self.measure(data, recon, blob, rep))
            if trace.enabled:
                sp.set("eb_rel", float(eb_rel))
                sp.set("value", value)
                sp.add_bytes("compressed", len(blob))
        return Trial(
            eb_rel=float(eb_rel),
            value=value,
            ratio=data.nbytes / len(blob),
            bit_rate=8.0 * len(blob) / data.size,
            psnr=rep.psnr,
            nrmse=rep.nrmse,
            max_abs_error=rep.max_abs_error,
            raw_bytes=int(data.nbytes),
            compressed_bytes=len(blob),
            blob=blob if keep_blob else None,
        )

    # -- warm starts ----------------------------------------------------

    def default_guess(self, data) -> float:
        """Model-based initial bound when no prior runs exist.

        The generic fallback is a mid-range bound; rate-targeted
        subclasses override this with the Eq. 8 route (target rate ->
        bits/value -> PSNR -> bound).
        """
        return 1e-4

    def spec(self) -> Dict:
        """Picklable description (parallel probes rebuild from this)."""
        return {
            "name": self.name,
            "target": self.target,
            "codec": self.codec,
            "codec_options": dict(self.codec_options),
        }


def _rate_guess_eb(data, bits_per_value: float) -> float:
    """Eq. 8 warm start for rate targets: assume ~6.02 dB of PSNR per
    coded bit (the uniform-quantizer high-rate slope, Eq. 6), convert
    the implied PSNR to a bound with Eq. 8, and clamp to the search
    interval."""
    from repro.core.fixed_psnr import (
        MAX_TARGET_PSNR,
        MIN_TARGET_PSNR,
        psnr_to_relative_bound,
    )

    psnr_guess = 6.02 * max(0.25, bits_per_value)
    psnr_guess = min(MAX_TARGET_PSNR - 1.0, max(MIN_TARGET_PSNR + 1.0, psnr_guess))
    return psnr_to_relative_bound(psnr_guess)


class RatioObjective(Objective):
    """Fixed compression ratio (FRaZ's storage-budget mode)."""

    name = "ratio"
    increasing = True

    def measure(self, data, recon, blob, report) -> float:
        return data.nbytes / len(blob)

    def default_guess(self, data) -> float:
        return _rate_guess_eb(data, 8.0 * data.itemsize / self.target)


class BitrateObjective(Objective):
    """Fixed bits per value."""

    name = "bitrate"
    increasing = False

    def measure(self, data, recon, blob, report) -> float:
        return 8.0 * len(blob) / data.size

    def default_guess(self, data) -> float:
        return _rate_guess_eb(data, self.target)


class PSNRObjective(Objective):
    """Measured (not modelled) PSNR -- the search-based counterpart of
    the paper's closed-form Eq. 8; mostly a validation objective."""

    name = "psnr"
    increasing = False

    def measure(self, data, recon, blob, report) -> float:
        return report.psnr

    def default_guess(self, data) -> float:
        from repro.core.fixed_psnr import psnr_to_relative_bound

        return psnr_to_relative_bound(self.target)


class NRMSEObjective(Objective):
    """Measured NRMSE."""

    name = "nrmse"
    increasing = True

    def measure(self, data, recon, blob, report) -> float:
        return report.nrmse

    def default_guess(self, data) -> float:
        from repro.core.fixed_psnr import psnr_to_relative_bound
        from repro.core.psnr_model import nrmse_to_psnr

        return psnr_to_relative_bound(nrmse_to_psnr(self.target))


class MSEObjective(Objective):
    """Measured MSE."""

    name = "mse"
    increasing = True

    def measure(self, data, recon, blob, report) -> float:
        return report.mse


class SSIMObjective(Objective):
    """Block SSIM (see :func:`repro.metrics.distortion.ssim`)."""

    name = "ssim"
    increasing = False

    def __init__(self, target: float, codec: str = "sz", **codec_options):
        super().__init__(target, codec=codec, **codec_options)
        if not (0.0 < self.target <= 1.0):
            raise ParameterError("SSIM target must be in (0, 1]")

    def measure(self, data, recon, blob, report) -> float:
        return _ssim(data, recon)


class MaxErrorObjective(Objective):
    """Maximum pointwise absolute error (the classic ABS bound, but
    *measured* rather than enforced -- typically much tighter)."""

    name = "max_error"
    increasing = True

    def measure(self, data, recon, blob, report) -> float:
        return report.max_abs_error


class MetricObjective(Objective):
    """A user-supplied quality metric ``metric(original, recon) ->
    float`` (the arXiv:2310.14133 generalization).  Declare
    ``increasing`` when the metric is known to be monotone in the
    bound; leave ``None`` to use the global search path."""

    def __init__(
        self,
        target: float,
        metric: Callable,
        name: str = "custom",
        increasing: Optional[bool] = None,
        codec: str = "sz",
        **codec_options,
    ):
        if not callable(metric):
            raise ParameterError("metric must be callable(original, recon)")
        self.name = str(name)
        self.increasing = increasing
        super().__init__(target, codec=codec, **codec_options)
        self._metric = metric

    def measure(self, data, recon, blob, report) -> float:
        return float(self._metric(data, recon))


#: Built-in objective classes by stable name.
BUILTIN_OBJECTIVES = {
    "ratio": RatioObjective,
    "bitrate": BitrateObjective,
    "psnr": PSNRObjective,
    "nrmse": NRMSEObjective,
    "mse": MSEObjective,
    "ssim": SSIMObjective,
    "max_error": MaxErrorObjective,
}


def get_objective(name: str, target: float, codec: str = "sz", **options):
    """Instantiate a built-in objective by name."""
    try:
        cls = BUILTIN_OBJECTIVES[name]
    except KeyError:
        raise ParameterError(
            f"unknown objective {name!r}; "
            f"use one of {', '.join(sorted(BUILTIN_OBJECTIVES))}"
        ) from None
    return cls(target, codec=codec, **options)
