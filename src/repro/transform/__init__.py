"""Orthogonal-transform-based lossy codec (Theorem 2 substrate).

SSEM and ZFP (paper Section II-A) are transform-based compressors; the
paper's Theorem 2 extends the fixed-PSNR analysis to any codec whose
transform is orthogonal, because an orthogonal map preserves the l2
norm of the quantization error.  This package provides such a codec: a
block DCT-II (orthonormal) followed by the same uniform quantization /
Huffman / GZIP stages as the SZ pipeline.
"""

from repro.transform.compressor import TransformCompressor
from repro.transform.embedded import EmbeddedTransformCompressor
from repro.transform.dct import dct_matrix, block_dct, block_idct
from repro.transform.blocking import split_blocks, merge_blocks

__all__ = [
    "TransformCompressor",
    "EmbeddedTransformCompressor",
    "dct_matrix",
    "block_dct",
    "block_idct",
    "split_blocks",
    "merge_blocks",
]
