"""Orthonormal DCT-II and its exact inverse, applied blockwise.

The transform matrix ``T`` satisfies ``T @ T.T == I`` to float
precision, which is what Theorem 2 needs: for any orthonormal ``T``,
``||T e||_2 == ||e||_2``, so the MSE added by quantizing coefficients
equals the MSE of the reconstructed data.
"""

from __future__ import annotations

from functools import lru_cache

import numpy as np

from repro.errors import ParameterError

__all__ = [
    "dct_matrix",
    "block_dct",
    "block_idct",
    "block_transform",
    "block_inverse",
]


@lru_cache(maxsize=32)
def dct_matrix(m: int) -> np.ndarray:
    """The m-by-m orthonormal DCT-II matrix.

    ``T[k, n] = s_k * sqrt(2/m) * cos(pi * (2n+1) * k / (2m))`` with
    ``s_0 = 1/sqrt(2)`` and ``s_k = 1`` otherwise.
    """
    if m < 1:
        raise ParameterError("transform size must be >= 1")
    n = np.arange(m)
    k = n.reshape(-1, 1)
    T = np.sqrt(2.0 / m) * np.cos(np.pi * (2 * n + 1) * k / (2 * m))
    T[0, :] /= np.sqrt(2.0)
    return T


def _apply(blocks: np.ndarray, T: np.ndarray, inverse: bool) -> np.ndarray:
    """Apply ``T`` (or its transpose) along every block axis.

    ``blocks`` has shape ``(n_blocks, m, m, ..., m)``; axis 0 indexes
    blocks and is left alone.
    """
    out = np.asarray(blocks, dtype=np.float64)
    for axis in range(1, out.ndim):
        # tensordot contracts the chosen axis with T's input axis and
        # appends the output axis at the end; move it back in place.
        mat_axis = 0 if inverse else 1
        out = np.moveaxis(np.tensordot(out, T, axes=([axis], [mat_axis])), -1, axis)
    return out


def block_dct(blocks: np.ndarray, m: int) -> np.ndarray:
    """Forward orthonormal DCT-II over every axis of every block."""
    return block_transform(blocks, dct_matrix(m))


def block_idct(coeffs: np.ndarray, m: int) -> np.ndarray:
    """Exact inverse of :func:`block_dct` (transpose of an orthonormal
    matrix is its inverse)."""
    return block_inverse(coeffs, dct_matrix(m))


def block_transform(blocks: np.ndarray, T: np.ndarray) -> np.ndarray:
    """Apply any orthonormal matrix ``T`` along every block axis."""
    m = T.shape[0]
    b = np.asarray(blocks)
    if b.ndim < 2 or any(s != m for s in b.shape[1:]):
        raise ParameterError(f"blocks must have shape (n, {m}, ..., {m})")
    return _apply(b, T, inverse=False)


def block_inverse(coeffs: np.ndarray, T: np.ndarray) -> np.ndarray:
    """Exact inverse of :func:`block_transform`."""
    m = T.shape[0]
    c = np.asarray(coeffs)
    if c.ndim < 2 or any(s != m for s in c.shape[1:]):
        raise ParameterError(f"coeffs must have shape (n, {m}, ..., {m})")
    return _apply(c, T, inverse=True)
