"""Orthonormal multi-level Haar wavelet transform (DWT).

The paper cites SSEM's discrete wavelet transform as the other
orthogonal-transform route (Section II-A); Theorem 2 covers any
orthogonal map.  A full multi-level Haar analysis on a block of
``m = 2**k`` samples is itself an orthonormal ``m x m`` matrix, so it
slots straight into the block machinery of
:mod:`repro.transform.compressor` -- pass ``transform="haar"`` there.

The matrix is built recursively: one Haar level splits the signal into
pairwise averages and differences (each scaled by 1/sqrt(2)); the next
level recurses on the average band.
"""

from __future__ import annotations

from functools import lru_cache

import numpy as np

from repro.errors import ParameterError

__all__ = ["haar_matrix"]


@lru_cache(maxsize=32)
def haar_matrix(m: int) -> np.ndarray:
    """The m-by-m orthonormal multi-level Haar analysis matrix.

    ``m`` must be a power of two.  Row 0 is the overall average
    (scaling function); subsequent rows are detail coefficients from
    coarse to fine.
    """
    if m < 1 or (m & (m - 1)) != 0:
        raise ParameterError(f"Haar transform needs a power-of-two size, got {m}")
    if m == 1:
        return np.ones((1, 1))
    half = m // 2
    # single analysis level: averages then differences
    level = np.zeros((m, m))
    inv_sqrt2 = 1.0 / np.sqrt(2.0)
    for i in range(half):
        level[i, 2 * i] = inv_sqrt2
        level[i, 2 * i + 1] = inv_sqrt2
        level[half + i, 2 * i] = inv_sqrt2
        level[half + i, 2 * i + 1] = -inv_sqrt2
    # recurse on the average band
    top = haar_matrix(half) @ level[:half]
    return np.concatenate([top, level[half:]], axis=0)
