"""Transform-based lossy compressor (orthonormal block DCT).

Pipeline: centre the data, split into ``m^d`` blocks, orthonormal
DCT-II, uniform midpoint quantization of the coefficients (bin size
``delta = 2*eb``), escape of out-of-radius codes, Huffman + GZIP --
i.e. exactly the second/third stages of the SZ pipeline applied to
transform coefficients instead of prediction errors.

Error semantics differ from SZ, and deliberately so: an orthogonal
transform preserves the *l2 norm* of the quantization error (Theorem
2), so the **MSE** of the output is the coefficient-domain MSE; the
pointwise maximum error is only bounded by ``eb * m**(d/2)`` in the
worst case.  That is the correct setting for fixed-PSNR control, which
is an l2 (not l-infinity) target.
"""

from __future__ import annotations

import numpy as np

import repro.observe as observe
from repro.encoding.huffman import CanonicalHuffman
from repro.encoding.lossless import (
    lossless_compress,
    lossless_decompress,
    method_id,
    method_name,
)
from repro.errors import (
    CompressionError,
    DecompressionError,
    FormatError,
    ParameterError,
)
from repro.io.container import (
    CODEC_TRANSFORM,
    Container,
    pack_exact_float,
    unpack_exact_float,
)
from repro.sz.compressor import DEFAULT_RADIUS, _SUPPORTED_DTYPES
from repro.transform.blocking import merge_blocks, split_blocks
from repro.transform.dct import block_inverse, block_transform, dct_matrix

__all__ = ["TransformCompressor"]

#: Keep quantized coefficients in exact-int range (cf. MAX_LATTICE_COORD).
_MAX_COEFF_CODE = 2**52


class TransformCompressor:
    """Block-DCT codec with uniform coefficient quantization.

    Parameters
    ----------
    error_bound:
        Half the coefficient quantization bin: ``delta = 2*error_bound``.
        With ``mode="rel"`` it is relative to the data's value range.
        By Eq. 6 the resulting PSNR is
        ``20*log10(vr/delta) + 10*log10(12)`` -- identical to SZ's, so
        Eq. 8 applies unchanged (Theorem 3).
    mode:
        ``"abs"`` or ``"rel"`` (value-range-based).
    block_size:
        Transform block edge length ``m`` (default 8 for 1-D/2-D, use 4
        for 3-D data to keep blocks small).
    transform:
        ``"dct"`` (orthonormal DCT-II, ZFP-flavoured; default) or
        ``"haar"`` (multi-level Haar DWT, SSEM-flavoured; needs a
        power-of-two block size).  Both are orthonormal, so Theorem 2
        applies identically.
    """

    #: transform ids stored in the container
    TRANSFORMS = {"dct": 0, "haar": 1}

    def __init__(
        self,
        error_bound: float = 1e-4,
        mode: str = "abs",
        block_size: int = 8,
        lossless: str = "zlib",
        lossless_level: int = 6,
        quantization_radius: int = DEFAULT_RADIUS,
        transform: str = "dct",
    ) -> None:
        if mode not in ("abs", "rel"):
            raise ParameterError(f"mode must be 'abs' or 'rel', got {mode!r}")
        if not np.isfinite(error_bound) or error_bound <= 0:
            raise ParameterError(f"error bound must be positive, got {error_bound}")
        if block_size < 2:
            raise ParameterError("block size must be >= 2")
        if quantization_radius < 1:
            raise ParameterError("quantization radius must be >= 1")
        self.error_bound = float(error_bound)
        self.mode = mode
        self.block_size = int(block_size)
        self.lossless = lossless
        self.lossless_id = method_id(lossless)
        self.lossless_level = int(lossless_level)
        self.radius = int(quantization_radius)
        if transform not in self.TRANSFORMS:
            raise ParameterError(
                f"unknown transform {transform!r}; "
                f"choose from {sorted(self.TRANSFORMS)}"
            )
        if transform == "haar" and (block_size & (block_size - 1)) != 0:
            raise ParameterError("the Haar transform needs a power-of-two block")
        self.transform = transform
        self.target_psnr = None

    @staticmethod
    def _matrix(transform_id: int, m: int) -> np.ndarray:
        if transform_id == 1:
            from repro.transform.wavelet import haar_matrix

            return haar_matrix(m)
        return dct_matrix(m)

    @staticmethod
    def _validate(data) -> np.ndarray:
        arr = np.asarray(data)
        if arr.dtype not in _SUPPORTED_DTYPES:
            raise ParameterError(
                f"dtype {arr.dtype} unsupported; use float32 or float64"
            )
        if arr.ndim == 0 or arr.size == 0:
            raise ParameterError("data must be a non-empty array")
        if not np.all(np.isfinite(arr)):
            raise CompressionError("data contains NaN/Inf")
        return arr

    def _pack(self, meta, streams) -> bytes:
        """Serialize the container with byte accounting when traced."""
        from repro.telemetry.registry import metrics as _metrics

        blob = observe.traced_pack(Container(CODEC_TRANSFORM, meta, streams))
        _metrics().counter("pipeline.compressed_bytes_total").inc(len(blob))
        return blob

    def compress(self, data) -> bytes:
        """Compress ``data``; returns a serialized container."""
        trace = observe.current_trace()
        with trace.span("transform.compress") as root:
            arr = self._validate(data)
            if trace.enabled:
                root.count("n_points", int(arr.size))
                root.count("raw_bytes", int(arr.nbytes))
            x = arr.astype(np.float64, copy=False)
            lo, hi = float(x.min()), float(x.max())
            vr = hi - lo
            meta = {
                "dtype": str(arr.dtype),
                "shape": list(arr.shape),
                "mode": self.mode,
                "bound": self.error_bound,
                "block_size": self.block_size,
                "lossless": self.lossless_id,
                "radius": self.radius,
                "value_range": vr,
            }
            if self.target_psnr is not None:
                meta["target_psnr"] = float(self.target_psnr)
            if vr == 0.0:
                meta["constant"] = pack_exact_float(lo)
                return self._pack(meta, [])

            eb_abs = self.error_bound * vr if self.mode == "rel" else self.error_bound
            delta = 2.0 * eb_abs
            center = 0.5 * (lo + hi)
            meta["eb_abs"] = pack_exact_float(eb_abs)
            meta["center"] = pack_exact_float(center)

            meta["transform"] = self.TRANSFORMS[self.transform]
            T = self._matrix(self.TRANSFORMS[self.transform], self.block_size)
            with trace.span("dct") as sp:
                blocks = split_blocks(x - center, self.block_size)
                coeffs = block_transform(blocks, T)
                if trace.enabled:
                    sp.count("n_blocks", int(blocks.shape[0]))
                    sp.set("block_size", self.block_size)
            with trace.span("quantize") as sp:
                codes_f = np.rint(coeffs / delta)
                if np.abs(codes_f).max() > _MAX_COEFF_CODE:
                    raise CompressionError(
                        "error bound too small: coefficient codes exceed exact range"
                    )
                q = codes_f.astype(np.int64).ravel()
                if trace.enabled:
                    sp.count("n_points", int(q.size))
                    sp.set("bin_size", delta)

            escape_symbol = self.radius + 1
            with trace.span("escape") as sp:
                esc_mask = np.abs(q) > self.radius
                n_escapes = int(esc_mask.sum())
                from repro.telemetry.registry import (
                    RATIO_BUCKETS,
                    metrics as _metrics,
                )

                _metrics().histogram(
                    "transform.quantization.hit_ratio", RATIO_BUCKETS
                ).observe(1.0 - n_escapes / q.size)
                if trace.enabled:
                    sp.count("n_outliers", n_escapes)
                    sp.set("hit_ratio", 1.0 - n_escapes / q.size)
                streams = []
                if n_escapes:
                    escaped = q[esc_mask].astype(np.int64)
                    q = q.copy()
                    q[esc_mask] = escape_symbol
                    streams.append(
                        (
                            "escapes",
                            lossless_compress(
                                escaped.tobytes(), self.lossless, self.lossless_level
                            ),
                        )
                    )
            meta["n_escapes"] = n_escapes
            meta["escape_symbol"] = escape_symbol

            with trace.span("entropy") as sp:
                code = CanonicalHuffman.from_data(q)
                payload, total_bits = code.encode(q)
                meta["total_bits"] = total_bits
                meta["n_codes"] = int(q.size)
                if trace.enabled:
                    sp.count("n_symbols", int(q.size))
                    sp.count("total_bits", int(total_bits))
                streams.insert(
                    0,
                    (
                        "payload",
                        lossless_compress(
                            payload, self.lossless, self.lossless_level
                        ),
                    ),
                )
                streams.insert(
                    0,
                    (
                        "table",
                        lossless_compress(
                            code.table_bytes(), self.lossless, self.lossless_level
                        ),
                    ),
                )
            return self._pack(meta, streams)

    @staticmethod
    def decompress(blob: bytes) -> np.ndarray:
        """Decompress a container produced by :meth:`compress`."""
        container = Container.from_bytes(blob)
        if container.codec != CODEC_TRANSFORM:
            raise FormatError("container was not produced by the transform codec")
        meta = container.meta
        try:
            dtype = np.dtype(meta["dtype"])
            shape = tuple(int(s) for s in meta["shape"])
        except (KeyError, TypeError, ValueError) as exc:
            raise FormatError(f"bad container metadata: {exc}") from exc

        if "constant" in meta:
            return np.full(shape, unpack_exact_float(meta["constant"]), dtype=dtype)

        try:
            eb_abs = unpack_exact_float(meta["eb_abs"])
            center = unpack_exact_float(meta["center"])
            m = int(meta["block_size"])
            lossless = method_name(int(meta["lossless"]))
            total_bits = int(meta["total_bits"])
            n_codes = int(meta["n_codes"])
            n_escapes = int(meta["n_escapes"])
            escape_symbol = int(meta["escape_symbol"])
        except (KeyError, TypeError, ValueError) as exc:
            raise FormatError(f"bad container metadata: {exc}") from exc

        delta = 2.0 * eb_abs
        table_blob = lossless_decompress(container.stream("table"), lossless)
        code = CanonicalHuffman.from_table_bytes(table_blob)
        payload = lossless_decompress(container.stream("payload"), lossless)
        q = code.decode(payload, n_codes, total_bits)

        if n_escapes:
            esc_blob = lossless_decompress(container.stream("escapes"), lossless)
            escaped = np.frombuffer(esc_blob, dtype=np.int64)
            if escaped.size != n_escapes:
                raise DecompressionError("escape stream length mismatch")
            esc_mask = q == escape_symbol
            if int(esc_mask.sum()) != n_escapes:
                raise DecompressionError("escape marker count mismatch")
            q = q.copy()
            q[esc_mask] = escaped

        d = len(shape)
        transform_id = int(meta.get("transform", 0))
        T = TransformCompressor._matrix(transform_id, m)
        coeffs = (q.astype(np.float64) * delta).reshape((-1,) + (m,) * d)
        blocks = block_inverse(coeffs, T)
        return (merge_blocks(blocks, m, shape) + center).astype(dtype)
