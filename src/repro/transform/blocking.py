"""Partition an n-D array into m^d blocks and merge back.

Arrays whose extents are not multiples of ``m`` are edge-padded before
splitting; :func:`merge_blocks` crops the padding away, so padded
samples never reach the user (they only slightly affect the compressed
size).
"""

from __future__ import annotations

from typing import Sequence, Tuple

import numpy as np

from repro.errors import ParameterError

__all__ = ["split_blocks", "merge_blocks", "padded_shape"]


def padded_shape(shape: Sequence[int], m: int) -> Tuple[int, ...]:
    """The shape after edge-padding every extent up to a multiple of m."""
    if m < 1:
        raise ParameterError("block size must be >= 1")
    return tuple(-(-s // m) * m for s in shape)


def split_blocks(data: np.ndarray, m: int) -> np.ndarray:
    """Return shape ``(n_blocks, m, ..., m)`` blocks in row-major block
    order, edge-padding as needed."""
    x = np.asarray(data)
    if x.ndim == 0 or x.size == 0:
        raise ParameterError("data must be a non-empty array")
    target = padded_shape(x.shape, m)
    pad = [(0, t - s) for s, t in zip(x.shape, target)]
    if any(p[1] for p in pad):
        x = np.pad(x, pad, mode="edge")
    d = x.ndim
    counts = tuple(t // m for t in target)
    # reshape to (c0, m, c1, m, ...), bring the count axes first.
    inter = x.reshape(tuple(v for c in counts for v in (c, m)))
    order = tuple(range(0, 2 * d, 2)) + tuple(range(1, 2 * d, 2))
    return inter.transpose(order).reshape((-1,) + (m,) * d)


def merge_blocks(
    blocks: np.ndarray, m: int, original_shape: Sequence[int]
) -> np.ndarray:
    """Inverse of :func:`split_blocks`; crops padding to
    ``original_shape``."""
    original_shape = tuple(int(s) for s in original_shape)
    d = len(original_shape)
    b = np.asarray(blocks)
    if b.ndim != d + 1 or any(s != m for s in b.shape[1:]):
        raise ParameterError("blocks do not match the stated geometry")
    target = padded_shape(original_shape, m)
    counts = tuple(t // m for t in target)
    if b.shape[0] != int(np.prod(counts)):
        raise ParameterError(
            f"got {b.shape[0]} blocks, expected {int(np.prod(counts))}"
        )
    inter = b.reshape(counts + (m,) * d)
    # interleave count and block axes back: (c0, m, c1, m, ...)
    order = tuple(v for i in range(d) for v in (i, d + i))
    padded = inter.transpose(order).reshape(target)
    return padded[tuple(slice(0, s) for s in original_shape)]
