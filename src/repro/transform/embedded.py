"""Embedded (bitplane) coding -- the paper's alternative second stage.

Section III of the paper treats the second pipeline stage as either
*quantization* or *embedded coding (EC)*, and Theorems 1/2 cover both.
This module implements EC for the orthogonal-transform codec: DCT
coefficients are encoded sign + magnitude, magnitudes as fixed-point
bitplanes from the most significant down.  Truncating the plane stream
is the rate-distortion knob:

* **fixed-rate mode** (ZFP's headline mode, paper Section II-B): emit
  planes until a bit budget is exhausted;
* **fixed-PSNR mode**: truncating after ``p`` planes leaves a uniform
  quantizer with step ``delta_p = scale * 2**(1-p)`` and midpoint
  reconstruction, so Eq. 6 gives the PSNR and inverting it gives the
  plane count -- the EC face of Theorem 3.

Planes are individually DEFLATE-compressed (early planes are almost all
zero and nearly vanish), making the effective rate much better than
``p`` bits/value.
"""

from __future__ import annotations

from typing import List, Optional, Tuple

import numpy as np

import repro.observe as observe

from repro.encoding.lossless import (
    lossless_compress,
    lossless_decompress,
    method_id,
    method_name,
)
from repro.errors import (
    CompressionError,
    DecompressionError,
    FormatError,
    ParameterError,
)
from repro.io.container import (
    CODEC_EMBEDDED,
    Container,
    pack_exact_float,
    unpack_exact_float,
)
from repro.sz.compressor import _SUPPORTED_DTYPES
from repro.transform.blocking import merge_blocks, split_blocks
from repro.transform.dct import block_dct, block_idct

__all__ = ["EmbeddedTransformCompressor", "encode_planes", "decode_planes"]

#: Hard cap on plane count: magnitudes are held in int64 fixed point.
MAX_PLANES = 60


def encode_planes(values: np.ndarray, n_planes: int) -> Tuple[List[bytes], float]:
    """Encode ``values`` as sign bits + ``n_planes`` magnitude bitplanes.

    Returns ``(planes, scale)`` where ``planes[0]`` is the packed sign
    plane and ``planes[1:]`` the magnitude planes MSB first.  ``scale``
    normalises magnitudes to [0, 1).
    """
    if not 1 <= n_planes <= MAX_PLANES:
        raise ParameterError(f"n_planes must be in [1, {MAX_PLANES}]")
    v = np.asarray(values, dtype=np.float64).ravel()
    if v.size == 0:
        raise ParameterError("nothing to encode")
    scale = float(np.abs(v).max())
    if scale == 0.0:
        scale = 1.0
    # Strictly below 1.0 so the fixed-point value fits n_planes bits.
    mag = np.minimum(np.abs(v) / scale, 1.0 - 1e-15)
    fixed = np.floor(mag * (1 << n_planes)).astype(np.int64)
    planes = [np.packbits((v < 0).astype(np.uint8)).tobytes()]
    for p in range(n_planes - 1, -1, -1):
        bits = ((fixed >> p) & 1).astype(np.uint8)
        planes.append(np.packbits(bits).tobytes())
    return planes, scale


def decode_planes(
    planes: List[bytes], n_values: int, n_planes_total: int, scale: float
) -> np.ndarray:
    """Inverse of :func:`encode_planes`, accepting a *truncated* plane
    list: missing low planes are reconstructed at their midpoint."""
    if not planes:
        raise DecompressionError("no planes to decode")
    n_received = len(planes) - 1  # first entry is the sign plane
    if n_received < 0 or n_received > n_planes_total:
        raise DecompressionError("inconsistent plane count")

    def unpack(blob: bytes) -> np.ndarray:
        arr = np.unpackbits(np.frombuffer(blob, dtype=np.uint8))
        if arr.size < n_values:
            raise DecompressionError("bitplane shorter than value count")
        return arr[:n_values]

    signs = np.where(unpack(planes[0]) == 1, -1.0, 1.0)
    fixed = np.zeros(n_values, dtype=np.int64)
    for i, blob in enumerate(planes[1:]):
        p = n_planes_total - 1 - i
        fixed |= unpack(blob).astype(np.int64) << p
    # Midpoint reconstruction (uniform quantizer semantics): with r
    # unreceived planes the effective step is 2**r fixed-point units,
    # so add half of it -- 0.5 when every plane arrived.
    remaining = n_planes_total - n_received
    midpoint = (1 << remaining) / 2.0
    mag = (fixed.astype(np.float64) + midpoint) / (1 << n_planes_total)
    return signs * mag * scale


class EmbeddedTransformCompressor:
    """Block-DCT codec with an embedded (bitplane) second stage.

    Parameters
    ----------
    mode:
        ``"fixed_rate"`` -- ``rate`` is a bit budget per value; planes
        are emitted until the *compressed* stream reaches it.
        ``"fixed_psnr"`` -- ``rate`` is a target PSNR in dB; the plane
        count is derived from Eq. 6.
    rate:
        Bits/value or dB, per ``mode``.
    block_size:
        Transform block edge.
    """

    def __init__(
        self,
        mode: str = "fixed_rate",
        rate: float = 4.0,
        block_size: int = 8,
        lossless: str = "zlib",
        lossless_level: int = 6,
    ) -> None:
        if mode not in ("fixed_rate", "fixed_psnr"):
            raise ParameterError(
                f"mode must be 'fixed_rate' or 'fixed_psnr', got {mode!r}"
            )
        if not np.isfinite(rate) or rate <= 0:
            raise ParameterError(f"rate must be positive, got {rate}")
        if block_size < 2:
            raise ParameterError("block size must be >= 2")
        self.mode = mode
        self.rate = float(rate)
        self.block_size = int(block_size)
        self.lossless = lossless
        self.lossless_id = method_id(lossless)
        self.lossless_level = int(lossless_level)

    @staticmethod
    def _validate(data) -> np.ndarray:
        arr = np.asarray(data)
        if arr.dtype not in _SUPPORTED_DTYPES:
            raise ParameterError(
                f"dtype {arr.dtype} unsupported; use float32 or float64"
            )
        if arr.ndim == 0 or arr.size == 0:
            raise ParameterError("data must be a non-empty array")
        if not np.all(np.isfinite(arr)):
            raise CompressionError("data contains NaN/Inf")
        return arr

    def _plane_budget(self, coeffs: np.ndarray, vr: float) -> int:
        """How many magnitude planes to aim for."""
        if self.mode == "fixed_rate":
            return MAX_PLANES  # emission stops at the byte budget
        # fixed_psnr: after p planes the magnitude step is scale*2**-p;
        # midpoint reconstruction gives MSE = step**2/12, and Theorem 2
        # carries it to the data domain, so Eq. 6 inverts to a plane
        # count.
        scale = float(np.abs(coeffs).max())
        if scale == 0.0:
            return 1
        target_step = vr * 10.0 ** (-self.rate / 20.0) * np.sqrt(12.0)
        p = int(np.ceil(np.log2(scale / target_step)))
        return int(np.clip(p, 1, MAX_PLANES))

    def compress(self, data) -> bytes:
        """Compress ``data``; returns a serialized container."""
        arr = self._validate(data)
        x = arr.astype(np.float64, copy=False)
        lo, hi = float(x.min()), float(x.max())
        vr = hi - lo
        meta = {
            "dtype": str(arr.dtype),
            "shape": list(arr.shape),
            "mode": self.mode,
            "rate": self.rate,
            "block_size": self.block_size,
            "lossless": self.lossless_id,
            "value_range": vr,
        }
        if vr == 0.0:
            meta["constant"] = pack_exact_float(lo)
            return observe.traced_pack(Container(CODEC_EMBEDDED, meta, []))

        center = 0.5 * (lo + hi)
        meta["center"] = pack_exact_float(center)
        blocks = split_blocks(x - center, self.block_size)
        coeffs = block_dct(blocks, self.block_size)

        n_planes = self._plane_budget(coeffs, vr)
        planes, scale = encode_planes(coeffs.ravel(), n_planes)
        meta["scale"] = pack_exact_float(scale)
        meta["n_planes_total"] = n_planes
        meta["n_coeffs"] = int(coeffs.size)

        budget = (
            int(self.rate * arr.size / 8.0) if self.mode == "fixed_rate" else None
        )
        streams = []
        spent = 0
        emitted = 0
        for i, plane in enumerate(planes):
            blob = lossless_compress(plane, self.lossless, self.lossless_level)
            # Always emit the sign plane and the first magnitude plane.
            if budget is not None and i > 1 and spent + len(blob) > budget:
                break
            streams.append((f"plane{i}", blob))
            spent += len(blob)
            emitted += 1
        meta["n_streams"] = emitted
        return observe.traced_pack(Container(CODEC_EMBEDDED, meta, streams))

    @staticmethod
    def decompress(blob: bytes, max_planes: Optional[int] = None) -> np.ndarray:
        """Decompress a container produced by :meth:`compress`.

        ``max_planes`` enables **progressive decompression**: use only
        the first ``max_planes`` magnitude planes of the stream (plus
        the sign plane), reconstructing a coarser preview without
        touching the remaining bytes -- the defining capability of
        embedded coding.  ``None`` uses everything present.
        """
        container = Container.from_bytes(blob)
        if container.codec != CODEC_EMBEDDED:
            raise FormatError("container was not produced by the embedded codec")
        meta = container.meta
        try:
            dtype = np.dtype(meta["dtype"])
            shape = tuple(int(s) for s in meta["shape"])
        except (KeyError, TypeError, ValueError) as exc:
            raise FormatError(f"bad container metadata: {exc}") from exc

        if "constant" in meta:
            return np.full(shape, unpack_exact_float(meta["constant"]), dtype=dtype)

        try:
            center = unpack_exact_float(meta["center"])
            scale = unpack_exact_float(meta["scale"])
            m = int(meta["block_size"])
            lossless = method_name(int(meta["lossless"]))
            n_planes_total = int(meta["n_planes_total"])
            n_coeffs = int(meta["n_coeffs"])
            n_streams = int(meta["n_streams"])
        except (KeyError, TypeError, ValueError) as exc:
            raise FormatError(f"bad container metadata: {exc}") from exc

        if max_planes is not None:
            if max_planes < 1:
                raise ParameterError("max_planes must be >= 1")
            # stream 0 is the sign plane; keep at most max_planes more
            n_streams = min(n_streams, 1 + max_planes)
        planes = [
            lossless_decompress(container.stream(f"plane{i}"), lossless)
            for i in range(n_streams)
        ]
        values = decode_planes(planes, n_coeffs, n_planes_total, scale)
        d = len(shape)
        coeffs = values.reshape((-1,) + (m,) * d)
        blocks = block_idct(coeffs, m)
        return (merge_blocks(blocks, m, shape) + center).astype(dtype)
