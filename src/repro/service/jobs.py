"""Job model and the bounded priority queue behind the service.

A **job** is one client-submitted unit of work (compress / sweep /
autotune, see :class:`JobSpec`) moving through the lifecycle::

    queued -> running -> done
                    \\-> failed      (exhausted its retry budget)
                    \\-> timeout     (exceeded its deadline)
         \\-> cancelled              (DELETE before/while running)
    rejected                         (never admitted: queue full)

The :class:`JobQueue` is the admission-control point: a bounded binary
heap ordered by ``(priority, submission sequence)`` -- lower priority
numbers run first, FIFO within a priority class.  ``offer`` refuses
work beyond the depth limit (the HTTP layer turns that into ``429
Too Many Requests`` with a ``Retry-After`` hint) instead of letting an
unbounded backlog grow until memory or every deadline dies -- the
admission-control posture of every serious serving system.

Cancellation is *lazy*: a cancelled queued job stays in the heap as a
tombstone and is skipped at pop time, so cancel is O(1) and the heap
invariant is never rebuilt.  Deadlines are enforced by the dispatcher
(a queued job past its deadline is popped straight into ``timeout``).

Everything here is plain synchronous data structure; the asyncio
dispatcher in :mod:`repro.service.app` drives it from the event loop
(single-threaded, so no locking is needed beyond asyncio's own
cooperative scheduling).
"""

from __future__ import annotations

import heapq
import itertools
import time
from dataclasses import dataclass, field as dc_field
from typing import Dict, List, Optional, Tuple

from repro.errors import ParameterError

__all__ = [
    "JOB_KINDS",
    "TERMINAL_STATES",
    "JobSpec",
    "Job",
    "JobQueue",
]

#: Work kinds a client may submit (one POST route each).
JOB_KINDS = ("compress", "sweep", "autotune")

#: States a job never leaves.
TERMINAL_STATES = ("done", "failed", "timeout", "cancelled")

#: Modes /v1/compress accepts as its target dimension.
COMPRESS_MODES = ("psnr", "ratio", "nrmse", "mse")


@dataclass
class JobSpec:
    """The validated, immutable description of one submitted job."""

    kind: str
    dataset: str
    field: str = ""
    fields: Tuple[str, ...] = ()
    targets: Tuple[float, ...] = ()
    mode: str = "psnr"
    target: float = 0.0
    codec: str = "sz"
    scale: Optional[float] = None
    refine: Optional[str] = None
    tol: float = 0.05
    max_trials: int = 12
    priority: int = 5
    deadline_s: Optional[float] = None
    keep_blob: bool = True
    traced: bool = False
    fault: Optional[Dict] = None
    #: Forwarding provenance stamped by a cluster coordinator (node,
    #: route key, failover attempt, dedupe key).  Pure metadata: it
    #: never changes what the job computes, travels into the ledger as
    #: ``extra.cluster``, and lets failed-over re-submissions be
    #: traced back to one logical job.
    cluster: Optional[Dict] = None

    @classmethod
    def from_payload(cls, kind: str, doc: Dict) -> "JobSpec":
        """Build a spec from a decoded request body, rejecting unknown
        kinds/modes and missing required fields with
        :class:`~repro.errors.ParameterError` (the HTTP layer renders
        those as 400s)."""
        if kind not in JOB_KINDS:
            raise ParameterError(f"unknown job kind {kind!r}")
        if not isinstance(doc, dict):
            raise ParameterError("request body must be a JSON object")
        dataset = str(doc.get("dataset") or "")
        if not dataset:
            raise ParameterError("job needs a 'dataset'")
        mode = str(doc.get("mode") or "psnr")
        spec = cls(
            kind=kind,
            dataset=dataset,
            field=str(doc.get("field") or ""),
            fields=tuple(str(f) for f in doc.get("fields") or ()),
            targets=tuple(float(t) for t in doc.get("targets") or ()),
            mode=mode,
            target=float(doc.get("target") or 0.0),
            codec=str(doc.get("codec") or "sz"),
            scale=(
                float(doc["scale"]) if doc.get("scale") is not None else None
            ),
            refine=(str(doc["refine"]) if doc.get("refine") else None),
            tol=float(doc.get("tol") or 0.05),
            max_trials=int(doc.get("max_trials") or 12),
            priority=int(doc.get("priority", 5)),
            deadline_s=(
                float(doc["deadline_s"])
                if doc.get("deadline_s") is not None
                else None
            ),
            keep_blob=bool(doc.get("keep_blob", True)),
            fault=(dict(doc["fault"]) if doc.get("fault") else None),
            cluster=(dict(doc["cluster"]) if doc.get("cluster") else None),
        )
        spec.validate()
        return spec

    def validate(self) -> None:
        if self.kind == "compress":
            if not self.field:
                raise ParameterError("compress jobs need a 'field'")
            if self.mode not in COMPRESS_MODES:
                raise ParameterError(
                    f"unknown compress mode {self.mode!r}; expected one "
                    f"of {COMPRESS_MODES}"
                )
            if self.target <= 0:
                raise ParameterError("compress jobs need a positive 'target'")
        elif self.kind == "sweep":
            if not self.targets:
                raise ParameterError("sweep jobs need 'targets'")
        elif self.kind == "autotune":
            if not self.field:
                raise ParameterError("autotune jobs need a 'field'")
            if self.target <= 0:
                raise ParameterError("autotune jobs need a positive 'target'")
        if self.deadline_s is not None and self.deadline_s <= 0:
            raise ParameterError("deadline_s must be positive")
        if self.priority < 0:
            raise ParameterError("priority must be >= 0")

    def batch_key(self) -> Optional[Tuple]:
        """Jobs sharing a key may ride one micro-batch dispatch: same
        work shape, so one pool fan-out runs them all.  Only single-
        field compress jobs batch; sweeps and autotunes are already
        fan-outs of their own.  ``None`` means never batched."""
        if self.kind != "compress":
            return None
        return (
            "compress", self.dataset, self.scale, self.codec, self.mode,
            self.refine, self.traced,
        )

    def as_dict(self) -> Dict:
        return {
            "kind": self.kind,
            "dataset": self.dataset,
            "field": self.field,
            "fields": list(self.fields),
            "targets": list(self.targets),
            "mode": self.mode,
            "target": self.target,
            "codec": self.codec,
            "scale": self.scale,
            "refine": self.refine,
            "tol": self.tol,
            "max_trials": self.max_trials,
            "priority": self.priority,
            "deadline_s": self.deadline_s,
            "keep_blob": self.keep_blob,
        }


class Job:
    """One submitted job's mutable runtime state (dispatcher-owned)."""

    __slots__ = (
        "id", "spec", "state", "submitted_at", "started_at", "finished_at",
        "deadline_at", "result", "blob", "error", "error_code", "attempts",
        "batched", "cancel_requested", "cache_key", "follower_of",
    )

    def __init__(self, job_id: str, spec: JobSpec):
        self.id = job_id
        self.spec = spec
        self.state = "queued"
        self.submitted_at = time.monotonic()
        self.started_at: Optional[float] = None
        self.finished_at: Optional[float] = None
        self.deadline_at = (
            self.submitted_at + spec.deadline_s
            if spec.deadline_s is not None
            else None
        )
        self.result: Optional[Dict] = None
        self.blob: Optional[bytes] = None
        self.error: Optional[str] = None
        self.error_code: Optional[str] = None
        self.attempts = 0
        self.batched = 1
        self.cancel_requested = False
        # Blob-cache bookkeeping (see repro.service.app): the primary
        # job for a cache key carries the key; a job coalesced onto an
        # identical in-flight one carries that primary's id instead and
        # is never enqueued itself.
        self.cache_key: Optional[str] = None
        self.follower_of: Optional[str] = None

    @property
    def terminal(self) -> bool:
        return self.state in TERMINAL_STATES

    def expired(self, now: Optional[float] = None) -> bool:
        if self.deadline_at is None:
            return False
        return (now if now is not None else time.monotonic()) >= self.deadline_at

    def remaining(self, now: Optional[float] = None) -> Optional[float]:
        """Seconds until the deadline (``None`` = no deadline)."""
        if self.deadline_at is None:
            return None
        now = now if now is not None else time.monotonic()
        return max(0.0, self.deadline_at - now)

    def finish(self, state: str) -> None:
        self.state = state
        self.finished_at = time.monotonic()

    def as_dict(self, include_result: bool = True) -> Dict:
        """The status document ``GET /v1/jobs/<id>`` serves."""
        now = time.monotonic()
        doc: Dict = {
            "id": self.id,
            "kind": self.spec.kind,
            "state": self.state,
            "dataset": self.spec.dataset,
            "field": self.spec.field,
            "mode": self.spec.mode,
            "target": self.spec.target,
            "codec": self.spec.codec,
            "priority": self.spec.priority,
            "attempts": self.attempts,
            "batched": self.batched,
            "queued_s": round(
                (self.started_at or now) - self.submitted_at, 6
            ),
            "has_blob": self.blob is not None,
        }
        if self.follower_of is not None:
            doc["deduped_onto"] = self.follower_of
        if self.started_at is not None:
            doc["running_s"] = round(
                (self.finished_at or now) - self.started_at, 6
            )
        if self.error is not None:
            doc["error"] = self.error
            doc["error_code"] = self.error_code
        if include_result and self.result is not None:
            doc["result"] = self.result
        return doc


class JobQueue:
    """Bounded priority queue with lazy cancellation.

    ``offer`` is the only admission path and the only place the bound
    is enforced; ``pop`` skips tombstones (cancelled jobs) so the
    depth accounting stays exact.  Not thread-safe by design -- the
    asyncio dispatcher is the single driver.
    """

    def __init__(self, limit: int = 64):
        if limit < 1:
            raise ParameterError("queue limit must be >= 1")
        self.limit = int(limit)
        self._heap: List[Tuple[int, int, Job]] = []
        self._seq = itertools.count()
        self._depth = 0  # live (non-tombstone) entries

    def __len__(self) -> int:
        return self._depth

    @property
    def full(self) -> bool:
        return self._depth >= self.limit

    def offer(self, job: Job) -> bool:
        """Admit ``job`` unless the queue is at its depth limit;
        returns whether it was admitted."""
        if self._depth >= self.limit:
            return False
        heapq.heappush(
            self._heap, (job.spec.priority, next(self._seq), job)
        )
        self._depth += 1
        return True

    def pop(self) -> Optional[Job]:
        """The highest-priority live job, or ``None`` when empty.
        Tombstones (jobs cancelled while queued) are discarded here."""
        while self._heap:
            _, _, job = heapq.heappop(self._heap)
            if job.state == "queued":
                self._depth -= 1
                return job
            # A tombstone was already discounted at cancel time.
        return None

    def pop_matching(self, batch_key: Tuple) -> Optional[Job]:
        """The best-priority queued job whose spec shares ``batch_key``
        (the micro-batcher's lookahead).  O(n) scan, but n is bounded
        by the queue limit and batching only triggers on small jobs."""
        best_i = -1
        for i, (_, _, job) in enumerate(self._heap):
            if job.state != "queued":
                continue
            if job.spec.batch_key() != batch_key:
                continue
            if best_i < 0 or self._heap[i][:2] < self._heap[best_i][:2]:
                best_i = i
        if best_i < 0:
            return None
        _, _, job = self._heap.pop(best_i)
        heapq.heapify(self._heap)
        self._depth -= 1
        return job

    def cancel_queued(self, job: Job) -> None:
        """Tombstone a queued job (the caller flips its state); the
        heap entry dies lazily at pop time."""
        self._depth = max(0, self._depth - 1)
