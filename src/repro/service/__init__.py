"""Long-lived fixed-PSNR compression service over HTTP.

The workflow-facing layer the ROADMAP's "serves heavy traffic" north
star needs: ``fpzc serve`` turns the one-shot CLI pipeline into a
process that owns a warm worker pool + shared-memory arena
(:class:`repro.parallel.executor.Executor`) and accepts compression
jobs over a small HTTP/1.1 API:

========================  ============================================
``POST /v1/compress``     one field to a psnr/ratio/nrmse/mse target
``POST /v1/sweep``        a fields x targets fixed-PSNR sweep
``POST /v1/autotune``     a measured search to any objective target
``GET /v1/jobs/<id>``     status + achieved values (+ blob endpoints)
``DELETE /v1/jobs/<id>``  cooperative cancellation
``GET /healthz /readyz``  liveness / drain-aware readiness
``GET /metrics``          Prometheus text (``?format=json`` for JSON)
========================  ============================================

Admission control (bounded priority queue -> 429 + ``Retry-After``),
per-job deadlines, retries with backoff, micro-batched dispatch, and
ledger/drift/metrics integration all live in
:mod:`repro.service.app`; the stdlib-only HTTP parsing in
:mod:`repro.service.http`; the picklable job functions in
:mod:`repro.service.tasks`; a blocking client in
:mod:`repro.service.client`; and an in-process test harness in
:mod:`repro.service.testing`.  See ``docs/SERVICE.md``.
"""

from repro.service.app import CompressionService, ServiceConfig, run_service
from repro.service.client import ServiceClient, ServiceError
from repro.service.jobs import Job, JobQueue, JobSpec

__all__ = [
    "CompressionService",
    "ServiceConfig",
    "run_service",
    "ServiceClient",
    "ServiceError",
    "Job",
    "JobQueue",
    "JobSpec",
]
