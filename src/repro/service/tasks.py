"""Pool-side execution of service jobs.

These functions are what actually runs inside the service's worker
pool (process or thread, see
:class:`repro.parallel.executor.Executor`), so they are module-level
and operate on plain dict specs -- both requirements for pickling into
worker processes.  Each returns a plain dict result: status, achieved
values, the compressed blob (when requested) and, when tracing is on,
the picklable span records for the dispatcher to merge into the
service trace.

The compress path is deliberately the **same pipeline** the CLI runs
(:class:`repro.core.fixed_psnr.FixedPSNRCompressor` for PSNR targets,
:func:`repro.autotune.autotune` for ratio/NRMSE/MSE targets), so a
blob served over HTTP is bit-identical to one written by ``fpzc
compress`` -- the differential contract the e2e tests assert.

``fault`` specs (deterministic worker faults from
:mod:`repro.resilience.inject`) only take effect when the service was
started with ``allow_faults`` -- they exist so the edge-case tests can
provoke hangs, crashes and poisoned results on demand.
"""

from __future__ import annotations

import time
from typing import Dict, Optional

import repro.observe as observe

__all__ = ["run_compress_job", "run_sweep_job", "run_autotune_job"]


def _spec_fault(spec: Dict):
    doc = spec.get("fault")
    if not doc:
        return None
    from repro.resilience.inject import WorkerFault

    return WorkerFault(
        kind=doc.get("kind", "exception"),
        fields=tuple(doc.get("fields") or ()),
        fail_attempts=int(doc.get("fail_attempts", 1)),
        hang_seconds=float(doc.get("hang_seconds", 5.0)),
    )


def _spec_cache(spec: Dict):
    """The shared :class:`repro.cache.CacheStore` named by the spec's
    ``cache`` document, or ``None`` when the service runs uncached."""
    doc = spec.get("cache")
    if not doc:
        return None
    from repro.cache import CacheStore

    return CacheStore(root=doc.get("dir"), max_bytes=doc.get("max_bytes"))


def _maybe_poisoned(spec: Dict) -> Optional[Dict]:
    """Apply a deterministic fault; ``None`` means proceed, a dict is
    a poisoned result to return verbatim (the dispatcher classifies
    it)."""
    fault = _spec_fault(spec)
    if fault is None:
        return None
    from repro.resilience.inject import apply_worker_fault

    poisoned = apply_worker_fault(
        fault, spec.get("field", ""), int(spec.get("attempt", 0))
    )
    if poisoned is not None:
        return {"status": "poisoned"}
    return None


def run_compress_job(spec: Dict) -> Dict:
    """One fixed-target compression: dataset field in, blob out.

    ``mode == "psnr"`` runs the paper's fixed-PSNR pipeline directly;
    ratio/NRMSE/MSE targets run a bounded autotune search and return
    its converged blob.  The result dict always carries
    ``achieved_psnr`` (measured on the reconstruction) so conformance
    tracking works for every mode.
    """
    poisoned = _maybe_poisoned(spec)
    if poisoned is not None:
        return poisoned
    from repro.datasets.registry import get_dataset
    from repro.metrics.distortion import psnr as measure_psnr

    t0 = time.perf_counter()
    ds = get_dataset(spec["dataset"], scale=spec.get("scale"))
    data = ds.field(spec["field"])
    mode = spec.get("mode", "psnr")
    target = float(spec["target"])
    codec = spec.get("codec", "sz")
    traced = bool(spec.get("traced"))
    local = observe.Trace() if traced else None

    cache = _spec_cache(spec)

    def _run() -> Dict:
        if mode == "psnr":
            from repro.core.fixed_psnr import FixedPSNRCompressor

            cache_key = None
            if cache is not None:
                # Same key fpzc compress/sweep use, so entries flow
                # freely between the CLI and the service.
                from repro.cache import blob_key, data_digest

                cache_key = blob_key(
                    data_digest(data),
                    codec=codec,
                    mode="psnr",
                    target=target,
                    refine=spec.get("refine"),
                    entropy="huffman",
                )
                entry = cache.get(cache_key)
                if entry is not None:
                    m = entry.meta.get("metrics") or {}
                    try:
                        achieved = float(m["achieved_psnr"])
                        return {
                            "blob": entry.payload,
                            "eb_rel": (
                                float(m["eb_rel"])
                                if m.get("eb_rel") is not None
                                else None
                            ),
                            "achieved": achieved,
                            "achieved_psnr": achieved,
                            "converged": True,
                            "cached": True,
                        }
                    except (KeyError, TypeError, ValueError):
                        pass  # malformed meta: recompress (and re-store)
            comp = FixedPSNRCompressor(
                target, refine=spec.get("refine"), codec=codec
            )
            eb_rel = float(comp.derive_bound(data))
            blob = comp.compress(data)
            recon = comp.decompress(blob)
            achieved = float(measure_psnr(data, recon))
            if cache is not None:
                cache.put(
                    cache_key,
                    blob,
                    {
                        "kind": "blob",
                        "dataset": spec["dataset"],
                        "field": spec["field"],
                        "codec": codec,
                        "mode": "psnr",
                        "target": target,
                        "metrics": {
                            "achieved_psnr": achieved,
                            "ratio": data.nbytes / len(blob),
                            "bit_rate": 8.0 * len(blob) / data.size,
                            "eb_rel": eb_rel,
                            "raw_bytes": int(data.nbytes),
                            "compressed_bytes": len(blob),
                        },
                    },
                )
            return {
                "blob": blob,
                "eb_rel": eb_rel,
                "achieved": achieved,
                "achieved_psnr": achieved,
                "converged": True,
            }
        from repro.autotune import autotune
        from repro.core.fixed_psnr import FixedPSNRCompressor

        result = autotune(
            data,
            mode,
            target,
            codec=codec,
            tol=float(spec.get("tol", 0.05)),
            max_trials=int(spec.get("max_trials", 12)),
            keep_blob=True,
        )
        recon = FixedPSNRCompressor.decompress(result.blob)
        return {
            "blob": result.blob,
            "eb_rel": float(result.eb_rel),
            "achieved": float(result.achieved),
            "achieved_psnr": float(measure_psnr(data, recon)),
            "converged": bool(result.converged),
        }

    if local is not None:
        with observe.use_trace(local):
            with local.span("service.task") as sp:
                out = _run()
                sp.set("target", target)
    else:
        out = _run()
    blob = out.pop("blob")
    out.update(
        {
            "status": "ok",
            "mode": mode,
            "target": target,
            "raw_bytes": int(data.nbytes),
            "compressed_bytes": len(blob),
            "ratio": data.nbytes / len(blob),
            "seconds": time.perf_counter() - t0,
        }
    )
    if spec.get("keep_blob", True):
        out["blob"] = blob
    if local is not None:
        out["records"] = [r.as_dict() for r in local.records]
    return out


def run_sweep_job(spec: Dict, executor=None) -> Dict:
    """A full fixed-PSNR sweep (every requested field x target).

    Runs in the service process (a worker thread of the event loop's
    default pool) and fans out over the service's long-lived
    :class:`~repro.parallel.executor.Executor` -- the per-call pool
    startup the executor satellite removed.
    """
    poisoned = _maybe_poisoned(spec)
    if poisoned is not None:
        return poisoned
    from repro.parallel.executor import sweep_dataset

    t0 = time.perf_counter()
    results = sweep_dataset(
        spec["dataset"],
        targets=[float(t) for t in spec["targets"]],
        fields=list(spec["fields"]) or None,
        scale=spec.get("scale"),
        refine=spec.get("refine"),
        codec=spec.get("codec", "sz"),
        executor=executor,
        cache=_spec_cache(spec),
    )
    rows = [r.as_dict() for r in results]
    for row in rows:
        row.pop("metrics", None)
    met = sum(1 for r in results if r.ok and r.met)
    return {
        "status": "ok",
        "n_tasks": len(results),
        "n_met": met,
        "results": rows,
        "seconds": time.perf_counter() - t0,
    }


def run_autotune_job(spec: Dict, executor=None) -> Dict:
    """One autotune search over a dataset field, with the probe fan on
    the service's executor."""
    poisoned = _maybe_poisoned(spec)
    if poisoned is not None:
        return poisoned
    from repro.autotune import autotune
    from repro.datasets.registry import get_dataset

    t0 = time.perf_counter()
    ds = get_dataset(spec["dataset"], scale=spec.get("scale"))
    data = ds.field(spec["field"])
    result = autotune(
        data,
        spec.get("mode", "psnr"),
        float(spec["target"]),
        codec=spec.get("codec", "sz"),
        tol=float(spec.get("tol", 0.05)),
        max_trials=int(spec.get("max_trials", 12)),
        executor=executor,
        keep_blob=bool(spec.get("keep_blob", True)),
    )
    out = result.as_dict()
    out.update(
        {
            "status": "ok",
            "raw_bytes": int(data.nbytes),
            "seconds": time.perf_counter() - t0,
        }
    )
    if spec.get("keep_blob", True) and result.blob is not None:
        out["blob"] = result.blob
        out["compressed_bytes"] = len(result.blob)
        out["ratio"] = data.nbytes / len(result.blob)
    return out
