"""In-process service harness for tests and benchmarks.

:class:`ServiceThread` runs a full :class:`~repro.service.app.
CompressionService` -- real sockets, real dispatcher -- on a private
event loop in a daemon thread, so synchronous test code can drive it
with the blocking :class:`~repro.service.client.ServiceClient`.

Defaults are test-friendly: port 0 (the OS picks a free port) and a
**thread**-kind executor.  The thread kind matters twice over: worker
processes cannot be forked from a thread that is not the main thread
(and the service loop here is exactly that), and results are
bit-identical across executor kinds anyway -- the differential
contract the data plane established.
"""

from __future__ import annotations

import asyncio
import threading
from typing import Optional

from repro.errors import ReproError
from repro.service.app import CompressionService, ServiceConfig
from repro.service.client import ServiceClient

__all__ = ["ServiceThread"]


class ServiceThread:
    """A live service on a background event loop; use as a context
    manager::

        with ServiceThread(n_workers=2) as st:
            client = st.client()
            job = client.submit_compress("ATM", "CLDHGH", target=60.0)
            done = client.wait(job)
    """

    def __init__(self, config: Optional[ServiceConfig] = None, **overrides):
        if config is None:
            defaults = dict(port=0, n_workers=2, kind="thread")
            defaults.update(overrides)
            config = ServiceConfig(**defaults)
        elif overrides:
            raise ReproError("give either config or overrides, not both")
        self.config = config
        self.service: Optional[CompressionService] = None
        self.loop: Optional[asyncio.AbstractEventLoop] = None
        self._thread: Optional[threading.Thread] = None
        self._ready = threading.Event()
        self._startup_error: Optional[BaseException] = None

    # -- lifecycle ------------------------------------------------------

    def start(self) -> "ServiceThread":
        self._thread = threading.Thread(
            target=self._run, name="fpzc-service", daemon=True
        )
        self._thread.start()
        if not self._ready.wait(timeout=30):
            raise ReproError("service did not start within 30s")
        if self._startup_error is not None:
            raise ReproError(
                f"service failed to start: {self._startup_error}"
            )
        return self

    def _run(self) -> None:
        loop = asyncio.new_event_loop()
        asyncio.set_event_loop(loop)
        self.loop = loop
        try:
            # Constructed inside the loop thread so every asyncio
            # primitive binds to this loop.
            self.service = CompressionService(self.config)
            loop.run_until_complete(self.service.start())
        except BaseException as exc:  # noqa: BLE001 -- reported to starter
            self._startup_error = exc
            self._ready.set()
            loop.close()
            return
        self._ready.set()
        try:
            loop.run_until_complete(
                self.service.serve_forever(install_signals=False)
            )
        finally:
            loop.close()

    def stop(self, grace: Optional[float] = None) -> None:
        """Drain and join; safe to call twice."""
        if self.loop is None or self.service is None:
            return
        if self._thread is None or not self._thread.is_alive():
            return
        if self.service._draining:  # noqa: SLF001
            # Drain already under way (explicit shutdown, or a prior
            # stop()): scheduling another coroutine would race the
            # closing loop and leak un-awaited; just join below.
            pass
        else:
            coro = self.service.shutdown(grace=grace)
            try:
                future = asyncio.run_coroutine_threadsafe(coro, self.loop)
            except RuntimeError:
                # Loop already closed: the drain has happened; reap
                # the un-awaited coroutine.
                coro.close()
            else:
                try:
                    future.result(timeout=60)
                except Exception:  # noqa: BLE001 -- loop may be closing
                    pass
        self._thread.join(timeout=60)

    def __enter__(self) -> "ServiceThread":
        return self.start()

    def __exit__(self, *exc) -> None:
        self.stop()

    # -- access ---------------------------------------------------------

    @property
    def port(self) -> int:
        assert self.service is not None
        return self.service.port

    @property
    def url(self) -> str:
        return f"http://127.0.0.1:{self.port}"

    def client(self, timeout: float = 60.0) -> ServiceClient:
        return ServiceClient(self.url, timeout=timeout)
