"""The compression service: asyncio server + dispatcher + ops surface.

Architecture (one process, one event loop)::

    clients --- HTTP/1.1 ---> _handle ----> JobQueue (bounded, priority)
                                |                |
            /healthz /readyz /metrics      dispatcher loops (N)
                                                 |  micro-batching
                                          Executor (warm pool + arena)
                                                 |
                                     ledger + drift + service.* metrics

Requests are parsed by :mod:`repro.service.http`, validated into
:class:`~repro.service.jobs.JobSpec`\\ s and **admitted** through the
bounded queue -- a full queue answers ``429`` with a ``Retry-After``
hint instead of queueing unbounded work.  ``N = n_workers`` dispatcher
coroutines pull jobs in priority order; single-field compress jobs
that share a batch key are micro-batched into one pool fan-out (one
dispatch for up to ``batch_max`` jobs, collected within
``batch_window_s``), which is where small-job throughput comes from.

Every terminal job updates the ``service.*`` metrics; successful runs
append a schema-3 ledger record with the same ``extra["conformance"]``
payload CLI runs write, so ``fpzc drift`` charts service traffic with
no special casing.  ``SIGTERM``/``SIGINT`` trigger a **drain**: the
readiness probe and admissions flip to 503 immediately, queued and
in-flight jobs get ``grace_s`` seconds to finish, then the process
exits 0.

The pool itself is a :class:`repro.parallel.executor.Executor` -- the
long-lived pool+arena context this PR introduced -- created with the
``spawn`` start method, because a serving process is multi-threaded by
the time it forks and forking such a process is unsafe.
"""

from __future__ import annotations

import asyncio
import base64
import itertools
import json
import signal
import time
from dataclasses import dataclass, field as dc_field
from typing import Dict, List, Optional, Tuple

import repro.observe as observe
from repro.errors import ParameterError, ReproError
from repro.service.http import (
    HttpError,
    Request,
    json_body,
    read_request,
    render_response,
)
from repro.service.jobs import Job, JobQueue, JobSpec
from repro.service.tasks import (
    run_autotune_job,
    run_compress_job,
    run_sweep_job,
)

__all__ = ["ServiceConfig", "CompressionService", "run_service"]


@dataclass
class ServiceConfig:
    """Every capacity/behaviour knob in one place (see
    ``docs/SERVICE.md`` for tuning guidance)."""

    host: str = "127.0.0.1"
    port: int = 8077
    n_workers: int = 2
    kind: str = "process"          # process | thread | inline
    transport: str = "auto"
    queue_limit: int = 64
    batch_window_s: float = 0.005
    batch_max: int = 8
    grace_s: float = 10.0
    max_body_bytes: int = 16 * 1024 * 1024
    max_retries: int = 1
    backoff_base: float = 0.05
    retry_seed: int = 0
    ledger: Optional[str] = None
    no_ledger: bool = False
    keep_jobs: int = 512           # terminal jobs retained for GETs
    allow_faults: bool = False     # gate for test-only fault specs
    trace_perfetto: Optional[str] = None
    cache_dir: Optional[str] = None      # None = blob cache disabled
    cache_max_bytes: Optional[int] = None

    def validate(self) -> None:
        if self.n_workers < 0:
            raise ParameterError("n_workers must be >= 0")
        if self.queue_limit < 1:
            raise ParameterError("queue_limit must be >= 1")
        if self.batch_max < 1:
            raise ParameterError("batch_max must be >= 1")
        if self.grace_s < 0:
            raise ParameterError("grace_s must be >= 0")
        if self.cache_max_bytes is not None and self.cache_max_bytes < 1:
            raise ParameterError("cache_max_bytes must be >= 1")


def _service_metrics():
    """The ``service.*`` metric family.

    Job counts are deterministic for a given request sequence; queue
    depth, latencies and batch sizes depend on wall-clock scheduling
    and stay out of deterministic snapshots (same split the resilience
    counters use).
    """
    from repro.telemetry.registry import DEFAULT_BUCKETS, metrics

    reg = metrics()
    return {
        "requests": reg.counter(
            "service.requests_total", help="HTTP requests handled"
        ),
        "submitted": reg.counter(
            "service.jobs_submitted_total", help="jobs admitted to the queue"
        ),
        "rejected": reg.counter(
            "service.jobs_rejected_total",
            help="jobs refused at admission (queue full -> 429)",
        ),
        "completed": reg.counter(
            "service.jobs_completed_total", help="jobs that finished ok"
        ),
        "failed": reg.counter(
            "service.jobs_failed_total",
            help="jobs that exhausted their retry budget",
        ),
        "cancelled": reg.counter(
            "service.jobs_cancelled_total", help="jobs cancelled by clients"
        ),
        "deduped": reg.counter(
            "service.jobs_deduped_total",
            help="compress jobs coalesced onto an identical in-flight job",
            deterministic=False,
        ),
        "timeouts": reg.counter(
            "service.jobs_timeout_total",
            help="jobs that exceeded their deadline",
            deterministic=False,
        ),
        "depth": reg.gauge(
            "service.queue_depth",
            help="live jobs waiting in the queue",
            deterministic=False,
        ),
        "inflight": reg.gauge(
            "service.jobs_inflight",
            help="jobs currently executing",
            deterministic=False,
        ),
        "batch": reg.histogram(
            "service.batch_size",
            buckets=(1, 2, 4, 8, 16, 32),
            help="jobs dispatched per pool fan-out",
            deterministic=False,
        ),
        "queue_s": reg.histogram(
            "service.queue_seconds",
            buckets=DEFAULT_BUCKETS,
            help="submission-to-dispatch latency",
            deterministic=False,
        ),
        "job_s": reg.histogram(
            "service.job_seconds",
            buckets=DEFAULT_BUCKETS,
            help="dispatch-to-terminal latency",
            deterministic=False,
        ),
    }


class CompressionService:
    """One serving process; see the module docstring for the shape."""

    def __init__(self, config: Optional[ServiceConfig] = None):
        from repro.parallel.executor import (
            Executor,
            _resilience_counters,
        )
        from repro.resilience.retry import RetryPolicy
        from repro.telemetry.ledger import git_rev

        self.config = config or ServiceConfig()
        self.config.validate()
        self.executor = Executor(
            n_workers=self.config.n_workers,
            transport=self.config.transport,
            kind=self.config.kind,
            start_method=(
                "spawn" if self.config.kind == "process" else None
            ),
        )
        self.queue = JobQueue(limit=self.config.queue_limit)
        self.jobs: Dict[str, Job] = {}
        self.metrics = _service_metrics()
        self.resilience = _resilience_counters()
        self.retry_policy = RetryPolicy(
            max_retries=self.config.max_retries,
            backoff_base=self.config.backoff_base,
            seed=self.config.retry_seed,
        )
        self.trace = (
            observe.Trace() if self.config.trace_perfetto else None
        )
        self.cache = None
        if self.config.cache_dir:
            from repro.cache import CacheStore

            self.cache = CacheStore(
                root=self.config.cache_dir,
                max_bytes=self.config.cache_max_bytes,
            )
        # (dataset, field, scale) -> content digest, so admission-time
        # cache lookups hash each synthetic field at most once.
        self._digest_memo: Dict[Tuple, str] = {}
        # cache key -> followers of the in-flight primary job with that
        # key; resolved when the primary reaches a terminal state.
        self._inflight_keys: Dict[str, List[Job]] = {}
        self._git_rev = git_rev()
        self._ids = itertools.count(1)
        self._server: Optional[asyncio.AbstractServer] = None
        self._dispatchers: List[asyncio.Task] = []
        self._accepting = False
        self._draining = False
        self._stopped = asyncio.Event()
        self._wake = asyncio.Event()
        self._cancel_events: Dict[str, asyncio.Event] = {}
        self._inflight = 0
        self._started_monotonic = time.monotonic()

    # -- lifecycle ------------------------------------------------------

    @property
    def port(self) -> int:
        """The bound port (useful with ``port=0``)."""
        if self._server is None or not self._server.sockets:
            return self.config.port
        return self._server.sockets[0].getsockname()[1]

    async def start(self) -> None:
        """Bind the socket and start the dispatcher loops."""
        self._server = await asyncio.start_server(
            self._handle, host=self.config.host, port=self.config.port
        )
        n_loops = max(1, self.config.n_workers)
        self._dispatchers = [
            asyncio.get_running_loop().create_task(self._dispatch_loop())
            for _ in range(n_loops)
        ]
        self._accepting = True

    async def serve_forever(self, install_signals: bool = True) -> None:
        """Run until a signal (or :meth:`shutdown`) drains the service."""
        if self._server is None:
            await self.start()
        if install_signals:
            loop = asyncio.get_running_loop()
            for sig in (signal.SIGTERM, signal.SIGINT):
                try:
                    loop.add_signal_handler(
                        sig,
                        lambda: asyncio.ensure_future(self.shutdown()),
                    )
                except (NotImplementedError, RuntimeError):
                    pass  # non-main thread / platform without support
        await self._stopped.wait()

    async def shutdown(self, grace: Optional[float] = None) -> None:
        """Drain: refuse new work immediately, let queued + in-flight
        jobs finish within the grace window, then stop."""
        if self._draining:
            return
        self._draining = True
        self._accepting = False
        self._wake.set()
        grace = self.config.grace_s if grace is None else grace
        deadline = time.monotonic() + grace
        while (len(self.queue) or self._inflight) and (
            time.monotonic() < deadline
        ):
            await asyncio.sleep(0.01)
        for task in self._dispatchers:
            task.cancel()
        await asyncio.gather(*self._dispatchers, return_exceptions=True)
        if self._server is not None:
            self._server.close()
            await self._server.wait_closed()
        if self.trace is not None:
            from repro.telemetry.export import write_chrome_trace
            from repro.telemetry.registry import metrics as _reg

            write_chrome_trace(
                self.trace,
                self.config.trace_perfetto,
                snapshot=_reg().snapshot(),
            )
        self.executor.close()
        self._stopped.set()

    # -- HTTP -----------------------------------------------------------

    async def _handle(
        self,
        reader: asyncio.StreamReader,
        writer: asyncio.StreamWriter,
    ) -> None:
        t0 = time.perf_counter()
        route = "?"
        try:
            try:
                request = await read_request(
                    reader, max_body=self.config.max_body_bytes
                )
            except HttpError as exc:
                writer.write(
                    render_response(
                        exc.status,
                        json.dumps({"error": exc.message}).encode(),
                    )
                )
                return
            if request is None:
                return
            route = f"{request.method} {request.path}"
            self.metrics["requests"].inc()
            try:
                payload = await self._route(request)
            except HttpError as exc:
                payload = (
                    exc.status,
                    json.dumps({"error": exc.message}).encode(),
                    "application/json",
                    (),
                )
            except ReproError as exc:
                payload = (
                    400,
                    json.dumps({"error": str(exc)}).encode(),
                    "application/json",
                    (),
                )
            except Exception as exc:  # noqa: BLE001 -- last-resort 500
                payload = (
                    500,
                    json.dumps(
                        {"error": f"{type(exc).__name__}: {exc}"}
                    ).encode(),
                    "application/json",
                    (),
                )
            status, body, ctype, extra = payload
            writer.write(render_response(status, body, ctype, extra))
        finally:
            self._record_request_span(route, time.perf_counter() - t0)
            try:
                await writer.drain()
                writer.close()
                await writer.wait_closed()
            except (ConnectionError, OSError):
                pass

    def _record_request_span(self, route: str, duration_s: float) -> None:
        """Hand-built span record: async handlers interleave on one
        thread, so the synchronous span *stack* cannot be used here."""
        if self.trace is None:
            return
        import os
        import threading

        self.trace.merge(
            [
                {
                    "path": ["service.request", route],
                    "seq": 0,
                    "duration_s": duration_s,
                    "counters": {"requests": 1},
                    "gauges": {},
                    "t_start": time.perf_counter() - duration_s,
                    "pid": os.getpid(),
                    "tid": threading.get_ident(),
                }
            ]
        )

    async def _route(
        self, request: Request
    ) -> Tuple[int, bytes, str, Tuple]:
        method, path = request.method, request.path
        if path == "/healthz" and method == "GET":
            return self._json(200, {"ok": True, "draining": self._draining})
        if path == "/readyz" and method == "GET":
            if self._accepting:
                return self._json(200, {"ready": True})
            return self._json(503, {"ready": False, "draining": True})
        if path == "/metrics" and method == "GET":
            return self._metrics_response(request)
        if path == "/v1/jobs" and method == "GET":
            docs = [
                j.as_dict(include_result=False)
                for j in self.jobs.values()
            ]
            return self._json(200, {"jobs": docs})
        if path.startswith("/v1/jobs/"):
            job_id = path[len("/v1/jobs/"):]
            blob = False
            if job_id.endswith("/blob"):
                job_id, blob = job_id[: -len("/blob")], True
            job = self.jobs.get(job_id)
            if job is None:
                raise HttpError(404, f"no such job: {job_id}")
            if method == "GET" and blob:
                return self._blob_response(job)
            if method == "GET":
                doc = job.as_dict()
                if (
                    request.query.get("blob") == "base64"
                    and job.blob is not None
                ):
                    doc["blob_base64"] = base64.b64encode(
                        job.blob
                    ).decode("ascii")
                return self._json(200, doc)
            if method == "DELETE":
                return self._cancel(job)
            raise HttpError(405, f"{method} not allowed here")
        if path.startswith("/v1/") and method == "POST":
            kind = path[len("/v1/"):]
            return self._submit(kind, request)
        raise HttpError(404, f"no route for {method} {path}")

    def _json(
        self, status: int, doc: Dict, extra: Tuple = ()
    ) -> Tuple[int, bytes, str, Tuple]:
        return (
            status,
            json.dumps(doc, sort_keys=True).encode(),
            "application/json",
            tuple(extra),
        )

    def _metrics_response(self, request: Request):
        from repro.report import render_metrics_json, render_prometheus
        from repro.telemetry.registry import metrics as _reg

        self.metrics["depth"].set(len(self.queue))
        self.metrics["inflight"].set(self._inflight)
        snap = _reg().snapshot()
        if request.query.get("format") == "json":
            return (
                200,
                render_metrics_json(snap).encode(),
                "application/json",
                (),
            )
        return (
            200,
            render_prometheus(snap).encode(),
            "text/plain; version=0.0.4",
            (),
        )

    def _blob_response(self, job: Job):
        if job.state != "done":
            raise HttpError(409, f"job is {job.state}, not done")
        if job.blob is None:
            raise HttpError(404, "job kept no blob (keep_blob=false)")
        return (200, job.blob, "application/octet-stream", ())

    def _field_digest(self, spec: JobSpec) -> Optional[str]:
        """Content digest of the job's field data, memoized per
        (dataset, field, scale).  ``None`` for fields the registry
        cannot produce -- those jobs fail through the normal path."""
        memo_key = (spec.dataset, spec.field, spec.scale)
        digest = self._digest_memo.get(memo_key)
        if digest is None:
            from repro.cache import data_digest
            from repro.datasets.registry import get_dataset

            try:
                ds = get_dataset(spec.dataset, scale=spec.scale)
                digest = data_digest(ds.field(spec.field))
            except Exception:  # noqa: BLE001 -- bad dataset/field
                return None
            self._digest_memo[memo_key] = digest
        return digest

    def _cache_key(self, spec: JobSpec) -> Optional[str]:
        """The blob-cache key for a cacheable job, else ``None``.

        Only fixed-PSNR compress jobs are cached: their pipeline is
        deterministic in the spec, so the key fully pins the output
        bytes.  Search modes (ratio/nrmse/mse) converge through
        history-dependent trajectories and stay uncached here.  The
        key deliberately matches the one ``fpzc compress``/``sweep``
        write, so CLI runs warm the service and vice versa.
        """
        if (
            self.cache is None
            or spec.kind != "compress"
            or spec.mode != "psnr"
            or spec.fault is not None
        ):
            return None
        digest = self._field_digest(spec)
        if digest is None:
            return None
        from repro.cache import blob_key

        return blob_key(
            digest,
            codec=spec.codec,
            mode="psnr",
            target=float(spec.target),
            refine=spec.refine,
            entropy="huffman",
        )

    def _submit(self, kind: str, request: Request):
        if not self._accepting:
            return self._json(
                503,
                {"error": "service is draining"},
                (("Retry-After", "1"),),
            )
        spec = JobSpec.from_payload(kind, json_body(request))
        if spec.fault is not None and not self.config.allow_faults:
            raise HttpError(
                400, "fault injection is disabled on this server"
            )
        spec.traced = self.trace is not None
        cache_key = self._cache_key(spec)
        if cache_key is not None:
            entry = self.cache.get(cache_key)
            if entry is not None:
                # Admission-time hit: the job is born terminal and the
                # client gets the result in the submit response itself.
                job = Job(f"j{next(self._ids):06d}", spec)
                job.cache_key = cache_key
                self.jobs[job.id] = job
                self.metrics["submitted"].inc()
                self._finish_cached(job, entry)
                self._prune_jobs()
                return self._json(
                    200,
                    {"id": job.id, "state": job.state, "cached": True},
                )
            followers = self._inflight_keys.get(cache_key)
            if followers is not None:
                # An identical job is already queued or running: ride
                # it instead of recompressing the same bytes.
                job = Job(f"j{next(self._ids):06d}", spec)
                job.follower_of = cache_key
                self.jobs[job.id] = job
                followers.append(job)
                self.metrics["submitted"].inc()
                self.metrics["deduped"].inc()
                self._prune_jobs()
                return self._json(
                    202,
                    {"id": job.id, "state": job.state, "deduped": True},
                )
        job = Job(f"j{next(self._ids):06d}", spec)
        job.cache_key = cache_key
        if not self.queue.offer(job):
            self.metrics["rejected"].inc()
            # Hint: roughly how long the backlog needs to half-drain.
            return self._json(
                429,
                {
                    "error": "job queue is full",
                    "queue_depth": len(self.queue),
                },
                (("Retry-After", "1"),),
            )
        self.jobs[job.id] = job
        self._cancel_events[job.id] = asyncio.Event()
        if cache_key is not None:
            self._inflight_keys[cache_key] = []
        self.metrics["submitted"].inc()
        self.metrics["depth"].set(len(self.queue))
        self._wake.set()
        self._prune_jobs()
        return self._json(
            202, {"id": job.id, "state": job.state}
        )

    def _cancel(self, job: Job):
        if job.terminal:
            return self._json(200, {"id": job.id, "state": job.state})
        job.cancel_requested = True
        if job.state == "queued":
            job.finish("cancelled")
            # Followers were never admitted to the queue, so there is
            # no heap entry (or depth) to tombstone for them.
            if job.follower_of is None:
                self.queue.cancel_queued(job)
            self.metrics["cancelled"].inc()
            self.metrics["depth"].set(len(self.queue))
            self._resolve_followers(job)
        event = self._cancel_events.get(job.id)
        if event is not None:
            event.set()
        return self._json(200, {"id": job.id, "state": job.state})

    def _prune_jobs(self) -> None:
        """Cap the terminal-job history so a long-lived server does not
        accumulate every blob it ever produced."""
        excess = len(self.jobs) - max(
            self.config.keep_jobs, self.config.queue_limit * 2
        )
        if excess <= 0:
            return
        for job_id in [
            jid for jid, j in self.jobs.items() if j.terminal
        ][:excess]:
            self.jobs.pop(job_id, None)
            self._cancel_events.pop(job_id, None)

    # -- dispatcher -----------------------------------------------------

    async def _next_job(self) -> Optional[Job]:
        while True:
            job = self.queue.pop()
            if job is not None:
                self.metrics["depth"].set(len(self.queue))
                return job
            if self._draining:
                return None
            self._wake.clear()
            try:
                await asyncio.wait_for(self._wake.wait(), timeout=0.05)
            except asyncio.TimeoutError:
                pass

    async def _dispatch_loop(self) -> None:
        try:
            while True:
                job = await self._next_job()
                if job is None:
                    return
                batch = [job]
                key = job.spec.batch_key()
                if key is not None and self.config.batch_max > 1:
                    batch += await self._gather_batch(key)
                self.metrics["batch"].observe(len(batch))
                now = time.monotonic()
                for b in batch:
                    b.batched = len(batch)
                    self.metrics["queue_s"].observe(
                        max(0.0, now - b.submitted_at)
                    )
                await asyncio.gather(
                    *(self._run_job(b) for b in batch)
                )
        except asyncio.CancelledError:
            return

    async def _gather_batch(self, key) -> List[Job]:
        """Collect compatible queued compress jobs for one fan-out:
        whatever already waits plus whatever arrives inside the batch
        window, capped at ``batch_max``."""
        out: List[Job] = []
        deadline = time.monotonic() + self.config.batch_window_s
        while len(out) < self.config.batch_max - 1:
            nxt = self.queue.pop_matching(key)
            if nxt is not None:
                out.append(nxt)
                continue
            remaining = deadline - time.monotonic()
            if remaining <= 0:
                break
            await asyncio.sleep(min(0.001, remaining))
        if out:
            self.metrics["depth"].set(len(self.queue))
        return out

    async def _run_job(self, job: Job) -> None:
        self._inflight += 1
        self.metrics["inflight"].set(self._inflight)
        t0 = time.monotonic()
        try:
            await self._execute(job)
        finally:
            self._inflight -= 1
            self.metrics["inflight"].set(self._inflight)
            self.metrics["job_s"].observe(time.monotonic() - t0)
            self._cancel_events.pop(job.id, None)
            self._resolve_followers(job)

    async def _execute(self, job: Job) -> None:
        if job.terminal:  # cancelled while queued, popped as tombstone
            return
        if job.expired():
            self._finish_timeout(job, queued_only=True)
            return
        if job.cancel_requested:
            job.finish("cancelled")
            self.metrics["cancelled"].inc()
            return
        job.state = "running"
        job.started_at = time.monotonic()
        rng = self.retry_policy.rng()
        cancel_event = self._cancel_events.get(job.id) or asyncio.Event()
        loop = asyncio.get_running_loop()
        while True:
            spec = dict(job.spec.as_dict())
            spec["attempt"] = job.attempts
            spec["traced"] = job.spec.traced
            if job.spec.fault is not None:
                spec["fault"] = dict(job.spec.fault)
            if self.cache is not None and job.spec.fault is None:
                # Workers read and write the shared store themselves:
                # hits skip the codec inside the pool, misses persist
                # the fresh blob for every later entry point.
                spec["cache"] = {
                    "dir": str(self.cache.root),
                    "max_bytes": self.cache.max_bytes,
                }
            job.attempts += 1
            fut = self._submit_to_pool(loop, job, spec)
            waiter = loop.create_task(cancel_event.wait())
            try:
                done, _pending = await asyncio.wait(
                    {fut, waiter},
                    timeout=job.remaining(),
                    return_when=asyncio.FIRST_COMPLETED,
                )
            finally:
                waiter.cancel()
            if fut in done:
                exc = fut.exception()
                result = None if exc is not None else fut.result()
                if exc is None and self._result_ok(result):
                    self._finish_ok(job, result)
                    return
                code, message = self._classify(exc, result)
                if not await self._account_failure(
                    job, code, message, rng
                ):
                    return
                continue
            # The pool attempt is abandoned either way: its eventual
            # result is discarded (a busy worker until it finishes).
            fut.cancel()
            if cancel_event.is_set():
                job.finish("cancelled")
                self.metrics["cancelled"].inc()
                return
            self._finish_timeout(job)
            return

    def _submit_to_pool(self, loop, job: Job, spec: Dict):
        """One attempt as an awaitable future.  Compress jobs go
        straight to the pool (that is the batched fan-out path); sweep
        and autotune jobs block a default-executor thread and fan out
        internally over the same long-lived executor."""
        import functools

        kind = job.spec.kind
        if kind == "compress":
            if self.executor.inline:
                return loop.run_in_executor(None, run_compress_job, spec)
            return asyncio.wrap_future(
                self.executor.pool.submit(run_compress_job, spec)
            )
        fn = run_sweep_job if kind == "sweep" else run_autotune_job
        return loop.run_in_executor(
            None, functools.partial(fn, spec, executor=self.executor)
        )

    @staticmethod
    def _result_ok(result) -> bool:
        return isinstance(result, dict) and result.get("status") == "ok"

    @staticmethod
    def _classify(exc, result) -> Tuple[str, str]:
        from repro.errors import ErrorCode

        if exc is not None:
            return ErrorCode.TASK_FAILED, f"{type(exc).__name__}: {exc}"
        return (
            ErrorCode.POISONED_RESULT,
            f"worker returned {type(result).__name__} instead of a result",
        )

    async def _account_failure(
        self, job: Job, code: str, message: str, rng
    ) -> bool:
        """Record one failed attempt; returns whether to retry."""
        from repro.errors import ErrorCode

        self.resilience["failures"].inc()
        if code == ErrorCode.POISONED_RESULT:
            self.resilience["poisoned"].inc()
        job.error, job.error_code = message, code
        retry_index = job.attempts  # 1-based: attempts already made
        if retry_index > self.retry_policy.max_retries:
            self.resilience["exhausted"].inc()
            job.finish("failed")
            self.metrics["failed"].inc()
            return False
        self.resilience["retries"].inc()
        delay = self.retry_policy.delay(retry_index, rng)
        self.resilience["backoff"].inc(delay)
        await asyncio.sleep(delay)
        if job.expired():
            self._finish_timeout(job)
            return False
        return True

    def _finish_timeout(self, job: Job, queued_only: bool = False) -> None:
        from repro.errors import ErrorCode

        job.error_code = ErrorCode.TASK_TIMEOUT
        job.error = (
            f"deadline of {job.spec.deadline_s:.3f}s expired"
            + (" while queued" if queued_only else "")
        )
        job.finish("timeout")
        self.metrics["timeouts"].inc()
        self.resilience["timeouts"].inc()

    # -- completion: results, conformance, ledger -----------------------

    def _finish_ok(self, job: Job, result: Dict) -> None:
        blob = result.pop("blob", None)
        records = result.pop("records", None)
        job.blob = blob if job.spec.keep_blob else None
        job.result = result
        job.finish("done")
        self.metrics["completed"].inc()
        if records and self.trace is not None:
            self.trace.merge(records, prefix=(f"job:{job.id}",))
        extra: Dict = {
            "service": {
                "job_id": job.id,
                "priority": job.spec.priority,
                "attempts": job.attempts,
                "batched": job.batched,
                "queued_s": round(
                    (job.started_at or job.submitted_at)
                    - job.submitted_at,
                    6,
                ),
            }
        }
        if self.cache is not None and job.spec.kind == "compress":
            extra["cache"] = {
                "hit": bool(result.get("cached")),
                "key": job.cache_key,
            }
        if job.spec.cluster is not None:
            # Coordinator-forwarded job: keep the routing provenance
            # (node, route key, failover attempt) next to the result.
            extra["cluster"] = dict(job.spec.cluster)
        conformance = self._conformance(job, result)
        if conformance is not None:
            extra["conformance"] = conformance
        if not self.config.no_ledger:
            self._append_ledger(job, result, extra)

    def _finish_cached(self, job: Job, entry) -> None:
        """Complete ``job`` from a cache entry at admission time: same
        terminal bookkeeping as :meth:`_finish_ok`, blob and achieved
        metrics replayed from the store, zero pool involvement."""
        m = entry.meta.get("metrics") or {}
        raw = m.get("raw_bytes")
        result: Dict = {
            "status": "ok",
            "cached": True,
            "blob": entry.payload,
            "mode": job.spec.mode,
            "target": float(job.spec.target),
            "eb_rel": m.get("eb_rel"),
            "achieved": m.get("achieved_psnr"),
            "achieved_psnr": m.get("achieved_psnr"),
            "converged": True,
            "raw_bytes": raw,
            "compressed_bytes": len(entry.payload),
            "ratio": (
                float(raw) / len(entry.payload) if raw else None
            ),
            "seconds": 0.0,
        }
        self._finish_ok(job, result)

    def _resolve_followers(self, job: Job) -> None:
        """Propagate a terminal primary job's outcome to every job that
        was coalesced onto it (and retire its in-flight key)."""
        if job.cache_key is None:
            return
        followers = self._inflight_keys.pop(job.cache_key, None)
        if not followers:
            return
        for f in followers:
            if f.terminal:  # cancelled while waiting
                continue
            f.attempts = job.attempts
            if job.state == "done":
                blob = job.blob
                if f.spec.keep_blob and blob is None and self.cache:
                    # Primary dropped its blob (keep_blob=false) but the
                    # worker persisted it -- serve the follower from
                    # the store.
                    e = self.cache.get(job.cache_key)
                    blob = e.payload if e is not None else None
                f.blob = blob if f.spec.keep_blob else None
                f.result = dict(job.result or {})
                f.result["deduped"] = True
                f.finish("done")
                self.metrics["completed"].inc()
            else:
                f.error = job.error
                f.error_code = job.error_code
                f.finish(job.state)
                if job.state == "failed":
                    self.metrics["failed"].inc()
                elif job.state == "timeout":
                    self.metrics["timeouts"].inc()
                elif job.state == "cancelled":
                    self.metrics["cancelled"].inc()

    def _conformance(self, job: Job, result: Dict):
        """The same Eq. 7/8 predicted-vs-achieved payload CLI runs
        record, so the drift monitor sees service traffic."""
        from repro.core.fixed_psnr import estimate_psnr_from_bound
        from repro.telemetry.drift import record_conformance

        spec = job.spec
        if result.get("cached"):
            # A replayed measurement: its conformance point was
            # recorded when the blob was first compressed.
            return None
        if spec.kind in ("compress", "autotune") and spec.mode == "psnr":
            eb_rel = result.get("eb_rel")
            achieved = result.get("achieved_psnr", result.get("achieved"))
            if eb_rel and achieved is not None:
                return record_conformance(
                    spec.dataset,
                    spec.codec,
                    float(spec.target),
                    float(estimate_psnr_from_bound(eb_rel=float(eb_rel))),
                    float(achieved),
                )
        if spec.kind == "sweep":
            rows = [
                r for r in result.get("results", ())
                if r.get("status") == "ok"
            ]
            if not rows:
                return None
            by_target: Dict[float, List[Dict]] = {}
            for r in rows:
                by_target.setdefault(float(r["target_psnr"]), []).append(r)
            out = []
            for tgt, grp in sorted(by_target.items()):
                predicted = sum(
                    estimate_psnr_from_bound(eb_rel=float(r["eb_rel"]))
                    for r in grp
                ) / len(grp)
                achieved = sum(
                    float(r["actual_psnr"]) for r in grp
                ) / len(grp)
                out.append(
                    record_conformance(
                        spec.dataset, spec.codec, tgt,
                        float(predicted), float(achieved),
                        n_fields=len(grp),
                    )
                )
            return out
        return None

    def _append_ledger(self, job: Job, result: Dict, extra: Dict) -> None:
        from repro.telemetry.ledger import LedgerEntry, append_entry

        spec = job.spec
        kind = "sweep" if spec.kind == "sweep" else (
            "autotune" if spec.kind == "autotune" else "compress"
        )
        achieved = result.get("achieved")
        achieved_psnr = result.get("achieved_psnr")
        entry = LedgerEntry(
            kind=kind,
            git_rev=self._git_rev,
            dataset=spec.dataset,
            field=spec.field or ",".join(spec.fields),
            codec=spec.codec,
            mode=spec.mode,
            target=float(spec.target) if spec.target else None,
            achieved=float(achieved) if achieved is not None else None,
            target_psnr=(
                float(spec.target)
                if spec.mode == "psnr" and spec.target
                else None
            ),
            achieved_psnr=(
                float(achieved_psnr)
                if achieved_psnr is not None
                else None
            ),
            ratio=result.get("ratio"),
            raw_bytes=result.get("raw_bytes"),
            compressed_bytes=result.get("compressed_bytes"),
            extra=extra,
        )
        append_entry(entry, path=self.config.ledger)


async def run_service(config: Optional[ServiceConfig] = None) -> int:
    """Start a service, run it until drained, return the exit code."""
    service = CompressionService(config)
    await service.start()
    await service.serve_forever()
    return 0
