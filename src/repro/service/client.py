"""Thin synchronous client for the compression service.

Built on :mod:`http.client` (stdlib, blocking) because the consumers
are scripts, tests and the ``fpzc submit/status/fetch/cancel``
subcommands -- none of which want an event loop.  One TCP connection
per call matches the server's ``Connection: close`` discipline.

The server URL resolves from (in order): the explicit ``url``
argument, the ``FPZC_SERVICE_URL`` environment variable, and the
default ``http://127.0.0.1:8077``.
"""

from __future__ import annotations

import http.client
import json
import os
import random
import time
from typing import Dict, Optional, Tuple
from urllib.parse import urlsplit

from repro.errors import ErrorCode, ParameterError, ReproError, TransportError

__all__ = ["ServiceError", "ServiceClient", "DEFAULT_URL"]

DEFAULT_URL = "http://127.0.0.1:8077"


class ServiceError(ReproError):
    """A non-2xx response from the service."""

    def __init__(self, status: int, message: str, retry_after: Optional[float] = None):
        super().__init__(f"service answered {status}: {message}")
        self.status = status
        self.retry_after = retry_after


def resolve_url(url: Optional[str] = None) -> str:
    return url or os.environ.get("FPZC_SERVICE_URL") or DEFAULT_URL


class ServiceClient:
    """Scriptable access to every service endpoint.

    Transport failures (connection refused/reset -- a dead or
    mid-restart server) raise :class:`~repro.errors.TransportError`
    with :data:`~repro.errors.ErrorCode.CONNECT_FAILED`, never a raw
    ``OSError``; HTTP-level errors raise :class:`ServiceError`.

    A 429 (queue full) is retried up to ``retry_429`` times, sleeping
    the server's ``Retry-After`` hint (capped at ``retry_after_cap_s``)
    with deterministic seeded jitter, before the :class:`ServiceError`
    is surfaced.  ``retry_429=0`` restores fail-fast admission.
    """

    def __init__(
        self,
        url: Optional[str] = None,
        timeout: float = 60.0,
        retry_429: int = 2,
        retry_backoff_s: float = 0.05,
        retry_after_cap_s: float = 5.0,
        retry_seed: int = 0,
    ):
        split = urlsplit(resolve_url(url))
        if split.scheme != "http" or not split.hostname:
            raise ParameterError(
                f"service URL must be http://host:port, got {resolve_url(url)!r}"
            )
        self.host = split.hostname
        self.port = split.port or 80
        self.timeout = timeout
        if retry_429 < 0:
            raise ParameterError("retry_429 must be >= 0")
        self.retry_429 = int(retry_429)
        self.retry_backoff_s = float(retry_backoff_s)
        self.retry_after_cap_s = float(retry_after_cap_s)
        self._rng = random.Random(retry_seed)

    # -- transport ------------------------------------------------------

    def _request(
        self,
        method: str,
        path: str,
        body: Optional[Dict] = None,
        headers: Optional[Dict[str, str]] = None,
    ) -> Tuple[int, Dict[str, str], bytes]:
        conn = http.client.HTTPConnection(
            self.host, self.port, timeout=self.timeout
        )
        try:
            payload = (
                json.dumps(body).encode("utf-8") if body is not None else None
            )
            hdrs = dict(headers or {})
            if payload:
                hdrs.setdefault("Content-Type", "application/json")
            conn.request(method, path, body=payload, headers=hdrs)
            resp = conn.getresponse()
            data = resp.read()
            return (
                resp.status,
                {k.lower(): v for k, v in resp.getheaders()},
                data,
            )
        except OSError as exc:
            raise TransportError(
                f"cannot reach {self.host}:{self.port}: {exc}",
                code=ErrorCode.CONNECT_FAILED,
            )
        finally:
            conn.close()

    def _json(
        self,
        method: str,
        path: str,
        body: Optional[Dict] = None,
        headers: Optional[Dict[str, str]] = None,
    ) -> Dict:
        status, headers, data = self._request(method, path, body, headers)
        try:
            doc = json.loads(data.decode("utf-8")) if data else {}
        except (UnicodeDecodeError, json.JSONDecodeError):
            doc = {"error": data[:200].decode("latin-1")}
        if status >= 400:
            retry_after = None
            if "retry-after" in headers:
                try:
                    retry_after = float(headers["retry-after"])
                except ValueError:
                    pass
            raise ServiceError(
                status, str(doc.get("error", "unknown error")), retry_after
            )
        return doc

    # -- ops ------------------------------------------------------------

    def healthz(self) -> Dict:
        return self._json("GET", "/healthz")

    def readyz(self) -> bool:
        status, _, _ = self._request("GET", "/readyz")
        return status == 200

    def metrics_text(self) -> str:
        status, _, data = self._request("GET", "/metrics")
        if status != 200:
            raise ServiceError(status, "metrics unavailable")
        return data.decode("utf-8")

    def metrics_json(self) -> Dict:
        return self._json("GET", "/metrics?format=json")

    # -- jobs -----------------------------------------------------------

    def submit(
        self,
        kind: str,
        payload: Dict,
        headers: Optional[Dict[str, str]] = None,
    ) -> str:
        """Submit one job; returns its id.

        A 429 (admission control) is retried honoring the server's
        ``Retry-After`` hint -- capped, seeded-jitter backoff, at most
        ``retry_429`` extra attempts -- then raised as
        :class:`ServiceError` (with ``retry_after`` set)."""
        doc = self.submit_doc(kind, payload, headers=headers)
        return str(doc["id"])

    def submit_doc(
        self,
        kind: str,
        payload: Dict,
        headers: Optional[Dict[str, str]] = None,
    ) -> Dict:
        """Like :meth:`submit` but returns the full submit response
        document (``cached``/``deduped`` flags included)."""
        for attempt in range(self.retry_429 + 1):
            try:
                return self._json("POST", f"/v1/{kind}", payload, headers)
            except ServiceError as exc:
                if exc.status != 429 or attempt >= self.retry_429:
                    raise
                time.sleep(self._backoff_429(attempt, exc.retry_after))
        raise AssertionError("unreachable")  # pragma: no cover

    def _backoff_429(self, attempt: int, retry_after: Optional[float]) -> float:
        """How long to sleep before re-submitting after a 429: the
        server's hint when it sent one (else exponential from
        ``retry_backoff_s``), capped, with deterministic +-25% jitter
        so synchronized clients don't re-stampede the queue."""
        base = (
            float(retry_after)
            if retry_after is not None
            else self.retry_backoff_s * (2.0 ** attempt)
        )
        base = min(max(base, 0.0), self.retry_after_cap_s)
        return base * (0.75 + 0.5 * self._rng.random())

    def submit_compress(
        self,
        dataset: str,
        field: str,
        *,
        mode: str = "psnr",
        target: float,
        codec: str = "sz",
        **options,
    ) -> str:
        payload = {
            "dataset": dataset,
            "field": field,
            "mode": mode,
            "target": target,
            "codec": codec,
        }
        payload.update(options)
        return self.submit("compress", payload)

    def status(self, job_id: str) -> Dict:
        return self._json("GET", f"/v1/jobs/{job_id}")

    def fetch_blob(self, job_id: str) -> bytes:
        status, _, data = self._request("GET", f"/v1/jobs/{job_id}/blob")
        if status != 200:
            message = data[:200].decode("latin-1")
            raise ServiceError(status, message)
        return data

    def cancel(self, job_id: str) -> Dict:
        return self._json("DELETE", f"/v1/jobs/{job_id}")

    def wait(
        self,
        job_id: str,
        timeout: float = 120.0,
        poll_s: float = 0.05,
    ) -> Dict:
        """Poll until the job reaches a terminal state; returns its
        final status document."""
        deadline = time.monotonic() + timeout
        while True:
            doc = self.status(job_id)
            if doc.get("state") in ("done", "failed", "timeout", "cancelled"):
                return doc
            if time.monotonic() >= deadline:
                raise ServiceError(
                    408, f"job {job_id} still {doc.get('state')} after "
                    f"{timeout:g}s"
                )
            time.sleep(poll_s)
