"""Thin synchronous client for the compression service.

Built on :mod:`http.client` (stdlib, blocking) because the consumers
are scripts, tests and the ``fpzc submit/status/fetch/cancel``
subcommands -- none of which want an event loop.  One TCP connection
per call matches the server's ``Connection: close`` discipline.

The server URL resolves from (in order): the explicit ``url``
argument, the ``FPZC_SERVICE_URL`` environment variable, and the
default ``http://127.0.0.1:8077``.
"""

from __future__ import annotations

import http.client
import json
import os
import time
from typing import Dict, Optional, Tuple
from urllib.parse import urlsplit

from repro.errors import ParameterError, ReproError

__all__ = ["ServiceError", "ServiceClient", "DEFAULT_URL"]

DEFAULT_URL = "http://127.0.0.1:8077"


class ServiceError(ReproError):
    """A non-2xx response (or transport failure) from the service."""

    def __init__(self, status: int, message: str, retry_after: Optional[float] = None):
        super().__init__(f"service answered {status}: {message}")
        self.status = status
        self.retry_after = retry_after


def resolve_url(url: Optional[str] = None) -> str:
    return url or os.environ.get("FPZC_SERVICE_URL") or DEFAULT_URL


class ServiceClient:
    """Scriptable access to every service endpoint."""

    def __init__(self, url: Optional[str] = None, timeout: float = 60.0):
        split = urlsplit(resolve_url(url))
        if split.scheme != "http" or not split.hostname:
            raise ParameterError(
                f"service URL must be http://host:port, got {resolve_url(url)!r}"
            )
        self.host = split.hostname
        self.port = split.port or 80
        self.timeout = timeout

    # -- transport ------------------------------------------------------

    def _request(
        self,
        method: str,
        path: str,
        body: Optional[Dict] = None,
    ) -> Tuple[int, Dict[str, str], bytes]:
        conn = http.client.HTTPConnection(
            self.host, self.port, timeout=self.timeout
        )
        try:
            payload = (
                json.dumps(body).encode("utf-8") if body is not None else None
            )
            headers = (
                {"Content-Type": "application/json"} if payload else {}
            )
            conn.request(method, path, body=payload, headers=headers)
            resp = conn.getresponse()
            data = resp.read()
            return (
                resp.status,
                {k.lower(): v for k, v in resp.getheaders()},
                data,
            )
        except OSError as exc:
            raise ServiceError(
                0, f"cannot reach {self.host}:{self.port}: {exc}"
            )
        finally:
            conn.close()

    def _json(self, method: str, path: str, body: Optional[Dict] = None) -> Dict:
        status, headers, data = self._request(method, path, body)
        try:
            doc = json.loads(data.decode("utf-8")) if data else {}
        except (UnicodeDecodeError, json.JSONDecodeError):
            doc = {"error": data[:200].decode("latin-1")}
        if status >= 400:
            retry_after = None
            if "retry-after" in headers:
                try:
                    retry_after = float(headers["retry-after"])
                except ValueError:
                    pass
            raise ServiceError(
                status, str(doc.get("error", "unknown error")), retry_after
            )
        return doc

    # -- ops ------------------------------------------------------------

    def healthz(self) -> Dict:
        return self._json("GET", "/healthz")

    def readyz(self) -> bool:
        status, _, _ = self._request("GET", "/readyz")
        return status == 200

    def metrics_text(self) -> str:
        status, _, data = self._request("GET", "/metrics")
        if status != 200:
            raise ServiceError(status, "metrics unavailable")
        return data.decode("utf-8")

    def metrics_json(self) -> Dict:
        return self._json("GET", "/metrics?format=json")

    # -- jobs -----------------------------------------------------------

    def submit(self, kind: str, payload: Dict) -> str:
        """Submit one job; returns its id.  Raises
        :class:`ServiceError` (with ``retry_after`` set) on a 429."""
        doc = self._json("POST", f"/v1/{kind}", payload)
        return str(doc["id"])

    def submit_compress(
        self,
        dataset: str,
        field: str,
        *,
        mode: str = "psnr",
        target: float,
        codec: str = "sz",
        **options,
    ) -> str:
        payload = {
            "dataset": dataset,
            "field": field,
            "mode": mode,
            "target": target,
            "codec": codec,
        }
        payload.update(options)
        return self.submit("compress", payload)

    def status(self, job_id: str) -> Dict:
        return self._json("GET", f"/v1/jobs/{job_id}")

    def fetch_blob(self, job_id: str) -> bytes:
        status, _, data = self._request("GET", f"/v1/jobs/{job_id}/blob")
        if status != 200:
            message = data[:200].decode("latin-1")
            raise ServiceError(status, message)
        return data

    def cancel(self, job_id: str) -> Dict:
        return self._json("DELETE", f"/v1/jobs/{job_id}")

    def wait(
        self,
        job_id: str,
        timeout: float = 120.0,
        poll_s: float = 0.05,
    ) -> Dict:
        """Poll until the job reaches a terminal state; returns its
        final status document."""
        deadline = time.monotonic() + timeout
        while True:
            doc = self.status(job_id)
            if doc.get("state") in ("done", "failed", "timeout", "cancelled"):
                return doc
            if time.monotonic() >= deadline:
                raise ServiceError(
                    408, f"job {job_id} still {doc.get('state')} after "
                    f"{timeout:g}s"
                )
            time.sleep(poll_s)
