"""Minimal HTTP/1.1 on raw asyncio streams.

The service speaks just enough HTTP for its job API: request-line +
headers + ``Content-Length`` bodies in, fixed-length responses out,
``Connection: close`` per exchange (the clients are scripts and
side-cars, not browsers holding keep-alive pools).  Implemented
directly on :mod:`asyncio` streams -- no ``http.server``, no threads
per connection, no framework -- because the dispatcher must live on
the same event loop that reads the sockets.

Hard limits guard the parser (header block and body size caps, 400 on
malformed syntax, 413 over the body cap, 501 for chunked bodies) so a
misbehaving client cannot balloon memory before admission control even
sees the request.
"""

from __future__ import annotations

import asyncio
import json
from dataclasses import dataclass, field as dc_field
from typing import Dict, Optional, Tuple
from urllib.parse import parse_qsl, urlsplit

__all__ = [
    "HttpError",
    "Request",
    "read_request",
    "render_response",
    "json_body",
]

#: Cap on the request line + header block.
MAX_HEADER_BYTES = 64 * 1024

#: Reason phrases for the statuses the service emits.
REASONS = {
    200: "OK",
    202: "Accepted",
    400: "Bad Request",
    404: "Not Found",
    405: "Method Not Allowed",
    408: "Request Timeout",
    409: "Conflict",
    413: "Payload Too Large",
    429: "Too Many Requests",
    500: "Internal Server Error",
    501: "Not Implemented",
    503: "Service Unavailable",
}


class HttpError(Exception):
    """A protocol-level failure that maps straight to a response."""

    def __init__(self, status: int, message: str):
        super().__init__(message)
        self.status = status
        self.message = message


@dataclass
class Request:
    """One parsed request."""

    method: str
    path: str
    query: Dict[str, str] = dc_field(default_factory=dict)
    headers: Dict[str, str] = dc_field(default_factory=dict)
    body: bytes = b""


async def read_request(
    reader: asyncio.StreamReader, max_body: int = 16 * 1024 * 1024
) -> Optional[Request]:
    """Parse one request off ``reader``.

    Returns ``None`` on a cleanly closed connection before any bytes;
    raises :class:`HttpError` for anything malformed or over limits.
    """
    try:
        head = await reader.readuntil(b"\r\n\r\n")
    except asyncio.IncompleteReadError as exc:
        if not exc.partial:
            return None
        raise HttpError(400, "truncated request head")
    except asyncio.LimitOverrunError:
        raise HttpError(413, "header block too large")
    if len(head) > MAX_HEADER_BYTES:
        raise HttpError(413, "header block too large")
    try:
        text = head.decode("latin-1")
    except UnicodeDecodeError:  # pragma: no cover - latin-1 never fails
        raise HttpError(400, "undecodable request head")
    lines = text.split("\r\n")
    parts = lines[0].split(" ")
    if len(parts) != 3 or not parts[2].startswith("HTTP/1."):
        raise HttpError(400, f"malformed request line: {lines[0]!r}")
    method, target, _version = parts
    split = urlsplit(target)
    headers: Dict[str, str] = {}
    for line in lines[1:]:
        if not line:
            continue
        if ":" not in line:
            raise HttpError(400, f"malformed header line: {line!r}")
        name, _, value = line.partition(":")
        headers[name.strip().lower()] = value.strip()
    if "chunked" in headers.get("transfer-encoding", "").lower():
        raise HttpError(501, "chunked request bodies are not supported")
    body = b""
    if "content-length" in headers:
        try:
            n = int(headers["content-length"])
        except ValueError:
            raise HttpError(400, "bad Content-Length")
        if n < 0:
            raise HttpError(400, "bad Content-Length")
        if n > max_body:
            raise HttpError(413, f"body exceeds the {max_body}-byte cap")
        try:
            body = await reader.readexactly(n)
        except asyncio.IncompleteReadError:
            raise HttpError(400, "truncated request body")
    return Request(
        method=method.upper(),
        path=split.path,
        query={k: v for k, v in parse_qsl(split.query)},
        headers=headers,
        body=body,
    )


def render_response(
    status: int,
    body: bytes = b"",
    content_type: str = "application/json",
    extra_headers: Tuple[Tuple[str, str], ...] = (),
) -> bytes:
    """Serialize one complete ``Connection: close`` response."""
    reason = REASONS.get(status, "Unknown")
    lines = [
        f"HTTP/1.1 {status} {reason}",
        f"Content-Type: {content_type}",
        f"Content-Length: {len(body)}",
        "Connection: close",
    ]
    for name, value in extra_headers:
        lines.append(f"{name}: {value}")
    return ("\r\n".join(lines) + "\r\n\r\n").encode("latin-1") + body


def json_body(request: Request) -> Dict:
    """Decode the request body as a JSON object (400 otherwise)."""
    if not request.body:
        raise HttpError(400, "request needs a JSON body")
    try:
        doc = json.loads(request.body.decode("utf-8"))
    except (UnicodeDecodeError, json.JSONDecodeError) as exc:
        raise HttpError(400, f"bad JSON body: {exc}")
    if not isinstance(doc, dict):
        raise HttpError(400, "request body must be a JSON object")
    return doc
