"""Spectral fidelity: which scales does lossy compression destroy?

PSNR is a single number; scientists ask a sharper question -- are the
*small-scale structures* (fronts, eddies, filaments) still there?  This
module answers it with isotropic power spectra:

* :func:`power_spectrum` -- radially averaged power spectral density;
* :func:`spectral_fidelity` -- per-wavenumber ratio of reconstructed to
  original power (1.0 = preserved, -> 0 = destroyed);
* :func:`fidelity_cutoff` -- the first wavenumber (as a fraction of
  Nyquist) where fidelity drops below a threshold: a one-number answer
  to "down to which scale can I trust the decompressed data?".

With uniform quantization the error is white (flat spectrum), so
fidelity degrades exactly where the signal's own spectrum falls below
the noise floor ``delta**2/12`` -- higher PSNR targets push the cutoff
toward Nyquist.  Ablation X10 measures that relationship.
"""

from __future__ import annotations

from typing import Tuple

import numpy as np

from repro.errors import ParameterError

__all__ = ["power_spectrum", "spectral_fidelity", "fidelity_cutoff"]


def power_spectrum(data: np.ndarray, n_bins: int = 0) -> Tuple[np.ndarray, np.ndarray]:
    """Radially averaged power spectrum of an n-D field.

    Returns ``(k, P)``: wavenumber bin centres (cycles per grid
    spacing, 0..0.5 = Nyquist) and mean power per bin.
    """
    x = np.asarray(data, dtype=np.float64)
    if x.ndim == 0 or x.size == 0:
        raise ParameterError("data must be a non-empty array")
    if not np.all(np.isfinite(x)):
        raise ParameterError("spectrum needs finite data")
    spectrum = np.abs(np.fft.fftn(x - x.mean())) ** 2 / x.size

    grids = np.meshgrid(
        *[np.fft.fftfreq(s) for s in x.shape], indexing="ij"
    )
    k = np.sqrt(sum(g * g for g in grids))

    if n_bins <= 0:
        n_bins = max(8, min(x.shape) // 2)
    edges = np.linspace(0.0, 0.5, n_bins + 1)
    which = np.digitize(k.ravel(), edges) - 1
    which = np.clip(which, 0, n_bins - 1)
    power = np.bincount(which, weights=spectrum.ravel(), minlength=n_bins)
    counts = np.bincount(which, minlength=n_bins)
    centres = 0.5 * (edges[:-1] + edges[1:])
    valid = counts > 0
    return centres[valid], power[valid] / counts[valid]


def spectral_fidelity(
    original, reconstructed, n_bins: int = 0
) -> Tuple[np.ndarray, np.ndarray]:
    """Per-wavenumber fidelity: ``1 - P_err(k) / P_orig(k)`` clipped to
    [0, 1].

    1 means that scale is untouched; 0 means the error power equals (or
    exceeds) the signal power there -- the scale is gone.
    """
    x = np.asarray(original, dtype=np.float64)
    y = np.asarray(reconstructed, dtype=np.float64)
    if x.shape != y.shape:
        raise ParameterError("shape mismatch")
    k, p_orig = power_spectrum(x, n_bins)
    _, p_err = power_spectrum(x - y + x.mean(), n_bins)  # mean-free err
    with np.errstate(divide="ignore", invalid="ignore"):
        fidelity = 1.0 - p_err / p_orig
    fidelity = np.where(p_orig > 0, fidelity, 0.0)
    return k, np.clip(fidelity, 0.0, 1.0)


def fidelity_cutoff(
    original, reconstructed, threshold: float = 0.5, n_bins: int = 0
) -> float:
    """Smallest preserved scale, as a fraction of the Nyquist
    wavenumber: the first ``k`` where fidelity falls below
    ``threshold`` (1.0 if no bin falls below it)."""
    if not 0.0 < threshold < 1.0:
        raise ParameterError("threshold must be in (0, 1)")
    k, fid = spectral_fidelity(original, reconstructed, n_bins)
    below = np.nonzero(fid < threshold)[0]
    if below.size == 0:
        return 1.0
    return float(k[below[0]] / 0.5)
