"""Rate metrics: compression ratio and bit rate.

Compression ratio is ``original_bytes / compressed_bytes`` (higher is
better); bit rate is ``compressed_bits / n_elements`` (lower is better).
These are the standard axes of the rate-distortion curves HPC
compression papers report.
"""

from __future__ import annotations

from dataclasses import dataclass, asdict
from typing import Dict, Union

import numpy as np

from repro.errors import ParameterError

__all__ = ["compression_ratio", "bit_rate", "RateReport", "rate_report"]

ArrayOrBytes = Union[np.ndarray, bytes, bytearray, memoryview, int]


def _nbytes(obj: ArrayOrBytes) -> int:
    """Byte size of an array, a bytes-like object, or a raw count."""
    if isinstance(obj, (int, np.integer)):
        if obj < 0:
            raise ParameterError("byte count must be non-negative")
        return int(obj)
    if isinstance(obj, np.ndarray):
        return int(obj.nbytes)
    if isinstance(obj, (bytes, bytearray, memoryview)):
        return len(obj)
    raise ParameterError(f"cannot derive a byte size from {type(obj).__name__}")


def compression_ratio(original: ArrayOrBytes, compressed: ArrayOrBytes) -> float:
    """Return ``original_bytes / compressed_bytes``."""
    o = _nbytes(original)
    c = _nbytes(compressed)
    if c == 0:
        raise ParameterError("compressed size is zero")
    return o / c


def bit_rate(compressed: ArrayOrBytes, n_elements: int) -> float:
    """Return compressed bits per element."""
    if n_elements <= 0:
        raise ParameterError("n_elements must be positive")
    return 8.0 * _nbytes(compressed) / n_elements


@dataclass(frozen=True)
class RateReport:
    """Rate metrics for one compression run."""

    original_bytes: int
    compressed_bytes: int
    n_elements: int
    compression_ratio: float
    bit_rate: float

    def as_dict(self) -> Dict[str, float]:
        """Return the report as a plain dict (JSON-friendly)."""
        return asdict(self)


def rate_report(original: np.ndarray, compressed: ArrayOrBytes) -> RateReport:
    """Build a :class:`RateReport` from an array and its compressed bytes."""
    if not isinstance(original, np.ndarray):
        raise ParameterError("rate_report needs the original ndarray")
    o = int(original.nbytes)
    c = _nbytes(compressed)
    n = int(original.size)
    if c == 0 or n == 0:
        raise ParameterError("degenerate sizes in rate_report")
    return RateReport(
        original_bytes=o,
        compressed_bytes=c,
        n_elements=n,
        compression_ratio=o / c,
        bit_rate=8.0 * c / n,
    )
