"""Statistical analysis of compression errors.

Beyond scalar distortion numbers, lossy-compression papers (including
the SZ line) examine the *structure* of the error field: its
distribution (the paper's model assumes uniform in ``[-eb, +eb]``),
its spatial autocorrelation (artifact detection -- uncorrelated error
is what post-analysis wants), and full rate-distortion curves.
"""

from __future__ import annotations

from dataclasses import dataclass, asdict
from typing import Callable, Dict, List, Sequence

import numpy as np
from scipy import stats

from repro.errors import ParameterError

__all__ = [
    "error_field",
    "error_autocorrelation",
    "error_uniformity",
    "ErrorProfile",
    "error_profile",
    "rate_distortion_curve",
]


def error_field(original, reconstructed) -> np.ndarray:
    """Pointwise error ``X - X~`` as float64."""
    x = np.asarray(original, dtype=np.float64)
    y = np.asarray(reconstructed, dtype=np.float64)
    if x.shape != y.shape:
        raise ParameterError("shape mismatch")
    if x.size == 0:
        raise ParameterError("empty arrays")
    return x - y


def error_autocorrelation(
    original, reconstructed, max_lag: int = 8, axis: int = -1
) -> np.ndarray:
    """Autocorrelation of the error field along ``axis`` for lags
    ``1..max_lag``.

    Values near zero mean the compressor did not imprint spatial
    structure on the error (the ideal); values near one mean smeared,
    blocky artifacts.
    """
    if max_lag < 1:
        raise ParameterError("max_lag must be >= 1")
    e = error_field(original, reconstructed)
    e = np.moveaxis(e, axis, -1)
    n = e.shape[-1]
    if n <= max_lag:
        raise ParameterError(f"axis too short ({n}) for max_lag={max_lag}")
    e = e - e.mean()
    denom = float(np.sum(e * e))
    if denom == 0.0:
        return np.zeros(max_lag)
    acf = np.empty(max_lag)
    for lag in range(1, max_lag + 1):
        acf[lag - 1] = float(np.sum(e[..., lag:] * e[..., :-lag])) / denom
    return acf


def error_uniformity(original, reconstructed, eb: float) -> float:
    """Kolmogorov-Smirnov p-value for ``error ~ Uniform(-eb, +eb)``.

    The paper's Eq. 6 rests on this uniformity; a tiny p-value flags a
    field whose measured PSNR will deviate from the closed form (mass
    concentrations, saturated plateaus, ...).  Note that on large
    fields even small model deviations give small p-values -- compare
    magnitudes, not significance thresholds.
    """
    if eb <= 0:
        raise ParameterError("eb must be positive")
    e = error_field(original, reconstructed).ravel()
    return float(stats.kstest(e, stats.uniform(loc=-eb, scale=2 * eb).cdf).pvalue)


@dataclass(frozen=True)
class ErrorProfile:
    """Summary statistics of one error field."""

    mean: float
    std: float
    skewness: float
    excess_kurtosis: float
    fraction_exact: float
    autocorrelation_lag1: float

    def as_dict(self) -> Dict[str, float]:
        """JSON-friendly representation."""
        return asdict(self)


def error_profile(original, reconstructed) -> ErrorProfile:
    """Compute an :class:`ErrorProfile` for a reconstruction.

    For a healthy uniform-quantization codec: mean ~ 0, excess
    kurtosis ~ -1.2 (uniform), low |lag-1 autocorrelation|.
    """
    e = error_field(original, reconstructed).ravel()
    std = float(e.std())
    if std == 0.0:
        return ErrorProfile(0.0, 0.0, 0.0, 0.0, 1.0, 0.0)
    lag1 = float(error_autocorrelation(original, reconstructed, max_lag=1)[0])
    return ErrorProfile(
        mean=float(e.mean()),
        std=std,
        skewness=float(stats.skew(e)),
        excess_kurtosis=float(stats.kurtosis(e)),
        fraction_exact=float(np.mean(e == 0.0)),
        autocorrelation_lag1=lag1,
    )


def rate_distortion_curve(
    data: np.ndarray,
    compress_fn: Callable[[np.ndarray, float], bytes],
    decompress_fn: Callable[[bytes], np.ndarray],
    bounds: Sequence[float],
) -> List[Dict[str, float]]:
    """Sweep ``bounds`` through a codec and collect (bit-rate, PSNR,
    compression-ratio) points.

    ``compress_fn(data, bound)`` must return the compressed bytes.
    """
    from repro.metrics.distortion import psnr as _psnr

    data = np.asarray(data)
    if data.size == 0:
        raise ParameterError("empty data")
    if not bounds:
        raise ParameterError("need at least one bound")
    points = []
    for bound in bounds:
        blob = compress_fn(data, float(bound))
        recon = decompress_fn(blob)
        points.append(
            {
                "bound": float(bound),
                "bit_rate": 8.0 * len(blob) / data.size,
                "compression_ratio": data.nbytes / len(blob),
                "psnr": float(_psnr(data, recon)),
            }
        )
    return points
