"""Rate/distortion metrics used throughout the paper's evaluation."""

from repro.metrics.distortion import (
    mse,
    rmse,
    nrmse,
    psnr,
    max_abs_error,
    max_rel_error,
    value_range,
    DistortionReport,
    distortion_report,
    masked_distortion_report,
)
from repro.metrics.ratio import compression_ratio, bit_rate, RateReport, rate_report
from repro.metrics.analysis import (
    error_field,
    error_autocorrelation,
    error_uniformity,
    ErrorProfile,
    error_profile,
    rate_distortion_curve,
)
from repro.metrics.spectral import (
    power_spectrum,
    spectral_fidelity,
    fidelity_cutoff,
)
from repro.metrics.derived import gradient, divergence, vorticity_z, derived_psnr

__all__ = [
    "error_field",
    "error_autocorrelation",
    "error_uniformity",
    "ErrorProfile",
    "error_profile",
    "rate_distortion_curve",
    "power_spectrum",
    "spectral_fidelity",
    "fidelity_cutoff",
    "gradient",
    "divergence",
    "vorticity_z",
    "derived_psnr",
    "mse",
    "rmse",
    "nrmse",
    "psnr",
    "max_abs_error",
    "max_rel_error",
    "value_range",
    "DistortionReport",
    "distortion_report",
    "masked_distortion_report",
    "compression_ratio",
    "bit_rate",
    "RateReport",
    "rate_report",
]
