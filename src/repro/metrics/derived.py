"""Fidelity of *derived* quantities: gradients, divergence, vorticity.

The paper's motivation is post-analysis on decompressed data; analysts
rarely consume raw values -- they differentiate them.  Differentiation
amplifies quantization noise (a central difference of white noise with
std ``sigma`` has std ``sigma/sqrt(2)`` per grid spacing of *signal*
gradient), so the PSNR needed to preserve a gradient field is higher
than for the values themselves.  These helpers quantify that.
"""

from __future__ import annotations

from typing import List

import numpy as np

from repro.errors import ParameterError
from repro.metrics.distortion import psnr as _psnr

__all__ = ["gradient", "divergence", "vorticity_z", "derived_psnr"]


def gradient(data: np.ndarray) -> List[np.ndarray]:
    """Central-difference gradient along every axis (unit spacing)."""
    x = np.asarray(data, dtype=np.float64)
    if x.ndim == 0 or x.size == 0:
        raise ParameterError("data must be a non-empty array")
    if any(s < 2 for s in x.shape):
        raise ParameterError("every extent must be >= 2 for gradients")
    return list(np.gradient(x))


def divergence(components: List[np.ndarray]) -> np.ndarray:
    """Divergence of a vector field given one component per axis."""
    if not components:
        raise ParameterError("need at least one component")
    d = len(components)
    shape = np.asarray(components[0]).shape
    if len(shape) != d or any(np.asarray(c).shape != shape for c in components):
        raise ParameterError("components must match the field rank and shape")
    return sum(
        np.gradient(np.asarray(c, dtype=np.float64), axis=i)
        for i, c in enumerate(components)
    )


def vorticity_z(u: np.ndarray, v: np.ndarray) -> np.ndarray:
    """z-vorticity ``dv/dx - du/dy`` of a 2-D flow (axes = (y, x))."""
    u = np.asarray(u, dtype=np.float64)
    v = np.asarray(v, dtype=np.float64)
    if u.shape != v.shape or u.ndim != 2:
        raise ParameterError("u and v must be matching 2-D arrays")
    return np.gradient(v, axis=1) - np.gradient(u, axis=0)


def derived_psnr(original, reconstructed, quantity: str = "gradient") -> float:
    """PSNR of a derived field (worst axis for gradients).

    ``quantity`` is ``"gradient"`` (default) or ``"laplacian"``.
    """
    x = np.asarray(original, dtype=np.float64)
    y = np.asarray(reconstructed, dtype=np.float64)
    if x.shape != y.shape:
        raise ParameterError("shape mismatch")
    if quantity == "gradient":
        return min(
            _psnr(gx, gy) for gx, gy in zip(gradient(x), gradient(y))
        )
    if quantity == "laplacian":
        lap_x = sum(np.gradient(g, axis=i) for i, g in enumerate(gradient(x)))
        lap_y = sum(np.gradient(g, axis=i) for i, g in enumerate(gradient(y)))
        return _psnr(lap_x, lap_y)
    raise ParameterError(f"unknown derived quantity {quantity!r}")
