"""Distortion metrics between original and reconstructed arrays.

These are the quantities the paper's evaluation reports: MSE, NRMSE and
PSNR (Section IV, Eqs. 2-5), plus the pointwise metrics that the
traditional error-control modes of SZ/ZFP/ISABELA bound (Section II-B).

Conventions
-----------
* ``value_range`` (``vr`` in the paper) is ``max(X) - min(X)`` of the
  *original* data.  All range-normalised metrics (NRMSE, PSNR,
  value-range-relative error) use it.
* PSNR follows the paper: ``PSNR = -20 * log10(NRMSE)`` with
  ``NRMSE = sqrt(MSE) / vr``.
* A constant field has ``vr == 0``; NRMSE/PSNR are then degenerate.  We
  return ``inf`` PSNR for a perfect reconstruction of a constant field
  and raise :class:`~repro.errors.ParameterError` otherwise, because a
  finite PSNR is undefined without a range.
"""

from __future__ import annotations

from dataclasses import dataclass, asdict
from typing import Dict

import numpy as np

from repro.errors import ParameterError

__all__ = [
    "value_range",
    "mse",
    "rmse",
    "nrmse",
    "psnr",
    "max_abs_error",
    "max_rel_error",
    "ssim",
    "DistortionReport",
    "distortion_report",
    "masked_distortion_report",
]


def _as_float_arrays(original, reconstructed):
    """Validate and convert a pair of arrays to float64 views."""
    x = np.asarray(original, dtype=np.float64)
    y = np.asarray(reconstructed, dtype=np.float64)
    if x.shape != y.shape:
        raise ParameterError(
            f"shape mismatch: original {x.shape} vs reconstructed {y.shape}"
        )
    if x.size == 0:
        raise ParameterError("empty arrays have no distortion metrics")
    return x, y


def value_range(original) -> float:
    """Return ``vr = max(X) - min(X)`` of the original data.

    This is the paper's ``vr`` (Eq. 4) and the denominator of SZ's
    value-range-based relative error bound.
    """
    x = np.asarray(original, dtype=np.float64)
    if x.size == 0:
        raise ParameterError("empty array has no value range")
    if not np.all(np.isfinite(x)):
        raise ParameterError("value range undefined for non-finite data")
    return float(x.max() - x.min())


def mse(original, reconstructed) -> float:
    """Mean squared error between the original and reconstructed data."""
    x, y = _as_float_arrays(original, reconstructed)
    d = x - y
    return float(np.mean(d * d))


def rmse(original, reconstructed) -> float:
    """Root mean squared error."""
    return float(np.sqrt(mse(original, reconstructed)))


def nrmse(original, reconstructed) -> float:
    """Normalised RMSE, ``sqrt(MSE)/vr`` (paper Eq. 4).

    Raises :class:`ParameterError` for a constant original field with a
    non-zero error (the metric is undefined there).
    """
    e = rmse(original, reconstructed)
    vr = value_range(original)
    if vr == 0.0:
        if e == 0.0:
            return 0.0
        raise ParameterError("NRMSE undefined: constant field with non-zero error")
    return e / vr


def psnr(original, reconstructed) -> float:
    """Peak signal-to-noise ratio in dB, ``-20*log10(NRMSE)`` (Eq. 5).

    Returns ``inf`` for a lossless reconstruction.
    """
    n = nrmse(original, reconstructed)
    if n == 0.0:
        return float("inf")
    return float(-20.0 * np.log10(n))


def max_abs_error(original, reconstructed) -> float:
    """Maximum pointwise absolute error (the bound SZ's ABS mode enforces)."""
    x, y = _as_float_arrays(original, reconstructed)
    return float(np.max(np.abs(x - y)))


def max_rel_error(original, reconstructed) -> float:
    """Maximum *value-range-based* relative error, ``max|err| / vr``.

    This is SZ's "value-range-based relative error" (Section II-B), not
    the pointwise-relative error of ISABELA.
    """
    vr = value_range(original)
    e = max_abs_error(original, reconstructed)
    if vr == 0.0:
        if e == 0.0:
            return 0.0
        raise ParameterError("relative error undefined: constant field")
    return e / vr


def ssim(original, reconstructed, window: int = 8) -> float:
    """Mean structural similarity over non-overlapping blocks.

    A dependency-free SSIM for n-dimensional scientific fields: the
    arrays are tiled into ``window``-sized blocks along every axis
    (axes shorter than ``window`` use their full extent; trailing
    remainders are dropped), the standard SSIM formula with
    ``C1=(0.01*L)**2`` / ``C2=(0.03*L)**2`` is evaluated per block with
    the original's value range as the dynamic range ``L``, and the
    block values are averaged.  Block tiling replaces the classic
    sliding Gaussian window, which keeps the metric exact, fast and
    deterministic without scipy.

    Returns 1.0 for a perfect reconstruction.  Raises
    :class:`ParameterError` for a constant original field with a
    non-zero error (no dynamic range to normalise by).
    """
    x, y = _as_float_arrays(original, reconstructed)
    if window < 1:
        raise ParameterError("SSIM window must be >= 1")
    vr = value_range(x)
    if vr == 0.0:
        if np.array_equal(x, y):
            return 1.0
        raise ParameterError("SSIM undefined: constant field with error")
    # Trim to block multiples and reshape to (blocks..., window...).
    shape = []
    block_axes = []
    slices = []
    for axis, n in enumerate(x.shape):
        w = min(window, n)
        slices.append(slice(0, (n // w) * w))
        shape.extend([n // w, w])
        block_axes.append(2 * axis + 1)
    xb = x[tuple(slices)].reshape(shape)
    yb = y[tuple(slices)].reshape(shape)
    axes = tuple(block_axes)
    mx = xb.mean(axis=axes)
    my = yb.mean(axis=axes)
    vx = (xb * xb).mean(axis=axes) - mx * mx
    vy = (yb * yb).mean(axis=axes) - my * my
    cov = (xb * yb).mean(axis=axes) - mx * my
    c1 = (0.01 * vr) ** 2
    c2 = (0.03 * vr) ** 2
    s = ((2.0 * mx * my + c1) * (2.0 * cov + c2)) / (
        (mx * mx + my * my + c1) * (vx + vy + c2)
    )
    return float(np.mean(s))


@dataclass(frozen=True)
class DistortionReport:
    """All distortion metrics for one (original, reconstructed) pair."""

    mse: float
    rmse: float
    nrmse: float
    psnr: float
    max_abs_error: float
    max_rel_error: float
    value_range: float

    def as_dict(self) -> Dict[str, float]:
        """Return the report as a plain dict (JSON-friendly)."""
        return asdict(self)


def masked_distortion_report(
    original, reconstructed, fill_value: float
) -> DistortionReport:
    """Distortion over *valid* points only.

    Points equal to ``fill_value`` (or NaN when ``fill_value`` is NaN)
    in the original are excluded -- the right metric for fields
    compressed with :class:`repro.sz.SZCompressor`'s ``fill_value``
    support, where sentinels are restored exactly and must not inflate
    the value range.
    """
    x, y = _as_float_arrays(original, reconstructed)
    if np.isnan(fill_value):
        mask = np.isnan(x)
    else:
        mask = x == fill_value
    valid = ~mask
    if not valid.any():
        raise ParameterError("no valid points: everything is fill")
    return distortion_report(x[valid], y[valid])


def distortion_report(original, reconstructed) -> DistortionReport:
    """Compute every distortion metric in one pass-friendly call."""
    x, y = _as_float_arrays(original, reconstructed)
    d = x - y
    m = float(np.mean(d * d))
    r = float(np.sqrt(m))
    vr = value_range(x)
    mx = float(np.max(np.abs(d)))
    if vr == 0.0:
        n = 0.0 if r == 0.0 else float("nan")
        mrel = 0.0 if mx == 0.0 else float("nan")
    else:
        n = r / vr
        mrel = mx / vr
    p = float("inf") if n == 0.0 else float(-20.0 * np.log10(n))
    return DistortionReport(
        mse=m,
        rmse=r,
        nrmse=n,
        psnr=p,
        max_abs_error=mx,
        max_rel_error=mrel,
        value_range=vr,
    )
