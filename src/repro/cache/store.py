"""Content-addressed, on-disk cache for compression outcomes.

The paper's fixed-PSNR control (Eq. 7/8) makes a compression run a
*pure function* of (dataset bytes, dtype/shape, codec, control mode,
target or bound, container format version).  That purity is what makes
memoization sound: two runs with the same key must produce the same
blob bit-for-bit, so the blob can be stored once and replayed forever
-- the FRaZ observation (fixed-target search amortizes across runs)
promoted from autotune's private in-memory ``TrialCache`` to a store
every entry point shares: the CLI (``fpzc compress/sweep --cache``),
the autotune driver (trials persist across invocations) and the
service (cache consult before enqueue).

Layout and guarantees
---------------------

* One file per entry under ``<root>/<key[:2]>/<key>.fpze`` where
  ``key`` is a SHA-256 hex digest of the canonical key document (see
  :func:`blob_key` / :func:`trial_key`).  Sharding on the first byte
  keeps directories small at production entry counts.
* Entries are **write-once**: a temp file in the same directory is
  ``os.replace``'d into place, so concurrent writers of the same key
  race benignly (last rename wins with identical content; readers
  never observe a torn file) and a crash mid-write leaves only a temp
  file that the next eviction pass sweeps.
* Every entry embeds a CRC32 of its payload; a failed check (torn
  disk, bit rot) deletes the entry and reports a miss -- the cache
  self-heals instead of serving a corrupt blob.
* Eviction is LRU by file mtime, bounded by ``max_bytes``; a hit
  touches the entry's mtime so hot keys survive the pass.
* Keys embed both this module's :data:`CACHE_SCHEMA_VERSION` and the
  container format version (:data:`repro.io.container.VERSION`), so a
  format bump invalidates every prior entry *by key miss* -- stale
  blobs are never replayed, and the orphaned files age out via LRU.

``cache.*`` metrics (hits/misses/evictions/bytes) are registered
``deterministic=False``: a persistent store makes hit counts depend on
what earlier processes left behind, which must never enter the bench
gate's deterministic comparisons.
"""

from __future__ import annotations

import hashlib
import json
import os
import struct
import zlib
from dataclasses import dataclass
from pathlib import Path
from typing import Dict, Iterator, List, Optional, Tuple

import numpy as np

from repro.errors import ParameterError

__all__ = [
    "CACHE_SCHEMA_VERSION",
    "CacheEntry",
    "CacheStore",
    "blob_key",
    "cache_path",
    "data_digest",
    "trial_key",
]

#: Version of the on-disk entry format *and* the key document schema.
#: Bumping it orphans every existing entry (keys miss; LRU sweeps the
#: files), which is exactly the invalidation a layout change needs.
CACHE_SCHEMA_VERSION = 1

#: Entry file magic + fixed header: magic, schema, meta length.
_MAGIC = b"FPZE"
_HEADER = struct.Struct("<4sHI")

#: Suffix of entry files (temp files append a further ``.tmp*``).
_SUFFIX = ".fpze"


def cache_path(override: Optional[str] = None) -> Path:
    """The cache root: ``override`` if given, else ``$FPZC_CACHE``,
    else ``.fpzc/cache`` under the working directory (next to the run
    ledger's default home)."""
    if override:
        return Path(override)
    env = os.environ.get("FPZC_CACHE")
    if env:
        return Path(env)
    return Path(".fpzc") / "cache"


def data_digest(data) -> str:
    """Stable SHA-256 content digest of an array: dtype, shape, bytes.

    Two arrays share a digest iff they are element-wise identical with
    the same dtype and shape -- same contract as the autotune
    fingerprint, but SHA-256 because these keys name durable on-disk
    artefacts shared across machines.
    """
    a = np.ascontiguousarray(data)
    h = hashlib.sha256()
    h.update(str(a.dtype).encode())
    h.update(str(a.shape).encode())
    h.update(a.tobytes())
    return h.hexdigest()


def _format_version() -> int:
    # Looked up at call time (not import time) so a format bump -- or a
    # test monkeypatching it -- invalidates keys immediately.
    from repro.io import container

    return int(container.VERSION)


def _hash_doc(doc: Dict) -> str:
    canon = json.dumps(doc, sort_keys=True, separators=(",", ":"))
    return hashlib.sha256(canon.encode()).hexdigest()


def _exact(value: Optional[float]) -> Optional[str]:
    """Floats enter keys via ``float.hex()`` -- exact, no rounding
    ambiguity -- mirroring the container's own float packing."""
    return None if value is None else float(value).hex()


def blob_key(
    digest: str,
    *,
    codec: str,
    mode: str,
    target: Optional[float] = None,
    bound: Optional[float] = None,
    **options,
) -> str:
    """The cache key for a finished compression blob.

    ``digest`` is :func:`data_digest` of the input array; ``mode`` is
    the control mode (``psnr``/``nrmse``/``mse``/``ratio``/``abs``/
    ``rel``/``pw_rel``); ``target`` or ``bound`` is the requested value
    in that unit.  ``options`` carries anything else that changes the
    output bytes (``refine``, ``entropy``, ``chunks`` ...); ``None``
    values are dropped so absent and default-omitted options agree.
    """
    doc = {
        "kind": "blob",
        "schema": CACHE_SCHEMA_VERSION,
        "format_version": _format_version(),
        "digest": digest,
        "codec": codec,
        "mode": mode,
        "target": _exact(target),
        "bound": _exact(bound),
        "options": {k: v for k, v in sorted(options.items()) if v is not None},
    }
    return _hash_doc(doc)


def trial_key(
    digest: str, *, codec: str, objective: str, eb_rel: float
) -> str:
    """The cache key for one autotune trial measurement at an exact
    bound (the persistent sibling of ``TrialCache``'s in-memory key,
    format version included)."""
    doc = {
        "kind": "trial",
        "schema": CACHE_SCHEMA_VERSION,
        "format_version": _format_version(),
        "digest": digest,
        "codec": codec,
        "objective": objective,
        "eb_rel": _exact(eb_rel),
    }
    return _hash_doc(doc)


def _cache_metrics():
    from repro.telemetry.registry import metrics

    reg = metrics()
    return {
        "hits": reg.counter(
            "cache.hits_total",
            help="store lookups served from disk",
            deterministic=False,
        ),
        "misses": reg.counter(
            "cache.misses_total",
            help="store lookups that fell through to compression",
            deterministic=False,
        ),
        "evictions": reg.counter(
            "cache.evictions_total",
            help="entries removed by the LRU size bound",
            deterministic=False,
        ),
        "bytes": reg.gauge(
            "cache.bytes",
            help="total bytes of cache entries on disk",
            deterministic=False,
        ),
    }


@dataclass
class CacheEntry:
    """One materialized cache entry: its key, the metadata document
    (achieved metrics, provenance) and the payload bytes."""

    key: str
    meta: Dict
    payload: bytes


class CacheStore:
    """The content-addressed store (see the module docstring for the
    on-disk contract).

    Carries only its root path and size bound, so instances pickle
    into worker processes; metrics always land in the process-local
    registry of whoever performs the operation.
    """

    def __init__(
        self,
        root: Optional[str] = None,
        max_bytes: Optional[int] = None,
    ):
        if max_bytes is not None and max_bytes < 0:
            raise ParameterError("cache max_bytes must be >= 0")
        self.root = Path(root) if root is not None else cache_path()
        self.max_bytes = max_bytes

    # -- paths ----------------------------------------------------------

    def path_for(self, key: str) -> Path:
        return self.root / key[:2] / (key + _SUFFIX)

    def _entries(self) -> List[Path]:
        if not self.root.is_dir():
            return []
        return [
            p
            for shard in self.root.iterdir()
            if shard.is_dir()
            for p in shard.glob("*" + _SUFFIX)
        ]

    def __len__(self) -> int:
        return len(self._entries())

    def total_bytes(self) -> int:
        total = 0
        for p in self._entries():
            try:
                total += p.stat().st_size
            except OSError:
                pass  # concurrently evicted
        return total

    # -- read -----------------------------------------------------------

    def get(self, key: str, *, touch: bool = True) -> Optional[CacheEntry]:
        """The entry for ``key``, or ``None`` on miss.  A hit bumps the
        entry's mtime (LRU recency) unless ``touch=False``; a corrupt
        entry is deleted and reported as a miss."""
        counters = _cache_metrics()
        path = self.path_for(key)
        try:
            raw = path.read_bytes()
        except OSError:
            counters["misses"].inc()
            return None
        entry = self._parse(key, raw)
        if entry is None:
            # Self-heal: never serve (or keep) a corrupt entry.
            try:
                path.unlink()
            except OSError:
                pass
            counters["misses"].inc()
            return None
        if touch:
            try:
                os.utime(path)
            except OSError:
                pass  # concurrently evicted; the payload is already ours
        counters["hits"].inc()
        return entry

    @staticmethod
    def _parse(key: str, raw: bytes) -> Optional[CacheEntry]:
        if len(raw) < _HEADER.size:
            return None
        magic, schema, meta_len = _HEADER.unpack_from(raw)
        if magic != _MAGIC or schema != CACHE_SCHEMA_VERSION:
            return None
        meta_end = _HEADER.size + meta_len
        if len(raw) < meta_end:
            return None
        try:
            meta = json.loads(raw[_HEADER.size:meta_end].decode("utf-8"))
        except (UnicodeDecodeError, json.JSONDecodeError):
            return None
        payload = raw[meta_end:]
        if len(payload) != int(meta.get("payload_len", -1)):
            return None
        if zlib.crc32(payload) != int(meta.get("payload_crc32", -1)):
            return None
        return CacheEntry(key=key, meta=meta, payload=payload)

    def iter_meta(self) -> Iterator[Tuple[str, Dict]]:
        """Yield ``(key, meta)`` for every parseable entry -- the scan
        behind store-backed warm starts.  Payload CRCs are *not*
        verified here (that stays on the :meth:`get` path); unreadable
        entries are skipped silently."""
        for path in self._entries():
            key = path.name[: -len(_SUFFIX)]
            try:
                with open(path, "rb") as fh:
                    head = fh.read(_HEADER.size)
                    if len(head) < _HEADER.size:
                        continue
                    magic, schema, meta_len = _HEADER.unpack(head)
                    if magic != _MAGIC or schema != CACHE_SCHEMA_VERSION:
                        continue
                    meta = json.loads(fh.read(meta_len).decode("utf-8"))
            except (OSError, UnicodeDecodeError, json.JSONDecodeError):
                continue
            yield key, meta

    # -- write ----------------------------------------------------------

    def put(self, key: str, payload: bytes, meta: Dict) -> bool:
        """Store ``payload`` under ``key`` (write-once; returns whether
        a new entry was written).  ``meta`` is any JSON document; the
        payload length/CRC fields are added here.  When the store has a
        ``max_bytes`` bound, an LRU eviction pass runs after the write.
        """
        path = self.path_for(key)
        if path.exists():
            # Write-once: an identical entry is already in place (keys
            # are content addresses, so contents cannot disagree).
            return False
        doc = dict(meta)
        doc["payload_len"] = len(payload)
        doc["payload_crc32"] = zlib.crc32(payload)
        meta_bytes = json.dumps(doc, sort_keys=True).encode("utf-8")
        blob = (
            _HEADER.pack(_MAGIC, CACHE_SCHEMA_VERSION, len(meta_bytes))
            + meta_bytes
            + payload
        )
        path.parent.mkdir(parents=True, exist_ok=True)
        tmp = path.with_name(f"{path.name}.tmp{os.getpid()}")
        try:
            with open(tmp, "wb") as fh:
                fh.write(blob)
            os.replace(tmp, path)
        except OSError:
            try:
                tmp.unlink()
            except OSError:
                pass
            return False
        counters = _cache_metrics()
        if self.max_bytes is not None:
            self.evict()
        counters["bytes"].set(self.total_bytes())
        return True

    # -- eviction -------------------------------------------------------

    def evict(self, max_bytes: Optional[int] = None) -> int:
        """Delete least-recently-used entries until the store fits in
        ``max_bytes`` (defaulting to the store's own bound); stray temp
        files from crashed writers are swept too.  Returns the number
        of entries evicted."""
        bound = self.max_bytes if max_bytes is None else max_bytes
        if bound is None:
            return 0
        counters = _cache_metrics()
        if self.root.is_dir():
            for shard in self.root.iterdir():
                if not shard.is_dir():
                    continue
                for stray in shard.glob("*.tmp*"):
                    try:
                        stray.unlink()
                    except OSError:
                        pass
        stats = []
        for p in self._entries():
            try:
                st = p.stat()
            except OSError:
                continue
            stats.append((st.st_mtime, p.name, p, st.st_size))
        total = sum(size for _, _, _, size in stats)
        evicted = 0
        # Oldest mtime first; name breaks ties deterministically.
        for _, _, path, size in sorted(stats, key=lambda s: (s[0], s[1])):
            if total <= bound:
                break
            try:
                path.unlink()
            except OSError:
                continue
            total -= size
            evicted += 1
        if evicted:
            counters["evictions"].inc(evicted)
        counters["bytes"].set(max(0, total))
        return evicted

    def clear(self) -> int:
        """Delete every entry; returns how many were removed."""
        removed = 0
        for p in self._entries():
            try:
                p.unlink()
                removed += 1
            except OSError:
                pass
        _cache_metrics()["bytes"].set(self.total_bytes())
        return removed
