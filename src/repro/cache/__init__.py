"""Content-addressed compression cache shared by every entry point.

See :mod:`repro.cache.store` for the on-disk contract and
``docs/CACHING.md`` for the operator's view (key schema, invalidation,
eviction, service semantics).
"""

from repro.cache.store import (
    CACHE_SCHEMA_VERSION,
    CacheEntry,
    CacheStore,
    blob_key,
    cache_path,
    data_digest,
    trial_key,
)

__all__ = [
    "CACHE_SCHEMA_VERSION",
    "CacheEntry",
    "CacheStore",
    "blob_key",
    "cache_path",
    "data_digest",
    "trial_key",
]
