"""Synthetic scientific data sets mirroring the paper's Table I.

The paper evaluates on production snapshots (CESM-ATM climate,
Hurricane ISABEL, NYX cosmology) that are not redistributable; these
generators produce deterministic synthetic fields with the same
dimensionality, field counts, names and statistical character (smooth
vs. intermittent, bounded vs. heavy-tailed, vortical vs. layered) --
see DESIGN.md section 2.3 for why this preserves the paper's
behaviour.

Every generator is seeded by the field name, so data sets are
reproducible across processes and sessions.
"""

from repro.datasets.registry import (
    Dataset,
    FieldSpec,
    get_dataset,
    DATASETS,
    table1_rows,
)
from repro.datasets.spectral import gaussian_random_field

__all__ = [
    "Dataset",
    "FieldSpec",
    "get_dataset",
    "DATASETS",
    "table1_rows",
    "gaussian_random_field",
]
