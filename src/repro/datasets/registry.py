"""Data-set registry mirroring the paper's Table I.

``get_dataset("ATM")`` returns a :class:`Dataset` whose fields
regenerate deterministically on demand; ``scale`` shrinks every spatial
extent by the given factor so experiments run at laptop scale while the
full paper dimensions remain one flag away (``scale=1.0``).
"""

from __future__ import annotations

from dataclasses import dataclass, field as _dataclass_field
from typing import Callable, Dict, Iterator, List, Sequence, Tuple

import numpy as np

from repro.datasets import atm, hurricane, nyx
from repro.errors import ParameterError

__all__ = ["FieldSpec", "Dataset", "DATASETS", "get_dataset", "table1_rows"]


@dataclass(frozen=True)
class FieldSpec:
    """One field of a data set: its name and statistical class."""

    name: str
    kind: str
    slope: float


@dataclass(frozen=True)
class Dataset:
    """A named data set at a chosen resolution."""

    name: str
    full_shape: Tuple[int, ...]
    shape: Tuple[int, ...]
    field_specs: Tuple[FieldSpec, ...]
    _generator: Callable[[str, Sequence[int]], np.ndarray] = _dataclass_field(
        repr=False
    )

    @property
    def field_names(self) -> List[str]:
        """All field names, in registry order."""
        return [spec.name for spec in self.field_specs]

    @property
    def n_fields(self) -> int:
        """Number of fields (Table I's '# of Fields')."""
        return len(self.field_specs)

    def field(self, name: str) -> np.ndarray:
        """Generate the named field at this data set's shape."""
        return self._generator(name, self.shape)

    def fields(self) -> Iterator[Tuple[str, np.ndarray]]:
        """Iterate ``(name, array)`` over every field."""
        for spec in self.field_specs:
            yield spec.name, self.field(spec.name)

    def nbytes_full(self) -> int:
        """Total single-precision bytes at *full* paper resolution
        (Table I's 'Data Size' column is per campaign; we report one
        snapshot)."""
        per_field = 4 * int(np.prod(self.full_shape))
        return per_field * self.n_fields

    def nbytes(self) -> int:
        """Total bytes at the instantiated resolution."""
        per_field = 4 * int(np.prod(self.shape))
        return per_field * self.n_fields


def _scaled(shape: Sequence[int], scale: float) -> Tuple[int, ...]:
    if not (0 < scale <= 1.0):
        raise ParameterError("scale must be in (0, 1]")
    return tuple(max(8, int(round(s * scale))) for s in shape)


_REGISTRY: Dict[str, Tuple[Tuple[int, ...], Dict, Callable, Tuple[int, ...]]] = {
    # name: (full shape, field registry, generator, default scaled shape)
    "NYX": (nyx.FULL_SHAPE, nyx.NYX_FIELDS, nyx.generate_nyx_field, (64, 64, 64)),
    "ATM": (atm.FULL_SHAPE, atm.ATM_FIELDS, atm.generate_atm_field, (180, 360)),
    "Hurricane": (
        hurricane.FULL_SHAPE,
        hurricane.HURRICANE_FIELDS,
        hurricane.generate_hurricane_field,
        (25, 125, 125),
    ),
}

#: Public list of data-set names, in the paper's Table I order.
DATASETS = tuple(_REGISTRY)


def get_dataset(name: str, scale: float | None = None) -> Dataset:
    """Instantiate a data set.

    ``scale=None`` uses the laptop-scale default shape; ``scale=1.0``
    the paper's full dimensions; anything in between scales every
    extent proportionally.
    """
    if name not in _REGISTRY:
        raise ParameterError(f"unknown data set {name!r}; choose from {DATASETS}")
    full_shape, registry, generator, default_shape = _REGISTRY[name]
    shape = default_shape if scale is None else _scaled(full_shape, scale)
    specs = tuple(
        FieldSpec(fname, kind, slope) for fname, (kind, slope) in registry.items()
    )
    return Dataset(
        name=name,
        full_shape=full_shape,
        shape=shape,
        field_specs=specs,
        _generator=generator,
    )


def table1_rows(scale: float | None = None) -> List[Dict]:
    """Rows of the paper's Table I (plus the instantiated shape).

    Example fields per data set follow the paper's own examples.
    """
    examples = {
        "NYX": "baryon_density, temperature",
        "ATM": "CLDHGH, CLDLOW",
        "Hurricane": "QICE, PRECIP, U, V, W",
    }
    # Campaign sizes quoted in the paper's Table I (its 'Data Size'
    # covers many snapshots/time steps; ours is one snapshot).
    paper_sizes = {"NYX": "206 GB", "ATM": "1.5 TB", "Hurricane": "62.4 GB"}
    rows = []
    for name in DATASETS:
        ds = get_dataset(name, scale=scale)
        rows.append(
            {
                "dataset": name,
                "full_dimensions": "x".join(str(s) for s in ds.full_shape),
                "n_fields": ds.n_fields,
                "full_size_bytes": ds.nbytes_full(),
                "paper_data_size": paper_sizes[name],
                "instantiated_dimensions": "x".join(str(s) for s in ds.shape),
                "instantiated_size_bytes": ds.nbytes(),
                "example_fields": examples[name],
            }
        )
    return rows
