"""Synthetic Hurricane ISABEL fields (3-D, 13 fields, paper Table I).

The real data is the IEEE Vis 2004 contest set: 100x500x500 voxels
(height x lat x lon), 13 single-precision fields per time step.  The
synthetic equivalents are built around an idealised tropical cyclone:

* a Rankine-like vortex gives tangential winds ``U``/``V`` with strong
  radial shear;
* hydrometeor mixing ratios (``QCLOUD``, ``QICE``, ...) are
  intermittent -- exact zeros away from the eyewall and heavy positive
  tails inside it, which is what makes Hurricane the high-STDEV column
  of the paper's Table II;
* pressure ``Pf`` has a smooth radial depression; temperature ``TC``
  follows a lapse rate with a warm core.
"""

from __future__ import annotations

import zlib
from typing import Dict, Sequence, Tuple

import numpy as np

from repro.datasets.spectral import gaussian_random_field
from repro.errors import ParameterError

__all__ = ["HURRICANE_FIELDS", "generate_hurricane_field", "FULL_SHAPE"]

#: Full-resolution shape from the paper's Table I (z, y, x).
FULL_SHAPE = (100, 500, 500)

#: name -> (class, spectral slope); 13 entries, matching Table I.
HURRICANE_FIELDS: Dict[str, Tuple[str, float]] = {
    "QCLOUD": ("hydrometeor", 2.6),
    "QGRAUP": ("hydrometeor", 2.4),
    "QICE": ("hydrometeor", 2.5),
    "QRAIN": ("hydrometeor", 2.4),
    "QSNOW": ("hydrometeor", 2.5),
    "QVAPOR": ("moisture", 3.2),
    "CLOUD": ("fraction", 2.8),
    "PRECIP": ("hydrometeor", 2.3),
    "Pf": ("pressure", 4.5),
    "TC": ("temperature", 4.0),
    "U": ("wind_u", 3.0),
    "V": ("wind_v", 3.0),
    "W": ("wind_w", 2.2),
}

assert len(HURRICANE_FIELDS) == 13


def _field_seed(name: str) -> int:
    return zlib.crc32(("ISABEL:" + name).encode("utf-8"))


def _vortex_geometry(shape: Sequence[int]):
    """Radial distance from the (slightly tilted) storm axis, the
    tangential unit vectors, and normalised height, all broadcast 3-D."""
    nz, ny, nx = shape
    z = np.linspace(0.0, 1.0, nz)[:, None, None]
    y = np.linspace(-1.0, 1.0, ny)[None, :, None]
    x = np.linspace(-1.0, 1.0, nx)[None, None, :]
    # Storm axis tilts with height.
    cx = 0.15 * (z - 0.5)
    cy = -0.10 * (z - 0.5)
    dx = x - cx
    dy = y - cy
    r = np.sqrt(dx * dx + dy * dy) + 1e-9
    # Tangential direction (counter-clockwise).
    tx = -dy / r
    ty = dx / r
    return r, tx, ty, z


def _tangential_speed(r: np.ndarray, z: np.ndarray) -> np.ndarray:
    """Rankine-style profile: solid-body core, 1/r decay outside,
    weakening with height."""
    r_eye = 0.12
    v_max = 65.0
    inner = v_max * (r / r_eye)
    outer = v_max * (r_eye / r) ** 0.6
    return np.where(r < r_eye, inner, outer) * (1.0 - 0.5 * z)


def generate_hurricane_field(
    name: str, shape: Sequence[int] = (25, 125, 125)
) -> np.ndarray:
    """Generate one named Hurricane field at the requested shape
    (float32).  Deterministic in ``name`` and ``shape``."""
    if name not in HURRICANE_FIELDS:
        raise ParameterError(f"unknown Hurricane field {name!r}")
    shape = tuple(int(s) for s in shape)
    if len(shape) != 3:
        raise ParameterError("Hurricane fields are 3-D")
    kind, slope = HURRICANE_FIELDS[name]
    seed = _field_seed(name)
    g = gaussian_random_field(shape, slope=slope, seed=seed, anisotropy=(3.0, 1.0, 1.0))
    r, tx, ty, z = _vortex_geometry(shape)
    speed = _tangential_speed(r, z)

    if kind == "hydrometeor":
        # Concentrated in the eyewall annulus and rainbands.  Outside
        # the clouds the mixing ratio decays to a tiny numerical floor
        # rather than exact zero: production microphysics output keeps
        # advection/diffusion residue, and the paper's tight Hurricane
        # STDEVs at 60+ dB (Table II) confirm the real fields are not
        # dominated by exactly-representable plateaus.
        eyewall = np.exp(-(((r - 0.16) / 0.08) ** 2)) * (1.0 - z) ** 0.5
        bands = np.exp(-(((r - 0.45) / 0.05) ** 2)) * 0.4
        intensity = (eyewall + bands) * np.exp(1.2 * g)
        activation = 1.0 / (1.0 + np.exp(-(intensity - 0.15) / 0.02))
        # Background haze at ~0.3 % of the eyewall maximum with a wide
        # multiplicative spread (sub-visible hydrometeors + numerical
        # diffusion residue).  Its absolute variation must exceed the
        # 60 dB bin size or the field degenerates into one quantization
        # bin outside the storm -- the paper's tight Hurricane STDEVs at
        # 60-120 dB (Table II) show the real fields do not degenerate.
        core = 1e-3 * intensity * activation
        floor = (
            3e-3
            * float(core.max())
            * np.exp(0.8 * gaussian_random_field(shape, slope=1.5, seed=seed + 13))
        )
        field = core + floor
    elif kind == "moisture":
        # Water vapour: decays with height, enhanced near the core.
        field = 2e-2 * np.exp(-2.5 * z) * (1.0 + 0.5 * np.exp(-r / 0.3)) * np.exp(
            0.25 * g
        )
    elif kind == "fraction":
        raw = np.exp(-(((r - 0.2) / 0.15) ** 2)) + 0.4 * g
        base = np.clip(raw, 0.0, 1.0)
        # dithered saturation, as for the ATM fraction fields
        lo = 1e-5 * np.abs(
            1.0 + 0.5 * gaussian_random_field(shape, 2.0, seed + 11)
        )
        hi = 1e-5 * np.abs(
            1.0 + 0.5 * gaussian_random_field(shape, 2.0, seed + 12)
        )
        field = np.minimum(np.maximum(base, lo), 1.0 - hi)
    elif kind == "pressure":
        # Hydrostatic background minus a radial depression at low levels.
        background = 1000.0 - 850.0 * z
        depression = 90.0 * np.exp(-((r / 0.2) ** 2)) * (1.0 - z)
        field = background - depression + 1.5 * g
    elif kind == "temperature":
        # Lapse rate with a warm core.
        field = 28.0 - 75.0 * z + 8.0 * np.exp(-((r / 0.15) ** 2)) * z + 0.8 * g
    elif kind == "wind_u":
        field = speed * tx + 5.0 * g
    elif kind == "wind_v":
        field = speed * ty + 5.0 * g
    elif kind == "wind_w":
        # Updrafts in the eyewall, weak elsewhere, small-scale noise.
        field = 4.0 * np.exp(-(((r - 0.16) / 0.06) ** 2)) * np.sin(
            np.pi * np.clip(z, 0, 1)
        ) + 1.2 * g
    else:  # pragma: no cover
        raise ParameterError(f"unknown field class {kind!r}")
    return np.ascontiguousarray(field, dtype=np.float32)
