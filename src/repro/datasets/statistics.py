"""Statistical characterisation of data-set fields.

DESIGN.md section 2.3 argues the synthetic generators preserve the
paper's behaviour because they match the *statistical character* of the
production fields: dynamic range, smoothness, mass concentration,
tail weight.  This module computes those quantities so the claim is
measurable (and regression-tested) instead of rhetorical:

* ``smoothness``: 1 - std(Lorenzo prediction error)/std(field); 1 for
  perfectly predictable fields, ~0 for white noise;
* ``mass_concentration``: the largest probability mass within any
  single bin of a 200-bin (0.5 %-of-range) histogram -- the resolution
  a low-PSNR quantizer sees; saturated fractions and hydrometeor
  floors show up here;
* ``tail_weight``: range / (interquartile range) -- heavy-tailed NYX
  density scores orders of magnitude above Gaussian fields;
* plus the plain moments.
"""

from __future__ import annotations

from dataclasses import dataclass, asdict
from typing import Dict, List

import numpy as np

from repro.errors import ParameterError
from repro.sz.predictors import prediction_errors

__all__ = ["FieldStatistics", "field_statistics", "dataset_profile"]


@dataclass(frozen=True)
class FieldStatistics:
    """Character summary of one field."""

    name: str
    shape: tuple
    minimum: float
    maximum: float
    value_range: float
    std: float
    smoothness: float
    mass_concentration: float
    tail_weight: float

    def as_dict(self) -> Dict:
        """JSON-friendly representation."""
        d = asdict(self)
        d["shape"] = list(self.shape)
        return d


def field_statistics(data: np.ndarray, name: str = "") -> FieldStatistics:
    """Compute the :class:`FieldStatistics` of an array."""
    x = np.asarray(data, dtype=np.float64)
    if x.ndim == 0 or x.size == 0:
        raise ParameterError("data must be a non-empty array")
    if not np.all(np.isfinite(x)):
        raise ParameterError("statistics need finite data")
    lo, hi = float(x.min()), float(x.max())
    vr = hi - lo
    std = float(x.std())

    if std > 0:
        pe_std = float(prediction_errors(x).std())
        smoothness = float(max(0.0, 1.0 - pe_std / std))
    else:
        smoothness = 1.0

    if vr > 0:
        counts, _ = np.histogram(x, bins=200, range=(lo, hi))
        mass = float(counts.max() / x.size)
        q25, q75 = np.percentile(x, [25, 75])
        iqr = float(q75 - q25)
        tail = float(vr / iqr) if iqr > 0 else float("inf")
    else:
        mass = 1.0
        tail = 1.0

    return FieldStatistics(
        name=name,
        shape=tuple(x.shape),
        minimum=lo,
        maximum=hi,
        value_range=vr,
        std=std,
        smoothness=smoothness,
        mass_concentration=mass,
        tail_weight=tail,
    )


def dataset_profile(dataset) -> List[FieldStatistics]:
    """Profile every field of a :class:`repro.datasets.Dataset`."""
    return [field_statistics(arr, name) for name, arr in dataset.fields()]
