"""Synthetic NYX cosmology fields (3-D, 6 fields, paper Table I).

The real data is a 2048^3 AMReX-Nyx snapshot with 6 single-precision
fields.  The synthetic equivalents follow the standard lognormal
approximation of large-scale structure:

* ``baryon_density`` / ``dark_matter_density`` are exponentials of a
  correlated GRF -- extreme dynamic range (orders of magnitude between
  voids and halos), which is the stress case for value-range-relative
  error bounds;
* ``temperature`` follows a density power law (the IGM
  temperature-density relation) with scatter;
* velocities are comparatively smooth Gaussian components.
"""

from __future__ import annotations

import zlib
from typing import Dict, Sequence, Tuple

import numpy as np

from repro.datasets.spectral import gaussian_random_field
from repro.errors import ParameterError

__all__ = ["NYX_FIELDS", "generate_nyx_field", "FULL_SHAPE"]

#: Full-resolution shape from the paper's Table I.
FULL_SHAPE = (2048, 2048, 2048)

#: name -> (class, spectral slope); 6 entries, matching Table I.
NYX_FIELDS: Dict[str, Tuple[str, float]] = {
    "baryon_density": ("density", 2.8),
    "dark_matter_density": ("density", 2.6),
    "temperature": ("temperature", 2.8),
    "velocity_x": ("velocity", 3.4),
    "velocity_y": ("velocity", 3.4),
    "velocity_z": ("velocity", 3.4),
}

assert len(NYX_FIELDS) == 6


def _field_seed(name: str) -> int:
    return zlib.crc32(("NYX:" + name).encode("utf-8"))


def _density_grf(shape: Sequence[int], slope: float, seed: int) -> np.ndarray:
    """Shared large-scale structure: baryons, dark matter and
    temperature must be correlated, so they blend a common mode."""
    common = gaussian_random_field(shape, slope=slope, seed=999)
    own = gaussian_random_field(shape, slope=slope, seed=seed)
    return 0.85 * common + 0.55 * own


def generate_nyx_field(name: str, shape: Sequence[int] = (64, 64, 64)) -> np.ndarray:
    """Generate one named NYX field at the requested shape (float32).

    Deterministic in ``name`` and ``shape``.
    """
    if name not in NYX_FIELDS:
        raise ParameterError(f"unknown NYX field {name!r}")
    shape = tuple(int(s) for s in shape)
    if len(shape) != 3:
        raise ParameterError("NYX fields are 3-D")
    kind, slope = NYX_FIELDS[name]
    seed = _field_seed(name)

    if kind == "density":
        delta = _density_grf(shape, slope, seed)
        # Lognormal density in units of the cosmic mean.  sigma is
        # calibrated so std/value-range matches the ~0.05 the paper's
        # Table II implies for NYX at low PSNR targets (too heavy a
        # tail makes very low PSNRs unreachable: everything but a few
        # halo voxels falls into one quantization bin).
        field = 1.0e8 * np.exp(1.1 * delta)
    elif kind == "temperature":
        delta = _density_grf(shape, slope, seed)
        scatter = gaussian_random_field(shape, slope=slope, seed=seed + 7)
        # T ~ T0 * (rho/rho0)^(gamma-1), gamma ~ 1.6, with scatter.
        field = 1.0e4 * np.exp(0.6 * (1.1 * delta)) * np.exp(0.2 * scatter)
    elif kind == "velocity":
        field = 2.5e7 * gaussian_random_field(shape, slope=slope, seed=seed)
    else:  # pragma: no cover
        raise ParameterError(f"unknown field class {kind!r}")
    return np.ascontiguousarray(field, dtype=np.float32)
