"""Time-series generators: evolving snapshot sequences.

The paper's introduction motivates lossy compression with the *time
dimension* problem: HACC must decimate temporally (keep every k-th
snapshot) because storage cannot hold every step, "degrading the
consecutiveness of simulation in time" and losing information.
Exercising that story needs sequences of correlated snapshots, which
this module synthesises with a linear advection-diffusion-forcing
update on top of the spectral generator:

    f_{t+1} = shift(f_t, v) * (1 - leak) + forcing_t

The update is applied in Fourier space (exact periodic advection and
diffusion), so sequences of any length cost one FFT per step and stay
deterministic in the seed.
"""

from __future__ import annotations

from typing import Iterator, Sequence, Tuple

import numpy as np

from repro.datasets.spectral import gaussian_random_field
from repro.errors import ParameterError

__all__ = ["snapshot_series", "advect"]


def advect(
    field: np.ndarray, velocity: Sequence[float], diffusion: float = 0.0
) -> np.ndarray:
    """One periodic advection(+diffusion) step in Fourier space.

    ``velocity`` is in grid cells per step along each axis (fractional
    values are fine -- spectral shifting is exact for any real shift).
    """
    x = np.asarray(field, dtype=np.float64)
    if x.ndim == 0 or x.size == 0:
        raise ParameterError("field must be a non-empty array")
    if len(velocity) != x.ndim:
        raise ParameterError("need one velocity component per axis")
    if diffusion < 0:
        raise ParameterError("diffusion must be non-negative")
    spectrum = np.fft.fftn(x)
    k2 = np.zeros(x.shape)
    for axis, (s, v) in enumerate(zip(x.shape, velocity)):
        freq = np.fft.fftfreq(s)
        shape = [1] * x.ndim
        shape[axis] = s
        f = freq.reshape(shape)
        spectrum = spectrum * np.exp(-2j * np.pi * f * v)
        k2 = k2 + (f * 2 * np.pi) ** 2
    if diffusion > 0.0:
        spectrum = spectrum * np.exp(-diffusion * k2)
    return np.real(np.fft.ifftn(spectrum))


def snapshot_series(
    shape: Sequence[int],
    n_steps: int,
    seed: int = 0,
    velocity: Tuple[float, ...] | None = None,
    diffusion: float = 0.05,
    forcing: float = 0.02,
    slope: float = 3.0,
) -> Iterator[np.ndarray]:
    """Yield ``n_steps`` float32 snapshots of an evolving field.

    Consecutive snapshots are strongly correlated (that is the point:
    temporal prediction should beat per-snapshot compression), but
    fresh forcing keeps the sequence from converging to a fixed point.
    """
    shape = tuple(int(s) for s in shape)
    if n_steps < 1:
        raise ParameterError("n_steps must be >= 1")
    if not (0 <= forcing < 1):
        raise ParameterError("forcing must be in [0, 1)")
    if velocity is None:
        velocity = (0.7,) * len(shape)
    field = gaussian_random_field(shape, slope=slope, seed=seed)
    yield np.ascontiguousarray(field, dtype=np.float32)
    for step in range(1, n_steps):
        field = advect(field, velocity, diffusion=diffusion)
        fresh = gaussian_random_field(shape, slope=slope, seed=seed + 1000 + step)
        field = (1.0 - forcing) * field + forcing * fresh
        yield np.ascontiguousarray(field, dtype=np.float32)
