"""Spectral synthesis of Gaussian random fields (GRFs).

The workhorse of all three synthetic data sets: draw white noise in
Fourier space, shape its amplitude by a power-law spectrum
``|k|^(-slope/2)``, and transform back.  Larger ``slope`` means more
energy at large scales, i.e. smoother fields; climate-like scalar
fields sit around slope 3-4, turbulent velocity components nearer 2,
and nearly-white measurement-noise fields at 0-1.

Everything is plain ``numpy.fft`` on float64 and fully vectorized; a
256x512 field synthesises in a few milliseconds.
"""

from __future__ import annotations

from typing import Optional, Sequence, Tuple

import numpy as np

from repro.errors import ParameterError

__all__ = ["gaussian_random_field", "radial_coordinates"]


def radial_coordinates(shape: Sequence[int]) -> np.ndarray:
    """Distance of every grid point from the domain centre, normalised
    so the nearest domain edge is at radius 1."""
    shape = tuple(int(s) for s in shape)
    if any(s < 1 for s in shape):
        raise ParameterError("all extents must be >= 1")
    axes = [
        (np.arange(s, dtype=np.float64) - (s - 1) / 2.0) / max((s - 1) / 2.0, 1.0)
        for s in shape
    ]
    grids = np.meshgrid(*axes, indexing="ij")
    return np.sqrt(sum(g * g for g in grids))


def gaussian_random_field(
    shape: Sequence[int],
    slope: float = 3.0,
    seed: int = 0,
    anisotropy: Optional[Tuple[float, ...]] = None,
) -> np.ndarray:
    """Synthesize a zero-mean, unit-variance GRF with spectrum
    ``P(k) ~ |k|^(-slope)``.

    Parameters
    ----------
    shape:
        Grid extents (any dimensionality >= 1).
    slope:
        Spectral slope; 0 is white noise, 3-4 gives smooth
        geophysical-looking fields.
    seed:
        Deterministic RNG seed.
    anisotropy:
        Optional per-axis wavenumber stretch factors; values > 1
        compress structure along that axis (e.g. atmospheric layering:
        stretch the vertical axis).
    """
    shape = tuple(int(s) for s in shape)
    if len(shape) == 0 or any(s < 1 for s in shape):
        raise ParameterError("shape must be non-empty with positive extents")
    if anisotropy is not None and len(anisotropy) != len(shape):
        raise ParameterError("anisotropy needs one factor per axis")
    rng = np.random.default_rng(seed)
    noise = rng.standard_normal(shape)
    spectrum = np.fft.fftn(noise)

    freqs = []
    for axis, s in enumerate(shape):
        f = np.fft.fftfreq(s)
        if anisotropy is not None:
            f = f * float(anisotropy[axis])
        freqs.append(f)
    grids = np.meshgrid(*freqs, indexing="ij")
    k2 = sum(g * g for g in grids)
    # Avoid the k=0 singularity; the DC mode is zeroed below anyway.
    k2[(0,) * len(shape)] = 1.0
    amplitude = k2 ** (-slope / 4.0)  # sqrt of the power spectrum
    amplitude[(0,) * len(shape)] = 0.0

    field = np.real(np.fft.ifftn(spectrum * amplitude))
    std = field.std()
    if std == 0.0:
        return np.zeros(shape)
    return (field - field.mean()) / std
