"""Synthetic CESM-ATM climate fields (2-D, 79 fields, paper Table I).

The real CESM Large Ensemble atmosphere output is 1800x3600 per field
with 79 single-precision 2-D fields per snapshot in the paper's copy.
Each synthetic field combines a latitudinal base profile with spectral
noise whose character matches the physical variable class:

* ``fraction``  -- cloud/ice/land fractions: bounded [0, 1], plateaus
  at the bounds (hard mass concentrations -- the stress case for
  low-PSNR targets, cf. Figure 2's outlier fields);
* ``flux``      -- radiative/heat fluxes: positive, skewed;
* ``precip``    -- precipitation rates: intermittent, mostly ~0 with
  heavy positive tails;
* ``state``     -- temperature/pressure/height: smooth, strong
  latitudinal gradient;
* ``wind``      -- signed velocity components with jet structure;
* ``surface``   -- fields with land/sea discontinuities.

Field names follow the CESM CAM output convention so examples read like
the paper (CLDHGH, PRECL, TREFHT, ...).
"""

from __future__ import annotations

import zlib
from typing import Dict, Sequence, Tuple

import numpy as np

from repro.datasets.spectral import gaussian_random_field
from repro.errors import ParameterError

__all__ = ["ATM_FIELDS", "generate_atm_field", "FULL_SHAPE"]

#: Full-resolution shape from the paper's Table I.
FULL_SHAPE = (1800, 3600)

#: name -> (class, spectral slope); 79 entries, matching Table I.
ATM_FIELDS: Dict[str, Tuple[str, float]] = {
    # Cloud and surface fractions (bounded [0,1])
    "CLDHGH": ("fraction", 3.0),
    "CLDLOW": ("fraction", 2.8),
    "CLDMED": ("fraction", 2.9),
    "CLDTOT": ("fraction", 3.1),
    "ICEFRAC": ("fraction", 3.5),
    "LANDFRAC": ("mask", 4.0),
    "OCNFRAC": ("mask", 4.0),
    "RELHUM": ("fraction", 3.2),
    "SNOWHICE": ("precip", 3.0),
    "SNOWHLND": ("precip", 2.8),
    # Radiative fluxes (positive, skewed)
    "FLDS": ("flux", 3.4),
    "FLNS": ("flux", 3.0),
    "FLNSC": ("flux", 3.2),
    "FLNT": ("flux", 3.3),
    "FLNTC": ("flux", 3.4),
    "FLUT": ("flux", 3.2),
    "FLUTC": ("flux", 3.4),
    "FSDS": ("flux", 3.5),
    "FSDSC": ("flux", 3.8),
    "FSNS": ("flux", 3.3),
    "FSNSC": ("flux", 3.6),
    "FSNT": ("flux", 3.4),
    "FSNTC": ("flux", 3.7),
    "FSNTOA": ("flux", 3.4),
    "FSNTOAC": ("flux", 3.7),
    "SOLIN": ("state", 5.0),
    "SWCF": ("wind", 3.0),
    "LWCF": ("flux", 3.1),
    # Heat / moisture fluxes
    "LHFLX": ("flux", 2.8),
    "SHFLX": ("wind", 2.7),
    "QFLX": ("flux", 2.9),
    # Precipitation (intermittent)
    "PRECC": ("precip", 2.5),
    "PRECL": ("precip", 2.6),
    "PRECSC": ("precip", 2.5),
    "PRECSL": ("precip", 2.6),
    "PRECT": ("precip", 2.5),
    "PRECTMX": ("precip", 2.4),
    # Pressure / height / boundary layer (smooth states)
    "PS": ("state", 4.5),
    "PSL": ("state", 4.8),
    "PHIS": ("surface", 2.2),
    "PBLH": ("flux", 2.6),
    "Z050": ("state", 5.0),
    "Z500": ("state", 4.8),
    "Z3": ("state", 4.6),
    "TROP_P": ("state", 4.2),
    "TROP_T": ("state", 4.4),
    "TROP_Z": ("state", 4.5),
    # Temperatures
    "TS": ("surface", 3.8),
    "TSMN": ("surface", 3.7),
    "TSMX": ("surface", 3.7),
    "TREFHT": ("surface", 3.9),
    "TREFHTMN": ("surface", 3.8),
    "TREFHTMX": ("surface", 3.8),
    "T010": ("state", 4.6),
    "T200": ("state", 4.5),
    "T500": ("state", 4.4),
    "T700": ("state", 4.3),
    "T850": ("state", 4.2),
    "TMQ": ("flux", 3.0),
    # Humidity
    "QREFHT": ("flux", 3.1),
    "Q200": ("precip", 2.8),
    "Q500": ("flux", 2.9),
    "Q850": ("flux", 3.0),
    # Winds (signed, jets)
    "TAUX": ("wind", 2.8),
    "TAUY": ("wind", 2.7),
    "U010": ("wind", 3.4),
    "U10": ("wind", 2.9),
    "U200": ("wind", 3.3),
    "U500": ("wind", 3.2),
    "U850": ("wind", 3.0),
    "UBOT": ("wind", 2.8),
    "V200": ("wind", 3.1),
    "V500": ("wind", 3.0),
    "V850": ("wind", 2.9),
    "VBOT": ("wind", 2.7),
    "WGUSTD": ("flux", 2.4),
    "OMEGA500": ("wind", 2.6),
    # Cloud water paths
    "TGCLDIWP": ("precip", 2.7),
    "TGCLDLWP": ("precip", 2.8),
}

assert len(ATM_FIELDS) == 79, f"ATM registry has {len(ATM_FIELDS)} fields, want 79"


def _field_seed(name: str) -> int:
    """Stable per-field seed derived from the field name."""
    return zlib.crc32(name.encode("utf-8"))


def _latitude_profile(shape: Sequence[int]) -> np.ndarray:
    """cos(latitude)-like meridional base structure, broadcast to 2-D."""
    lat = np.linspace(-np.pi / 2, np.pi / 2, shape[0])
    return np.cos(lat)[:, None] * np.ones((1, shape[1]))


def generate_atm_field(name: str, shape: Sequence[int] = (180, 360)) -> np.ndarray:
    """Generate one named ATM field at the requested shape (float32).

    Deterministic in ``name`` and ``shape``.
    """
    if name not in ATM_FIELDS:
        raise ParameterError(f"unknown ATM field {name!r}")
    shape = tuple(int(s) for s in shape)
    if len(shape) != 2:
        raise ParameterError("ATM fields are 2-D")
    kind, slope = ATM_FIELDS[name]
    seed = _field_seed(name)
    g = gaussian_random_field(shape, slope=slope, seed=seed)
    lat = _latitude_profile(shape)

    if kind == "fraction":
        # Squash to [0,1] with saturation plateaus at both ends.  The
        # plateaus carry a tiny spatial dither (1e-6 of the range), the
        # numerical texture production CAM output has; without it the
        # plateaus sit exactly on one quantization lattice point and
        # inflate the PSNR far beyond the paper's Table II variances.
        # Time-averaged cloud fractions are rarely exactly 0/1; the
        # plateaus keep ~5e-4 of spatial texture.
        raw = 0.8 * g + 0.7 * (lat - 0.5)
        base = np.clip(0.5 + 0.75 * raw, 0.0, 1.0)
        lo = 5e-4 * np.abs(
            1.0 + 0.5 * gaussian_random_field(shape, 2.0, seed + 11)
        )
        hi = 5e-4 * np.abs(
            1.0 + 0.5 * gaussian_random_field(shape, 2.0, seed + 12)
        )
        field = np.minimum(np.maximum(base, lo), 1.0 - hi)
    elif kind == "mask":
        # Land/sea-like: thresholded smooth field, binary plateaus with
        # narrow shores.  Deliberately kept *exactly* saturated -- these
        # are the overshooting outlier fields of Figure 2.
        field = 1.0 / (1.0 + np.exp(-25.0 * (g - 0.2)))
    elif kind == "flux":
        # Positive, skewed: shifted lognormal-ish around a latitudinal mean.
        field = (40.0 + 160.0 * lat) * np.exp(0.35 * g)
    elif kind == "precip":
        # Intermittent: exponential tail above a smooth activation,
        # decaying to a tiny positive noise floor (not exact zero; see
        # the fraction-field note above).
        intensity = np.exp(1.5 * g - 1.0)
        activation = 1.0 / (1.0 + np.exp(-(g - 0.4) / 0.04))
        floor = 1e-3 * np.exp(
            0.8 * gaussian_random_field(shape, 1.5, seed + 13)
        )
        field = intensity * activation + floor
    elif kind == "state":
        # Smooth thermodynamic state: strong meridional gradient plus
        # weak large-scale noise.
        field = 220.0 + 80.0 * lat + 4.0 * g
    elif kind == "wind":
        # Signed with jet structure: zonal jets modulated by noise.
        jet = 25.0 * np.sin(3.0 * np.pi * (lat - 0.5)) * lat
        field = jet + 6.0 * g
    elif kind == "surface":
        # Discontinuous at coastlines: blend two climates by a mask.
        mask = 1.0 / (1.0 + np.exp(-25.0 * (gaussian_random_field(
            shape, slope=4.0, seed=seed + 1) - 0.2)))
        ocean = 285.0 + 15.0 * lat + 2.0 * g
        land = 275.0 + 35.0 * lat + 8.0 * g
        field = mask * land + (1.0 - mask) * ocean
    else:  # pragma: no cover - registry is closed
        raise ParameterError(f"unknown field class {kind!r}")
    return np.ascontiguousarray(field, dtype=np.float32)
