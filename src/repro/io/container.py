"""On-disk / in-memory container for compressed data.

Layout (all integers little-endian)::

    magic   4 bytes  b"FPZC"
    version 1 byte
    codec   1 byte
    reserved 2 bytes
    meta_len 8 bytes, meta_crc32 4 bytes,
    then meta_len bytes of UTF-8 JSON metadata
    n_streams 4 bytes
    per stream:
        name_len 2 bytes, name (UTF-8)
        payload_len 8 bytes
        crc32 4 bytes (of the payload)
        payload

Metadata is JSON for debuggability; floating-point fields that must
round-trip **exactly** (the error bound, the lattice anchor) are stored
via ``float.hex()``.
"""

from __future__ import annotations

import json
import struct
import zlib
from typing import Dict, List, Tuple

from repro.errors import ErrorCode, FormatError, ParameterError

__all__ = [
    "Container",
    "CODEC_SZ",
    "CODEC_TRANSFORM",
    "CODEC_CHUNKED",
    "CODEC_REGRESSION",
    "CODEC_EMBEDDED",
    "CODEC_HYBRID",
    "CODEC_LEGACY",
    "CODEC_INTERP",
    "pack_exact_float",
    "unpack_exact_float",
]

MAGIC = b"FPZC"
VERSION = 1
CODEC_SZ = 1
CODEC_TRANSFORM = 2
CODEC_CHUNKED = 3
CODEC_REGRESSION = 4
CODEC_EMBEDDED = 5
CODEC_HYBRID = 6
CODEC_LEGACY = 7
CODEC_INTERP = 8
_KNOWN_CODECS = (
    CODEC_SZ,
    CODEC_TRANSFORM,
    CODEC_CHUNKED,
    CODEC_REGRESSION,
    CODEC_EMBEDDED,
    CODEC_HYBRID,
    CODEC_LEGACY,
    CODEC_INTERP,
)


def pack_exact_float(x: float) -> str:
    """Encode a float so it round-trips bit-exactly through JSON."""
    return float(x).hex()


def unpack_exact_float(s: str) -> float:
    """Inverse of :func:`pack_exact_float`."""
    try:
        return float.fromhex(s)
    except (TypeError, ValueError) as exc:
        raise FormatError(f"bad exact-float field {s!r}") from exc


class Container:
    """A codec id, a JSON-able metadata dict, and named byte streams."""

    def __init__(self, codec: int, meta: Dict, streams: List[Tuple[str, bytes]]):
        if codec not in _KNOWN_CODECS:
            raise ParameterError(f"unknown codec id {codec}")
        self.codec = codec
        self.meta = dict(meta)
        self.streams = list(streams)
        #: :class:`repro.resilience.salvage.SalvageReport` when this
        #: container came out of a salvage decode; None otherwise.
        self.salvage = None
        #: Transient telemetry attached by tooling (stage costs, byte
        #: layouts).  Deliberately NOT serialized: the container format
        #: carries data, never measurements (see DESIGN.md).
        self.metrics: Dict = {}

    def stream(self, name: str) -> bytes:
        """Return the payload of the named stream."""
        for sname, payload in self.streams:
            if sname == name:
                return payload
        raise FormatError(
            f"container has no stream named {name!r}",
            code=ErrorCode.MISSING_STREAM,
        )

    def has_stream(self, name: str) -> bool:
        """True if a stream of that name is present."""
        return any(sname == name for sname, _ in self.streams)

    def byte_layout(self) -> Dict:
        """Exact byte accounting of the serialized form.

        Returns ``{"total", "framing", "streams": {name: bytes}}``
        where ``framing`` covers the header, metadata block and
        per-stream name/length/CRC fields.  By construction
        ``framing + sum(streams.values()) == total == len(to_bytes())``
        -- the invariant the observability layer's byte counters are
        checked against.  Repeated stream names accumulate.
        """
        meta_blob = json.dumps(self.meta, sort_keys=True).encode("utf-8")
        # magic(4) + version/codec/reserved(4) + meta_len/crc(12) + meta
        # + n_streams(4)
        framing = 4 + 4 + 12 + len(meta_blob) + 4
        sizes: Dict[str, int] = {}
        payload_total = 0
        for name, payload in self.streams:
            framing += 2 + len(name.encode("utf-8")) + 12
            sizes[name] = sizes.get(name, 0) + len(payload)
            payload_total += len(payload)
        return {
            "total": framing + payload_total,
            "framing": framing,
            "streams": sizes,
        }

    def stream_crcs(self) -> Dict[str, int]:
        """CRC32 of every stream payload, keyed by stream name -- the
        exact checksums :meth:`to_bytes` frames each stream with.

        This is the integrity fingerprint the differential tests pin
        parallel transports against: two containers with equal codec,
        metadata and stream CRCs serialize to identical bytes.
        Repeated stream names keep the *last* occurrence (matching
        duplicate-key behaviour elsewhere would be ambiguous; chunked
        containers never repeat names).
        """
        return {
            name: zlib.crc32(payload) for name, payload in self.streams
        }

    def to_bytes(self) -> bytes:
        """Serialize the container."""
        meta_blob = json.dumps(self.meta, sort_keys=True).encode("utf-8")
        parts = [
            MAGIC,
            struct.pack("<BBH", VERSION, self.codec, 0),
            struct.pack("<QI", len(meta_blob), zlib.crc32(meta_blob)),
            meta_blob,
            struct.pack("<I", len(self.streams)),
        ]
        for name, payload in self.streams:
            name_b = name.encode("utf-8")
            if len(name_b) > 0xFFFF:
                raise ParameterError("stream name too long")
            parts.append(struct.pack("<H", len(name_b)))
            parts.append(name_b)
            parts.append(struct.pack("<QI", len(payload), zlib.crc32(payload)))
            parts.append(payload)
        return b"".join(parts)

    @classmethod
    def from_bytes(cls, blob: bytes, salvage: bool = False) -> "Container":
        """Parse and validate a serialized container.

        Strict by default: the first bad byte raises a
        :class:`~repro.errors.FormatError` carrying a structured
        ``code``.  With ``salvage=True`` the parse is best-effort
        instead (see :func:`repro.resilience.salvage.salvage_container`):
        CRC-failing streams are skipped, the parser resynchronizes on
        provable stream boundaries, and the returned container's
        ``salvage`` attribute holds the
        :class:`~repro.resilience.salvage.SalvageReport`.  Salvage
        still raises (typed) when the identity header itself is
        unusable.
        """
        if salvage:
            from repro.resilience.salvage import salvage_container

            container, _report = salvage_container(bytes(blob))
            return container
        view = memoryview(blob)
        pos = 0

        def take(n: int) -> memoryview:
            nonlocal pos
            if pos + n > len(view):
                raise FormatError(
                    "container truncated", code=ErrorCode.TRUNCATED
                )
            out = view[pos : pos + n]
            pos += n
            return out

        if bytes(take(4)) != MAGIC:
            raise FormatError(
                "bad magic: not a FPZC container", code=ErrorCode.BAD_MAGIC
            )
        version, codec, _reserved = struct.unpack("<BBH", take(4))
        if version != VERSION:
            raise FormatError(
                f"unsupported container version {version}",
                code=ErrorCode.BAD_VERSION,
            )
        if codec not in _KNOWN_CODECS:
            raise FormatError(
                f"unknown codec id {codec}", code=ErrorCode.BAD_CODEC
            )
        meta_len, meta_crc = struct.unpack("<QI", take(12))
        meta_blob = bytes(take(meta_len))
        if zlib.crc32(meta_blob) != meta_crc:
            raise FormatError(
                "metadata block failed its CRC check",
                code=ErrorCode.CRC_MISMATCH,
            )
        try:
            meta = json.loads(meta_blob.decode("utf-8"))
        except (UnicodeDecodeError, json.JSONDecodeError) as exc:
            raise FormatError(
                f"bad metadata block: {exc}", code=ErrorCode.BAD_META
            ) from exc
        if not isinstance(meta, dict):
            raise FormatError(
                "metadata block is not a JSON object", code=ErrorCode.BAD_META
            )
        (n_streams,) = struct.unpack("<I", take(4))
        streams: List[Tuple[str, bytes]] = []
        for _ in range(n_streams):
            (name_len,) = struct.unpack("<H", take(2))
            try:
                name = bytes(take(name_len)).decode("utf-8")
            except UnicodeDecodeError as exc:
                raise FormatError(
                    f"bad stream name: {exc}", code=ErrorCode.BAD_STREAM_NAME
                ) from exc
            payload_len, crc = struct.unpack("<QI", take(12))
            payload = bytes(take(payload_len))
            if zlib.crc32(payload) != crc:
                raise FormatError(
                    f"stream {name!r} failed its CRC check",
                    code=ErrorCode.CRC_MISMATCH,
                )
            streams.append((name, payload))
        if pos != len(view):
            raise FormatError(
                f"{len(view) - pos} trailing bytes after container",
                code=ErrorCode.TRAILING_BYTES,
            )
        return cls(codec, meta, streams)
