"""Campaign store: a whole simulation run in one compressed object.

The paper's Table I sizes are *campaigns* -- many snapshots of many
fields (ATM: 1.5 TB across time steps of 79 fields).  This module
integrates the package's pieces into that workflow:

* per field, a :class:`repro.sz.temporal.TemporalCompressor` stream
  (temporal prediction + keyframes);
* one index mapping ``(step, field)`` to its blob;
* random access: any field at any *keyframe* step decodes alone; a
  predicted step decodes after its chain is replayed from the previous
  keyframe (the reader handles that transparently).

The writer is append-only (snapshots arrive in simulation order); the
serialized form reuses the archive container with ``step/field`` key
naming, so the on-disk format needs no new machinery.
"""

from __future__ import annotations

from typing import Dict, Iterable, List, Optional, Tuple

import numpy as np

from repro.errors import ParameterError
from repro.io.archive import read_archive_field, read_archive_index, write_archive

# The temporal codec is imported lazily inside the classes: this module
# is re-exported by repro.io, which the codec stack itself imports for
# the container format -- a module-level import here would be circular.

__all__ = ["CampaignWriter", "CampaignReader"]


def _key(step: int, field: str) -> str:
    return f"{step:06d}/{field}"


class CampaignWriter:
    """Append snapshots (dicts of field arrays) and serialize.

    Parameters are forwarded to every field's
    :class:`~repro.sz.temporal.TemporalCompressor` (``target_psnr`` or
    ``error_bound``/``mode``, ``keyframe_interval``, ...).
    """

    def __init__(self, **temporal_options) -> None:
        self._options = temporal_options
        self._streams: Dict[str, "TemporalCompressor"] = {}
        self._blobs: List[Tuple[str, bytes]] = []
        self._fields: Optional[List[str]] = None
        self.n_steps = 0

    def append(self, snapshot: Dict[str, np.ndarray]) -> None:
        """Add one simulation step (every step must carry the same
        fields)."""
        if not snapshot:
            raise ParameterError("snapshot has no fields")
        from repro.sz.temporal import TemporalCompressor

        names = sorted(snapshot)
        if self._fields is None:
            self._fields = names
            for name in names:
                self._streams[name] = TemporalCompressor(**self._options)
        elif names != self._fields:
            raise ParameterError(
                f"snapshot fields {names} differ from the campaign's "
                f"{self._fields}"
            )
        for name in names:
            blob = self._streams[name].push(snapshot[name])
            self._blobs.append((_key(self.n_steps, name), blob))
        self.n_steps += 1

    def to_bytes(self) -> bytes:
        """Serialize the campaign (archive container underneath)."""
        if not self._blobs:
            raise ParameterError("campaign is empty")
        return write_archive(self._blobs)


class CampaignReader:
    """Random access into a serialized campaign."""

    def __init__(self, blob: bytes) -> None:
        self._blob = blob
        keys = read_archive_index(blob)
        self.fields = sorted({k.split("/", 1)[1] for k in keys})
        steps = {int(k.split("/", 1)[0]) for k in keys}
        self.n_steps = max(steps) + 1
        expected = {
            _key(s, f) for s in range(self.n_steps) for f in self.fields
        }
        if expected != set(keys):
            raise ParameterError("campaign index is not a full step*field grid")
        # keyframe positions per field, discovered lazily
        self._keyframes: Dict[str, List[int]] = {}

    def _frame_blob(self, step: int, field: str) -> bytes:
        return read_archive_field(self._blob, _key(step, field))

    def _keyframe_steps(self, field: str) -> List[int]:
        from repro.io.container import Container

        if field not in self._keyframes:
            self._keyframes[field] = [
                s
                for s in range(self.n_steps)
                if Container.from_bytes(self._frame_blob(s, field)).meta[
                    "keyframe"
                ]
            ]
        return self._keyframes[field]

    def load(self, step: int, field: str) -> np.ndarray:
        """Decode one field at one step (replaying from the nearest
        preceding keyframe when the step is predicted)."""
        if not 0 <= step < self.n_steps:
            raise ParameterError(f"step {step} out of range")
        if field not in self.fields:
            raise ParameterError(f"unknown field {field!r}")
        from repro.sz.temporal import TemporalDecompressor

        keyframes = self._keyframe_steps(field)
        start = max(k for k in keyframes if k <= step)
        dec = TemporalDecompressor()
        out = None
        for s in range(start, step + 1):
            out = dec.push(self._frame_blob(s, field))
        return out

    def load_series(self, field: str) -> Iterable[np.ndarray]:
        """Decode every step of one field, in order."""
        from repro.sz.temporal import TemporalDecompressor

        if field not in self.fields:
            raise ParameterError(f"unknown field {field!r}")
        dec = TemporalDecompressor()
        for s in range(self.n_steps):
            yield dec.push(self._frame_blob(s, field))
