"""Multi-field snapshot archives.

The paper's motivating workload stores ~100 fields per simulation
snapshot (CESM).  An archive bundles many independently compressed
fields into one file with a random-access index, so post-analysis can
extract a single variable without touching the rest -- the access
pattern climate analysts actually have.

Layout::

    magic    4 bytes  b"FPZA"
    version  1 byte   + 3 reserved
    index_len 8 bytes, index_crc32 4 bytes, then UTF-8 JSON index:
        {"fields": [{"name", "offset", "length", "crc32"}, ...]}
    field payloads (each a complete FPZC container), concatenated

Offsets are relative to the end of the index, so appending-style
writers can build the index first.
"""

from __future__ import annotations

import json
import struct
import zlib
from typing import Dict, Iterable, List, Tuple

import numpy as np

from repro.errors import ErrorCode, FormatError, ParameterError

__all__ = [
    "write_archive",
    "read_archive_index",
    "read_archive_field",
    "salvage_fields",
    "Archive",
]

MAGIC = b"FPZA"
VERSION = 1


def write_archive(fields: Iterable[Tuple[str, bytes]]) -> bytes:
    """Bundle ``(name, container_bytes)`` pairs into archive bytes."""
    entries: List[Dict] = []
    payloads: List[bytes] = []
    offset = 0
    seen = set()
    for name, blob in fields:
        if not name:
            raise ParameterError("field names must be non-empty")
        if name in seen:
            raise ParameterError(f"duplicate field name {name!r}")
        seen.add(name)
        entries.append(
            {
                "name": name,
                "offset": offset,
                "length": len(blob),
                "crc32": zlib.crc32(blob),
            }
        )
        payloads.append(blob)
        offset += len(blob)
    if not entries:
        raise ParameterError("archive needs at least one field")
    index = json.dumps({"fields": entries}, sort_keys=True).encode("utf-8")
    return b"".join(
        [
            MAGIC,
            struct.pack("<B3x", VERSION),
            struct.pack("<QI", len(index), zlib.crc32(index)),
            index,
        ]
        + payloads
    )


def _parse_header(blob: bytes) -> Tuple[List[Dict], int]:
    """Return (index entries, payload base offset)."""
    if len(blob) < 20 or blob[:4] != MAGIC:
        raise FormatError(
            "not an FPZA archive",
            code=(
                ErrorCode.TRUNCATED
                if blob[:4] == MAGIC
                else ErrorCode.BAD_MAGIC
            ),
        )
    (version,) = struct.unpack_from("<B", blob, 4)
    if version != VERSION:
        raise FormatError(
            f"unsupported archive version {version}",
            code=ErrorCode.BAD_VERSION,
        )
    index_len, index_crc = struct.unpack_from("<QI", blob, 8)
    base = 20 + index_len
    if len(blob) < base:
        raise FormatError(
            "archive truncated in index", code=ErrorCode.TRUNCATED
        )
    index_blob = blob[20:base]
    if zlib.crc32(index_blob) != index_crc:
        raise FormatError(
            "archive index failed its CRC check",
            code=ErrorCode.CRC_MISMATCH,
        )
    try:
        index = json.loads(index_blob.decode("utf-8"))
        entries = index["fields"]
        for e in entries:
            if not isinstance(e, dict):
                raise TypeError("index entry is not an object")
            str(e["name"])
            int(e["offset"])
            int(e["length"])
            int(e["crc32"])
    except (
        UnicodeDecodeError,
        json.JSONDecodeError,
        KeyError,
        TypeError,
        ValueError,
    ) as exc:
        raise FormatError(
            f"bad archive index: {exc}", code=ErrorCode.BAD_INDEX
        ) from exc
    return entries, base


def read_archive_index(blob: bytes) -> List[str]:
    """Field names in archive order (no payloads touched)."""
    entries, _ = _parse_header(blob)
    return [e["name"] for e in entries]


def read_archive_field(blob: bytes, name: str) -> bytes:
    """Extract one field's container bytes, CRC-checked."""
    entries, base = _parse_header(blob)
    for e in entries:
        if e["name"] == name:
            start = base + int(e["offset"])
            end = start + int(e["length"])
            if end > len(blob):
                raise FormatError(
                    f"field {name!r} extends past the archive",
                    code=ErrorCode.TRUNCATED,
                )
            payload = blob[start:end]
            if zlib.crc32(payload) != int(e["crc32"]):
                raise FormatError(
                    f"field {name!r} failed its CRC check",
                    code=ErrorCode.CRC_MISMATCH,
                )
            return payload
    raise FormatError(
        f"archive has no field named {name!r}",
        code=ErrorCode.MISSING_STREAM,
    )


def salvage_fields(blob: bytes):
    """Best-effort per-field recovery of a damaged archive.

    Returns ``(fields, report)`` -- an ordered ``{name: container
    bytes}`` of every bit-exactly recovered field plus the
    :class:`repro.resilience.salvage.SalvageReport` describing losses.
    Thin delegation to :func:`repro.resilience.salvage.salvage_archive`
    so io-layer callers need not import the resilience package
    directly.
    """
    from repro.resilience.salvage import salvage_archive

    return salvage_archive(blob)


class Archive:
    """Convenience wrapper: compress fields in, arrays out.

    >>> arc = Archive.build(dataset.fields(), compressor)
    >>> arc.names
    [...]
    >>> field = arc.load("CLDHGH")
    """

    def __init__(self, blob: bytes) -> None:
        self._blob = blob
        self.names = read_archive_index(blob)

    @classmethod
    def build(cls, fields: Iterable[Tuple[str, np.ndarray]], compressor) -> "Archive":
        """Compress every ``(name, array)`` with ``compressor`` (any
        object with a ``compress(array) -> bytes`` method)."""
        blobs = [(name, compressor.compress(arr)) for name, arr in fields]
        return cls(write_archive(blobs))

    def to_bytes(self) -> bytes:
        """The serialized archive."""
        return self._blob

    def load(self, name: str) -> np.ndarray:
        """Decompress one field by name."""
        from repro.sz.compressor import decompress

        return decompress(read_archive_field(self._blob, name))

    def __len__(self) -> int:
        return len(self.names)

    def __contains__(self, name: str) -> bool:
        return name in self.names
