"""Self-describing container format for compressed streams."""

from repro.io.container import (
    Container,
    CODEC_SZ,
    CODEC_TRANSFORM,
    CODEC_CHUNKED,
    CODEC_REGRESSION,
    CODEC_EMBEDDED,
)
from repro.io.archive import (
    Archive,
    write_archive,
    read_archive_field,
    salvage_fields,
)
from repro.io.campaign import CampaignWriter, CampaignReader

__all__ = [
    "Container",
    "CODEC_SZ",
    "CODEC_TRANSFORM",
    "CODEC_CHUNKED",
    "CODEC_REGRESSION",
    "CODEC_EMBEDDED",
    "Archive",
    "write_archive",
    "read_archive_field",
    "salvage_fields",
    "CampaignWriter",
    "CampaignReader",
]
