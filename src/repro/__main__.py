"""Allow ``python -m repro <subcommand>``."""

import sys

from repro.cli.main import main

if __name__ == "__main__":
    sys.exit(main())
