"""Deterministic fault injection for containers, archives and workers.

Every injector takes an explicit integer ``seed`` and derives all of
its randomness from ``random.Random(seed)``, so a fault is a pure
function of ``(blob, kind, seed)`` -- the same corruption reproduces
bit-exactly on every machine.  That is what lets the CI fault matrix
assert *exact* salvage outcomes rather than "something survived".

Two families:

Byte-level faults (:data:`FAULT_KINDS`)
    ``bit_flip``, ``truncate``, ``drop_chunk``, ``bad_header`` --
    applied to serialized FPZC containers or FPZA archives via
    :func:`inject`, or aimed at one named stream/field via
    :func:`corrupt_container_stream` / :func:`corrupt_archive_field`
    (the targeted form the fault matrix uses to prove every
    *untouched* stream survives).

Worker faults (:data:`WORKER_FAULT_KINDS`)
    :class:`WorkerFault` is a picklable spec evaluated inside
    :func:`repro.parallel.executor.run_field_task`: raise an
    exception, hang past the executor's deadline, or return a
    poisoned (non-``FieldResult``) object.  ``fail_attempts`` bounds
    how many attempts fail before the task recovers, which is how
    retry tests distinguish "recovers after backoff" from
    "exhausts and degrades to a partial result".
"""

from __future__ import annotations

import random
import struct
import time
from dataclasses import dataclass
from typing import Dict, Optional, Tuple

from repro.errors import ParameterError

__all__ = [
    "FAULT_KINDS",
    "WORKER_FAULT_KINDS",
    "WorkerFault",
    "InjectedWorkerError",
    "POISON",
    "inject",
    "inject_bit_flip",
    "inject_truncate",
    "inject_drop_chunk",
    "inject_bad_header",
    "container_stream_spans",
    "archive_field_spans",
    "corrupt_container_stream",
    "corrupt_archive_field",
    "apply_worker_fault",
]

#: Byte-level fault kinds the harness can apply to a blob.
FAULT_KINDS = ("bit_flip", "truncate", "drop_chunk", "bad_header")

#: Worker fault kinds simulated inside ``run_field_task``.
WORKER_FAULT_KINDS = ("exception", "hang", "poison")


# ---------------------------------------------------------------------------
# byte-level faults
# ---------------------------------------------------------------------------


def _check_span(blob: bytes, start: int, end: int) -> Tuple[int, int]:
    if not blob:
        raise ParameterError("cannot inject a fault into an empty blob")
    start = max(0, int(start))
    end = min(len(blob), int(end))
    if start >= end:
        raise ParameterError(f"empty injection span [{start}, {end})")
    return start, end


def inject_bit_flip(
    blob: bytes,
    seed: int = 0,
    n_flips: int = 1,
    span: Optional[Tuple[int, int]] = None,
) -> bytes:
    """Flip ``n_flips`` seeded-random bits inside ``span``
    (default: the whole blob)."""
    start, end = _check_span(blob, *(span or (0, len(blob))))
    rng = random.Random(seed)
    out = bytearray(blob)
    for _ in range(max(1, int(n_flips))):
        pos = rng.randrange(start, end)
        out[pos] ^= 1 << rng.randrange(8)
    return bytes(out)


def inject_truncate(
    blob: bytes,
    seed: int = 0,
    at: Optional[int] = None,
    span: Optional[Tuple[int, int]] = None,
) -> bytes:
    """Cut the blob at byte ``at``; when ``at`` is None, pick a seeded
    offset inside ``span`` (default: anywhere after the first byte)."""
    if at is None:
        start, end = _check_span(blob, *(span or (1, len(blob))))
        at = random.Random(seed).randrange(start, end)
    at = int(at)
    if not 0 <= at <= len(blob):
        raise ParameterError(f"truncation offset {at} outside the blob")
    return blob[:at]


def inject_drop_chunk(
    blob: bytes,
    seed: int = 0,
    chunk: int = 64,
    span: Optional[Tuple[int, int]] = None,
) -> bytes:
    """Delete ``chunk`` contiguous bytes starting at a seeded offset
    inside ``span`` -- the 'lost block of a partial write' fault.  The
    bytes are *removed* (not zeroed), so every later offset shifts."""
    start, end = _check_span(blob, *(span or (0, len(blob))))
    chunk = max(1, int(chunk))
    lo = start
    hi = max(lo, end - chunk)
    pos = random.Random(seed).randrange(lo, hi + 1)
    return blob[:pos] + blob[pos + chunk:]


def inject_bad_header(blob: bytes, seed: int = 0) -> bytes:
    """Corrupt the header's length/CRC region (bytes 8..20): the
    meta/index length and checksum both formats keep there.  The
    identity bytes (magic, version, codec) are left alone -- damage
    there is unrecoverable *by design* (nothing anchors a parse) and
    is exercised separately with a ``bit_flip`` aimed at ``(0, 8)``."""
    _check_span(blob, 8, min(20, len(blob)))
    return inject_bit_flip(blob, seed=seed, span=(8, min(20, len(blob))))


_INJECTORS = {
    "bit_flip": inject_bit_flip,
    "truncate": inject_truncate,
    "drop_chunk": inject_drop_chunk,
    "bad_header": inject_bad_header,
}


def inject(blob: bytes, kind: str, seed: int = 0, **kwargs) -> bytes:
    """Apply the named fault kind (see :data:`FAULT_KINDS`) with the
    given seed; extra keyword arguments go to the specific injector."""
    try:
        fn = _INJECTORS[kind]
    except KeyError:
        raise ParameterError(
            f"unknown fault kind {kind!r}; expected one of {FAULT_KINDS}"
        ) from None
    return fn(blob, seed=seed, **kwargs)


# ---------------------------------------------------------------------------
# targeted faults: locate stream/field payload spans
# ---------------------------------------------------------------------------


def container_stream_spans(blob: bytes) -> Dict[str, Tuple[int, int]]:
    """Byte span ``[start, end)`` of every stream *payload* in a valid
    FPZC container.  Parses strictly (the blob must be intact); use
    the spans to aim a fault at exactly one stream."""
    from repro.io.container import Container  # noqa: F401  (validation)

    Container.from_bytes(blob)  # raise FormatError early on bad input
    meta_len, _ = struct.unpack_from("<QI", blob, 8)
    pos = 20 + meta_len
    (n_streams,) = struct.unpack_from("<I", blob, pos)
    pos += 4
    spans: Dict[str, Tuple[int, int]] = {}
    for _ in range(n_streams):
        (name_len,) = struct.unpack_from("<H", blob, pos)
        pos += 2
        name = blob[pos : pos + name_len].decode("utf-8")
        pos += name_len
        payload_len, _crc = struct.unpack_from("<QI", blob, pos)
        pos += 12
        spans[name] = (pos, pos + payload_len)
        pos += payload_len
    return spans


def archive_field_spans(blob: bytes) -> Dict[str, Tuple[int, int]]:
    """Byte span ``[start, end)`` of every field payload (a complete
    FPZC container) in a valid FPZA archive."""
    from repro.io.archive import _parse_header

    entries, base = _parse_header(blob)
    return {
        e["name"]: (base + int(e["offset"]), base + int(e["offset"]) + int(e["length"]))
        for e in entries
    }


def corrupt_container_stream(
    blob: bytes, name: str, kind: str = "bit_flip", seed: int = 0, **kwargs
) -> bytes:
    """Apply ``kind`` confined to the named stream's payload bytes.
    ``truncate`` cuts inside the stream (losing it and everything
    after); the other kinds touch only that stream."""
    spans = container_stream_spans(blob)
    if name not in spans:
        raise ParameterError(f"container has no stream named {name!r}")
    return inject(blob, kind, seed=seed, span=spans[name], **kwargs)


def corrupt_archive_field(
    blob: bytes, name: str, kind: str = "bit_flip", seed: int = 0, **kwargs
) -> bytes:
    """Apply ``kind`` confined to the named archive field's payload."""
    spans = archive_field_spans(blob)
    if name not in spans:
        raise ParameterError(f"archive has no field named {name!r}")
    return inject(blob, kind, seed=seed, span=spans[name], **kwargs)


# ---------------------------------------------------------------------------
# worker faults
# ---------------------------------------------------------------------------


class InjectedWorkerError(RuntimeError):
    """The exception an injected ``exception`` worker fault raises.

    Deliberately *not* a :class:`repro.errors.ReproError`: injected
    crashes stand in for arbitrary worker failures (segfault-adjacent
    bugs, OOM kills surfacing as BrokenProcessPool, library errors),
    so the retry path must treat it as an unknown exception.
    """


#: Sentinel a ``poison`` fault returns in place of a ``FieldResult``.
POISON = "<poisoned-result>"


@dataclass(frozen=True)
class WorkerFault:
    """Picklable description of a simulated worker fault.

    ``kind``
        One of :data:`WORKER_FAULT_KINDS`.
    ``fields``
        Field names to afflict; empty tuple means every field.
    ``fail_attempts``
        Number of leading attempts (attempt indices ``0 ..
        fail_attempts-1``) that fail; later retries succeed.  Use a
        large value to make the task fail every attempt.
    ``hang_seconds``
        Sleep length for ``kind="hang"`` -- pick it longer than the
        executor's ``task_timeout`` to trip the deadline.
    """

    kind: str
    fields: Tuple[str, ...] = ()
    fail_attempts: int = 1
    hang_seconds: float = 5.0

    def __post_init__(self):
        if self.kind not in WORKER_FAULT_KINDS:
            raise ParameterError(
                f"unknown worker fault kind {self.kind!r}; "
                f"expected one of {WORKER_FAULT_KINDS}"
            )

    def applies(self, field: str, attempt: int) -> bool:
        """True when this fault should fire for ``field`` on the given
        zero-based attempt index."""
        if self.fields and field not in self.fields:
            return False
        return attempt < self.fail_attempts


def apply_worker_fault(fault: Optional[WorkerFault], field: str, attempt: int):
    """Evaluate ``fault`` inside a worker task.

    Returns :data:`POISON` when the task must return a poisoned
    result, raises :class:`InjectedWorkerError` for a crash, sleeps
    through the deadline for a hang, and returns ``None`` when the
    task should proceed normally.
    """
    if fault is None or not fault.applies(field, attempt):
        return None
    if fault.kind == "exception":
        raise InjectedWorkerError(
            f"injected crash for field {field!r} (attempt {attempt})"
        )
    if fault.kind == "hang":
        time.sleep(fault.hang_seconds)
        return None
    return POISON
