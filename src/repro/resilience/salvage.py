"""Best-effort ("salvage") decoding of damaged containers and archives.

The strict parsers in :mod:`repro.io` abort on the first bad byte --
correct for a library, fatal for a batch pipeline where one flipped
bit in one stream would discard a whole snapshot.  Salvage mode
recovers everything whose integrity can still be *proven* (CRC32 per
stream / per field) and returns a structured
:class:`SalvageReport` naming what was lost, at which byte offsets,
and why (codes from :class:`repro.errors.ErrorCode`).

Recovery strategy
-----------------
Containers
    The header's identity bytes (magic, version, codec) must be
    intact -- with those gone there is nothing to anchor a parse, and
    a typed :class:`~repro.errors.FormatError` is raised.  Everything
    else degrades gracefully: a corrupt metadata block becomes ``{}``
    (reported), and the stream table is re-parsed record by record.
    When a record is structurally implausible or its payload fails
    CRC, the parser *resynchronizes*: it scans forward for the next
    offset at which a complete, CRC-valid stream record parses, and
    attributes the skipped bytes to the lost stream.  A CRC-validated
    record is an extremely strong sync marker, so bit flips, dropped
    chunks (which shift every later byte) and truncations all cost
    only the streams they actually touch.

Archives
    Fields are whole FPZC containers, CRC'd by the index.  Fields
    whose indexed span checks out are returned bit-exactly.  For the
    rest -- or when the index itself is unreadable -- the payload
    region is scanned for container prefixes (magic + full internal
    CRC validation); re-found spans are matched back to index entries
    by recorded CRC32 and length, which *guarantees* a matched field
    is bit-exact.  Unmatched entries are reported lost, with a nested
    container-salvage attempt noted in the detail.

Telemetry: every call feeds ``resilience.salvage.*`` counters in the
process metrics registry (see docs/OBSERVABILITY.md).
"""

from __future__ import annotations

import json
import struct
import zlib
from dataclasses import dataclass, field as dc_field
from typing import Dict, List, Optional, Tuple

from repro.errors import ErrorCode, FormatError

__all__ = [
    "StreamOutcome",
    "SalvageReport",
    "salvage_container",
    "salvage_archive",
]

_C_MAGIC = b"FPZC"
_A_MAGIC = b"FPZA"


# ---------------------------------------------------------------------------
# report structures
# ---------------------------------------------------------------------------


@dataclass(frozen=True)
class StreamOutcome:
    """One stream's (or field's, or header part's) salvage outcome."""

    name: str
    offset: int
    length: int
    recovered: bool
    code: Optional[str] = None
    detail: str = ""

    def as_dict(self) -> Dict:
        return {
            "name": self.name,
            "offset": self.offset,
            "length": self.length,
            "recovered": self.recovered,
            "code": self.code,
            "detail": self.detail,
        }


@dataclass
class SalvageReport:
    """What a salvage decode recovered, what it lost, and why.

    ``expected`` is the stream/field count the (intact part of the)
    header promised, or ``None`` when the header itself was lost and
    recovery ran purely by scanning.  ``resyncs`` counts how many
    times the parser had to abandon sequential parsing and scan for
    the next provable boundary.
    """

    kind: str
    total_bytes: int
    expected: Optional[int] = None
    recovered: List[StreamOutcome] = dc_field(default_factory=list)
    lost: List[StreamOutcome] = dc_field(default_factory=list)
    resyncs: int = 0

    @property
    def ok(self) -> bool:
        """True when nothing was lost and nothing promised is missing."""
        return not self.lost and (
            self.expected is None or len(self.recovered) == self.expected
        )

    @property
    def lost_names(self) -> List[str]:
        return [o.name for o in self.lost]

    @property
    def recovered_names(self) -> List[str]:
        return [o.name for o in self.recovered]

    def as_dict(self) -> Dict:
        """JSON-friendly representation (schema-stable for tooling)."""
        return {
            "schema": 1,
            "kind": self.kind,
            "total_bytes": self.total_bytes,
            "expected": self.expected,
            "ok": self.ok,
            "resyncs": self.resyncs,
            "recovered": [o.as_dict() for o in self.recovered],
            "lost": [o.as_dict() for o in self.lost],
        }


def _record_metrics(report: SalvageReport) -> None:
    from repro.telemetry.registry import metrics

    reg = metrics()
    reg.counter("resilience.salvage.calls_total").inc()
    reg.counter("resilience.salvage.streams_recovered_total").inc(
        len(report.recovered)
    )
    reg.counter("resilience.salvage.streams_lost_total").inc(len(report.lost))
    reg.counter("resilience.salvage.resyncs_total").inc(report.resyncs)


# ---------------------------------------------------------------------------
# container salvage
# ---------------------------------------------------------------------------


def _try_stream_record(
    blob: bytes, pos: int
) -> Optional[Tuple[str, bytes, int, bool]]:
    """Attempt to parse one stream record at ``pos``.

    Returns ``(name, payload, end, crc_ok)`` when the record is
    structurally complete (name decodes, payload fits in the blob),
    else ``None``.  ``crc_ok`` reports the payload checksum.
    """
    n = len(blob)
    if pos + 2 > n:
        return None
    (name_len,) = struct.unpack_from("<H", blob, pos)
    p = pos + 2
    if p + name_len + 12 > n:
        return None
    try:
        name = blob[p : p + name_len].decode("utf-8")
    except UnicodeDecodeError:
        return None
    p += name_len
    payload_len, crc = struct.unpack_from("<QI", blob, p)
    p += 12
    if payload_len > n - p:
        return None
    payload = blob[p : p + payload_len]
    return name, payload, p + payload_len, zlib.crc32(payload) == crc


def _partial_record_name(blob: bytes, pos: int) -> Optional[str]:
    """Best-effort stream name of a record whose payload no longer
    fits (truncation / dropped tail): the name itself often survives."""
    n = len(blob)
    if pos + 2 > n:
        return None
    (name_len,) = struct.unpack_from("<H", blob, pos)
    if pos + 2 + name_len > n:
        return None
    try:
        return blob[pos + 2 : pos + 2 + name_len].decode("utf-8")
    except UnicodeDecodeError:
        return None


def _find_valid_record(blob: bytes, start: int) -> Optional[int]:
    """Smallest offset ``>= start`` at which a complete, CRC-valid
    stream record parses; None if there is none.  The CRC requirement
    makes false positives vanishingly unlikely, so this is the
    resynchronization primitive."""
    for pos in range(start, len(blob) - 13):
        rec = _try_stream_record(blob, pos)
        if rec is not None and rec[3]:
            return pos
    return None


def salvage_container(blob: bytes):
    """Best-effort parse of FPZC container bytes.

    Returns ``(container, report)``; the container carries every
    CRC-proven stream (and the metadata block when it survived), the
    :class:`SalvageReport` records the rest.  Raises a typed
    :class:`~repro.errors.FormatError` only when the identity header
    (magic / version / codec) is itself unusable -- there is nothing
    to salvage without it.
    """
    from repro.io.container import _KNOWN_CODECS, MAGIC, VERSION, Container

    n = len(blob)
    report = SalvageReport(kind="container", total_bytes=n)
    if n < 8:
        raise FormatError(
            "container too short for its header", code=ErrorCode.TRUNCATED
        )
    if blob[:4] != MAGIC:
        raise FormatError(
            "bad magic: not a FPZC container", code=ErrorCode.BAD_MAGIC
        )
    version, codec, _reserved = struct.unpack_from("<BBH", blob, 4)
    if version != VERSION:
        raise FormatError(
            f"unsupported container version {version}",
            code=ErrorCode.BAD_VERSION,
        )
    if codec not in _KNOWN_CODECS:
        raise FormatError(
            f"unknown codec id {codec}", code=ErrorCode.BAD_CODEC
        )

    # -- metadata block (tolerate loss: meta -> {}) ---------------------
    meta: Dict = {}
    pos: Optional[int] = None  # position of the n_streams field
    meta_ok = False
    if n >= 20:
        meta_len, meta_crc = struct.unpack_from("<QI", blob, 8)
        if meta_len <= n - 20:
            meta_blob = blob[20 : 20 + meta_len]
            if zlib.crc32(meta_blob) == meta_crc:
                try:
                    doc = json.loads(meta_blob.decode("utf-8"))
                    if isinstance(doc, dict):
                        meta = doc
                        meta_ok = True
                except (UnicodeDecodeError, json.JSONDecodeError):
                    pass
            if meta_ok:
                pos = 20 + meta_len
    if not meta_ok:
        report.lost.append(
            StreamOutcome(
                name="<meta>",
                offset=8,
                length=0,
                recovered=False,
                code=ErrorCode.BAD_META,
                detail="metadata block unreadable; using {}",
            )
        )

    # -- stream-count field ---------------------------------------------
    expected: Optional[int] = None
    scan_from = 8
    if pos is not None:
        if pos + 4 <= n:
            (expected,) = struct.unpack_from("<I", blob, pos)
            report.expected = expected
            scan_from = pos + 4
        else:
            report.lost.append(
                StreamOutcome(
                    name="<stream-table>",
                    offset=pos,
                    length=n - pos,
                    recovered=False,
                    code=ErrorCode.TRUNCATED,
                    detail="truncated before the stream count",
                )
            )
            scan_from = n  # nothing after

    # -- stream records, resynchronizing on failure ---------------------
    streams: List[Tuple[str, bytes]] = []
    pos = scan_from
    if not meta_ok and pos < n:
        # Header lost: the stream-table position is unknown, so scan
        # for the first provable record.  The skipped bytes are the
        # meta region already reported above.
        resync = _find_valid_record(blob, pos)
        pos = resync if resync is not None else n
    while pos < n:
        rec = _try_stream_record(blob, pos)
        if rec is not None and rec[3]:
            name, payload, end, _ = rec
            report.recovered.append(
                StreamOutcome(
                    name=name, offset=pos, length=len(payload), recovered=True
                )
            )
            streams.append((name, payload))
            pos = end
            continue
        # Damage at ``pos``: classify it, then resynchronize.
        if rec is not None:
            name = rec[0]
            code, detail = ErrorCode.CRC_MISMATCH, "payload failed its CRC"
        else:
            name = _partial_record_name(blob, pos) or "<unknown>"
            code = ErrorCode.TRUNCATED
            detail = "unparseable or truncated stream record"
        resync = _find_valid_record(blob, pos + 1)
        lost_end = resync if resync is not None else n
        report.lost.append(
            StreamOutcome(
                name=name,
                offset=pos,
                length=lost_end - pos,
                recovered=False,
                code=code,
                detail=detail,
            )
        )
        if resync is None:
            break
        report.resyncs += 1
        pos = resync

    if expected is not None:
        # Streams the header promised but no bytes account for
        # (e.g. a truncation exactly at a record boundary).
        accounted = len(streams) + len(
            [o for o in report.lost if o.name not in ("<meta>", "<stream-table>")]
        )
        if accounted < expected:
            report.lost.append(
                StreamOutcome(
                    name="<missing-streams>",
                    offset=n,
                    length=0,
                    recovered=False,
                    code=ErrorCode.MISSING_STREAM,
                    detail=f"{expected - accounted} stream(s) promised by "
                    "the header have no surviving bytes",
                )
            )

    container = Container(codec, meta, streams)
    container.salvage = report
    _record_metrics(report)
    return container, report


# ---------------------------------------------------------------------------
# archive salvage
# ---------------------------------------------------------------------------


def _container_prefix_end(blob: bytes, start: int) -> Optional[int]:
    """End offset of a fully CRC-valid FPZC container starting at
    ``start``, or None.  Used to re-find field boundaries when the
    archive index (or the offsets it holds) can no longer be
    trusted."""
    from repro.io.container import _KNOWN_CODECS, MAGIC, VERSION

    n = len(blob)
    if start + 20 > n or blob[start : start + 4] != MAGIC:
        return None
    version, codec, _ = struct.unpack_from("<BBH", blob, start + 4)
    if version != VERSION or codec not in _KNOWN_CODECS:
        return None
    meta_len, meta_crc = struct.unpack_from("<QI", blob, start + 8)
    pos = start + 20
    if meta_len > n - pos:
        return None
    if zlib.crc32(blob[pos : pos + meta_len]) != meta_crc:
        return None
    pos += meta_len
    if pos + 4 > n:
        return None
    (n_streams,) = struct.unpack_from("<I", blob, pos)
    pos += 4
    for _ in range(n_streams):
        rec = _try_stream_record(blob, pos)
        if rec is None or not rec[3]:
            return None
        pos = rec[2]
    return pos


def _scan_container_spans(blob: bytes, start: int) -> List[Tuple[int, int]]:
    """Every non-overlapping, fully-valid container span in
    ``blob[start:]``, found by scanning for the FPZC magic."""
    spans: List[Tuple[int, int]] = []
    pos = start
    while True:
        hit = blob.find(_C_MAGIC, pos)
        if hit < 0:
            return spans
        end = _container_prefix_end(blob, hit)
        if end is None:
            pos = hit + 1
        else:
            spans.append((hit, end))
            pos = end


def _redecode_index(blob: bytes) -> Optional[Tuple[List[Dict], int]]:
    """Re-parse the archive index straight from its fixed offset (20)
    when the header's length/CRC words are damaged.

    The index is compact ASCII JSON, so a latin-1 view keeps byte
    offsets equal to character offsets and ``raw_decode`` stops
    exactly at the end of the object -- recovering both the entries
    and the payload base offset without trusting the corrupt header.
    Returns ``(entries, base)`` or None when the JSON itself is
    unreadable.  The decode window is capped at 1 MiB of index text
    (~15k fields); larger indexes fall back to the pure scan.
    """
    if len(blob) <= 20:
        return None
    window = blob[20 : 20 + (1 << 20)].decode("latin-1")
    try:
        doc, consumed = json.JSONDecoder().raw_decode(window)
    except (json.JSONDecodeError, ValueError):
        return None
    try:
        entries = doc["fields"]
        for e in entries:
            str(e["name"]), int(e["offset"])
            int(e["length"]), int(e["crc32"])
    except (KeyError, TypeError, ValueError):
        return None
    return entries, 20 + consumed


def salvage_archive(blob: bytes):
    """Best-effort parse of FPZA archive bytes.

    Returns ``(fields, report)`` where ``fields`` is an ordered
    ``{name: container_bytes}`` of every bit-exactly recovered field.
    Raises a typed :class:`~repro.errors.FormatError` only when the
    archive's identity header (magic / version) is unusable.
    """
    n = len(blob)
    report = SalvageReport(kind="archive", total_bytes=n)
    if n < 8:
        raise FormatError(
            "archive too short for its header", code=ErrorCode.TRUNCATED
        )
    if blob[:4] != _A_MAGIC:
        raise FormatError(
            "not an FPZA archive", code=ErrorCode.BAD_MAGIC
        )
    (version,) = struct.unpack_from("<B", blob, 4)
    if version != 1:
        raise FormatError(
            f"unsupported archive version {version}",
            code=ErrorCode.BAD_VERSION,
        )

    # -- index ----------------------------------------------------------
    entries: Optional[List[Dict]] = None
    base = 20
    if n >= 20:
        index_len, index_crc = struct.unpack_from("<QI", blob, 8)
        if index_len <= n - 20 and (
            zlib.crc32(blob[20 : 20 + index_len]) == index_crc
        ):
            try:
                doc = json.loads(blob[20 : 20 + index_len].decode("utf-8"))
                parsed = doc["fields"]
                for e in parsed:
                    str(e["name"]), int(e["offset"])
                    int(e["length"]), int(e["crc32"])
                entries = parsed
                base = 20 + index_len
            except (
                UnicodeDecodeError,
                json.JSONDecodeError,
                KeyError,
                TypeError,
                ValueError,
            ):
                entries = None
    if entries is None:
        # The length/CRC words may be the only damage; the JSON text
        # itself sits at a fixed offset and can anchor a re-parse.
        redecoded = _redecode_index(blob)
        if redecoded is not None:
            entries, base = redecoded
            report.resyncs += 1
    if entries is None:
        report.lost.append(
            StreamOutcome(
                name="<index>",
                offset=8,
                length=0,
                recovered=False,
                code=ErrorCode.BAD_INDEX,
                detail="archive index unreadable; recovering by scan",
            )
        )
        # Pure scan recovery: names are positional.
        fields: Dict[str, bytes] = {}
        for i, (s, e) in enumerate(_scan_container_spans(blob, 8)):
            name = f"field[{i}]"
            fields[name] = blob[s:e]
            report.recovered.append(
                StreamOutcome(name=name, offset=s, length=e - s, recovered=True)
            )
            report.resyncs += 1
        _record_metrics(report)
        return fields, report

    report.expected = len(entries)

    # -- direct pass: trust the index where CRCs prove it ---------------
    fields = {}
    unresolved: List[Dict] = []
    for e in entries:
        start = base + int(e["offset"])
        end = start + int(e["length"])
        if end <= n and zlib.crc32(blob[start:end]) == int(e["crc32"]):
            fields[str(e["name"])] = blob[start:end]
            report.recovered.append(
                StreamOutcome(
                    name=str(e["name"]),
                    offset=start,
                    length=int(e["length"]),
                    recovered=True,
                )
            )
        else:
            unresolved.append(e)

    # -- scan pass: re-find shifted fields by recorded CRC --------------
    if unresolved:
        by_key = {
            (int(e["crc32"]), int(e["length"])): e for e in unresolved
        }
        for s, e_off in _scan_container_spans(blob, base):
            key = (zlib.crc32(blob[s:e_off]), e_off - s)
            entry = by_key.pop(key, None)
            if entry is None:
                continue
            unresolved.remove(entry)
            fields[str(entry["name"])] = blob[s:e_off]
            report.resyncs += 1
            report.recovered.append(
                StreamOutcome(
                    name=str(entry["name"]),
                    offset=s,
                    length=e_off - s,
                    recovered=True,
                )
            )

    # -- the rest are lost; note what nested salvage could still see ----
    for e in unresolved:
        start = base + int(e["offset"])
        end = start + int(e["length"])
        code = ErrorCode.TRUNCATED if end > n else ErrorCode.CRC_MISMATCH
        detail = "field bytes failed their CRC"
        if end > n:
            detail = (
                f"field needs bytes [{start}, {end}) but the archive "
                f"ends at {n}"
            )
        else:
            try:
                _, nested = salvage_container(blob[start:end])
                detail += (
                    f"; nested salvage found {len(nested.recovered)} "
                    f"stream(s)"
                )
            except FormatError:
                pass
        report.lost.append(
            StreamOutcome(
                name=str(e["name"]),
                offset=start,
                length=int(e["length"]),
                recovered=False,
                code=code,
                detail=detail,
            )
        )

    # Preserve archive order in the returned mapping.
    ordered = {
        str(e["name"]): fields[str(e["name"])]
        for e in entries
        if str(e["name"]) in fields
    }
    _record_metrics(report)
    return ordered, report
