"""Resilience: fault injection, salvage decode, and retry policies.

Production HPC pipelines lose bytes and workers routinely -- partial
writes truncate containers, flaky storage flips bits, and a compression
worker can crash or hang mid-sweep.  This subsystem makes those
failures *survivable* and *testable*:

* :mod:`repro.resilience.inject` -- a deterministic (seeded) harness
  that corrupts container/archive blobs (bit-flips, truncations, chunk
  drops, header damage) and simulates worker faults (exception, hang,
  poisoned result) inside :mod:`repro.parallel.executor`.  CI's fault
  matrix is built on it.
* :mod:`repro.resilience.salvage` -- best-effort decoding: skip
  CRC-failing streams, resynchronize on stream boundaries, and report
  exactly what was recovered and what was lost
  (:class:`~repro.resilience.salvage.SalvageReport`).
* :mod:`repro.resilience.retry` -- retry/timeout/backoff policy for
  parallel sweeps: bounded attempts, exponential backoff with seeded
  jitter, per-task deadlines, partial-result returns.

See ``docs/ROBUSTNESS.md`` for the fault model and semantics.
"""

from repro.resilience.inject import (
    FAULT_KINDS,
    WORKER_FAULT_KINDS,
    WorkerFault,
    InjectedWorkerError,
    inject,
    inject_bit_flip,
    inject_truncate,
    inject_drop_chunk,
    inject_bad_header,
    container_stream_spans,
    archive_field_spans,
    corrupt_container_stream,
    corrupt_archive_field,
)
from repro.resilience.retry import RetryPolicy
from repro.resilience.salvage import (
    SalvageReport,
    StreamOutcome,
    salvage_archive,
    salvage_container,
)

__all__ = [
    "FAULT_KINDS",
    "WORKER_FAULT_KINDS",
    "WorkerFault",
    "InjectedWorkerError",
    "inject",
    "inject_bit_flip",
    "inject_truncate",
    "inject_drop_chunk",
    "inject_bad_header",
    "container_stream_spans",
    "archive_field_spans",
    "corrupt_container_stream",
    "corrupt_archive_field",
    "RetryPolicy",
    "SalvageReport",
    "StreamOutcome",
    "salvage_archive",
    "salvage_container",
]
