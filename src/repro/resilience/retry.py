"""Retry/timeout/backoff policy for parallel task execution.

A :class:`RetryPolicy` is a frozen, picklable description of how the
executor should treat a failing task: how many extra attempts to give
it, how long to back off between attempts (exponential with jitter
drawn from a *seeded* RNG, so schedules are reproducible), and how
long a single attempt may run before the executor declares it hung.

The policy is deliberately mechanism-free -- it computes delays and
classifies nothing.  :func:`repro.parallel.executor.sweep_dataset`
owns the retry loop; this module owns the arithmetic, so the backoff
law is unit-testable without spawning a single process.
"""

from __future__ import annotations

import random
from dataclasses import dataclass
from typing import Optional

from repro.errors import ParameterError

__all__ = ["RetryPolicy"]


@dataclass(frozen=True)
class RetryPolicy:
    """How the executor retries failing tasks.

    ``max_retries``
        Extra attempts after the first (0 = fail on first error).
    ``backoff_base``
        Delay before the first retry, in seconds.
    ``backoff_factor``
        Multiplier applied per subsequent retry (exponential).
    ``backoff_max``
        Ceiling on any single delay.
    ``jitter``
        Fraction of each delay that is randomized: the actual delay is
        ``d * (1 - jitter + jitter * u)`` with ``u ~ U[0, 1)`` from the
        policy's seeded RNG.  0 disables jitter entirely.
    ``task_timeout``
        Per-attempt deadline in seconds; ``None`` disables it.  An
        attempt that exceeds the deadline counts as a failure
        (code ``task_timeout``) and is retried like any other.
    ``seed``
        Seed for the jitter RNG (one RNG per sweep, shared by all
        tasks).
    """

    max_retries: int = 2
    backoff_base: float = 0.05
    backoff_factor: float = 2.0
    backoff_max: float = 2.0
    jitter: float = 0.5
    task_timeout: Optional[float] = None
    seed: int = 0

    def __post_init__(self):
        if self.max_retries < 0:
            raise ParameterError("max_retries must be >= 0")
        if self.backoff_base < 0:
            raise ParameterError("backoff_base must be >= 0")
        if self.backoff_factor < 1.0:
            raise ParameterError("backoff_factor must be >= 1")
        if self.backoff_max < self.backoff_base:
            raise ParameterError("backoff_max must be >= backoff_base")
        if not 0.0 <= self.jitter <= 1.0:
            raise ParameterError("jitter must be in [0, 1]")
        if self.task_timeout is not None and self.task_timeout <= 0:
            raise ParameterError("task_timeout must be positive")

    def rng(self) -> random.Random:
        """A fresh jitter RNG seeded with the policy's seed."""
        return random.Random(self.seed)

    def delay(self, retry_index: int, rng: Optional[random.Random] = None) -> float:
        """Backoff before retry number ``retry_index`` (1-based).

        Deterministic except for the jitter draw; pass the sweep's RNG
        to make the whole schedule a function of the policy seed and
        the draw order.
        """
        if retry_index < 1:
            raise ParameterError("retry_index is 1-based")
        d = min(
            self.backoff_max,
            self.backoff_base * self.backoff_factor ** (retry_index - 1),
        )
        if self.jitter > 0.0:
            u = (rng or self.rng()).random()
            d *= (1.0 - self.jitter) + self.jitter * u
        return d

    def total_attempts(self) -> int:
        """First attempt plus retries."""
        return self.max_retries + 1
