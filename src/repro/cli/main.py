"""``fpzc`` -- fixed-PSNR scientific-data compressor CLI.

Subcommands
-----------
``compress``    compress a ``.npy`` array (fixed-PSNR/NRMSE/MSE, abs or
                rel bound, or a searched ``--ratio`` target)
``autotune``    search the error-bound space for a ratio/bit-rate/
                SSIM/max-error target (FRaZ-style trial loop)
``decompress``  reconstruct a ``.npy`` from a compressed container
``info``        print a container's metadata
``table1``      print the data-set inventory (paper Table I)
``sweep``       run a fixed-PSNR sweep over a data set (Table II rows)
``bench``       run the benchmark matrix; write or ``--check`` baselines
``ledger``      print recent entries of the run ledger
``drift``       chart PSNR conformance over ledger history
                (``--check`` exits 0 in-control / 1 drifting /
                2 insufficient history)
``report``      write the self-contained HTML run dashboard

Examples
--------
::

    fpzc compress field.npy -o field.fpz --psnr 80
    fpzc compress field.npy -o field.fpz --nrmse 1e-4
    fpzc compress field.npy -o field.fpz --ratio 10
    fpzc compress field.npy -o field.fpz --abs 1e-3 --codec transform
    fpzc autotune field.npy --ratio 10 --tol 0.05 -o field.fpz
    fpzc decompress field.fpz -o recon.npy
    fpzc sweep ATM --targets 40 80 120 --workers 4
    fpzc sweep ATM --workers 2 --trace --trace-perfetto trace.json
    fpzc drift --check && fpzc report --html run.html
"""

from __future__ import annotations

import argparse
import json
import sys
from typing import Optional, Sequence

import numpy as np

from repro.errors import ReproError

__all__ = ["main", "build_parser"]


def _add_shm_flags(p: argparse.ArgumentParser) -> None:
    """Attach the transport selector pair (``--shm`` / ``--no-shm``).

    The tri-state maps to :data:`repro.parallel.shm.TRANSPORTS`:
    unset -> ``"auto"`` (shm when available and worth it), ``--shm``
    -> force the shared-memory plane (still degrades gracefully when
    the platform has none), ``--no-shm`` -> pickle transport only.
    """
    group = p.add_mutually_exclusive_group()
    group.add_argument(
        "--shm",
        dest="shm",
        action="store_true",
        default=None,
        help="move array payloads to workers over shared memory "
        "(default: auto)",
    )
    group.add_argument(
        "--no-shm",
        dest="shm",
        action="store_false",
        help="force pickle transport for worker payloads",
    )


def _transport(args) -> str:
    if getattr(args, "shm", None) is None:
        return "auto"
    return "shm" if args.shm else "pickle"


def _add_cache_flags(p: argparse.ArgumentParser) -> None:
    """Attach the shared-cache flag set (``--cache``/``--no-cache``,
    ``--cache-dir``, ``--cache-max-bytes``).

    The cache is opt-in (``--cache``); ``--no-cache`` exists so a
    wrapper script that defaults the flag on can still be overridden
    per invocation.  See :mod:`repro.cache` / ``docs/CACHING.md``.
    """
    group = p.add_mutually_exclusive_group()
    group.add_argument(
        "--cache",
        dest="cache",
        action="store_true",
        default=False,
        help="serve and record results through the content-addressed "
        "blob cache (default dir .fpzc/cache or $FPZC_CACHE)",
    )
    group.add_argument(
        "--no-cache",
        dest="cache",
        action="store_false",
        help="bypass the blob cache even when a wrapper enables it",
    )
    p.add_argument(
        "--cache-dir",
        metavar="PATH",
        default=None,
        help="cache directory (default .fpzc/cache or $FPZC_CACHE)",
    )
    p.add_argument(
        "--cache-max-bytes",
        type=int,
        default=None,
        dest="cache_max_bytes",
        metavar="N",
        help="LRU size bound for the cache; an eviction pass runs "
        "after every write (default: unbounded)",
    )


def _cache_store(args):
    """The :class:`repro.cache.CacheStore` the flags ask for, or None
    when caching is off."""
    if not getattr(args, "cache", False):
        return None
    from repro.cache import CacheStore, cache_path

    return CacheStore(
        root=str(cache_path(getattr(args, "cache_dir", None))),
        max_bytes=getattr(args, "cache_max_bytes", None),
    )


def build_parser() -> argparse.ArgumentParser:
    """Construct the argument parser (exposed for tests)."""
    from repro.version import __version__

    parser = argparse.ArgumentParser(
        prog="fpzc",
        description="Fixed-PSNR lossy compression for scientific data "
        "(Tao et al., CLUSTER 2018 reproduction).",
    )
    parser.add_argument(
        "--version", action="version", version=f"%(prog)s {__version__}"
    )
    sub = parser.add_subparsers(dest="command", required=True)

    p_c = sub.add_parser("compress", help="compress a .npy array")
    p_c.add_argument("input", help="input .npy file (float32/float64 array)")
    p_c.add_argument("-o", "--output", required=True, help="output container file")
    group = p_c.add_mutually_exclusive_group(required=True)
    group.add_argument("--psnr", type=float, help="target PSNR in dB (fixed-PSNR mode)")
    group.add_argument("--abs", type=float, dest="abs_bound", help="absolute error bound")
    group.add_argument(
        "--rel", type=float, dest="rel_bound", help="value-range-relative error bound"
    )
    group.add_argument(
        "--pw-rel",
        type=float,
        dest="pw_rel_bound",
        help="pointwise relative error bound (sz codec only)",
    )
    group.add_argument(
        "--bit-rate",
        type=float,
        dest="bit_rate",
        help="fixed-rate mode: bits per value (embedded codec)",
    )
    group.add_argument(
        "--nrmse",
        type=float,
        dest="nrmse",
        help="target NRMSE (fixed-NRMSE mode, Eq. 8 via Eq. 5)",
    )
    group.add_argument(
        "--mse",
        type=float,
        dest="mse",
        help="target MSE (fixed-MSE mode, Eq. 8 via Eq. 4)",
    )
    group.add_argument(
        "--ratio",
        type=float,
        dest="ratio",
        help="target compression ratio (autotune search; see "
        "`fpzc autotune` for the full knob set)",
    )
    p_c.add_argument(
        "--tol",
        type=float,
        default=0.05,
        help="relative tolerance for --ratio (default 0.05)",
    )
    p_c.add_argument(
        "--codec",
        choices=("sz", "transform", "regression", "hybrid", "interp", "embedded"),
        default="sz",
        help="compression codec",
    )
    p_c.add_argument(
        "--refine",
        action="store_true",
        help="histogram-refined bound derivation (fixed-PSNR mode only)",
    )
    p_c.add_argument(
        "--chunks",
        type=int,
        default=0,
        help="compress as N independent slabs (sz codec, --abs/--rel/"
        "--psnr modes); 0 = single container (default)",
    )
    p_c.add_argument(
        "--chunk-workers",
        type=int,
        default=0,
        dest="chunk_workers",
        help="worker processes for --chunks slabs (default 0 = sequential)",
    )
    _add_shm_flags(p_c)
    p_c.add_argument(
        "--entropy",
        choices=("huffman", "rans"),
        default="huffman",
        help="entropy stage for the sz codec",
    )
    p_c.add_argument(
        "--trace",
        action="store_true",
        help="print a per-stage cost tree after compressing",
    )
    p_c.add_argument(
        "--trace-json",
        metavar="PATH",
        help="write the full trace (schema v1 JSON) to PATH; implies --trace",
    )
    p_c.add_argument(
        "--trace-perfetto",
        metavar="PATH",
        dest="trace_perfetto",
        help="export the trace as Chrome trace-event JSON (Perfetto/"
        "chrome://tracing); implies --trace",
    )
    p_c.add_argument(
        "--profile-mem",
        action="store_true",
        help="per-span peak-memory profiling via tracemalloc "
        "(slower; implies --trace)",
    )
    p_c.add_argument(
        "--metrics",
        metavar="PATH",
        help="write the process metrics snapshot to PATH "
        "(.prom -> Prometheus text, else JSON)",
    )
    p_c.add_argument(
        "--ledger",
        metavar="PATH",
        help="run-ledger file for traced runs "
        "(default .fpzc/ledger.jsonl or $FPZC_LEDGER)",
    )
    p_c.add_argument(
        "--no-ledger",
        action="store_true",
        help="do not append this traced run to the ledger",
    )
    _add_cache_flags(p_c)

    p_at = sub.add_parser(
        "autotune",
        help="search the error-bound space for a measured target "
        "(fixed ratio / bit rate / SSIM / max error)",
    )
    p_at.add_argument("input", help="input .npy file (float32/float64 array)")
    p_at.add_argument(
        "-o", "--output",
        help="also write the container compressed at the converged bound",
    )
    at_group = p_at.add_mutually_exclusive_group(required=True)
    at_group.add_argument(
        "--ratio", type=float, help="target compression ratio"
    )
    at_group.add_argument(
        "--bitrate", type=float, help="target bits per value"
    )
    at_group.add_argument(
        "--ssim", type=float, help="target block SSIM in (0, 1]"
    )
    at_group.add_argument(
        "--max-error",
        type=float,
        dest="max_error",
        help="target maximum pointwise absolute error",
    )
    p_at.add_argument(
        "--codec",
        choices=("sz", "transform", "regression", "hybrid", "interp"),
        default="sz",
        help="error-bounded codec to tune",
    )
    p_at.add_argument(
        "--tol",
        type=float,
        default=0.05,
        help="relative convergence tolerance (default 0.05 = 5%%)",
    )
    p_at.add_argument(
        "--max-trials",
        type=int,
        default=12,
        dest="max_trials",
        help="trial-compression budget (default 12)",
    )
    p_at.add_argument(
        "--max-seconds",
        type=float,
        default=None,
        dest="max_seconds",
        help="wall-clock budget per search phase (default: none)",
    )
    p_at.add_argument(
        "--workers",
        type=int,
        default=0,
        help="parallel pre-probe worker processes (default 0 = inline)",
    )
    p_at.add_argument(
        "--no-warm-start",
        action="store_true",
        help="ignore prior ledger runs when choosing the initial bound",
    )
    _add_shm_flags(p_at)
    p_at.add_argument("--json", action="store_true", help="emit a JSON report")
    p_at.add_argument(
        "--trace",
        action="store_true",
        help="print the per-trial stage-cost tree after the search",
    )
    p_at.add_argument(
        "--trace-json",
        metavar="PATH",
        help="write the full trace (schema v1 JSON) to PATH; implies --trace",
    )
    p_at.add_argument(
        "--trace-perfetto",
        metavar="PATH",
        dest="trace_perfetto",
        help="export the search trace as Chrome trace-event JSON "
        "(Perfetto/chrome://tracing)",
    )
    p_at.add_argument(
        "--profile-mem",
        action="store_true",
        help="per-span peak-memory profiling via tracemalloc "
        "(slower; implies --trace)",
    )
    p_at.add_argument(
        "--metrics",
        metavar="PATH",
        help="write the process metrics snapshot to PATH "
        "(.prom -> Prometheus text, else JSON)",
    )
    p_at.add_argument(
        "--ledger",
        metavar="PATH",
        help="run-ledger file (default .fpzc/ledger.jsonl or $FPZC_LEDGER)",
    )
    p_at.add_argument(
        "--no-ledger",
        action="store_true",
        help="do not append this run to the ledger",
    )
    _add_cache_flags(p_at)

    p_d = sub.add_parser("decompress", help="decompress a container")
    p_d.add_argument("input", help="compressed container file")
    p_d.add_argument("-o", "--output", required=True, help="output .npy file")
    p_d.add_argument(
        "--chunk-workers",
        type=int,
        default=0,
        dest="chunk_workers",
        help="worker processes for chunked containers "
        "(default 0 = sequential)",
    )
    _add_shm_flags(p_d)

    p_i = sub.add_parser("info", help="print container metadata")
    p_i.add_argument("input", help="compressed container file")

    sub.add_parser("table1", help="print the data-set inventory (Table I)")

    p_t2 = sub.add_parser(
        "table2", help="regenerate the paper's Table II across all data sets"
    )
    p_t2.add_argument(
        "--targets",
        type=float,
        nargs="+",
        default=[20.0, 40.0, 60.0, 80.0, 100.0, 120.0],
    )
    p_t2.add_argument("--workers", type=int, default=0)
    p_t2.add_argument(
        "--report",
        help="also write the summary to a file (.md -> Markdown, else CSV)",
    )

    p_g = sub.add_parser(
        "gen", help="generate a synthetic data-set field as .npy"
    )
    p_g.add_argument("dataset", choices=("NYX", "ATM", "Hurricane"))
    p_g.add_argument("field", help="field name (see `fpzc table1` / docs)")
    p_g.add_argument("-o", "--output", required=True, help="output .npy file")
    p_g.add_argument(
        "--scale", type=float, default=None, help="dimension scale in (0, 1]"
    )

    p_v = sub.add_parser(
        "verify", help="check a container's integrity (and optionally fidelity)"
    )
    p_v.add_argument("input", help="compressed container file")
    p_v.add_argument(
        "--original", help="original .npy to measure reconstruction fidelity"
    )
    p_v.add_argument(
        "--salvage",
        action="store_true",
        help="best-effort decode of a damaged container/archive: print "
        "a salvage report (exit 0 clean, 1 losses, 2 unrecoverable)",
    )

    p_a = sub.add_parser(
        "archive", help="compress a whole data-set snapshot into one archive"
    )
    p_a.add_argument("dataset", choices=("NYX", "ATM", "Hurricane"))
    p_a.add_argument("-o", "--output", required=True, help="output .fpza file")
    p_a.add_argument("--psnr", type=float, default=80.0, help="target PSNR")
    p_a.add_argument("--fields", nargs="*", default=None, help="subset of fields")

    p_x = sub.add_parser("extract", help="extract one field from an archive")
    p_x.add_argument("input", help="input .fpza archive")
    p_x.add_argument("field", nargs="?", help="field name (omit to list)")
    p_x.add_argument("-o", "--output", help="output .npy (required with a field)")

    p_s = sub.add_parser("sweep", help="fixed-PSNR sweep over a data set")
    p_s.add_argument("dataset", choices=("NYX", "ATM", "Hurricane"))
    p_s.add_argument(
        "--targets",
        type=float,
        nargs="+",
        default=[20.0, 40.0, 60.0, 80.0, 100.0, 120.0],
        help="target PSNRs in dB",
    )
    p_s.add_argument("--fields", nargs="*", default=None, help="subset of fields")
    p_s.add_argument("--workers", type=int, default=0, help="worker processes")
    _add_shm_flags(p_s)
    p_s.add_argument(
        "--refine", action="store_true", help="histogram-refined derivation"
    )
    p_s.add_argument(
        "--max-retries",
        type=int,
        default=0,
        dest="max_retries",
        help="retry failing field tasks up to N times with exponential "
        "backoff before degrading them to a failed row (default 0)",
    )
    p_s.add_argument(
        "--task-timeout",
        type=float,
        default=None,
        dest="task_timeout",
        help="per-task deadline in seconds; a slower attempt counts as "
        "a failure and is retried (default: none)",
    )
    p_s.add_argument(
        "--retry-seed",
        type=int,
        default=0,
        dest="retry_seed",
        help="seed for the backoff jitter RNG (default 0)",
    )
    p_s.add_argument("--json", action="store_true", help="emit JSON records")
    p_s.add_argument(
        "--report",
        help="also write the summary to a file (.md -> Markdown, else CSV)",
    )
    p_s.add_argument(
        "--trace",
        action="store_true",
        help="collect per-stage traces and print an aggregate stage breakdown",
    )
    p_s.add_argument(
        "--trace-perfetto",
        metavar="PATH",
        dest="trace_perfetto",
        help="export the sweep trace (parent plus per-worker tracks) as "
        "Chrome trace-event JSON; implies --trace",
    )
    p_s.add_argument(
        "--profile-mem",
        action="store_true",
        help="per-span peak-memory profiling via tracemalloc "
        "(slower; implies --trace)",
    )
    p_s.add_argument(
        "--ledger",
        metavar="PATH",
        help="run-ledger file for traced sweeps "
        "(default .fpzc/ledger.jsonl or $FPZC_LEDGER)",
    )
    p_s.add_argument(
        "--no-ledger",
        action="store_true",
        help="do not append this traced sweep to the ledger",
    )
    p_s.add_argument(
        "--cluster",
        metavar="TOPOLOGY",
        help="scatter-gather the sweep across a cluster instead of "
        "local workers: shard (field, target) tasks over the member "
        "nodes in this JSON topology file by blob fingerprint, with "
        "failover (see docs/CLUSTER.md)",
    )
    _add_cache_flags(p_s)

    p_b = sub.add_parser(
        "bench",
        help="run the benchmark matrix; write or check committed baselines",
    )
    p_b.add_argument(
        "--check",
        action="store_true",
        help="compare a fresh run against the committed baselines instead "
        "of rewriting them (exit 1 on deterministic drift)",
    )
    p_b.add_argument(
        "--time-factor",
        type=float,
        default=3.0,
        help="allowed wall-time drift factor before a warning (default 3.0)",
    )
    p_b.add_argument(
        "--dir",
        default=".",
        help="directory holding BENCH_*.json baselines (default: repo root)",
    )

    p_l = sub.add_parser("ledger", help="print recent run-ledger entries")
    p_l.add_argument(
        "--ledger",
        metavar="PATH",
        help="ledger file (default .fpzc/ledger.jsonl or $FPZC_LEDGER)",
    )
    p_l.add_argument(
        "--limit", type=int, default=20, help="show at most N entries"
    )
    p_l.add_argument("--json", action="store_true", help="emit raw JSON lines")

    p_dr = sub.add_parser(
        "drift",
        help="chart PSNR conformance (achieved vs Eq. 7/8 prediction) "
        "over ledger history",
    )
    p_dr.add_argument(
        "--ledger",
        metavar="PATH",
        help="ledger file (default .fpzc/ledger.jsonl or $FPZC_LEDGER)",
    )
    p_dr.add_argument(
        "--check",
        action="store_true",
        help="gate mode: exit 0 in-control, 1 drifting, 2 insufficient "
        "history (without --check the exit code is always 0)",
    )
    p_dr.add_argument("--json", action="store_true", help="emit a JSON report")
    p_dr.add_argument(
        "--min-history",
        type=int,
        default=2,
        dest="min_history",
        help="minimum runs per (dataset, codec, target) series before "
        "judging it (default 2)",
    )
    p_dr.add_argument(
        "--ewma-lambda",
        type=float,
        default=0.3,
        dest="ewma_lambda",
        help="EWMA smoothing weight in (0, 1] (default 0.3)",
    )
    p_dr.add_argument(
        "--sigma-limit",
        type=float,
        default=3.0,
        dest="sigma_limit",
        help="EWMA control limit in sigmas (default 3.0)",
    )

    p_r = sub.add_parser(
        "report",
        help="write the self-contained HTML run dashboard "
        "(ledger, drift, bench, metrics, timeline)",
    )
    p_r.add_argument(
        "--html", metavar="PATH", required=True, help="output HTML file"
    )
    p_r.add_argument(
        "--ledger",
        metavar="PATH",
        help="ledger file (default .fpzc/ledger.jsonl or $FPZC_LEDGER)",
    )
    p_r.add_argument(
        "--limit", type=int, default=20, help="ledger rows in the table"
    )
    p_r.add_argument(
        "--bench-dir",
        default=".",
        dest="bench_dir",
        help="directory holding BENCH_*.json baselines (default: .)",
    )
    p_r.add_argument(
        "--metrics",
        metavar="PATH",
        help="metrics snapshot JSON (from --metrics) to embed",
    )
    p_r.add_argument(
        "--trace",
        metavar="PATH",
        help="Chrome trace JSON (from --trace-perfetto) to embed as the "
        "span timeline",
    )
    p_r.add_argument(
        "--title", default="fpzc run dashboard", help="dashboard title"
    )

    # -- the compression service (repro.service) ------------------------
    p_sv = sub.add_parser(
        "serve",
        help="run the long-lived compression service (HTTP job API, "
        "warm worker pool, admission control; see docs/SERVICE.md)",
    )
    p_sv.add_argument("--host", default="127.0.0.1", help="bind address")
    p_sv.add_argument(
        "--port", type=int, default=8077, help="bind port (0 = any free)"
    )
    p_sv.add_argument(
        "--workers", type=int, default=2, dest="workers",
        help="worker pool size (0 = inline execution)",
    )
    p_sv.add_argument(
        "--pool",
        choices=("process", "thread", "inline"),
        default="process",
        help="worker pool kind (process pools use the shm data plane)",
    )
    _add_shm_flags(p_sv)
    p_sv.add_argument(
        "--queue-limit", type=int, default=64, dest="queue_limit",
        help="admission bound: jobs beyond this depth get 429",
    )
    p_sv.add_argument(
        "--batch-window", type=float, default=0.005, dest="batch_window",
        metavar="SECONDS",
        help="micro-batch collection window for compatible compress jobs",
    )
    p_sv.add_argument(
        "--batch-max", type=int, default=8, dest="batch_max",
        help="max jobs per micro-batched pool fan-out",
    )
    p_sv.add_argument(
        "--grace", type=float, default=10.0, metavar="SECONDS",
        help="drain window after SIGTERM/SIGINT before forcing exit",
    )
    p_sv.add_argument(
        "--max-retries", type=int, default=1, dest="max_retries",
        help="per-job retry budget for failed attempts",
    )
    p_sv.add_argument(
        "--ledger", metavar="PATH",
        help="ledger file (default .fpzc/ledger.jsonl or $FPZC_LEDGER)",
    )
    p_sv.add_argument(
        "--no-ledger", action="store_true", dest="no_ledger",
        help="do not append job records to the run ledger",
    )
    p_sv.add_argument(
        "--trace-perfetto", metavar="PATH", dest="trace_perfetto",
        help="write a Chrome/Perfetto trace of requests and jobs at drain",
    )
    p_sv.add_argument(
        "--allow-faults", action="store_true", dest="allow_faults",
        help="accept deterministic fault specs in job payloads "
        "(testing only)",
    )
    _add_cache_flags(p_sv)

    # -- the cluster tier (repro.cluster) -------------------------------
    p_cl = sub.add_parser(
        "cluster",
        help="multi-node cluster: coordinator over N fpzc serve nodes "
        "(consistent-hash routing, failover; see docs/CLUSTER.md)",
    )
    cl_sub = p_cl.add_subparsers(dest="cluster_command", required=True)
    p_cls = cl_sub.add_parser(
        "serve",
        help="run the cluster coordinator in the foreground",
    )
    p_cls.add_argument(
        "--topology", metavar="FILE",
        help="JSON topology file (peers list + tuning keys)",
    )
    p_cls.add_argument(
        "--peers", nargs="+", metavar="URL",
        help="member node base URLs (alternative to --topology)",
    )
    p_cls.add_argument(
        "--host", default=None, help="bind address (default 127.0.0.1)"
    )
    p_cls.add_argument(
        "--port", type=int, default=None,
        help="bind port (default 8076, 0 = any free)",
    )
    p_cls.add_argument(
        "--vnodes", type=int, default=None,
        help="virtual nodes per member on the hash ring (default 64)",
    )
    p_cls.add_argument(
        "--probe-interval", type=float, default=None, dest="probe_interval",
        metavar="SECONDS",
        help="health probe interval for alive members (default 2.0)",
    )
    p_cls.add_argument(
        "--dead-after", type=int, default=None, dest="dead_after",
        help="consecutive probe failures before a member is declared "
        "dead and loses its ring ownership (default 3)",
    )
    p_cls.add_argument(
        "--max-retries", type=int, default=None, dest="max_retries",
        help="ring successors to fail a job over to (default 2)",
    )
    p_cls.add_argument(
        "--retry-seed", type=int, default=None, dest="retry_seed",
        help="seed for failover/probe backoff jitter (default 0)",
    )
    p_cls.add_argument(
        "--trace-perfetto", metavar="PATH", dest="trace_perfetto",
        help="write a Chrome/Perfetto trace at drain; each member node "
        "gets its own process lane",
    )
    p_clt = cl_sub.add_parser(
        "status",
        help="print a running coordinator's membership and ring state",
    )
    p_clt.add_argument(
        "--url", default=None,
        help="coordinator URL (default http://127.0.0.1:8076)",
    )
    p_clt.add_argument(
        "--json", action="store_true", help="emit raw JSON"
    )

    p_sub = sub.add_parser(
        "submit", help="submit a compression job to a running service"
    )
    p_sub.add_argument("dataset", help="data-set name (e.g. ATM, NYX)")
    p_sub.add_argument("field", help="field name within the data set")
    grp = p_sub.add_mutually_exclusive_group(required=True)
    grp.add_argument(
        "--psnr", type=float, help="target PSNR in dB (fixed-PSNR mode)"
    )
    grp.add_argument("--ratio", type=float, help="target compression ratio")
    grp.add_argument("--nrmse", type=float, help="target NRMSE")
    p_sub.add_argument("--codec", default="sz", help="codec (default sz)")
    p_sub.add_argument(
        "--refine", choices=("histogram",), help="bound refinement"
    )
    p_sub.add_argument("--scale", type=float, help="data-set scale factor")
    p_sub.add_argument(
        "--priority", type=int, default=5,
        help="queue priority (lower runs first; default 5)",
    )
    p_sub.add_argument(
        "--deadline", type=float, dest="deadline", metavar="SECONDS",
        help="per-job deadline; expired jobs finish as status=timeout",
    )
    p_sub.add_argument(
        "--no-wait", action="store_true", dest="no_wait",
        help="print the job id and return instead of polling",
    )
    p_sub.add_argument(
        "--timeout", type=float, default=300.0,
        help="client-side wait budget with polling (default 300s)",
    )
    p_sub.add_argument(
        "--out", metavar="PATH", help="write the compressed blob here"
    )
    p_sub.add_argument(
        "--url", help="service URL (default $FPZC_SERVICE_URL or "
        "http://127.0.0.1:8077)",
    )

    p_st = sub.add_parser("status", help="print a service job's status")
    p_st.add_argument("job", help="job id (from submit)")
    p_st.add_argument("--url", help="service URL")

    p_f = sub.add_parser(
        "fetch", help="download a finished service job's blob"
    )
    p_f.add_argument("job", help="job id (from submit)")
    p_f.add_argument(
        "--out", metavar="PATH", required=True, help="output file"
    )
    p_f.add_argument("--url", help="service URL")

    p_cx = sub.add_parser("cancel", help="cancel a queued or running job")
    p_cx.add_argument("job", help="job id (from submit)")
    p_cx.add_argument("--url", help="service URL")
    return parser


def _compress_blob(args, data, store=None):
    """Dispatch ``compress`` arguments to the right codec.

    Returns ``(blob, mode, target)`` where ``mode`` names the control
    mode the user asked for (``"psnr"``, ``"nrmse"``, ``"mse"``,
    ``"ratio"``, ``"rate"`` or ``"bound"``) and ``target`` is the
    requested value in that unit (``None`` for plain error-bound runs).
    ``store`` (a :class:`repro.cache.CacheStore`) feeds the ``--ratio``
    autotune search's trial cache so repeated searches converge from
    prior probes instead of from scratch.
    """
    from repro.core.fixed_psnr import FixedPSNRCompressor
    from repro.errors import ParameterError
    from repro.sz.compressor import SZCompressor
    from repro.sz.regression import RegressionCompressor
    from repro.transform.compressor import TransformCompressor
    from repro.transform.embedded import EmbeddedTransformCompressor

    if args.chunks >= 1:
        return _compress_chunked_blob(args, data)
    mode, target = "bound", None
    if args.nrmse is not None:
        from repro.core.modes import compress_fixed_nrmse

        if args.codec == "embedded":
            raise ParameterError("--nrmse is not supported by --codec embedded")
        blob = compress_fixed_nrmse(
            data,
            args.nrmse,
            refine="histogram" if args.refine else None,
            codec=args.codec,
        )
        mode, target = "nrmse", args.nrmse
    elif args.mse is not None:
        from repro.core.modes import compress_fixed_mse

        if args.codec == "embedded":
            raise ParameterError("--mse is not supported by --codec embedded")
        blob = compress_fixed_mse(
            data,
            args.mse,
            refine="histogram" if args.refine else None,
            codec=args.codec,
        )
        mode, target = "mse", args.mse
    elif args.ratio is not None:
        from repro.autotune import autotune

        if args.codec == "embedded":
            raise ParameterError(
                "--ratio autotuning is not supported by --codec embedded"
            )
        result = autotune(
            data,
            "ratio",
            args.ratio,
            codec=args.codec,
            tol=args.tol,
            keep_blob=True,
            store=store,
        )
        print(result.report(), file=sys.stderr)
        blob = result.blob
        mode, target = "ratio", args.ratio
    elif args.bit_rate is not None:
        if args.codec != "embedded":
            raise ParameterError("--bit-rate requires --codec embedded")
        blob = EmbeddedTransformCompressor(
            mode="fixed_rate", rate=args.bit_rate
        ).compress(data)
        mode, target = "rate", args.bit_rate
    elif args.psnr is not None:
        if args.codec == "embedded":
            blob = EmbeddedTransformCompressor(
                mode="fixed_psnr", rate=args.psnr
            ).compress(data)
        else:
            comp = FixedPSNRCompressor(
                args.psnr,
                refine="histogram" if args.refine else None,
                codec=args.codec,
            )
            blob = comp.compress(data)
        mode, target = "psnr", args.psnr
    elif args.pw_rel_bound is not None:
        if args.codec != "sz":
            raise ParameterError("--pw-rel requires --codec sz")
        blob = SZCompressor(
            error_bound=args.pw_rel_bound, mode="pw_rel", entropy=args.entropy
        ).compress(data)
    else:
        bmode = "abs" if args.abs_bound is not None else "rel"
        bound = args.abs_bound if args.abs_bound is not None else args.rel_bound
        if args.codec == "sz":
            blob = SZCompressor(
                error_bound=bound, mode=bmode, entropy=args.entropy
            ).compress(data)
        elif args.codec == "transform":
            blob = TransformCompressor(error_bound=bound, mode=bmode).compress(data)
        elif args.codec == "regression":
            blob = RegressionCompressor(error_bound=bound, mode=bmode).compress(data)
        elif args.codec == "hybrid":
            from repro.sz.hybrid import HybridCompressor

            blob = HybridCompressor(error_bound=bound, mode=bmode).compress(data)
        elif args.codec == "interp":
            from repro.sz.interp import InterpolationCompressor

            blob = InterpolationCompressor(
                error_bound=bound, mode=bmode
            ).compress(data)
        else:
            raise ParameterError(
                "the embedded codec takes --bit-rate or --psnr, not error bounds"
            )
    return blob, mode, target


def _compress_chunked_blob(args, data):
    """``compress --chunks N``: slab-parallel compression through
    :func:`repro.parallel.chunking.compress_chunked` (sz codec;
    ``--abs``/``--rel``/``--psnr`` control modes).  Payloads move over
    the transport selected by ``--shm``/``--no-shm``."""
    from repro.core.fixed_psnr import FixedPSNRCompressor
    from repro.errors import ParameterError
    from repro.parallel.chunking import compress_chunked

    if args.codec != "sz":
        raise ParameterError("--chunks requires --codec sz")
    kwargs = dict(
        n_chunks=args.chunks,
        n_workers=args.chunk_workers,
        transport=_transport(args),
        entropy=args.entropy,
    )
    if args.psnr is not None:
        comp = FixedPSNRCompressor(
            args.psnr, refine="histogram" if args.refine else None
        )
        eb_rel = comp.derive_bound(data)
        return (
            compress_chunked(data, float(eb_rel), mode="rel", **kwargs),
            "psnr",
            args.psnr,
        )
    if args.abs_bound is not None:
        return (
            compress_chunked(data, args.abs_bound, mode="abs", **kwargs),
            "bound",
            None,
        )
    if args.rel_bound is not None:
        return (
            compress_chunked(data, args.rel_bound, mode="rel", **kwargs),
            "bound",
            None,
        )
    raise ParameterError(
        "--chunks supports --abs, --rel or --psnr control modes only"
    )


def _compress_cache_key(args, data) -> str:
    """The content-addressed cache key for this ``compress`` invocation.

    Mirrors :func:`_compress_blob`'s mode dispatch so that every knob
    that can change the output bytes (mode, target/bound, codec,
    refinement, entropy stage, chunking, ratio tolerance) lands in the
    key.  The fixed-PSNR key deliberately matches the one written by
    :func:`repro.parallel.executor.sweep_dataset`, so a sweep warms the
    cache for later single-field ``compress`` calls and vice versa.
    """
    from repro.cache import blob_key, data_digest

    digest = data_digest(data)
    opts = dict(
        refine="histogram" if args.refine else None,
        entropy=args.entropy,
        chunks=args.chunks or None,
    )
    if args.psnr is not None:
        return blob_key(
            digest, codec=args.codec, mode="psnr",
            target=float(args.psnr), **opts,
        )
    if args.nrmse is not None:
        return blob_key(
            digest, codec=args.codec, mode="nrmse",
            target=float(args.nrmse), **opts,
        )
    if args.mse is not None:
        return blob_key(
            digest, codec=args.codec, mode="mse",
            target=float(args.mse), **opts,
        )
    if args.ratio is not None:
        return blob_key(
            digest, codec=args.codec, mode="ratio",
            target=float(args.ratio), tol=float(args.tol), **opts,
        )
    if args.bit_rate is not None:
        return blob_key(
            digest, codec=args.codec, mode="rate",
            target=float(args.bit_rate), **opts,
        )
    if args.pw_rel_bound is not None:
        return blob_key(
            digest, codec=args.codec, mode="pw_rel",
            bound=float(args.pw_rel_bound), **opts,
        )
    bmode = "abs" if args.abs_bound is not None else "rel"
    bound = args.abs_bound if args.abs_bound is not None else args.rel_bound
    return blob_key(
        digest, codec=args.codec, mode=bmode, bound=float(bound), **opts,
    )


def _write_metrics(path: str) -> None:
    """Dump the process metrics registry to ``path`` (format by suffix)."""
    from repro.report import render_metrics_json, render_prometheus
    from repro.telemetry.registry import metrics

    snap = metrics().snapshot()
    text = (
        render_prometheus(snap)
        if path.endswith(".prom")
        else render_metrics_json(snap)
    )
    with open(path, "w") as fh:
        fh.write(text)
    print(f"metrics written to {path}")


def _append_ledger(args, entry) -> None:
    from pathlib import Path

    from repro.telemetry.ledger import append_entry

    path = append_entry(
        entry, path=Path(args.ledger) if args.ledger else None
    )
    # stderr so `--json` stdout stays machine-parseable
    print(f"ledger entry appended to {path}", file=sys.stderr)


def _write_perfetto(tr, path: str) -> None:
    """Export ``tr`` as Chrome trace-event JSON plus the current
    metric counters (open in Perfetto or chrome://tracing)."""
    from repro.telemetry.export import write_chrome_trace
    from repro.telemetry.registry import metrics

    write_chrome_trace(tr, path, snapshot=metrics().snapshot())
    print(f"perfetto trace written to {path}", file=sys.stderr)


def _trace_eb_rel(tr) -> Optional[float]:
    """The relative bound the run's ``derive_bound`` span recorded,
    or ``None`` when the trace has no fixed-PSNR derivation."""
    for rec in tr.records:
        if rec.path and rec.path[-1] == "derive_bound":
            v = rec.gauges.get("eb_rel")
            if v is not None:
                return float(v)
    return None


def _cmd_compress(args) -> int:
    from contextlib import ExitStack

    from repro.observe import Trace, use_trace

    data = np.load(args.input)
    store = _cache_store(args)
    cache_key = None
    cache_entry = None
    if store is not None:
        cache_key = _compress_cache_key(args, data)
        cache_entry = store.get(cache_key)
    cache_hit = cache_entry is not None
    traced = (
        args.trace or args.trace_json or args.trace_perfetto
        or args.profile_mem
    )
    if cache_hit:
        # Serve the stored bytes without touching a codec: the only
        # span a traced warm run records is ``cache.hit``.
        blob = cache_entry.payload
        mode = cache_entry.meta.get("mode", "bound")
        target = cache_entry.meta.get("target")
        if traced:
            tr = Trace()
            with use_trace(tr):
                with tr.span("cache.hit") as sp:
                    sp.set("bytes", len(blob))
    elif traced:
        tr = Trace()
        with ExitStack() as stack:
            stack.enter_context(use_trace(tr))
            if args.profile_mem:
                from repro.telemetry.memory import profile_memory

                stack.enter_context(profile_memory())
            blob, mode, target = _compress_blob(args, data, store=store)
    else:
        blob, mode, target = _compress_blob(args, data, store=store)
    with open(args.output, "wb") as fh:
        fh.write(blob)
    ratio = data.nbytes / len(blob)
    print(f"{args.input}: {data.nbytes} -> {len(blob)} bytes (CR {ratio:.2f})")

    # When a quality (or ratio) target was requested, decompress once
    # and report how close the run actually landed.  A cache hit skips
    # the measurement too: the achieved numbers were stored with the
    # blob when it was first compressed and the bytes are identical.
    achieved_psnr = None
    achieved = None
    if cache_hit:
        m = cache_entry.meta.get("metrics") or {}
        achieved_psnr = m.get("achieved_psnr")
        achieved = m.get("achieved")
        print(f"cache: hit {cache_key[:16]} ({store.root})", file=sys.stderr)
        if achieved_psnr is not None:
            line = f"achieved: PSNR {achieved_psnr:.2f} dB"
            if target is not None:
                line += f" (target {target:g}, cached)"
            print(line)
    elif mode in ("psnr", "nrmse", "mse", "ratio") and args.codec != "embedded":
        from repro.metrics.distortion import mse as measure_mse
        from repro.metrics.distortion import nrmse as measure_nrmse
        from repro.metrics.distortion import psnr as measure_psnr
        from repro.sz.compressor import decompress

        recon = decompress(blob)
        achieved_psnr = float(measure_psnr(data, recon))
        line = f"achieved: PSNR {achieved_psnr:.2f} dB"
        if mode == "nrmse":
            achieved = float(measure_nrmse(data, recon))
            line += f", NRMSE {achieved:.4g} (target {target:g})"
        elif mode == "mse":
            achieved = float(measure_mse(data, recon))
            line += f", MSE {achieved:.4g} (target {target:g})"
        elif mode == "ratio":
            achieved = float(ratio)
            line += f", CR {ratio:.2f} (target {target:g})"
        else:
            achieved = achieved_psnr
            line += f" (target {target:g})"
        print(line)

    if store is not None and not cache_hit:
        meta = {
            "kind": "blob",
            "dataset": args.input,
            "codec": args.codec,
            "mode": mode,
            "target": target,
            "metrics": {
                "achieved_psnr": achieved_psnr,
                "achieved": achieved,
                "ratio": float(ratio),
                "raw_bytes": int(data.nbytes),
                "compressed_bytes": len(blob),
            },
        }
        store.put(cache_key, blob, meta)
        print(f"cache: miss, stored {cache_key[:16]}", file=sys.stderr)

    if traced:
        from repro.telemetry.registry import record_trace

        record_trace(tr)
        print()
        print(tr.render())
        if args.trace_json:
            with open(args.trace_json, "w") as fh:
                fh.write(tr.to_json())
            print(f"trace written to {args.trace_json}")
        if args.trace_perfetto:
            _write_perfetto(tr, args.trace_perfetto)
        # Fixed-PSNR conformance: the Eq. 7/8 prediction at the derived
        # bound next to what the run actually measured (ledger schema 3).
        # Warm-cache runs never re-record conformance: the replayed
        # measurement would double-count the original run's point in
        # the drift history.
        extra = {}
        if store is not None:
            extra["cache"] = {"hit": cache_hit, "key": cache_key}
        if not cache_hit and mode == "psnr" and achieved_psnr is not None:
            eb_rel = _trace_eb_rel(tr)
            if eb_rel is not None:
                from repro.core.fixed_psnr import estimate_psnr_from_bound
                from repro.telemetry.drift import record_conformance

                extra["conformance"] = record_conformance(
                    args.input,
                    args.codec,
                    float(target),
                    float(estimate_psnr_from_bound(eb_rel=eb_rel)),
                    achieved_psnr,
                )
        if not args.no_ledger:
            from repro.telemetry.ledger import entry_from_trace

            _append_ledger(
                args,
                entry_from_trace(
                    "compress",
                    tr,
                    dataset=args.input,
                    codec=args.codec,
                    mode=mode,
                    target=target,
                    achieved=achieved,
                    target_psnr=args.psnr,
                    achieved_psnr=achieved_psnr,
                    ratio=ratio,
                    raw_bytes=int(data.nbytes),
                    compressed_bytes=len(blob),
                    extra=extra,
                ),
            )
    if args.metrics:
        _write_metrics(args.metrics)
    return 0


def _cmd_autotune(args) -> int:
    """Search the error-bound space for a measured target and report
    the convergence trajectory.  Exit code 0 when the search converged
    within tolerance, 1 when a budget ran out first."""
    import json as _json
    from contextlib import ExitStack

    from repro.autotune import autotune
    from repro.observe import Trace, use_trace

    data = np.load(args.input)
    for name in ("ratio", "bitrate", "ssim", "max_error"):
        target = getattr(args, name)
        if target is not None:
            objective = name
            break

    ledger_entries = None
    if not args.no_warm_start:
        from repro.telemetry.ledger import read_entries

        try:
            ledger_entries, _ = read_entries(args.ledger)
        except OSError:
            ledger_entries = None

    store = _cache_store(args)

    # Always trace: the ledger record and --trace/--metrics output are
    # both built from the per-trial spans.
    tr = Trace()
    with ExitStack() as stack:
        stack.enter_context(use_trace(tr))
        if args.profile_mem:
            from repro.telemetry.memory import profile_memory

            stack.enter_context(profile_memory())
        result = autotune(
            data,
            objective,
            target,
            codec=args.codec,
            tol=args.tol,
            max_trials=args.max_trials,
            max_seconds=args.max_seconds,
            n_workers=args.workers,
            transport=_transport(args),
            ledger_entries=ledger_entries,
            keep_blob=args.output is not None,
            store=store,
        )

    from repro.telemetry.registry import record_trace

    record_trace(tr)
    if args.json:
        print(_json.dumps(result.as_dict(), indent=2, sort_keys=True))
    else:
        print(result.report())
    if args.output is not None:
        with open(args.output, "wb") as fh:
            fh.write(result.blob)
        print(
            f"{args.output}: {data.nbytes} -> {len(result.blob)} bytes "
            f"(CR {data.nbytes / len(result.blob):.2f})",
            file=sys.stderr,
        )
    if args.trace or args.trace_json or args.profile_mem:
        print(file=sys.stderr)
        print(tr.render(), file=sys.stderr)
        if args.trace_json:
            with open(args.trace_json, "w") as fh:
                fh.write(tr.to_json())
            print(f"trace written to {args.trace_json}", file=sys.stderr)
    if args.trace_perfetto:
        _write_perfetto(tr, args.trace_perfetto)
    if not args.no_ledger:
        from repro.telemetry.ledger import entry_from_trace

        at_extra = {
            "objective": result.objective,
            "eb_rel": result.eb_rel,
            "tolerance": result.tolerance,
            "converged": result.converged,
            "n_trials": result.n_trials,
            "cache_hits": result.cache_hits,
            "subsample_trials": result.subsample_trials,
            "stop_reason": result.stop_reason,
            "trajectory": result.search.as_dict()["trajectory"],
        }
        if store is not None:
            from repro.telemetry.registry import metrics as _metrics

            m = _metrics().get("autotune.store_hits_total")
            at_extra["cache"] = {
                "store": str(store.root),
                "store_hits": 0 if m is None else int(m.value),
            }
        _append_ledger(
            args,
            entry_from_trace(
                "autotune",
                tr,
                dataset=args.input,
                codec=args.codec,
                mode=result.objective,
                target=result.target,
                achieved=result.achieved,
                ratio=(
                    float(data.nbytes) / len(result.blob)
                    if result.blob
                    else None
                ),
                raw_bytes=int(data.nbytes),
                compressed_bytes=(
                    len(result.blob) if result.blob else None
                ),
                extra=at_extra,
            ),
        )
    if args.metrics:
        _write_metrics(args.metrics)
    return 0 if result.converged else 1


def _cmd_decompress(args) -> int:
    from repro.sz.compressor import decompress

    with open(args.input, "rb") as fh:
        blob = fh.read()
    recon = decompress(
        blob, n_workers=args.chunk_workers, transport=_transport(args)
    )
    np.save(args.output, recon)
    print(f"{args.output}: shape {recon.shape}, dtype {recon.dtype}")
    return 0


def _cmd_info(args) -> int:
    from repro.io.container import Container

    with open(args.input, "rb") as fh:
        container = Container.from_bytes(fh.read())
    info = {
        "codec": container.codec,
        "meta": container.meta,
        "streams": [
            {"name": name, "bytes": len(payload)}
            for name, payload in container.streams
        ],
    }
    print(json.dumps(info, indent=2, sort_keys=True))
    return 0


def _cmd_table1(_args) -> int:
    from repro.datasets.registry import table1_rows

    header = (
        f"{'Dataset':<10} {'Dimensions':>18} {'Fields':>7} "
        f"{'Snapshot':>12} {'Paper size':>11}"
    )
    print(header)
    print("-" * len(header))
    for row in table1_rows():
        size_gb = row["full_size_bytes"] / 1e9
        print(
            f"{row['dataset']:<10} {row['full_dimensions']:>18} "
            f"{row['n_fields']:>7} {size_gb:>9.1f} GB {row['paper_data_size']:>11}"
        )
    return 0


def _render_sweep_output(args, results, tr) -> int:
    """The reporting tail shared by the local and cluster sweep paths:
    row table (or ``--json``), per-target summary, failure table, stage
    breakdown, optional report file.  Exit 1 when any task failed."""
    from repro.report import (
        render_csv,
        render_markdown,
        render_text,
        summarize_by_target,
    )

    ok_results = [r for r in results if r.status == "ok"]
    failed = [r for r in results if r.status != "ok"]
    if args.json:
        print(json.dumps([r.as_dict() for r in results], indent=2))
        return 1 if failed else 0
    print(f"{'target':>8} {'field':<16} {'actual':>8} {'dev':>7} {'CR':>8}")
    for r in results:
        if r.status == "ok":
            print(
                f"{r.target_psnr:>8.1f} {r.field:<16} {r.actual_psnr:>8.2f} "
                f"{r.deviation:>+7.2f} {r.compression_ratio:>8.2f}"
            )
        else:
            print(
                f"{r.target_psnr:>8.1f} {r.field:<16} "
                f"FAILED [{r.error_code}] after {r.attempts} attempt(s)"
            )
    if ok_results:
        summaries = summarize_by_target(ok_results)
        print()
        print(
            render_text(summaries, title="Per-target summary (Table II layout)")
        )
    else:
        summaries = []
        print("\nno tasks succeeded; nothing to summarize", file=sys.stderr)
    if failed:
        from repro.report import render_sweep_failures

        print()
        print(render_sweep_failures(results), file=sys.stderr)
    if tr is not None:
        from repro.report import render_stage_breakdown

        print()
        print(render_stage_breakdown(results))
    if args.report and summaries:
        renderer = render_markdown if args.report.endswith(".md") else render_csv
        with open(args.report, "w") as fh:
            fh.write(renderer(summaries))
        print(f"\nreport written to {args.report}")
    return 1 if failed else 0


def _cmd_sweep_cluster(args) -> int:
    """``fpzc sweep --cluster TOPOLOGY``: scatter-gather the sweep
    across the member nodes of a running cluster instead of local
    workers.  Tasks are sharded by blob fingerprint on the coordinator's
    consistent-hash ring, failed over to ring successors when a node
    dies mid-sweep, and the merged rows are bit-identical to the serial
    path (see docs/CLUSTER.md)."""
    from repro.cluster import ClusterConfig, build_router

    overrides = {}
    if args.max_retries > 0:
        overrides["max_retries"] = args.max_retries
    if args.retry_seed:
        overrides["retry_seed"] = args.retry_seed
    config = ClusterConfig.from_topology(args.cluster, **overrides)
    tr = None
    if args.trace or args.trace_perfetto:
        from repro.observe import Trace

        tr = Trace()
    router = build_router(config, trace=tr)
    results = router.sweep(
        args.dataset,
        targets=args.targets,
        fields=args.fields,
        refine="histogram" if args.refine else None,
    )
    alive = sorted(
        url
        for url, st in router.membership.states().items()
        if st["status"] == "alive"
    )
    print(
        f"cluster: {len(results)} task(s) over {len(alive)} alive node(s) "
        f"({', '.join(alive) or 'none'})",
        file=sys.stderr,
    )
    if tr is not None:
        from repro.telemetry.registry import record_trace

        record_trace(tr)
        if args.trace_perfetto:
            from repro.cluster.router import node_lane
            from repro.telemetry.export import write_chrome_trace
            from repro.telemetry.registry import metrics

            write_chrome_trace(
                tr,
                args.trace_perfetto,
                snapshot=metrics().snapshot(),
                process_names={
                    node_lane(url): f"node {url}" for url in config.peers
                },
            )
            print(
                f"perfetto trace written to {args.trace_perfetto}",
                file=sys.stderr,
            )
        if not args.no_ledger:
            from repro.telemetry.ledger import entry_from_trace

            ok_results = [r for r in results if r.status == "ok"]
            # No coordinator-side conformance records: each member node
            # already recorded its own for freshly compressed jobs, so
            # recording here would double-count the drift history.
            _append_ledger(
                args,
                entry_from_trace(
                    "sweep",
                    tr,
                    dataset=args.dataset,
                    field="*",
                    codec="sz",
                    achieved_psnr=(
                        float(np.mean([r.actual_psnr for r in ok_results]))
                        if ok_results
                        else None
                    ),
                    ratio=(
                        float(
                            np.mean([r.compression_ratio for r in ok_results])
                        )
                        if ok_results
                        else None
                    ),
                    extra={
                        "targets": [float(t) for t in args.targets],
                        "cluster": {
                            "topology": args.cluster,
                            "nodes": list(config.peers),
                            "alive": alive,
                        },
                    },
                ),
            )
    return _render_sweep_output(args, results, tr)


def _cmd_sweep(args) -> int:
    if args.cluster:
        return _cmd_sweep_cluster(args)
    from repro.parallel.executor import sweep_dataset

    retry = None
    if args.max_retries > 0 or args.task_timeout is not None:
        from repro.resilience.retry import RetryPolicy

        retry = RetryPolicy(
            max_retries=args.max_retries,
            task_timeout=args.task_timeout,
            seed=args.retry_seed,
        )
    cache = _cache_store(args)
    tr = None
    if args.trace or args.trace_perfetto or args.profile_mem:
        from contextlib import ExitStack

        from repro.observe import Trace, use_trace

        tr = Trace()
        with ExitStack() as stack:
            stack.enter_context(use_trace(tr))
            if args.trace_perfetto:
                # A parent-process span so the exported timeline always
                # shows the coordinator track next to the worker tracks.
                stack.enter_context(tr.span("sweep"))
            results = sweep_dataset(
                args.dataset,
                targets=args.targets,
                fields=args.fields,
                refine="histogram" if args.refine else None,
                n_workers=args.workers,
                collect_trace=True,
                profile_mem=args.profile_mem,
                retry=retry,
                transport=_transport(args),
                cache=cache,
            )
    else:
        results = sweep_dataset(
            args.dataset,
            targets=args.targets,
            fields=args.fields,
            refine="histogram" if args.refine else None,
            n_workers=args.workers,
            retry=retry,
            transport=_transport(args),
            cache=cache,
        )
    ok_results = [r for r in results if r.status == "ok"]
    failed = [r for r in results if r.status != "ok"]
    if cache is not None:
        hits = sum(1 for r in ok_results if r.cache_hit)
        print(
            f"cache: {hits} hit(s) / {len(ok_results) - hits} miss(es) "
            f"({cache.root})",
            file=sys.stderr,
        )
    if tr is not None:
        from repro.telemetry.registry import record_trace

        record_trace(tr)
        if args.trace_perfetto:
            _write_perfetto(tr, args.trace_perfetto)
        if not args.no_ledger:
            from repro.telemetry.ledger import entry_from_trace

            extra = {"targets": [float(t) for t in args.targets]}
            if cache is not None:
                extra["cache"] = {
                    "store": str(cache.root),
                    "hits": sum(1 for r in ok_results if r.cache_hit),
                    "misses": sum(
                        1 for r in ok_results if not r.cache_hit
                    ),
                }
            # Cache hits replay previously recorded measurements, so
            # only freshly compressed fields feed the drift history.
            fresh_results = [r for r in ok_results if not r.cache_hit]
            if fresh_results:
                # One conformance record per target: the mean Eq. 7/8
                # prediction at each field's derived bound vs the mean
                # achieved PSNR across the target's fields.
                from repro.core.fixed_psnr import estimate_psnr_from_bound
                from repro.telemetry.drift import record_conformance

                by_target = {}
                for r in fresh_results:
                    by_target.setdefault(float(r.target_psnr), []).append(r)
                extra["conformance"] = [
                    record_conformance(
                        args.dataset,
                        "sz",
                        tgt,
                        float(np.mean([
                            estimate_psnr_from_bound(eb_rel=r.eb_rel)
                            for r in grp
                        ])),
                        float(np.mean([r.actual_psnr for r in grp])),
                        n_fields=len(grp),
                    )
                    for tgt, grp in sorted(by_target.items())
                ]
            if retry is not None:
                from repro.telemetry.registry import metrics as _metrics

                def _ctr(name):
                    m = _metrics().get(name)
                    return 0 if m is None else m.value

                extra["resilience"] = {
                    "max_retries": retry.max_retries,
                    "task_timeout": retry.task_timeout,
                    "failed_fields": [
                        {"field": r.field, "target": r.target_psnr,
                         "code": r.error_code, "attempts": r.attempts}
                        for r in failed
                    ],
                    "retries": _ctr("resilience.retries_total"),
                    "timeouts": _ctr("resilience.task_timeouts_total"),
                }
            _append_ledger(
                args,
                entry_from_trace(
                    "sweep",
                    tr,
                    dataset=args.dataset,
                    field="*",
                    codec="sz",
                    achieved_psnr=(
                        float(np.mean([r.actual_psnr for r in ok_results]))
                        if ok_results
                        else None
                    ),
                    ratio=(
                        float(
                            np.mean([r.compression_ratio for r in ok_results])
                        )
                        if ok_results
                        else None
                    ),
                    extra=extra,
                ),
            )
    return _render_sweep_output(args, results, tr)


def _cmd_archive(args) -> int:
    from repro.core.fixed_psnr import FixedPSNRCompressor
    from repro.datasets.registry import get_dataset
    from repro.errors import ParameterError
    from repro.io.archive import Archive

    ds = get_dataset(args.dataset)
    names = args.fields if args.fields else ds.field_names
    unknown = set(names) - set(ds.field_names)
    if unknown:
        raise ParameterError(f"unknown fields: {sorted(unknown)}")
    comp = FixedPSNRCompressor(args.psnr)
    arc = Archive.build(((n, ds.field(n)) for n in names), comp)
    blob = arc.to_bytes()
    with open(args.output, "wb") as fh:
        fh.write(blob)
    raw = sum(ds.field(n).nbytes for n in names)
    print(
        f"{args.output}: {len(names)} fields, {raw} -> {len(blob)} bytes "
        f"(CR {raw / len(blob):.2f}) at {args.psnr:.1f} dB"
    )
    return 0


def _cmd_extract(args) -> int:
    from repro.errors import ParameterError
    from repro.io.archive import Archive

    with open(args.input, "rb") as fh:
        arc = Archive(fh.read())
    if args.field is None:
        for name in arc.names:
            print(name)
        return 0
    if args.output is None:
        raise ParameterError("-o/--output is required when extracting a field")
    data = arc.load(args.field)
    np.save(args.output, data)
    print(f"{args.output}: shape {data.shape}, dtype {data.dtype}")
    return 0


def _cmd_table2(args) -> int:
    from repro.parallel.executor import sweep_dataset
    from repro.report import (
        render_csv,
        render_markdown,
        render_text,
        summarize_by_target,
    )

    results = []
    for dataset in ("NYX", "ATM", "Hurricane"):
        results.extend(
            sweep_dataset(dataset, targets=args.targets, n_workers=args.workers)
        )
    summaries = summarize_by_target(results)
    print(render_text(summaries, title="Table II -- fixed-PSNR accuracy"))
    if args.report:
        renderer = render_markdown if args.report.endswith(".md") else render_csv
        with open(args.report, "w") as fh:
            fh.write(renderer(summaries))
        print(f"\nreport written to {args.report}")
    return 0


def _cmd_gen(args) -> int:
    from repro.datasets.registry import get_dataset

    ds = get_dataset(args.dataset, scale=args.scale)
    data = ds.field(args.field)
    np.save(args.output, data)
    print(
        f"{args.output}: {args.dataset}/{args.field}, shape {data.shape}, "
        f"dtype {data.dtype}"
    )
    return 0


def _cmd_verify(args) -> int:
    from repro.metrics.distortion import distortion_report
    from repro.sz.compressor import decompress

    with open(args.input, "rb") as fh:
        blob = fh.read()
    if args.salvage:
        return _verify_salvage(blob)
    # Container.from_bytes CRC-checks every stream; decompressing
    # exercises the full pipeline.
    recon = decompress(blob)
    print(f"{args.input}: OK (shape {recon.shape}, dtype {recon.dtype})")
    if args.original:
        original = np.load(args.original)
        if original.shape != recon.shape:
            print("error: original shape mismatch", file=sys.stderr)
            return 2
        rep = distortion_report(original, recon)
        print(
            f"vs {args.original}: PSNR {rep.psnr:.2f} dB, "
            f"max|err| {rep.max_abs_error:.3e}, NRMSE {rep.nrmse:.3e}"
        )
    return 0


def _verify_salvage(blob: bytes) -> int:
    """Best-effort decode for ``fpzc verify --salvage``: print the
    salvage report for a container or archive (sniffed by magic).
    Exit 0 when everything was recovered, 1 on partial loss, 2 when
    the identity header is unusable."""
    from repro.errors import FormatError
    from repro.report import render_salvage
    from repro.resilience.salvage import salvage_archive, salvage_container

    try:
        if blob[:4] == b"FPZA":
            _fields, report = salvage_archive(blob)
        else:
            _container, report = salvage_container(blob)
    except FormatError as exc:
        code = f" [{exc.code}]" if exc.code else ""
        print(f"unrecoverable:{code} {exc}", file=sys.stderr)
        return 2
    print(render_salvage(report))
    return 0 if report.ok else 1


def _cmd_bench(args) -> int:
    from repro.telemetry.bench import check_baselines, write_baselines

    if not args.check:
        paths = write_baselines(args.dir)
        for p in paths:
            print(f"baseline written to {p}")
        return 0
    failures, warnings = check_baselines(
        args.dir, time_factor=args.time_factor
    )
    for w in warnings:
        print(f"warning: {w}")
    if failures:
        print(f"bench check FAILED ({len(failures)} deterministic drifts):")
        for f in failures:
            print(f"  {f}")
        return 1
    print("bench check passed: deterministic baselines match")
    return 0


def _cmd_ledger(args) -> int:
    from repro.report import render_ledger_markdown
    from repro.telemetry.ledger import ledger_path, read_entries

    entries, skipped = read_entries(args.ledger)
    if args.json:
        for e in entries[-args.limit:]:
            print(json.dumps(e.as_dict(), sort_keys=True))
    else:
        print(f"ledger: {ledger_path(args.ledger)} ({len(entries)} entries)")
        print(render_ledger_markdown(entries, limit=args.limit))
    if skipped:
        print(f"warning: skipped {skipped} unparseable lines", file=sys.stderr)
    return 0


def _cmd_drift(args) -> int:
    from repro.telemetry.drift import drift_report
    from repro.telemetry.ledger import read_entries

    entries, skipped = read_entries(args.ledger)
    report = drift_report(
        entries,
        ewma_lambda=args.ewma_lambda,
        sigma_limit=args.sigma_limit,
        min_history=args.min_history,
    )
    if args.json:
        print(json.dumps(report.as_dict(), indent=2, sort_keys=True))
    else:
        print(report.render())
    if skipped:
        print(f"warning: skipped {skipped} unparseable lines", file=sys.stderr)
    return report.exit_code if args.check else 0


def _cmd_report(args) -> int:
    import datetime as _dt

    from repro.report import render_dashboard
    from repro.report.dashboard import load_bench_dir
    from repro.telemetry.ledger import read_entries

    entries, skipped = read_entries(args.ledger)
    def _load_json(path: str):
        try:
            with open(path, "r", encoding="utf-8") as fh:
                return json.load(fh)
        except json.JSONDecodeError as exc:
            from repro.errors import ParameterError

            raise ParameterError(f"{path} is not valid JSON: {exc}")

    snapshot = _load_json(args.metrics) if args.metrics else None
    trace_doc = _load_json(args.trace) if args.trace else None
    text = render_dashboard(
        entries=entries,
        snapshot=snapshot,
        bench=load_bench_dir(args.bench_dir),
        trace=trace_doc,
        title=args.title,
        limit=args.limit,
        generated=_dt.datetime.now(_dt.timezone.utc).isoformat(
            timespec="seconds"
        ),
    )
    with open(args.html, "w", encoding="utf-8") as fh:
        fh.write(text)
    print(f"dashboard written to {args.html}")
    if skipped:
        print(f"warning: skipped {skipped} unparseable lines", file=sys.stderr)
    return 0


def _cmd_serve(args) -> int:
    import asyncio

    from repro.service import ServiceConfig, run_service

    cache_dir = None
    if args.cache:
        from repro.cache import cache_path

        cache_dir = str(cache_path(args.cache_dir))
    config = ServiceConfig(
        host=args.host,
        port=args.port,
        n_workers=args.workers,
        kind=args.pool,
        transport=_transport(args),
        queue_limit=args.queue_limit,
        batch_window_s=args.batch_window,
        batch_max=args.batch_max,
        grace_s=args.grace,
        max_retries=args.max_retries,
        ledger=args.ledger,
        no_ledger=args.no_ledger,
        allow_faults=args.allow_faults,
        trace_perfetto=args.trace_perfetto,
        cache_dir=cache_dir,
        cache_max_bytes=args.cache_max_bytes if args.cache else None,
    )
    print(
        f"fpzc service on http://{config.host}:{config.port} "
        f"({config.n_workers} {config.kind} workers, "
        f"queue limit {config.queue_limit})",
        flush=True,
    )
    return asyncio.run(run_service(config))


def _cmd_cluster(args) -> int:
    if args.cluster_command == "serve":
        from repro.cluster import ClusterConfig, run_coordinator

        overrides = {
            k: v
            for k, v in {
                "host": args.host,
                "port": args.port,
                "vnodes": args.vnodes,
                "probe_interval_s": args.probe_interval,
                "dead_after": args.dead_after,
                "max_retries": args.max_retries,
                "retry_seed": args.retry_seed,
                "trace_perfetto": args.trace_perfetto,
            }.items()
            if v is not None
        }
        if args.topology:
            config = ClusterConfig.from_topology(args.topology, **overrides)
        elif args.peers:
            config = ClusterConfig(peers=tuple(args.peers), **overrides)
        else:
            from repro.errors import ParameterError

            raise ParameterError(
                "cluster serve needs --topology FILE or --peers URL..."
            )
        # run_coordinator prints its own banner with the bound port
        # (which may differ from config.port when it is 0).
        return run_coordinator(config)
    if args.cluster_command == "status":
        import json as _json

        from repro.service.client import ServiceClient

        client = ServiceClient(args.url or "http://127.0.0.1:8076")
        nodes = client._json("GET", "/cluster/nodes", None)
        ring = client._json("GET", "/cluster/ring", None)
        if args.json:
            print(_json.dumps({"nodes": nodes, "ring": ring}, indent=2,
                              sort_keys=True))
            return 0
        print(f"{'node':<32} {'status':<9} {'owns':>7} {'failures':>9}")
        ownership = ring.get("ownership", {})
        for url, state in sorted(nodes.get("states", {}).items()):
            frac = ownership.get(url, 0.0)
            print(
                f"{url:<32} {state.get('status', '?'):<9} "
                f"{frac:>6.1%} {state.get('consecutive_failures', 0):>9}"
            )
        return 0
    raise AssertionError(f"unknown cluster command {args.cluster_command!r}")


def _submit_payload(args):
    if args.psnr is not None:
        mode, target = "psnr", args.psnr
    elif args.ratio is not None:
        mode, target = "ratio", args.ratio
    else:
        mode, target = "nrmse", args.nrmse
    payload = {
        "dataset": args.dataset,
        "field": args.field,
        "mode": mode,
        "target": target,
        "codec": args.codec,
        "priority": args.priority,
    }
    if args.refine:
        payload["refine"] = args.refine
    if args.scale is not None:
        payload["scale"] = args.scale
    if args.deadline is not None:
        payload["deadline_s"] = args.deadline
    return payload


def _cmd_submit(args) -> int:
    from repro.service.client import ServiceClient

    client = ServiceClient(args.url)
    job_id = client.submit("compress", _submit_payload(args))
    if args.no_wait:
        print(job_id)
        return 0
    doc = client.wait(job_id, timeout=args.timeout)
    state = doc.get("state")
    result = doc.get("result") or {}
    if state == "done":
        achieved = result.get("achieved_psnr")
        line = f"{job_id}: done"
        if achieved is not None:
            line += f"  achieved PSNR {achieved:.2f} dB"
        if result.get("ratio"):
            line += f"  ratio {result['ratio']:.2f}"
        print(line)
        if args.out:
            blob = client.fetch_blob(job_id)
            with open(args.out, "wb") as fh:
                fh.write(blob)
            print(f"wrote {len(blob)} bytes to {args.out}")
        return 0
    print(
        f"{job_id}: {state}"
        + (f" ({doc['error']})" if doc.get("error") else ""),
        file=sys.stderr,
    )
    return 1


def _cmd_status(args) -> int:
    import json as _json

    from repro.service.client import ServiceClient

    doc = ServiceClient(args.url).status(args.job)
    print(_json.dumps(doc, indent=2, sort_keys=True))
    return 0 if doc.get("state") in ("queued", "running", "done") else 1


def _cmd_fetch(args) -> int:
    from repro.service.client import ServiceClient

    blob = ServiceClient(args.url).fetch_blob(args.job)
    with open(args.out, "wb") as fh:
        fh.write(blob)
    print(f"wrote {len(blob)} bytes to {args.out}")
    return 0


def _cmd_cancel(args) -> int:
    from repro.service.client import ServiceClient

    doc = ServiceClient(args.url).cancel(args.job)
    print(f"{args.job}: {doc.get('state')}")
    return 0


_COMMANDS = {
    "compress": _cmd_compress,
    "autotune": _cmd_autotune,
    "decompress": _cmd_decompress,
    "info": _cmd_info,
    "table1": _cmd_table1,
    "table2": _cmd_table2,
    "sweep": _cmd_sweep,
    "archive": _cmd_archive,
    "extract": _cmd_extract,
    "gen": _cmd_gen,
    "verify": _cmd_verify,
    "bench": _cmd_bench,
    "ledger": _cmd_ledger,
    "drift": _cmd_drift,
    "report": _cmd_report,
    "serve": _cmd_serve,
    "cluster": _cmd_cluster,
    "submit": _cmd_submit,
    "status": _cmd_status,
    "fetch": _cmd_fetch,
    "cancel": _cmd_cancel,
}


def main(argv: Optional[Sequence[str]] = None) -> int:
    """CLI entry point; returns a process exit code."""
    parser = build_parser()
    args = parser.parse_args(argv)
    try:
        return _COMMANDS[args.command](args)
    except ReproError as exc:
        print(f"error: {exc}", file=sys.stderr)
        return 2
    except OSError as exc:
        print(f"error: {exc}", file=sys.stderr)
        return 2


if __name__ == "__main__":
    sys.exit(main())
