"""Text-mode plotting: bar charts and scatter panels as strings.

The reproduction environment has no matplotlib, so figures render as
text -- the benchmark suite draws the paper's Figure 1/Figure 2 panels
with these helpers and the CLI reuses them.  They are deliberately
dependency-free and deterministic (stable output for golden files).
"""

from __future__ import annotations

from typing import Optional, Sequence

__all__ = ["bars", "scatter"]


def bars(
    values: Sequence[float],
    labels: Optional[Sequence[str]] = None,
    width: int = 60,
    title: str = "",
) -> str:
    """Horizontal bar chart; one row per value."""
    values = list(values)
    if not values:
        return title
    peak = max(values) or 1.0
    label_w = max(len(str(l)) for l in labels) if labels else 0
    lines = [title] if title else []
    for i, v in enumerate(values):
        n = int(round(width * v / peak))
        label = f"{labels[i]:>{label_w}} " if labels else ""
        lines.append(f"{label}|{'#' * n}{' ' * (width - n)}| {v:.2f}")
    return "\n".join(lines)


def scatter(
    ys: Sequence[float],
    width: int = 79,
    height: int = 16,
    hline: Optional[float] = None,
    title: str = "",
    ylabel_fmt: str = "{:7.1f}",
) -> str:
    """Scatter of a series (x = index) with an optional horizontal
    reference line (Figure 2's red dashed target)."""
    ys = [float(y) for y in ys]
    if not ys:
        return title
    lo = min(ys + ([hline] if hline is not None else []))
    hi = max(ys + ([hline] if hline is not None else []))
    if hi == lo:
        hi = lo + 1.0
    pad = 0.08 * (hi - lo)
    lo, hi = lo - pad, hi + pad

    plot_w = width - 9  # leave room for the y-axis labels
    n = len(ys)
    grid = [[" "] * plot_w for _ in range(height)]

    def row_of(v: float) -> int:
        frac = (v - lo) / (hi - lo)
        return min(height - 1, max(0, int(round((1.0 - frac) * (height - 1)))))

    if hline is not None:
        r = row_of(hline)
        for c in range(plot_w):
            grid[r][c] = "-"
    for i, y in enumerate(ys):
        c = int(round(i * (plot_w - 1) / max(1, n - 1)))
        grid[row_of(y)][c] = "*"

    lines = [title] if title else []
    for r in range(height):
        v = hi - (hi - lo) * r / (height - 1)
        axis = ylabel_fmt.format(v) if r % 3 == 0 else " " * 7
        lines.append(f"{axis} |{''.join(grid[r])}")
    lines.append(" " * 8 + "+" + "-" * plot_w)
    lines.append(" " * 9 + f"fields 1..{n}" + (
        f"   (--- = target {hline:g} dB)" if hline is not None else ""
    ))
    return "\n".join(lines)
