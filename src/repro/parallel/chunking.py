"""Slab-parallel compression of a single large array.

HPC fields can be far larger than a worker's comfortable working set
(the paper's NYX snapshot is 32 GB per field).  ``compress_chunked``
splits the array into slabs along axis 0, compresses each slab as an
independent SZ container (each slab gets its own lattice anchor), and
wraps them in an outer CHUNKED container.

Correctness notes:

* the absolute error bound is resolved against the **whole** array
  before splitting, so relative-bound and fixed-PSNR semantics match
  the unchunked compressor exactly;
* the per-point error bound is preserved trivially (each slab obeys
  it);
* the overall PSNR estimate is unchanged: every slab quantizes with
  the same bin size ``delta``, and Eq. 6 depends only on ``delta`` and
  the global value range.
"""

from __future__ import annotations

import time
from concurrent.futures import ProcessPoolExecutor
from typing import List, Optional

import numpy as np

import repro.observe as observe
from repro.telemetry.registry import THROUGHPUT_BUCKETS, metrics as _metrics
from repro.errors import FormatError, ParameterError
from repro.io.container import CODEC_CHUNKED, Container
from repro.sz.compressor import SZCompressor

__all__ = ["compress_chunked", "decompress_chunked"]


def _compress_slab(args):
    """Compress one slab; returns ``(blob, span_records_or_None)``.

    When tracing is requested the slab runs under its own local
    :class:`repro.observe.Trace` (a worker process cannot write to the
    parent's trace), and the picklable span records travel back with
    the blob for the parent to merge.
    """
    data, eb_abs, options, traced = args
    comp = SZCompressor(error_bound=eb_abs, mode="abs", **options)
    if not traced:
        return comp.compress(data), None
    local = observe.Trace()
    with observe.use_trace(local):
        blob = comp.compress(data)
    return blob, [r.as_dict() for r in local.records]


def _decompress_slab(blob: bytes) -> np.ndarray:
    return SZCompressor.decompress(blob)


def compress_chunked(
    data,
    error_bound: float,
    mode: str = "abs",
    n_chunks: int = 4,
    n_workers: int = 0,
    **compressor_options,
) -> bytes:
    """Compress ``data`` as ``n_chunks`` independent slabs along axis 0.

    ``n_workers=0`` compresses slabs sequentially (deterministic and
    dependency-free); positive values use a process pool.
    """
    trace = observe.current_trace()
    with trace.span("chunked.compress") as root:
        arr = np.asarray(data)
        if arr.ndim == 0 or arr.size == 0:
            raise ParameterError("data must be a non-empty array")
        if n_chunks < 1:
            raise ParameterError("n_chunks must be >= 1")
        n_chunks = min(n_chunks, arr.shape[0])
        if trace.enabled:
            root.count("n_points", int(arr.size))
            root.set("n_chunks", n_chunks)
            root.set("n_workers", max(0, n_workers))
        # Resolve the bound globally so chunked == unchunked semantics.
        probe = SZCompressor(
            error_bound=error_bound, mode=mode, **compressor_options
        )
        eb_abs = probe.resolve_error_bound(arr)
        slabs = np.array_split(arr, n_chunks, axis=0)
        tasks = [
            (slab, eb_abs, compressor_options, trace.enabled) for slab in slabs
        ]
        t0 = time.perf_counter()
        if n_workers <= 0:
            results = [_compress_slab(t) for t in tasks]
        else:
            with ProcessPoolExecutor(max_workers=n_workers) as pool:
                results = list(pool.map(_compress_slab, tasks))
        elapsed = time.perf_counter() - t0
        if elapsed > 0:
            # Wall-clock-derived, hence excluded from deterministic
            # snapshots.
            _metrics().histogram(
                "parallel.chunk_throughput_mbps",
                THROUGHPUT_BUCKETS,
                deterministic=False,
            ).observe(arr.nbytes / 1e6 / elapsed)
        blobs: List[bytes] = []
        for blob, records in results:
            blobs.append(blob)
            if records:
                # Same "slab" prefix for every worker: repeated paths
                # aggregate, and the tree stays stable across worker
                # counts and scheduling.
                trace.merge(records, prefix=("slab",))
        meta = {
            "dtype": str(arr.dtype),
            "shape": list(arr.shape),
            "n_chunks": n_chunks,
            "chunk_rows": [int(s.shape[0]) for s in slabs],
        }
        streams = [(f"chunk{i}", blob) for i, blob in enumerate(blobs)]
        with trace.span("pack") as sp:
            out = Container(CODEC_CHUNKED, meta, streams).to_bytes()
            if trace.enabled:
                observe.account_container_bytes(sp, streams, len(out))
        return out


def decompress_chunked(blob: bytes, n_workers: int = 0) -> np.ndarray:
    """Decompress a CHUNKED container back into one array."""
    container = Container.from_bytes(blob)
    if container.codec != CODEC_CHUNKED:
        raise FormatError("container is not chunked")
    meta = container.meta
    try:
        n_chunks = int(meta["n_chunks"])
        shape = tuple(int(s) for s in meta["shape"])
        chunk_rows = [int(r) for r in meta["chunk_rows"]]
    except (KeyError, TypeError, ValueError) as exc:
        raise FormatError(f"bad chunked metadata: {exc}") from exc
    if len(chunk_rows) != n_chunks or sum(chunk_rows) != shape[0]:
        raise FormatError("chunk geometry inconsistent with array shape")
    blobs = [container.stream(f"chunk{i}") for i in range(n_chunks)]
    if n_workers <= 0:
        parts = [_decompress_slab(b) for b in blobs]
    else:
        with ProcessPoolExecutor(max_workers=n_workers) as pool:
            parts = list(pool.map(_decompress_slab, blobs))
    for part, rows in zip(parts, chunk_rows):
        if part.shape[0] != rows:
            raise FormatError("slab shape mismatch")
    return np.concatenate(parts, axis=0)
