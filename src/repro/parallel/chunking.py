"""Slab-parallel compression of a single large array.

HPC fields can be far larger than a worker's comfortable working set
(the paper's NYX snapshot is 32 GB per field).  ``compress_chunked``
splits the array into slabs along axis 0, compresses each slab as an
independent SZ container (each slab gets its own lattice anchor), and
wraps them in an outer CHUNKED container.

Correctness notes:

* the absolute error bound is resolved against the **whole** array
  before splitting, so relative-bound and fixed-PSNR semantics match
  the unchunked compressor exactly;
* the per-point error bound is preserved trivially (each slab obeys
  it);
* the overall PSNR estimate is unchanged: every slab quantizes with
  the same bin size ``delta``, and Eq. 6 depends only on ``delta`` and
  the global value range.
"""

from __future__ import annotations

import time
from concurrent.futures import ProcessPoolExecutor
from typing import List, Optional

import numpy as np

import repro.observe as observe
from repro.telemetry.registry import THROUGHPUT_BUCKETS, metrics as _metrics
from repro.errors import FormatError, ParameterError
from repro.io.container import CODEC_CHUNKED, Container
from repro.sz.compressor import SZCompressor

__all__ = ["compress_chunked", "decompress_chunked"]


def _compress_slab(args):
    """Compress one slab; returns ``(blob_payload, records_or_None)``.

    The slab arrives as any :mod:`repro.parallel.shm` array payload --
    a plain ndarray on the pickle path, a zero-copy
    :class:`~repro.parallel.shm.ShmSliceRef` on the shm path -- and
    the compressed stream goes back the same way: published into a
    segment under the caller's arena prefix when large enough,
    returned as plain bytes otherwise.

    When tracing is requested the slab runs under its own local
    :class:`repro.observe.Trace` (a worker process cannot write to the
    parent's trace), and the picklable span records travel back with
    the blob for the parent to merge.
    """
    from repro.parallel.shm import open_payload, publish_bytes

    payload, eb_abs, options, traced, prefix = args
    comp = SZCompressor(error_bound=eb_abs, mode="abs", **options)
    with open_payload(payload) as data:
        if not traced:
            return publish_bytes(prefix, comp.compress(data)), None
        local = observe.Trace()
        with observe.use_trace(local):
            blob = comp.compress(data)
    records = [r.as_dict() for r in local.records]
    return publish_bytes(prefix, blob), records


def _decompress_slab(args):
    """Decompress one chunk blob (bytes or a shared uint8 payload) and
    send the reconstructed slab back as an array payload: published to
    a segment under the arena prefix when the plane is on, a plain
    (pickled) ndarray otherwise."""
    from repro.parallel.shm import open_payload, publish_array

    payload, prefix = args
    if isinstance(payload, (bytes, bytearray)):
        part = SZCompressor.decompress(bytes(payload))
    else:
        with open_payload(payload) as buf:
            # The codec's parser wants a bytes object; this one copy
            # replaces the two the pickle channel used to make.
            part = SZCompressor.decompress(buf.tobytes())
    return publish_array(prefix, part)


def _chunk_pool(executor, n_workers: int):
    """Resolve the (pool, effective worker count, shm eligibility) a
    chunked call should use.  With an :class:`~repro.parallel.executor.
    Executor` the pool is the executor's long-lived one and shm is only
    eligible for process kinds; otherwise callers spin up (and tear
    down) their own ``ProcessPoolExecutor``.  The arena stays per-call
    either way -- chunked payloads are one-shot, and adopting them into
    a persistent arena would accumulate segments for its lifetime."""
    if executor is None:
        return None, n_workers, True
    if executor.inline:
        return None, 0, True
    return executor.pool, executor.n_workers, executor.kind == "process"


def compress_chunked(
    data,
    error_bound: float,
    mode: str = "abs",
    n_chunks: int = 4,
    n_workers: int = 0,
    transport: str = "auto",
    executor=None,
    **compressor_options,
) -> bytes:
    """Compress ``data`` as ``n_chunks`` independent slabs along axis 0.

    ``n_workers=0`` compresses slabs sequentially (deterministic and
    dependency-free); positive values use a process pool.  With
    ``transport="auto"``/``"shm"`` and a pool, the whole array is
    placed in **one** shared segment and each worker reads its slab
    through a zero-copy :class:`~repro.parallel.shm.ShmSliceRef`;
    compressed streams travel back through segments too.  The output
    container is bit-identical across transports and worker counts.

    ``executor`` runs the slabs on a long-lived
    :class:`repro.parallel.executor.Executor` pool (``n_workers`` is
    then taken from it); the shm arena remains per-call.
    """
    from repro.parallel.shm import ShmArena, resolve_transport, take_bytes

    trace = observe.current_trace()
    with trace.span("chunked.compress") as root:
        arr = np.asarray(data)
        if arr.ndim == 0 or arr.size == 0:
            raise ParameterError("data must be a non-empty array")
        if n_chunks < 1:
            raise ParameterError("n_chunks must be >= 1")
        n_chunks = min(n_chunks, arr.shape[0])
        ext_pool, n_workers, shm_ok = _chunk_pool(executor, n_workers)
        if trace.enabled:
            root.count("n_points", int(arr.size))
            root.set("n_chunks", n_chunks)
            root.set("n_workers", max(0, n_workers))
        # Resolve the bound globally so chunked == unchunked semantics.
        probe = SZCompressor(
            error_bound=error_bound, mode=mode, **compressor_options
        )
        eb_abs = probe.resolve_error_bound(arr)
        slabs = np.array_split(arr, n_chunks, axis=0)
        chunk_rows = [int(s.shape[0]) for s in slabs]
        use_shm = shm_ok and resolve_transport(transport, n_workers)
        arena: Optional[ShmArena] = None
        prefix = None
        try:
            if use_shm:
                arena = ShmArena()
                base = arena.share(np.ascontiguousarray(arr))
                payloads = arena.slice_refs(base, chunk_rows)
                prefix = arena.prefix
            else:
                payloads = slabs
            tasks = [
                (payload, eb_abs, compressor_options, trace.enabled, prefix)
                for payload in payloads
            ]
            t0 = time.perf_counter()
            if n_workers <= 0:
                results = [_compress_slab(t) for t in tasks]
            elif ext_pool is not None:
                futures = [ext_pool.submit(_compress_slab, t) for t in tasks]
                results = [f.result() for f in futures]
            else:
                with ProcessPoolExecutor(max_workers=n_workers) as pool:
                    results = list(pool.map(_compress_slab, tasks))
            elapsed = time.perf_counter() - t0
            if elapsed > 0:
                # Wall-clock-derived, hence excluded from deterministic
                # snapshots.
                _metrics().histogram(
                    "parallel.chunk_throughput_mbps",
                    THROUGHPUT_BUCKETS,
                    deterministic=False,
                ).observe(arr.nbytes / 1e6 / elapsed)
            blobs: List[bytes] = []
            for blob_payload, records in results:
                blobs.append(take_bytes(blob_payload))
                if records:
                    # Same "slab" prefix for every worker: repeated paths
                    # aggregate, and the tree stays stable across worker
                    # counts and scheduling.
                    trace.merge(records, prefix=("slab",))
        finally:
            if arena is not None:
                arena.close()
        meta = {
            "dtype": str(arr.dtype),
            "shape": list(arr.shape),
            "n_chunks": n_chunks,
            "chunk_rows": chunk_rows,
        }
        streams = [(f"chunk{i}", blob) for i, blob in enumerate(blobs)]
        with trace.span("pack") as sp:
            out = Container(CODEC_CHUNKED, meta, streams).to_bytes()
            if trace.enabled:
                observe.account_container_bytes(sp, streams, len(out))
        return out


def decompress_chunked(
    blob: bytes, n_workers: int = 0, transport: str = "auto", executor=None
) -> np.ndarray:
    """Decompress a CHUNKED container back into one array.

    With a pool and ``transport="auto"``/``"shm"``, chunk streams go
    out and reconstructed slabs come back through shared segments (the
    parent adopts each slab and concatenates the read-only views).
    ``executor`` reuses a long-lived pool, exactly as in
    :func:`compress_chunked`.
    """
    from repro.parallel.shm import ShmArena, resolve_transport

    container = Container.from_bytes(blob)
    if container.codec != CODEC_CHUNKED:
        raise FormatError("container is not chunked")
    meta = container.meta
    try:
        n_chunks = int(meta["n_chunks"])
        shape = tuple(int(s) for s in meta["shape"])
        chunk_rows = [int(r) for r in meta["chunk_rows"]]
    except (KeyError, TypeError, ValueError) as exc:
        raise FormatError(f"bad chunked metadata: {exc}") from exc
    if len(chunk_rows) != n_chunks or sum(chunk_rows) != shape[0]:
        raise FormatError("chunk geometry inconsistent with array shape")
    blobs = [container.stream(f"chunk{i}") for i in range(n_chunks)]
    ext_pool, n_workers, shm_ok = _chunk_pool(executor, n_workers)
    use_shm = shm_ok and resolve_transport(transport, n_workers)
    arena: Optional[ShmArena] = None
    prefix = None
    try:
        if use_shm:
            arena = ShmArena()
            prefix = arena.prefix
            payloads = [
                arena.share(np.frombuffer(b, dtype=np.uint8)) for b in blobs
            ]
        else:
            payloads = blobs
        tasks = [(payload, prefix) for payload in payloads]
        if n_workers <= 0:
            raw = [_decompress_slab(t) for t in tasks]
        elif ext_pool is not None:
            futures = [ext_pool.submit(_decompress_slab, t) for t in tasks]
            raw = [f.result() for f in futures]
        else:
            with ProcessPoolExecutor(max_workers=n_workers) as pool:
                raw = list(pool.map(_decompress_slab, tasks))
        parts = (
            [arena.adopt_array(p) for p in raw] if arena is not None else raw
        )
        for part, rows in zip(parts, chunk_rows):
            if part.shape[0] != rows:
                raise FormatError("slab shape mismatch")
        # np.concatenate copies, so the result owns its memory and the
        # adopted segments can be unlinked in the finally below.
        return np.concatenate(parts, axis=0)
    finally:
        if arena is not None:
            arena.close()
