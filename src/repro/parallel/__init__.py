"""Process-based parallel execution for field sweeps and large arrays.

The paper's motivating scenario is compressing 79+ fields per snapshot
(CESM) on cluster nodes; this package provides the two parallel
decompositions that workload needs:

* :mod:`repro.parallel.executor` -- embarrassingly parallel *per-field*
  sweeps (one field x one target per task), used by the Table II /
  Figure 2 benchmarks;
* :mod:`repro.parallel.chunking` -- *intra-field* slab decomposition so
  a single huge array compresses in parallel and streams;
* :mod:`repro.parallel.comm` -- small scatter/gather/allreduce helpers
  in the style of mpi4py collectives, implemented over
  ``concurrent.futures`` (mpi4py itself is not a dependency);
* :mod:`repro.parallel.shm` -- the zero-copy shared-memory data plane
  the other three move array payloads over (with graceful fallback to
  the pickle channel).
"""

from repro.parallel.executor import (
    Executor,
    FieldResult,
    run_field_task,
    sweep_dataset,
)
from repro.parallel.chunking import compress_chunked, decompress_chunked
from repro.parallel.comm import scatter_gather, allreduce
from repro.parallel.shm import (
    ShmArena,
    ShmArrayRef,
    open_payload,
    resolve_transport,
    shm_available,
)

__all__ = [
    "Executor",
    "FieldResult",
    "sweep_dataset",
    "run_field_task",
    "compress_chunked",
    "decompress_chunked",
    "scatter_gather",
    "allreduce",
    "ShmArena",
    "ShmArrayRef",
    "open_payload",
    "resolve_transport",
    "shm_available",
]
