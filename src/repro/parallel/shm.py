"""Zero-copy shared-memory data plane for parallel compression.

The problem this module solves: every parallel entry point used to ship
its array payloads through the ``ProcessPoolExecutor`` pickle channel,
which serializes the ndarray in the parent, streams the bytes through a
pipe, and deserializes them in the worker -- three full copies per
payload, twice per round trip.  FRaZ and SZ3 both observe that once the
search/codec layers are fixed, end-to-end throughput is dominated by
exactly this data-movement plumbing.

The data plane replaces the pickle channel with POSIX shared memory
(:mod:`multiprocessing.shared_memory`):

* :class:`ShmArena` owns parent-created segments with a refcounted
  lifecycle, an unlink-everything :meth:`ShmArena.close`, a
  ``weakref.finalize`` safety net, and an orphan sweep keyed on the
  arena's unique name prefix (so segments published by a worker that
  crashed or hung are still reclaimed).
* :class:`ShmArrayRef` / :class:`ShmSliceRef` / :class:`ShmBytesRef`
  are lightweight picklable *references*: a few dozen bytes cross the
  pickle channel instead of the payload.  Workers attach with
  :func:`open_payload` and read the data in place -- zero copies.
* Workers send large *results* back the same way:
  :func:`publish_array` / :func:`publish_bytes` write into a fresh
  segment named under the arena prefix and return a ref; the parent
  drains it with :func:`take_bytes` or :meth:`ShmArena.adopt_array`.
* **Graceful fallback**: when shared memory is unavailable (platform,
  permissions, full ``/dev/shm``) or a payload is too small to be
  worth a segment (< :data:`MIN_SHARE_BYTES`) or trips the capacity
  guard (> :data:`MAX_SHARE_BYTES` or more than half the free space,
  the ">2 GiB on a constrained tmpfs" case), sharing degrades to an
  :class:`InlineArrayRef`/raw payload that travels by pickle.  Callers
  never branch: :func:`open_payload` accepts every payload kind.

Correctness contract: a payload read through the plane is **the same
bytes** as the pickled original, and shared inputs are mapped
read-only so no worker can corrupt a segment other tasks are reading.
``tests/test_parallel_shm.py`` holds the differential wall: every
parallel path must produce bit-identical output through shm, pickle
and serial execution.

Telemetry (parent-side; see docs/PERFORMANCE.md and
docs/OBSERVABILITY.md):

* ``shm.bytes_shared_total`` -- payload bytes placed in segments,
* ``shm.bytes_moved_total`` -- payload bytes that crossed a process
  boundary by copy (pickle fallback + result drains),
* ``shm.segments_created_total`` / ``shm.segments_released_total``,
* ``shm.fallbacks_total`` -- shares that degraded to pickle,
* ``shm.orphans_swept_total`` (non-deterministic: depends on fault
  timing) -- leftover segments reclaimed by the prefix sweep,
* ``transport.share`` / ``transport.attach`` spans when a trace is
  active.
"""

from __future__ import annotations

import contextlib
import itertools
import os
import secrets
import sys
import weakref
from dataclasses import dataclass
from typing import Dict, Iterator, List, Optional, Tuple, Union

import numpy as np

import repro.observe as observe
from repro.errors import ErrorCode, ParameterError, TransportError
from repro.telemetry.registry import metrics as _metrics

__all__ = [
    "TRANSPORTS",
    "MIN_SHARE_BYTES",
    "MAX_SHARE_BYTES",
    "shm_available",
    "resolve_transport",
    "ShmArena",
    "ShmArrayRef",
    "ShmSliceRef",
    "ShmBytesRef",
    "InlineArrayRef",
    "open_payload",
    "publish_array",
    "publish_bytes",
    "take_bytes",
    "shm_dir_entries",
]

#: Recognized transport selectors for the parallel entry points.
TRANSPORTS = ("auto", "shm", "pickle")

#: Payloads below this many bytes ship by pickle: a segment costs two
#: syscalls plus resource-tracker traffic, which a small memcpy beats.
MIN_SHARE_BYTES = 1 << 15

#: Hard upper bound on a single shared payload; ``None`` disables it.
#: The capacity guard below is the real limit -- this cap exists so a
#: 32-bit index or a constrained tmpfs can be simulated in tests.
MAX_SHARE_BYTES: Optional[int] = None

#: Never fill shared memory past this fraction of its free space.
_CAPACITY_FRACTION = 0.5

_SHM_DIR = "/dev/shm"

#: Attached handles whose close() hit BufferError (a view outlived the
#: context); closed lazily so the failure degrades to a deferred close
#: instead of an exception in library code.
_DEFERRED_CLOSE: List[object] = []

_PUBLISH_COUNTER = itertools.count()

_AVAILABLE: Optional[bool] = None


def _shared_memory():
    from multiprocessing import shared_memory

    return shared_memory


def shm_available() -> bool:
    """True when POSIX shared memory demonstrably works here.

    Probed once per process by creating and unlinking a tiny segment;
    any failure (missing module, read-only ``/dev/shm``, seccomp)
    makes every transport decision fall back to pickle.
    """
    global _AVAILABLE
    if _AVAILABLE is None:
        try:
            shm = _shared_memory().SharedMemory(create=True, size=16)
            shm.close()
            shm.unlink()
            _AVAILABLE = True
        except Exception:  # noqa: BLE001 -- any failure means "no shm"
            _AVAILABLE = False
    return _AVAILABLE


def resolve_transport(transport: str, n_workers: int) -> bool:
    """Decide whether a parallel entry point should use the shm plane.

    ``"pickle"`` never does; ``"auto"`` and ``"shm"`` do whenever there
    are worker processes and shared memory is available.  ``"shm"``
    with no shm support degrades gracefully (counted in
    ``shm.fallbacks_total``) rather than failing the run.
    """
    if transport not in TRANSPORTS:
        raise ParameterError(
            f"unknown transport {transport!r}; expected one of {TRANSPORTS}"
        )
    if transport == "pickle" or n_workers <= 0:
        return False
    if not shm_available():
        if transport == "shm":
            _metrics().counter(
                "shm.fallbacks_total",
                help="payload shares that degraded to pickle transport",
            ).inc()
        return False
    return True


def _free_shm_bytes() -> Optional[int]:
    try:
        st = os.statvfs(_SHM_DIR)
    except (OSError, AttributeError):
        return None
    return st.f_bavail * st.f_frsize


def _share_allowed(nbytes: int) -> bool:
    """Size/capacity guard for one payload (the fallback gate)."""
    if nbytes < MIN_SHARE_BYTES:
        return False
    if MAX_SHARE_BYTES is not None and nbytes > MAX_SHARE_BYTES:
        return False
    if nbytes > sys.maxsize // 4:
        # Index-safety guard: never build a buffer a platform ssize_t
        # cannot address comfortably.
        return False
    free = _free_shm_bytes()
    if free is not None and nbytes > free * _CAPACITY_FRACTION:
        return False
    return True


def _count_fallback(nbytes: int) -> None:
    reg = _metrics()
    reg.counter(
        "shm.fallbacks_total",
        help="payload shares that degraded to pickle transport",
    ).inc()
    reg.counter(
        "shm.bytes_moved_total",
        help="payload bytes copied across a process boundary "
        "(pickle fallback + result drains)",
    ).inc(int(nbytes))


def _close_quietly(seg) -> None:
    """Close an attached handle; a still-exported buffer defers the
    close to interpreter exit instead of raising in library code."""
    try:
        seg.close()
    except BufferError:
        _DEFERRED_CLOSE.append(seg)


def _unlink_quietly(seg) -> None:
    try:
        seg.unlink()
    except (FileNotFoundError, OSError):
        pass


def shm_dir_entries(prefix: str = "") -> List[str]:
    """Names currently present in the shared-memory directory (test
    and audit helper); optionally filtered by ``prefix``."""
    try:
        names = os.listdir(_SHM_DIR)
    except OSError:
        return []
    return sorted(n for n in names if n.startswith(prefix))


def _sweep_prefix(prefix: str) -> int:
    """Unlink every leftover segment under ``prefix``.  Returns how
    many orphans were reclaimed.  Safe to call at any time: segments
    still attached elsewhere stay mapped until their last close."""
    swept = 0
    for name in shm_dir_entries(prefix):
        try:
            os.unlink(os.path.join(_SHM_DIR, name))
            swept += 1
        except OSError:
            continue
        try:
            from multiprocessing import resource_tracker

            resource_tracker.unregister("/" + name, "shared_memory")
        except Exception:  # noqa: BLE001 -- tracker hygiene is best-effort
            pass
    return swept


def _finalize_arena(prefix: str, segments: Dict[str, list]) -> None:
    """The ``weakref.finalize`` safety net: runs if an arena is
    garbage-collected or the interpreter exits without ``close()``."""
    for name in list(segments):
        seg, _refs = segments.pop(name)
        _close_quietly(seg)
        _unlink_quietly(seg)
    _sweep_prefix(prefix)


# ---------------------------------------------------------------------------
# picklable payload references
# ---------------------------------------------------------------------------


@dataclass(frozen=True)
class ShmArrayRef:
    """Picklable zero-copy reference to an ndarray in a shm segment."""

    name: str
    shape: Tuple[int, ...]
    dtype: str
    nbytes: int

    @contextlib.contextmanager
    def open(self) -> Iterator[np.ndarray]:
        """Attach and yield the array as a **read-only** view; the
        segment is detached (not unlinked) on exit.  Read-only is the
        contract that makes sharing one segment across concurrent
        tasks safe -- a codec that mutated its input would corrupt
        sibling tasks."""
        trace = observe.current_trace()
        with trace.span("transport.attach") as sp:
            if trace.enabled:
                sp.count("bytes", int(self.nbytes))
            seg = _attach(self.name)
        try:
            arr = np.ndarray(
                self.shape, dtype=np.dtype(self.dtype), buffer=seg.buf
            )
            arr.flags.writeable = False
            yield arr
            del arr
        finally:
            _close_quietly(seg)


@dataclass(frozen=True)
class ShmSliceRef:
    """A row-slab view ``[start, stop)`` along axis 0 of a shared
    array: one segment for the whole field, one cheap ref per chunk."""

    base: ShmArrayRef
    start: int
    stop: int

    @contextlib.contextmanager
    def open(self) -> Iterator[np.ndarray]:
        with self.base.open() as arr:
            yield arr[self.start:self.stop]


@dataclass(frozen=True)
class ShmBytesRef:
    """Picklable reference to a byte string in a shm segment."""

    name: str
    nbytes: int

    @contextlib.contextmanager
    def open(self) -> Iterator[memoryview]:
        seg = _attach(self.name)
        try:
            yield seg.buf[: self.nbytes]
        finally:
            _close_quietly(seg)


class InlineArrayRef:
    """Fallback payload holder with the ref API but pickle transport.

    Returned by :meth:`ShmArena.share` when the shm plane is disabled,
    unavailable, or the payload fails the size/capacity guard; the
    array itself rides the pickle channel like before.
    """

    __slots__ = ("array",)

    def __init__(self, array: np.ndarray):
        self.array = array

    @property
    def nbytes(self) -> int:
        return int(self.array.nbytes)

    @contextlib.contextmanager
    def open(self) -> Iterator[np.ndarray]:
        yield self.array


#: Anything a parallel task accepts as an array payload.
ArrayPayload = Union[np.ndarray, ShmArrayRef, ShmSliceRef, InlineArrayRef]


def _attach(name: str):
    try:
        return _shared_memory().SharedMemory(name=name)
    except FileNotFoundError as exc:
        raise TransportError(
            f"shared segment {name!r} is gone (released early, or the "
            "arena closed before its consumers finished)",
            code=ErrorCode.SHM_RELEASED,
        ) from exc


@contextlib.contextmanager
def open_payload(payload: ArrayPayload) -> Iterator[np.ndarray]:
    """Uniform access to any array payload kind: plain ndarrays are
    yielded as-is, refs are attached for the duration of the block."""
    if isinstance(payload, np.ndarray):
        yield payload
    elif isinstance(payload, (ShmArrayRef, ShmSliceRef, InlineArrayRef)):
        with payload.open() as arr:
            yield arr
    else:
        raise ParameterError(
            f"not an array payload: {type(payload).__name__}"
        )


# ---------------------------------------------------------------------------
# the arena (parent-owned segments, refcounted)
# ---------------------------------------------------------------------------


class ShmArena:
    """Owner of a family of shared segments with a common name prefix.

    Lifecycle: ``share()`` creates a segment at refcount 1;
    ``retain``/``release`` adjust it; the segment is unlinked when the
    count reaches zero.  ``close()`` force-releases everything and
    additionally sweeps the prefix for orphans published by faulted
    workers.  A ``weakref.finalize`` hook repeats the cleanup if the
    arena is dropped without closing -- nothing this object created
    can outlive the process.

    Use as a context manager for exception-safe cleanup::

        with ShmArena() as arena:
            ref = arena.share(field)
            ... fan out tasks carrying ``ref`` ...
    """

    def __init__(self, prefix: Optional[str] = None, enabled: bool = True):
        self.prefix = prefix or f"fpz{os.getpid():x}x{secrets.token_hex(4)}"
        self._enabled = bool(enabled) and shm_available()
        self._segments: Dict[str, list] = {}  # name -> [shm, refcount]
        self._adopted: Dict[str, object] = {}  # name -> attached handle
        self._counter = itertools.count()
        self._closed = False
        if self._enabled:
            # Start the resource tracker *now*, before any pool forks:
            # a worker that attaches without an inherited tracker spawns
            # its own, which unlinks "leaked" segments at worker exit --
            # destroying memory the parent is still serving.
            try:
                from multiprocessing import resource_tracker

                resource_tracker.ensure_running()
            except Exception:  # noqa: BLE001 -- tracker is an optimization
                pass
        self._finalizer = weakref.finalize(
            self, _finalize_arena, self.prefix, self._segments
        )

    # -- introspection --------------------------------------------------

    @property
    def enabled(self) -> bool:
        return self._enabled

    @property
    def closed(self) -> bool:
        return self._closed

    @property
    def active_segments(self) -> int:
        return len(self._segments) + len(self._adopted)

    @property
    def bytes_active(self) -> int:
        return sum(seg.size for seg, _ in self._segments.values())

    @property
    def finalizer_alive(self) -> bool:
        return self._finalizer.alive

    def refcount(self, ref) -> int:
        """Current refcount of a shared segment (0 when released)."""
        entry = self._segments.get(self._name_of(ref))
        return 0 if entry is None else entry[1]

    # -- sharing --------------------------------------------------------

    def share(self, data) -> ArrayPayload:
        """Place ``data`` in a fresh segment (one copy) and return a
        picklable ref at refcount 1; falls back to an
        :class:`InlineArrayRef` when the plane is off or the payload
        fails the size/capacity guard."""
        self._check_open()
        arr = np.asarray(data)
        if not (self._enabled and _share_allowed(arr.nbytes)):
            if self._enabled:
                _count_fallback(arr.nbytes)
            return InlineArrayRef(arr)
        if not arr.flags.c_contiguous:
            arr = np.ascontiguousarray(arr)
        trace = observe.current_trace()
        with trace.span("transport.share") as sp:
            name = f"{self.prefix}s{next(self._counter):x}"
            try:
                seg = _shared_memory().SharedMemory(
                    create=True, size=arr.nbytes, name=name
                )
            except OSError:
                _count_fallback(arr.nbytes)
                return InlineArrayRef(arr)
            view = np.ndarray(arr.shape, dtype=arr.dtype, buffer=seg.buf)
            view[...] = arr
            del view
            self._segments[name] = [seg, 1]
            if trace.enabled:
                sp.count("bytes", int(arr.nbytes))
            reg = _metrics()
            reg.counter(
                "shm.segments_created_total",
                help="shared-memory segments created by arenas",
            ).inc()
            reg.counter(
                "shm.bytes_shared_total",
                help="payload bytes placed in shared memory "
                "(crossed process boundaries without a copy)",
            ).inc(int(arr.nbytes))
            return ShmArrayRef(
                name=name,
                shape=tuple(arr.shape),
                dtype=str(arr.dtype),
                nbytes=int(arr.nbytes),
            )

    def slice_refs(self, ref: ArrayPayload, row_counts) -> List:
        """Split a shared array into row-slab refs matching
        ``row_counts`` (chunk-parallel fan-out).  For an inline
        fallback ref this returns plain ndarray slabs -- the pickle
        path -- so callers never branch on the payload kind."""
        bounds = np.concatenate(([0], np.cumsum(list(row_counts))))
        if isinstance(ref, ShmArrayRef):
            return [
                ShmSliceRef(base=ref, start=int(lo), stop=int(hi))
                for lo, hi in zip(bounds[:-1], bounds[1:])
            ]
        with open_payload(ref) as arr:
            return [
                arr[int(lo):int(hi)]
                for lo, hi in zip(bounds[:-1], bounds[1:])
            ]

    # -- refcounted lifecycle ------------------------------------------

    @staticmethod
    def _name_of(ref) -> str:
        if isinstance(ref, (ShmArrayRef, ShmBytesRef)):
            return ref.name
        if isinstance(ref, ShmSliceRef):
            return ref.base.name
        if isinstance(ref, str):
            return ref
        raise ParameterError(
            f"not a shared-segment reference: {type(ref).__name__}"
        )

    def retain(self, ref) -> None:
        """Increment a segment's refcount."""
        self._check_open()
        name = self._name_of(ref)
        entry = self._segments.get(name)
        if entry is None:
            raise TransportError(
                f"cannot retain {name!r}: segment already released or "
                "not owned by this arena",
                code=ErrorCode.SHM_RELEASED,
            )
        entry[1] += 1

    def release(self, ref) -> None:
        """Decrement a segment's refcount; the segment is unlinked at
        zero.  Releasing a segment that is already gone is a typed
        :class:`~repro.errors.TransportError`
        (:data:`~repro.errors.ErrorCode.SHM_RELEASED`), never a crash."""
        name = self._name_of(ref)
        entry = self._segments.get(name)
        if entry is None:
            raise TransportError(
                f"double release of segment {name!r} (or segment not "
                "owned by this arena)",
                code=ErrorCode.SHM_RELEASED,
            )
        entry[1] -= 1
        if entry[1] <= 0:
            del self._segments[name]
            _close_quietly(entry[0])
            _unlink_quietly(entry[0])
            _metrics().counter(
                "shm.segments_released_total",
                help="shared-memory segments explicitly released",
            ).inc()

    # -- worker-published results --------------------------------------

    def adopt_array(self, payload) -> np.ndarray:
        """Attach a worker-published array (see :func:`publish_array`)
        as a read-only view and track the segment for unlink at
        :meth:`close`.  Plain ndarrays (pickle fallback) pass through."""
        self._check_open()
        if isinstance(payload, np.ndarray):
            return payload
        if not isinstance(payload, ShmArrayRef):
            raise ParameterError(
                f"cannot adopt {type(payload).__name__}"
            )
        seg = _attach(payload.name)
        self._adopted[payload.name] = seg
        arr = np.ndarray(
            payload.shape, dtype=np.dtype(payload.dtype), buffer=seg.buf
        )
        arr.flags.writeable = False
        return arr

    # -- teardown -------------------------------------------------------

    def close(self) -> None:
        """Release every live segment, unlink adopted ones, and sweep
        the prefix for orphans left by faulted workers.  Idempotent."""
        if self._closed:
            return
        self._closed = True
        released = 0
        for name in list(self._segments):
            seg, _refs = self._segments.pop(name)
            _close_quietly(seg)
            _unlink_quietly(seg)
            released += 1
        for name in list(self._adopted):
            seg = self._adopted.pop(name)
            _close_quietly(seg)
            _unlink_quietly(seg)
            released += 1
        swept = _sweep_prefix(self.prefix)
        self._finalizer.detach()
        reg = _metrics()
        if released:
            reg.counter(
                "shm.segments_released_total",
                help="shared-memory segments explicitly released",
            ).inc(released)
        if swept:
            # Orphan counts depend on fault/scheduling timing, so they
            # are excluded from deterministic snapshots.
            reg.counter(
                "shm.orphans_swept_total",
                help="leftover segments reclaimed by the prefix sweep",
                deterministic=False,
            ).inc(swept)

    def _check_open(self) -> None:
        if self._closed:
            raise TransportError(
                "arena is closed", code=ErrorCode.SHM_RELEASED
            )

    def __enter__(self) -> "ShmArena":
        return self

    def __exit__(self, *exc) -> None:
        self.close()


# ---------------------------------------------------------------------------
# worker-side publication (results travel by shm too)
# ---------------------------------------------------------------------------


def _publish_name(prefix: str) -> str:
    return f"{prefix}o{os.getpid():x}i{next(_PUBLISH_COUNTER):x}"


def publish_array(prefix: Optional[str], arr: np.ndarray):
    """Worker-side: place a result array in a fresh segment under the
    arena ``prefix`` and return a :class:`ShmArrayRef`; the parent
    adopts it with :meth:`ShmArena.adopt_array`.  Falls back to
    returning the array itself (pickle) when ``prefix`` is None, shm is
    unavailable, or the payload fails the guard."""
    arr = np.asarray(arr)
    if prefix is None or not (shm_available() and _share_allowed(arr.nbytes)):
        return arr
    if not arr.flags.c_contiguous:
        arr = np.ascontiguousarray(arr)
    try:
        seg = _shared_memory().SharedMemory(
            create=True, size=arr.nbytes, name=_publish_name(prefix)
        )
    except OSError:
        return arr
    view = np.ndarray(arr.shape, dtype=arr.dtype, buffer=seg.buf)
    view[...] = arr
    del view
    ref = ShmArrayRef(
        name=seg.name.lstrip("/"),
        shape=tuple(arr.shape),
        dtype=str(arr.dtype),
        nbytes=int(arr.nbytes),
    )
    _close_quietly(seg)
    return ref


def publish_bytes(prefix: Optional[str], data: bytes):
    """Worker-side: place a result byte string (e.g. a compressed
    stream) in a segment under ``prefix``; the parent drains it with
    :func:`take_bytes`.  Falls back to returning the bytes directly."""
    if prefix is None or not (shm_available() and _share_allowed(len(data))):
        return data
    try:
        seg = _shared_memory().SharedMemory(
            create=True, size=max(1, len(data)), name=_publish_name(prefix)
        )
    except OSError:
        return data
    seg.buf[: len(data)] = data
    ref = ShmBytesRef(name=seg.name.lstrip("/"), nbytes=len(data))
    _close_quietly(seg)
    return ref


def take_bytes(payload) -> bytes:
    """Parent-side: materialize a worker-published byte payload and
    unlink its segment.  Plain bytes (pickle fallback) pass through."""
    if isinstance(payload, (bytes, bytearray)):
        return bytes(payload)
    if not isinstance(payload, ShmBytesRef):
        raise ParameterError(
            f"not a byte payload: {type(payload).__name__}"
        )
    seg = _attach(payload.name)
    try:
        data = bytes(seg.buf[: payload.nbytes])
    finally:
        _close_quietly(seg)
        _unlink_quietly(seg)
    _metrics().counter(
        "shm.bytes_moved_total",
        help="payload bytes copied across a process boundary "
        "(pickle fallback + result drains)",
    ).inc(len(data))
    return data
