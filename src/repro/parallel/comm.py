"""MPI-flavoured collective helpers over ``concurrent.futures``.

The mpi4py tutorial's canonical pattern for this workload is
scatter -> local work -> gather (and an allreduce for global metrics
like the value range across ranks).  True MPI is unavailable in this
environment, so these helpers reproduce the collective *semantics* on
one node with processes; code written against them maps 1:1 onto
mpi4py collectives on a real cluster.
"""

from __future__ import annotations

from concurrent.futures import ProcessPoolExecutor
from functools import reduce
from typing import Callable, Iterable, List, Sequence, TypeVar

from repro.errors import ParameterError

__all__ = ["scatter_gather", "allreduce"]

T = TypeVar("T")
R = TypeVar("R")


def scatter_gather(
    func: Callable[[T], R],
    items: Sequence[T],
    n_workers: int = 0,
    chunksize: int = 1,
) -> List[R]:
    """Scatter ``items`` over workers, apply ``func``, gather results
    in input order (``comm.scatter`` + local compute + ``comm.gather``).

    ``func`` must be picklable (module-level) when ``n_workers > 0``.
    ``n_workers=0`` computes inline.
    """
    items = list(items)
    if n_workers <= 0:
        return [func(it) for it in items]
    with ProcessPoolExecutor(max_workers=n_workers) as pool:
        return list(pool.map(func, items, chunksize=max(1, chunksize)))


def allreduce(values: Iterable[T], op: Callable[[T, T], T]) -> T:
    """Reduce gathered per-rank values with a binary op
    (``comm.allreduce``); e.g. ``allreduce(ranges, max)`` for a global
    value range."""
    values = list(values)
    if not values:
        raise ParameterError("allreduce needs at least one value")
    return reduce(op, values)
