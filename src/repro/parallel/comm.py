"""MPI-flavoured collective helpers over ``concurrent.futures``.

The mpi4py tutorial's canonical pattern for this workload is
scatter -> local work -> gather (and an allreduce for global metrics
like the value range across ranks).  True MPI is unavailable in this
environment, so these helpers reproduce the collective *semantics* on
one node with processes; code written against them maps 1:1 onto
mpi4py collectives on a real cluster.

``scatter_gather`` can move ndarray items through the zero-copy
shared-memory plane (:mod:`repro.parallel.shm`) instead of the pickle
channel -- the analogue of MPI's buffer-based ``Scatterv`` next to the
pickling ``scatter``.  ``func`` still receives a plain ndarray either
way; transport is invisible to the callee.
"""

from __future__ import annotations

from concurrent.futures import ProcessPoolExecutor
from functools import reduce
from typing import Callable, Iterable, List, Sequence, TypeVar

import numpy as np

from repro.errors import ParameterError

__all__ = ["scatter_gather", "allreduce"]

T = TypeVar("T")
R = TypeVar("R")


def _call_with_payload(args):
    """Worker-side trampoline: open a shared array payload (zero-copy)
    before applying ``func``; pass anything else through untouched."""
    from repro.parallel.shm import (
        InlineArrayRef,
        ShmArrayRef,
        ShmSliceRef,
        open_payload,
    )

    func, payload = args
    if isinstance(payload, (ShmArrayRef, ShmSliceRef, InlineArrayRef)):
        with open_payload(payload) as arr:
            return func(arr)
    return func(payload)


def scatter_gather(
    func: Callable[[T], R],
    items: Sequence[T],
    n_workers: int = 0,
    chunksize: int = 1,
    transport: str = "auto",
) -> List[R]:
    """Scatter ``items`` over workers, apply ``func``, gather results
    in input order (``comm.scatter`` + local compute + ``comm.gather``).

    ``func`` must be picklable (module-level) when ``n_workers > 0``.
    ``n_workers=0`` computes inline.  With ``transport="auto"`` /
    ``"shm"`` and a pool, ndarray items are scattered through shared
    memory (``Scatterv`` semantics); other item types and the gathered
    results use the pickle channel as before.
    """
    from repro.parallel.shm import ShmArena, resolve_transport

    items = list(items)
    if n_workers <= 0:
        return [func(it) for it in items]
    use_shm = resolve_transport(transport, n_workers) and any(
        isinstance(it, np.ndarray) for it in items
    )
    if not use_shm:
        with ProcessPoolExecutor(max_workers=n_workers) as pool:
            return list(pool.map(func, items, chunksize=max(1, chunksize)))
    with ShmArena() as arena:
        payloads = [
            arena.share(it) if isinstance(it, np.ndarray) else it
            for it in items
        ]
        with ProcessPoolExecutor(max_workers=n_workers) as pool:
            return list(
                pool.map(
                    _call_with_payload,
                    [(func, p) for p in payloads],
                    chunksize=max(1, chunksize),
                )
            )


def allreduce(values: Iterable[T], op: Callable[[T, T], T]) -> T:
    """Reduce gathered per-rank values with a binary op
    (``comm.allreduce``); e.g. ``allreduce(ranges, max)`` for a global
    value range."""
    values = list(values)
    if not values:
        raise ParameterError("allreduce needs at least one value")
    return reduce(op, values)
