"""Field-parallel fixed-PSNR sweeps.

One task = (data set, field, target PSNR): compress, decompress,
measure.  Tasks ship only *names* to the workers -- each worker
regenerates its field from the deterministic data-set registry, so no
multi-megabyte arrays cross process boundaries (the scatter pattern the
mpi4py guide recommends: communicate work descriptions, not payloads).

``n_workers=0`` runs inline, which is what the unit tests and small
sweeps use; the benchmarks choose a worker count from ``os.cpu_count``.
"""

from __future__ import annotations

import os
from concurrent.futures import ProcessPoolExecutor
from dataclasses import dataclass, asdict
from typing import Dict, List, Optional, Sequence, Tuple

from repro.errors import ParameterError

__all__ = ["FieldResult", "run_field_task", "sweep_dataset", "default_workers"]


@dataclass(frozen=True)
class FieldResult:
    """Outcome of one (field, target) compression task."""

    dataset: str
    field: str
    target_psnr: float
    actual_psnr: float
    deviation: float
    met: bool
    compression_ratio: float
    bit_rate: float
    eb_rel: float

    def as_dict(self) -> Dict:
        """JSON-friendly representation."""
        return asdict(self)


def run_field_task(
    dataset: str,
    field: str,
    target_psnr: float,
    scale: Optional[float] = None,
    refine: Optional[str] = None,
    codec: str = "sz",
) -> FieldResult:
    """Execute one task: regenerate the field, run the fixed-PSNR
    pipeline, measure the reconstruction.

    Importable at module top level so it pickles for worker processes.
    """
    # Imports inside the function keep worker start-up lean.
    from repro.core.fixed_psnr import FixedPSNRCompressor
    from repro.datasets.registry import get_dataset
    from repro.metrics.distortion import psnr as measure_psnr

    ds = get_dataset(dataset, scale=scale)
    data = ds.field(field)
    comp = FixedPSNRCompressor(target_psnr, refine=refine, codec=codec)
    eb_rel = comp.derive_bound(data)
    blob = comp.compress(data)
    recon = comp.decompress(blob)
    actual = measure_psnr(data, recon)
    return FieldResult(
        dataset=dataset,
        field=field,
        target_psnr=float(target_psnr),
        actual_psnr=float(actual),
        deviation=float(actual - target_psnr),
        met=bool(actual >= target_psnr),
        compression_ratio=data.nbytes / len(blob),
        bit_rate=8.0 * len(blob) / data.size,
        eb_rel=float(eb_rel),
    )


def default_workers() -> int:
    """A safe default worker count: physical parallelism minus one."""
    return max(1, (os.cpu_count() or 2) - 1)


def sweep_dataset(
    dataset: str,
    targets: Sequence[float],
    fields: Optional[Sequence[str]] = None,
    scale: Optional[float] = None,
    refine: Optional[str] = None,
    codec: str = "sz",
    n_workers: int = 0,
) -> List[FieldResult]:
    """Run every (field, target) combination of a data set.

    Returns results ordered by (target, field registry order) so
    downstream tables are deterministic regardless of scheduling.
    """
    from repro.datasets.registry import get_dataset

    ds = get_dataset(dataset, scale=scale)
    names = list(fields) if fields is not None else ds.field_names
    unknown = set(names) - set(ds.field_names)
    if unknown:
        raise ParameterError(f"unknown fields for {dataset}: {sorted(unknown)}")
    tasks: List[Tuple] = [
        (dataset, fname, float(t), scale, refine, codec)
        for t in targets
        for fname in names
    ]
    if n_workers <= 0:
        return [run_field_task(*t) for t in tasks]
    with ProcessPoolExecutor(max_workers=n_workers) as pool:
        return list(pool.map(run_field_task, *zip(*tasks), chunksize=1))
