"""Field-parallel fixed-PSNR sweeps.

One task = (data set, field, target PSNR): compress, decompress,
measure.  Tasks ship only *names* to the workers -- each worker
regenerates its field from the deterministic data-set registry, so no
multi-megabyte arrays cross process boundaries (the scatter pattern the
mpi4py guide recommends: communicate work descriptions, not payloads).

``n_workers=0`` runs inline, which is what the unit tests and small
sweeps use; the benchmarks choose a worker count from ``os.cpu_count``.
"""

from __future__ import annotations

import os
from concurrent.futures import ProcessPoolExecutor
from dataclasses import dataclass, asdict, field as dc_field
from typing import Dict, List, Optional, Sequence, Tuple

import repro.observe as observe
from repro.errors import ParameterError

__all__ = [
    "FieldResult",
    "run_field_task",
    "sweep_dataset",
    "default_workers",
    "map_tasks",
]


def map_tasks(fn, argtuples, n_workers: int = 0):
    """Order-preserving parallel map over argument tuples.

    The generic fan-out primitive the autotune driver uses for
    speculative trial probes: ``fn`` must be a module-level (picklable)
    callable and each element of ``argtuples`` a tuple of its
    positional arguments.  ``n_workers <= 0`` runs inline -- same
    results, no pool -- which is what unit tests and small searches
    use.  An empty task list short-circuits without spawning a pool.
    """
    tasks = list(argtuples)
    if not tasks:
        return []
    if n_workers <= 0:
        return [fn(*t) for t in tasks]
    with ProcessPoolExecutor(max_workers=n_workers) as pool:
        futures = [pool.submit(fn, *t) for t in tasks]
        return [f.result() for f in futures]


@dataclass(frozen=True)
class FieldResult:
    """Outcome of one (field, target) compression task.

    ``metrics`` is optional stage-level telemetry (populated when the
    sweep runs with ``collect_trace=True``): the aggregated trace dict
    plus the raw picklable span records, so parent processes can merge
    worker traces (see :mod:`repro.observe`).  It is excluded from
    equality/hash so result identity stays purely about the outcome.
    """

    dataset: str
    field: str
    target_psnr: float
    actual_psnr: float
    deviation: float
    met: bool
    compression_ratio: float
    bit_rate: float
    eb_rel: float
    metrics: Optional[Dict] = dc_field(default=None, compare=False)

    def as_dict(self) -> Dict:
        """JSON-friendly representation."""
        return asdict(self)


def run_field_task(
    dataset: str,
    field: str,
    target_psnr: float,
    scale: Optional[float] = None,
    refine: Optional[str] = None,
    codec: str = "sz",
    collect_trace: bool = False,
    profile_mem: bool = False,
) -> FieldResult:
    """Execute one task: regenerate the field, run the fixed-PSNR
    pipeline, measure the reconstruction.

    Importable at module top level so it pickles for worker processes.
    With ``collect_trace=True`` the compression runs under a local
    :class:`repro.observe.Trace`; the result's ``metrics`` dict carries
    the aggregated stage costs and the raw span records back across
    the process boundary.  ``profile_mem=True`` (implies
    ``collect_trace``) additionally runs under
    :class:`repro.telemetry.memory.profile_memory`, so every span
    record also carries its peak traced bytes -- the readings cross the
    process boundary inside the records like every other measurement.
    """
    # Imports inside the function keep worker start-up lean.
    from repro.core.fixed_psnr import FixedPSNRCompressor
    from repro.datasets.registry import get_dataset
    from repro.metrics.distortion import psnr as measure_psnr

    ds = get_dataset(dataset, scale=scale)
    data = ds.field(field)
    comp = FixedPSNRCompressor(target_psnr, refine=refine, codec=codec)
    eb_rel = comp.derive_bound(data)
    metrics = None
    if collect_trace or profile_mem:
        local = observe.Trace()
        if profile_mem:
            from repro.telemetry.memory import profile_memory

            with observe.use_trace(local), profile_memory():
                blob = comp.compress(data)
        else:
            with observe.use_trace(local):
                blob = comp.compress(data)
        metrics = {
            "trace": local.as_dict(),
            "records": [r.as_dict() for r in local.records],
        }
    else:
        blob = comp.compress(data)
    recon = comp.decompress(blob)
    actual = measure_psnr(data, recon)
    return FieldResult(
        dataset=dataset,
        field=field,
        target_psnr=float(target_psnr),
        actual_psnr=float(actual),
        deviation=float(actual - target_psnr),
        met=bool(actual >= target_psnr),
        compression_ratio=data.nbytes / len(blob),
        bit_rate=8.0 * len(blob) / data.size,
        eb_rel=float(eb_rel),
        metrics=metrics,
    )


def default_workers() -> int:
    """A safe default worker count: physical parallelism minus one."""
    return max(1, (os.cpu_count() or 2) - 1)


def sweep_dataset(
    dataset: str,
    targets: Sequence[float],
    fields: Optional[Sequence[str]] = None,
    scale: Optional[float] = None,
    refine: Optional[str] = None,
    codec: str = "sz",
    n_workers: int = 0,
    collect_trace: bool = False,
    profile_mem: bool = False,
) -> List[FieldResult]:
    """Run every (field, target) combination of a data set.

    Returns results ordered by (target, field registry order) so
    downstream tables are deterministic regardless of scheduling.
    With ``collect_trace=True`` each task records a stage-level trace
    (see :func:`run_field_task`); if a trace is also active in *this*
    process, the per-worker span records are merged into it under a
    ``field:<name>`` prefix.  ``profile_mem=True`` adds per-span peak
    memory to every task's records (see
    :mod:`repro.telemetry.memory`).
    """
    from repro.datasets.registry import get_dataset
    from repro.telemetry.registry import metrics as _metrics

    ds = get_dataset(dataset, scale=scale)
    names = list(fields) if fields is not None else ds.field_names
    unknown = set(names) - set(ds.field_names)
    if unknown:
        raise ParameterError(f"unknown fields for {dataset}: {sorted(unknown)}")
    tasks: List[Tuple] = [
        (dataset, fname, float(t), scale, refine, codec, collect_trace,
         profile_mem)
        for t in targets
        for fname in names
    ]
    _metrics().counter("parallel.field_tasks_total").inc(len(tasks))
    if n_workers <= 0:
        results = [run_field_task(*t) for t in tasks]
    else:
        with ProcessPoolExecutor(max_workers=n_workers) as pool:
            results = list(pool.map(run_field_task, *zip(*tasks), chunksize=1))
    trace = observe.current_trace()
    if trace.enabled:
        for r in results:
            if r.metrics:
                trace.merge(r.metrics["records"], prefix=(f"field:{r.field}",))
    return results
