"""Field-parallel fixed-PSNR sweeps.

One task = (data set, field, target PSNR): compress, decompress,
measure.  Tasks ship only *names* to the workers -- each worker
regenerates its field from the deterministic data-set registry, so no
multi-megabyte arrays cross process boundaries (the scatter pattern the
mpi4py guide recommends: communicate work descriptions, not payloads).

``n_workers=0`` runs inline, which is what the unit tests and small
sweeps use; the benchmarks choose a worker count from ``os.cpu_count``.

Resilience
----------
``sweep_dataset`` optionally runs under a
:class:`repro.resilience.retry.RetryPolicy`: each failing attempt
(worker exception, per-task deadline exceeded, poisoned result) is
retried with exponential backoff and seeded jitter, and a task that
exhausts its attempts degrades to a *failed* :class:`FieldResult`
(``status="failed"``, NaN measurements) instead of aborting the sweep.
The ``fault`` hook accepts a
:class:`repro.resilience.inject.WorkerFault` so the failure paths are
deterministically testable -- CI's fault matrix drives it.  Without a
policy the legacy fail-fast behaviour is unchanged.
"""

from __future__ import annotations

import os
import time
from concurrent.futures import (
    FIRST_COMPLETED,
    Future,
    ProcessPoolExecutor,
    ThreadPoolExecutor,
    wait,
)
from dataclasses import dataclass, asdict, field as dc_field, fields as dc_fields
from typing import Dict, List, Optional, Sequence, Tuple

import repro.observe as observe
from repro.errors import ErrorCode, ParameterError

__all__ = [
    "FieldResult",
    "Executor",
    "run_field_task",
    "sweep_dataset",
    "default_workers",
    "failed_field_result",
    "map_tasks",
]


def _warm_worker(index: int) -> int:
    """No-op task submitted at :meth:`Executor.warm` time: imports the
    hot modules so the first real task pays no import cost, and sleeps
    a beat so the pool actually spawns one process per submission
    instead of reusing an idle worker."""
    import repro.core.fixed_psnr  # noqa: F401 -- import is the point
    import repro.sz.compressor  # noqa: F401

    time.sleep(0.02)
    return os.getpid()


class Executor:
    """Long-lived worker pool + shared-memory arena context.

    Before this class, every parallel entry point created (and tore
    down) its own ``ProcessPoolExecutor`` and :class:`ShmArena` per
    call -- fine for one-shot CLI runs, wasteful for anything
    long-lived.  An ``Executor`` owns both for its whole lifetime and
    is accepted by :func:`sweep_dataset`, :func:`map_tasks`,
    :func:`repro.autotune.autotune` and
    :func:`repro.parallel.chunking.compress_chunked` /
    ``decompress_chunked`` via their ``executor=`` keyword, so repeated
    calls reuse warm workers and already-shared payloads::

        with Executor(n_workers=4) as ex:
            ex.warm()                       # spawn + import up front
            r1 = sweep_dataset("ATM", [60.0], executor=ex)
            r2 = sweep_dataset("ATM", [80.0], executor=ex)   # no new pool

    ``kind`` selects the pool flavour: ``"process"`` (the default; the
    only kind that can use the shm data plane), ``"thread"`` (same
    results, zero-copy by construction -- what the service uses in
    tests and benches to avoid process spawn cost), or ``"inline"``
    (no pool at all; ``n_workers <= 0`` forces it).  ``start_method``
    optionally pins the multiprocessing start method -- the service
    passes ``"spawn"`` because forking from a multi-threaded process
    is unsafe (and a ``DeprecationWarning`` on 3.12+).

    Results are bit-identical across kinds and transports -- the same
    differential contract the data plane already guarantees.
    """

    _KINDS = ("process", "thread", "inline")

    def __init__(
        self,
        n_workers: int = 0,
        transport: str = "auto",
        kind: str = "process",
        start_method: Optional[str] = None,
    ):
        from repro.parallel.shm import TRANSPORTS

        if kind not in self._KINDS:
            raise ParameterError(
                f"unknown executor kind {kind!r}; expected one of "
                f"{self._KINDS}"
            )
        if transport not in TRANSPORTS:
            raise ParameterError(
                f"unknown transport {transport!r}; expected one of "
                f"{TRANSPORTS}"
            )
        self.n_workers = int(n_workers)
        self.kind = "inline" if self.n_workers <= 0 else kind
        self.transport = transport
        self.start_method = start_method
        self._pool = None
        self._arena = None
        self._cache: Dict = {}
        self._closed = False

    # -- state ----------------------------------------------------------

    @property
    def inline(self) -> bool:
        return self.kind == "inline"

    @property
    def closed(self) -> bool:
        return self._closed

    def _check_open(self) -> None:
        if self._closed:
            raise ParameterError("executor is closed")

    @property
    def pool(self):
        """The lazily created pool (``None`` for the inline kind)."""
        self._check_open()
        if self.kind == "inline":
            return None
        if self._pool is None:
            if self.kind == "thread":
                self._pool = ThreadPoolExecutor(
                    max_workers=self.n_workers,
                    thread_name_prefix="repro-exec",
                )
            elif self.start_method:
                import multiprocessing

                self._pool = ProcessPoolExecutor(
                    max_workers=self.n_workers,
                    mp_context=multiprocessing.get_context(self.start_method),
                )
            else:
                self._pool = ProcessPoolExecutor(max_workers=self.n_workers)
        return self._pool

    @property
    def arena(self):
        """The lazily created :class:`~repro.parallel.shm.ShmArena`,
        or ``None`` when the transport resolves to pickle (non-process
        kinds never get an arena -- threads already share memory)."""
        from repro.parallel.shm import ShmArena, resolve_transport

        self._check_open()
        if self.kind != "process":
            return None
        if not resolve_transport(self.transport, self.n_workers):
            return None
        if self._arena is None:
            self._arena = ShmArena()
        return self._arena

    # -- work -----------------------------------------------------------

    def submit(self, fn, *args) -> Future:
        """Submit one call; inline executors run it immediately and
        return an already-completed future."""
        self._check_open()
        if self.kind == "inline":
            f: Future = Future()
            try:
                f.set_result(fn(*args))
            except BaseException as exc:  # noqa: BLE001 -- future carries it
                f.set_exception(exc)
            return f
        return self.pool.submit(fn, *args)

    def map(self, fn, argtuples) -> List:
        """Order-preserving map over argument tuples (the
        :func:`map_tasks` contract, against this executor's pool)."""
        tasks = list(argtuples)
        if not tasks:
            return []
        if self.kind == "inline":
            return [fn(*t) for t in tasks]
        futures = [self.pool.submit(fn, *t) for t in tasks]
        return [f.result() for f in futures]

    def warm(self) -> int:
        """Spawn every worker now (and pre-import the codec modules in
        each) instead of on first use; returns the number of distinct
        workers that answered.  A no-op for thread/inline kinds."""
        if self.kind != "process":
            return 0
        futures = [
            self.pool.submit(_warm_worker, i) for i in range(self.n_workers)
        ]
        return len({f.result() for f in futures})

    # -- payload cache --------------------------------------------------

    def share(self, key, supplier):
        """Get-or-create a cached payload for ``key``.

        ``supplier`` is a zero-argument callable producing the array;
        it runs only on the first call for a given key.  Process
        executors with an arena return a shared-memory ref (one copy
        for the executor's lifetime); thread/inline executors return
        the materialized array itself (zero-copy in-process); process
        executors on the pickle transport also return the array (the
        caller decides whether shipping it beats regenerating).
        """
        import numpy as np

        self._check_open()
        if key in self._cache:
            return self._cache[key]
        arena = self.arena
        if arena is not None:
            payload = arena.share(supplier())
        else:
            payload = np.asarray(supplier())
        self._cache[key] = payload
        return payload

    def drop_cached(self, key) -> bool:
        """Forget a cached payload (releasing its segment when it was
        shared); returns True when the key existed."""
        from repro.parallel.shm import ShmArrayRef

        payload = self._cache.pop(key, None)
        if payload is None:
            return False
        if isinstance(payload, ShmArrayRef) and self._arena is not None:
            self._arena.release(payload)
        return True

    # -- teardown -------------------------------------------------------

    def close(self, cancel_futures: bool = False) -> None:
        """Shut the pool down and release every shared segment.
        Idempotent."""
        if self._closed:
            return
        self._closed = True
        self._cache.clear()
        if self._pool is not None:
            self._pool.shutdown(wait=True, cancel_futures=cancel_futures)
            self._pool = None
        if self._arena is not None:
            self._arena.close()
            self._arena = None

    def __enter__(self) -> "Executor":
        return self

    def __exit__(self, *exc) -> None:
        self.close()


def map_tasks(fn, argtuples, n_workers: int = 0, executor: Optional[Executor] = None):
    """Order-preserving parallel map over argument tuples.

    The generic fan-out primitive the autotune driver uses for
    speculative trial probes: ``fn`` must be a module-level (picklable)
    callable and each element of ``argtuples`` a tuple of its
    positional arguments.  ``n_workers <= 0`` runs inline -- same
    results, no pool -- which is what unit tests and small searches
    use.  An empty task list short-circuits without spawning a pool.
    With ``executor=`` the map runs on the given :class:`Executor`'s
    long-lived pool (``n_workers`` is ignored) instead of a fresh one.
    """
    if executor is not None:
        return executor.map(fn, argtuples)
    tasks = list(argtuples)
    if not tasks:
        return []
    if n_workers <= 0:
        return [fn(*t) for t in tasks]
    with ProcessPoolExecutor(max_workers=n_workers) as pool:
        futures = [pool.submit(fn, *t) for t in tasks]
        return [f.result() for f in futures]


@dataclass(frozen=True)
class FieldResult:
    """Outcome of one (field, target) compression task.

    ``metrics`` is optional stage-level telemetry (populated when the
    sweep runs with ``collect_trace=True``): the aggregated trace dict
    plus the raw picklable span records, so parent processes can merge
    worker traces (see :mod:`repro.observe`).  It is excluded from
    equality/hash so result identity stays purely about the outcome.

    ``status`` is ``"ok"`` for a successful task and ``"failed"`` for
    one that exhausted its retry budget under a
    :class:`~repro.resilience.retry.RetryPolicy`; failed results carry
    NaN measurements, the last failure's :class:`~repro.errors.ErrorCode`
    in ``error_code`` and its message in ``error``.  ``attempts``
    counts attempts actually made (1 when nothing went wrong).
    """

    dataset: str
    field: str
    target_psnr: float
    actual_psnr: float
    deviation: float
    met: bool
    compression_ratio: float
    bit_rate: float
    eb_rel: float
    metrics: Optional[Dict] = dc_field(default=None, compare=False)
    status: str = "ok"
    error: Optional[str] = None
    error_code: Optional[str] = None
    attempts: int = 1
    #: Whether the result was served from the shared blob cache
    #: (:mod:`repro.cache`) instead of a fresh compression.  Excluded
    #: from equality so cached and fresh outcomes compare identical --
    #: the cache's correctness contract.
    cache_hit: bool = dc_field(default=False, compare=False)

    @property
    def ok(self) -> bool:
        return self.status == "ok"

    def as_dict(self) -> Dict:
        """JSON-friendly representation."""
        return asdict(self)

    @classmethod
    def from_dict(cls, doc: Dict) -> "FieldResult":
        """Rebuild a result from :meth:`as_dict` output -- how rows
        cross HTTP boundaries (the cluster scatter-gather path) and
        still compare equal to locally produced ones."""
        known = {f.name for f in dc_fields(cls)}
        return cls(**{k: v for k, v in doc.items() if k in known})


def _failed_result(
    dataset: str,
    field: str,
    target_psnr: float,
    *,
    error: str,
    error_code: str,
    attempts: int,
) -> FieldResult:
    nan = float("nan")
    return FieldResult(
        dataset=dataset,
        field=field,
        target_psnr=float(target_psnr),
        actual_psnr=nan,
        deviation=nan,
        met=False,
        compression_ratio=nan,
        bit_rate=nan,
        eb_rel=nan,
        status="failed",
        error=error,
        error_code=error_code,
        attempts=attempts,
    )


def failed_field_result(
    dataset: str,
    field: str,
    target_psnr: float,
    *,
    error: str,
    error_code: str,
    attempts: int,
) -> FieldResult:
    """Public constructor for a ``status="failed"`` row -- what a task
    degrades to when it exhausts its retry budget (resilient sweeps)
    or every cluster node that could run it (scatter-gather)."""
    return _failed_result(
        dataset, field, target_psnr,
        error=error, error_code=error_code, attempts=attempts,
    )


def run_field_task(
    dataset: str,
    field: str,
    target_psnr: float,
    scale: Optional[float] = None,
    refine: Optional[str] = None,
    codec: str = "sz",
    collect_trace: bool = False,
    profile_mem: bool = False,
    data_ref=None,
    cache=None,
    fault=None,
    attempt: int = 0,
) -> FieldResult:
    """Execute one task: regenerate the field, run the fixed-PSNR
    pipeline, measure the reconstruction.

    Importable at module top level so it pickles for worker processes.
    With ``collect_trace=True`` the compression runs under a local
    :class:`repro.observe.Trace`; the result's ``metrics`` dict carries
    the aggregated stage costs and the raw span records back across
    the process boundary.  ``profile_mem=True`` (implies
    ``collect_trace``) additionally runs under
    :class:`repro.telemetry.memory.profile_memory`, so every span
    record also carries its peak traced bytes -- the readings cross the
    process boundary inside the records like every other measurement.

    ``data_ref`` is an optional shared-memory payload reference (see
    :mod:`repro.parallel.shm`): when present the field data is read
    from the parent's segment instead of being regenerated, so large
    fields cross the process boundary exactly once.  The bytes are
    identical either way (the registry is deterministic), which is what
    the differential suite asserts.

    ``cache`` is an optional :class:`repro.cache.CacheStore` (it
    pickles into workers as just a path + bound): a prior run's blob
    for the same (data, codec, target, refine) is replayed with its
    recorded measurements instead of recompressing, and fresh blobs
    are written through for the next run.  Cached and fresh results
    are equal by construction (differential-tested).

    ``fault`` is an optional
    :class:`repro.resilience.inject.WorkerFault` evaluated before any
    real work -- the deterministic stand-in for worker crashes, hangs
    and corrupted results that the retry layer is tested against.
    ``attempt`` is the zero-based attempt index the executor passes so
    a bounded fault can fail N attempts and then succeed.
    """
    if fault is not None:
        from repro.resilience.inject import POISON, apply_worker_fault

        if apply_worker_fault(fault, field, attempt) is not None:
            return POISON  # type: ignore[return-value]  (poisoned on purpose)
    if data_ref is not None:
        from repro.parallel.shm import open_payload

        with open_payload(data_ref) as data:
            return _execute_field_task(
                dataset, field, target_psnr, data, refine, codec,
                collect_trace, profile_mem, cache,
            )
    # Imports inside the function keep worker start-up lean.
    from repro.datasets.registry import get_dataset

    ds = get_dataset(dataset, scale=scale)
    return _execute_field_task(
        dataset, field, target_psnr, ds.field(field), refine, codec,
        collect_trace, profile_mem, cache,
    )


def _cached_field_result(
    dataset: str, field: str, target_psnr: float, entry
) -> Optional[FieldResult]:
    """Rebuild a :class:`FieldResult` from a cache entry's recorded
    measurements, or None when the metadata is unusable (the caller
    then recompresses -- a malformed entry must never poison a sweep).
    """
    m = entry.meta.get("metrics") or {}
    try:
        actual = float(m["achieved_psnr"])
        return FieldResult(
            dataset=dataset,
            field=field,
            target_psnr=float(target_psnr),
            actual_psnr=actual,
            deviation=actual - float(target_psnr),
            met=bool(actual >= target_psnr),
            compression_ratio=float(m["ratio"]),
            bit_rate=float(m["bit_rate"]),
            eb_rel=float(m["eb_rel"]),
            cache_hit=True,
        )
    except (KeyError, TypeError, ValueError):
        return None


def _execute_field_task(
    dataset: str,
    field: str,
    target_psnr: float,
    data,
    refine: Optional[str],
    codec: str,
    collect_trace: bool,
    profile_mem: bool,
    cache=None,
) -> FieldResult:
    from repro.core.fixed_psnr import FixedPSNRCompressor
    from repro.metrics.distortion import psnr as measure_psnr

    cache_key = None
    if cache is not None:
        from repro.cache.store import blob_key, data_digest

        # Mirrors the CLI compress key exactly (same entropy default),
        # so `fpzc compress` of the identical field shares the entry.
        cache_key = blob_key(
            data_digest(data),
            codec=codec,
            mode="psnr",
            target=float(target_psnr),
            refine=refine,
            entropy="huffman",
        )
        entry = cache.get(cache_key)
        if entry is not None:
            hit = _cached_field_result(dataset, field, target_psnr, entry)
            if hit is not None:
                return hit
    comp = FixedPSNRCompressor(target_psnr, refine=refine, codec=codec)
    eb_rel = comp.derive_bound(data)
    metrics = None
    if collect_trace or profile_mem:
        local = observe.Trace()
        if profile_mem:
            from repro.telemetry.memory import profile_memory

            with observe.use_trace(local), profile_memory():
                blob = comp.compress(data)
        else:
            with observe.use_trace(local):
                blob = comp.compress(data)
        metrics = {
            "trace": local.as_dict(),
            "records": [r.as_dict() for r in local.records],
        }
    else:
        blob = comp.compress(data)
    recon = comp.decompress(blob)
    actual = measure_psnr(data, recon)
    result = FieldResult(
        dataset=dataset,
        field=field,
        target_psnr=float(target_psnr),
        actual_psnr=float(actual),
        deviation=float(actual - target_psnr),
        met=bool(actual >= target_psnr),
        compression_ratio=data.nbytes / len(blob),
        bit_rate=8.0 * len(blob) / data.size,
        eb_rel=float(eb_rel),
        metrics=metrics,
    )
    if cache is not None and cache_key is not None:
        cache.put(
            cache_key,
            blob,
            {
                "kind": "blob",
                "dataset": dataset,
                "field": field,
                "codec": codec,
                "mode": "psnr",
                "target": float(target_psnr),
                "metrics": {
                    "achieved_psnr": result.actual_psnr,
                    "ratio": result.compression_ratio,
                    "bit_rate": result.bit_rate,
                    "eb_rel": result.eb_rel,
                    "raw_bytes": int(data.nbytes),
                    "compressed_bytes": len(blob),
                },
            },
        )
    return result


def default_workers() -> int:
    """A safe default worker count: physical parallelism minus one."""
    return max(1, (os.cpu_count() or 2) - 1)


# ---------------------------------------------------------------------------
# resilient execution
# ---------------------------------------------------------------------------


def _classify_failure(exc: Optional[BaseException], result) -> Tuple[str, str]:
    """Map an attempt outcome to ``(error_code, message)``."""
    if exc is not None:
        return ErrorCode.TASK_FAILED, f"{type(exc).__name__}: {exc}"
    return (
        ErrorCode.POISONED_RESULT,
        f"worker returned {type(result).__name__!s} instead of a FieldResult",
    )


def _resilience_counters():
    from repro.telemetry.registry import metrics as _metrics

    reg = _metrics()
    return {
        "failures": reg.counter(
            "resilience.task_failures_total",
            help="task attempts that failed (any cause)",
        ),
        # Deadline trips depend on wall-clock scheduling, and backoff
        # totals on the (completion-ordered) jitter draw sequence --
        # neither belongs in golden comparisons.
        "timeouts": reg.counter(
            "resilience.task_timeouts_total",
            help="task attempts that exceeded the per-task deadline",
            deterministic=False,
        ),
        "poisoned": reg.counter(
            "resilience.poisoned_results_total",
            help="task attempts that returned a non-FieldResult",
        ),
        "retries": reg.counter(
            "resilience.retries_total", help="task attempts re-scheduled"
        ),
        "exhausted": reg.counter(
            "resilience.tasks_exhausted_total",
            help="tasks that failed every attempt and degraded to a "
            "failed result",
        ),
        "backoff": reg.counter(
            "resilience.backoff_seconds_total",
            help="total scheduled backoff delay",
            deterministic=False,
        ),
    }


class _TaskState:
    """Book-keeping for one task's attempts (parent side)."""

    __slots__ = ("index", "task", "attempt", "last_error")

    def __init__(self, index: int, task: Tuple):
        self.index = index
        self.task = task
        self.attempt = 0  # zero-based index of the attempt in flight
        self.last_error: Tuple[str, str] = (ErrorCode.TASK_FAILED, "")


def _record_failure(state, code, message, policy, rng, counters):
    """Account one failed attempt.  Returns the backoff delay before
    the next attempt, or ``None`` when the budget is exhausted."""
    state.last_error = (code, message)
    counters["failures"].inc()
    if code == ErrorCode.TASK_TIMEOUT:
        counters["timeouts"].inc()
    elif code == ErrorCode.POISONED_RESULT:
        counters["poisoned"].inc()
    if state.attempt >= policy.max_retries:
        counters["exhausted"].inc()
        return None
    state.attempt += 1
    counters["retries"].inc()
    delay = policy.delay(state.attempt, rng)
    counters["backoff"].inc(delay)
    return delay


def _exhausted_result(state) -> FieldResult:
    code, message = state.last_error
    dataset, field, target = state.task[0], state.task[1], state.task[2]
    return _failed_result(
        dataset,
        field,
        target,
        error=message,
        error_code=code,
        attempts=state.attempt + 1,
    )


def _validated(result) -> bool:
    return isinstance(result, FieldResult)


def _with_attempts(result: FieldResult, attempts: int) -> FieldResult:
    if attempts == result.attempts:
        return result
    import dataclasses

    return dataclasses.replace(result, attempts=attempts)


def _sweep_inline_with_retry(tasks, policy, fault, counters):
    rng = policy.rng()
    results: List[FieldResult] = []
    for index, task in enumerate(tasks):
        state = _TaskState(index, task)
        while True:
            start = time.monotonic()
            exc = None
            result = None
            try:
                result = run_field_task(*task, fault=fault, attempt=state.attempt)
            except Exception as e:  # noqa: BLE001 -- worker faults are arbitrary
                exc = e
            elapsed = time.monotonic() - start
            if (
                policy.task_timeout is not None
                and elapsed > policy.task_timeout
            ):
                # Inline mode cannot preempt, so the deadline is
                # enforced post-hoc: a late result is discarded to keep
                # timeout semantics identical to the pool path.
                code, message = ErrorCode.TASK_TIMEOUT, (
                    f"attempt took {elapsed:.3f}s "
                    f"(deadline {policy.task_timeout:.3f}s)"
                )
            elif exc is None and _validated(result):
                results.append(_with_attempts(result, state.attempt + 1))
                break
            else:
                code, message = _classify_failure(exc, result)
            delay = _record_failure(
                state, code, message, policy, rng, counters
            )
            if delay is None:
                results.append(_exhausted_result(state))
                break
            time.sleep(delay)
    return results


def _sweep_pool_with_retry(tasks, policy, fault, counters, n_workers,
                           external_pool=None):
    rng = policy.rng()
    results: List[Optional[FieldResult]] = [None] * len(tasks)
    states = [_TaskState(i, t) for i, t in enumerate(tasks)]
    inflight: Dict = {}  # future -> (state, deadline or None)
    waiting: List[Tuple[float, _TaskState]] = []  # (ready_at, state)

    def submit(state: _TaskState) -> None:
        fut = pool.submit(
            run_field_task, *state.task, fault=fault, attempt=state.attempt
        )
        deadline = (
            time.monotonic() + policy.task_timeout
            if policy.task_timeout is not None
            else None
        )
        inflight[fut] = (state, deadline)

    def settle(state: _TaskState, code: str, message: str) -> None:
        delay = _record_failure(state, code, message, policy, rng, counters)
        if delay is None:
            results[state.index] = _exhausted_result(state)
        else:
            waiting.append((time.monotonic() + delay, state))

    # Nothing may sit between pool creation and the try: an exception
    # in that gap would leak the pool's worker processes (the finally
    # below is the only shutdown path for this non-context-managed
    # executor -- it must cover *every* exit).  An external pool (a
    # long-lived Executor's) is never shut down here; note that an
    # abandoned hung attempt then keeps one of its workers busy until
    # the attempt finishes on its own.
    pool = external_pool or ProcessPoolExecutor(max_workers=n_workers)
    try:
        for state in states:
            submit(state)
        while inflight or waiting:
            now = time.monotonic()
            for ready_at, state in list(waiting):
                if ready_at <= now:
                    waiting.remove((ready_at, state))
                    submit(state)
            if not inflight:
                next_ready = min(ready_at for ready_at, _ in waiting)
                time.sleep(max(0.0, next_ready - time.monotonic()))
                continue
            timeout = None
            deadlines = [dl for _, dl in inflight.values() if dl is not None]
            horizons = deadlines + [ready_at for ready_at, _ in waiting]
            if horizons:
                timeout = max(0.0, min(horizons) - time.monotonic())
            done, _pending = wait(
                set(inflight), timeout=timeout, return_when=FIRST_COMPLETED
            )
            for fut in done:
                state, _deadline = inflight.pop(fut)
                exc = fut.exception()
                result = None if exc is not None else fut.result()
                if exc is None and _validated(result):
                    results[state.index] = _with_attempts(
                        result, state.attempt + 1
                    )
                else:
                    settle(state, *_classify_failure(exc, result))
            now = time.monotonic()
            for fut, (state, deadline) in list(inflight.items()):
                if deadline is not None and now >= deadline:
                    # The attempt is hung (or just too slow): abandon
                    # the future -- its eventual result is ignored --
                    # and account a timeout.
                    fut.cancel()
                    del inflight[fut]
                    settle(
                        state,
                        ErrorCode.TASK_TIMEOUT,
                        f"attempt exceeded the {policy.task_timeout:.3f}s "
                        "deadline",
                    )
    finally:
        # Don't block on abandoned (hung) workers; queued futures are
        # cancelled, running ones are left to finish in the background.
        if external_pool is None:
            pool.shutdown(wait=False, cancel_futures=True)
    return results


def sweep_dataset(
    dataset: str,
    targets: Sequence[float],
    fields: Optional[Sequence[str]] = None,
    scale: Optional[float] = None,
    refine: Optional[str] = None,
    codec: str = "sz",
    n_workers: int = 0,
    collect_trace: bool = False,
    profile_mem: bool = False,
    retry=None,
    fault=None,
    transport: str = "auto",
    executor: Optional[Executor] = None,
    cache=None,
) -> List[FieldResult]:
    """Run every (field, target) combination of a data set.

    Returns results ordered by (target, field registry order) so
    downstream tables are deterministic regardless of scheduling.
    With ``collect_trace=True`` each task records a stage-level trace
    (see :func:`run_field_task`); if a trace is also active in *this*
    process, the per-worker span records are merged into it under a
    ``field:<name>`` prefix.  ``profile_mem=True`` adds per-span peak
    memory to every task's records (see
    :mod:`repro.telemetry.memory`).

    ``retry`` is an optional
    :class:`repro.resilience.retry.RetryPolicy`.  Without one, any
    task exception propagates (fail-fast, the historical behaviour).
    With one, failing attempts are retried with backoff and a task
    that exhausts its budget yields a ``status="failed"`` result --
    the sweep always returns one :class:`FieldResult` per task.
    ``fault`` optionally injects a deterministic
    :class:`repro.resilience.inject.WorkerFault` into every task (the
    CI fault matrix's hook); it requires ``retry``.

    ``transport`` selects how field payloads reach the workers:
    ``"pickle"`` ships only names (each worker regenerates its field),
    ``"shm"``/``"auto"`` materialize each field once in the parent and
    share it through the zero-copy :mod:`repro.parallel.shm` plane --
    profitable whenever a field serves more tasks than there are
    workers.  The outputs are bit-identical in every mode; shm
    silently degrades to pickle when unavailable.

    ``executor`` runs the sweep on a long-lived :class:`Executor`
    instead of a per-call pool: ``n_workers``/``transport`` are taken
    from the executor, field payloads go through its ``share`` cache
    (so a second sweep over the same dataset re-uses the segments), and
    nothing is torn down afterwards.

    ``cache`` is an optional :class:`repro.cache.CacheStore`: every
    task consults and feeds the shared blob cache (see
    :func:`run_field_task`), so a repeated sweep replays from disk.
    Hit results carry ``cache_hit=True`` but compare equal to fresh
    ones.
    """
    from repro.datasets.registry import get_dataset
    from repro.parallel.shm import ShmArena, ShmArrayRef, resolve_transport
    from repro.telemetry.registry import metrics as _metrics

    if fault is not None and retry is None:
        raise ParameterError(
            "fault injection requires a RetryPolicy (fail-fast sweeps "
            "would simply crash)"
        )
    ds = get_dataset(dataset, scale=scale)
    names = list(fields) if fields is not None else ds.field_names
    unknown = set(names) - set(ds.field_names)
    if unknown:
        raise ParameterError(f"unknown fields for {dataset}: {sorted(unknown)}")
    arena: Optional[ShmArena] = None
    refs: Dict[str, Optional[object]] = {}
    if executor is not None:
        n_workers = 0 if executor.inline else executor.n_workers
        if executor.kind == "thread":
            # Same address space: hand workers the array itself.
            for fname in names:
                refs[fname] = executor.share(
                    ("field", dataset, scale, fname),
                    lambda f=fname: ds.field(f),
                )
        elif executor.arena is not None:
            for fname in names:
                payload = executor.share(
                    ("field", dataset, scale, fname),
                    lambda f=fname: ds.field(f),
                )
                # A guard fallback means the worker is better off
                # regenerating the field than receiving it by pickle.
                refs[fname] = (
                    payload if isinstance(payload, ShmArrayRef) else None
                )
    elif resolve_transport(transport, n_workers):
        arena = ShmArena()
        for fname in names:
            ref = arena.share(ds.field(fname))
            # A guard fallback means the worker is better off
            # regenerating the field than receiving it by pickle.
            refs[fname] = ref if isinstance(ref, ShmArrayRef) else None
    tasks: List[Tuple] = [
        (dataset, fname, float(t), scale, refine, codec, collect_trace,
         profile_mem, refs.get(fname), cache)
        for t in targets
        for fname in names
    ]
    _metrics().counter("parallel.field_tasks_total").inc(len(tasks))
    external_pool = (
        executor.pool if executor is not None and not executor.inline else None
    )
    try:
        if retry is None:
            if n_workers <= 0:
                results = [run_field_task(*t) for t in tasks]
            elif external_pool is not None:
                futures = [
                    external_pool.submit(run_field_task, *t) for t in tasks
                ]
                results = [f.result() for f in futures]
            else:
                with ProcessPoolExecutor(max_workers=n_workers) as pool:
                    results = list(
                        pool.map(run_field_task, *zip(*tasks), chunksize=1)
                    )
        else:
            counters = _resilience_counters()
            if n_workers <= 0:
                results = _sweep_inline_with_retry(
                    tasks, retry, fault, counters
                )
            else:
                results = _sweep_pool_with_retry(
                    tasks, retry, fault, counters, n_workers,
                    external_pool=external_pool,
                )
    finally:
        if arena is not None:
            arena.close()
    trace = observe.current_trace()
    if trace.enabled:
        for r in results:
            if r.metrics:
                trace.merge(r.metrics["records"], prefix=(f"field:{r.field}",))
    return results
