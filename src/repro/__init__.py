"""Fixed-PSNR lossy compression for scientific data.

Reproduction of Tao, Di, Liang, Chen, Cappello, *"Fixed-PSNR Lossy
Compression for Scientific Data"*, IEEE CLUSTER 2018 (arXiv:1805.07384).

The package provides:

* :mod:`repro.core` -- the paper's contribution: closed-form PSNR/MSE
  estimation for l2-norm-preserving lossy compressors and the
  fixed-PSNR error-control mode (plus fixed-NRMSE/fixed-MSE extensions
  and a histogram-refined estimator for low-PSNR targets).
* :mod:`repro.sz` -- a complete SZ-1.4-style prediction-based
  error-bounded compressor (Lorenzo prediction, error-controlled
  uniform quantization, Huffman + GZIP entropy stages), with an exact
  vectorized implementation validated against a literal sequential
  reference.
* :mod:`repro.transform` -- an orthogonal-transform (block-DCT) codec
  exercising Theorem 2 of the paper.
* :mod:`repro.datasets` -- synthetic stand-ins for the CESM-ATM,
  Hurricane ISABEL and NYX data sets of the paper's Table I.
* :mod:`repro.metrics`, :mod:`repro.encoding`, :mod:`repro.io`,
  :mod:`repro.parallel`, :mod:`repro.cli` -- supporting subsystems.

Quickstart
----------
>>> import numpy as np
>>> from repro import compress_fixed_psnr, decompress, psnr
>>> data = np.cumsum(np.random.default_rng(0).normal(size=10000)).reshape(100, 100)
>>> blob = compress_fixed_psnr(data, target_psnr=80.0)
>>> recon = decompress(blob)
>>> abs(psnr(data, recon) - 80.0) < 2.0
True
"""

from repro.version import __version__
from repro import observe
from repro import resilience
from repro.observe import Trace, current_trace, use_trace
from repro.errors import (
    ReproError,
    CompressionError,
    DecompressionError,
    FormatError,
    ParameterError,
)
from repro.metrics.distortion import mse, nrmse, psnr, max_abs_error, value_range
from repro.metrics.ratio import compression_ratio, bit_rate
from repro.core.fixed_psnr import (
    compress_fixed_psnr,
    psnr_to_relative_bound,
    psnr_to_absolute_bound,
    estimate_psnr_from_bound,
)
from repro.core.psnr_model import (
    uniform_quantization_psnr,
    uniform_quantization_mse,
    sz_psnr_estimate,
    QuantizationModel,
)
from repro.sz.compressor import SZCompressor, compress, decompress
from repro.transform.compressor import TransformCompressor

__all__ = [
    "__version__",
    "observe",
    "resilience",
    "Trace",
    "current_trace",
    "use_trace",
    "ReproError",
    "CompressionError",
    "DecompressionError",
    "FormatError",
    "ParameterError",
    "mse",
    "nrmse",
    "psnr",
    "max_abs_error",
    "value_range",
    "compression_ratio",
    "bit_rate",
    "compress_fixed_psnr",
    "psnr_to_relative_bound",
    "psnr_to_absolute_bound",
    "estimate_psnr_from_bound",
    "uniform_quantization_psnr",
    "uniform_quantization_mse",
    "sz_psnr_estimate",
    "QuantizationModel",
    "SZCompressor",
    "compress",
    "decompress",
    "TransformCompressor",
]
