"""Stage-level observability for the compression pipeline.

The pipeline (predict -> quantize -> encode -> pack) is tunable only
once each stage reports its own cost: SZ3 exposes per-stage timings to
drive its autotuner, and FRaZ's fixed-ratio search loop is built
entirely on per-run measurements.  This module is the repo's
foundation for both: a dependency-free ``Trace``/``Span`` API with

* **monotonic timers** per span (``time.perf_counter``),
* **exact counters** (byte accounting, symbol counts, quantization
  stats such as bin size / hit ratio / outlier count),
* **picklable span records**, so per-worker traces cross process
  boundaries and merge into the parent trace,
* a **no-op singleton** active by default, so instrumented hot paths
  pay essentially nothing when tracing is off.

Determinism contract
--------------------
Counters are exact and reproducible run-to-run; wall-clock durations
are not.  Serialization therefore splits the two: ``Trace.as_dict()``
puts counters under ``"counters"`` and durations under ``"timing"``,
and golden/regression tests must compare only the deterministic part
(``Trace.deterministic_dict()``).  Telemetry never enters the
container format (see DESIGN.md).

Usage
-----
>>> from repro import observe
>>> tr = observe.Trace()
>>> with observe.use_trace(tr):
...     blob = compressor.compress(data)      # doctest: +SKIP
>>> print(tr.render())                        # doctest: +SKIP

Instrumented call sites follow one pattern::

    t = observe.current_trace()
    with t.span("sz.entropy") as sp:
        ...
        sp.set("total_bits", total_bits)

When no trace is active, ``t`` is :data:`NULL_TRACE` and ``t.span``
returns a shared no-op span: no record is allocated, no timer is read.
Counter computations that are themselves costly should additionally be
guarded with ``if t.enabled:``.
"""

from __future__ import annotations

import json
import os
import threading
import time
from dataclasses import dataclass, field
from typing import Dict, Iterable, List, Optional, Sequence, Tuple

__all__ = [
    "SCHEMA_VERSION",
    "Span",
    "SpanRecord",
    "Trace",
    "NullTrace",
    "NULL_TRACE",
    "current_trace",
    "use_trace",
    "account_container_bytes",
    "traced_pack",
    "add_span_hook",
    "remove_span_hook",
    "FRAMING_KEY",
]

#: Version of the JSON trace schema (bump on incompatible change).
SCHEMA_VERSION = 1

#: Counter key holding container framing bytes (header + metadata +
#: stream names/length/CRC fields) so byte counters sum to the total.
FRAMING_KEY = "bytes.framing"


@dataclass
class SpanRecord:
    """One finished span: a path in the stage tree plus its numbers.

    Plain data (tuple/str/float/dict) so records pickle cheaply across
    process boundaries and serialize to JSON without custom hooks.
    ``counters`` are additive quantities (bytes, symbol counts) that
    sum when spans aggregate; ``gauges`` are per-call readings (bin
    size, hit ratio) that average instead.  ``duration_s`` is
    wall-clock and **non-deterministic**; everything else is exact.

    ``t_start``/``pid``/``tid`` place the span on a timeline: the
    ``time.perf_counter`` reading when the span opened and the OS
    process/thread that ran it.  They exist so exported traces (Chrome
    trace-event JSON, see :mod:`repro.telemetry.export`) render pool-
    and shm-mode sweeps as parallel per-process tracks; like
    ``duration_s`` they are wall-clock data and **never** enter the
    deterministic views.  Records deserialized from an older producer
    default all three to 0.
    """

    path: Tuple[str, ...]
    seq: int
    duration_s: float
    counters: Dict[str, float] = field(default_factory=dict)
    gauges: Dict[str, float] = field(default_factory=dict)
    t_start: float = 0.0
    pid: int = 0
    tid: int = 0

    def as_dict(self) -> Dict:
        """JSON/pickle-friendly representation."""
        return {
            "path": list(self.path),
            "seq": self.seq,
            "duration_s": self.duration_s,
            "counters": dict(self.counters),
            "gauges": dict(self.gauges),
            "t_start": self.t_start,
            "pid": self.pid,
            "tid": self.tid,
        }

    @classmethod
    def from_dict(cls, d: Dict) -> "SpanRecord":
        """Inverse of :meth:`as_dict` (used when merging worker traces).
        Tolerates dicts from producers that predate the timeline
        fields."""
        return cls(
            path=tuple(str(p) for p in d["path"]),
            seq=int(d["seq"]),
            duration_s=float(d["duration_s"]),
            counters={str(k): v for k, v in dict(d["counters"]).items()},
            gauges={str(k): v for k, v in dict(d.get("gauges", {})).items()},
            t_start=float(d.get("t_start", 0.0)),
            pid=int(d.get("pid", 0)),
            tid=int(d.get("tid", 0)),
        )


class Span:
    """A live timed region.  Use as a context manager via
    :meth:`Trace.span`; closing appends a :class:`SpanRecord` to the
    owning trace."""

    __slots__ = ("_trace", "name", "counters", "gauges", "_t0")

    def __init__(self, trace: "Trace", name: str) -> None:
        self._trace = trace
        self.name = name
        self.counters: Dict[str, float] = {}
        self.gauges: Dict[str, float] = {}
        self._t0 = 0.0

    # -- counters -------------------------------------------------------

    def set(self, key: str, value) -> None:
        """Set a gauge: a per-call reading that *averages* when spans
        with the same path aggregate (bin size, hit ratio, ids)."""
        self.gauges[key] = value

    def count(self, key: str, n=1) -> None:
        """Increment a counter: an additive quantity that *sums* on
        aggregation (bytes, symbols, outliers)."""
        self.counters[key] = self.counters.get(key, 0) + n

    def add_bytes(self, stream: str, n: int) -> None:
        """Account ``n`` bytes to the named stream (key ``bytes.<stream>``)."""
        self.count(f"bytes.{stream}", int(n))

    # -- context management ---------------------------------------------

    def __enter__(self) -> "Span":
        self._trace._push(self)
        if _SPAN_HOOKS:
            for on_enter, _ in _SPAN_HOOKS:
                try:
                    on_enter(self)
                except Exception:
                    # Hooks are observers; a broken one (e.g. tracemalloc
                    # stopped externally mid-run) must not abort the
                    # pipeline operation it observes.
                    pass
        self._t0 = time.perf_counter()
        return self

    def __exit__(self, exc_type, exc, tb) -> bool:
        # Read the clock first so hook work (e.g. tracemalloc reads)
        # never pollutes the span's own duration.
        duration = time.perf_counter() - self._t0
        if _SPAN_HOOKS:
            for _, on_exit in _SPAN_HOOKS:
                try:
                    on_exit(self)
                except Exception:
                    pass
        self._trace._pop(self, duration)
        return False


class _NullSpan:
    """Shared do-nothing span: the disabled-tracing fast path.

    A single module-level instance is handed to every call site, so
    instrumentation allocates nothing when tracing is off.
    """

    __slots__ = ()

    def set(self, key: str, value) -> None:
        pass

    def count(self, key: str, n=1) -> None:
        pass

    gauges: Dict[str, float] = {}
    counters: Dict[str, float] = {}

    def add_bytes(self, stream: str, n: int) -> None:
        pass

    def __enter__(self) -> "_NullSpan":
        return self

    def __exit__(self, exc_type, exc, tb) -> bool:
        return False


_NULL_SPAN = _NullSpan()


class NullTrace:
    """Disabled trace: ``span()`` returns the shared no-op span and no
    records are ever kept."""

    __slots__ = ()

    enabled = False
    records: Tuple[SpanRecord, ...] = ()

    def span(self, name: str) -> _NullSpan:
        return _NULL_SPAN


#: The module-wide disabled trace (also the default active trace).
NULL_TRACE = NullTrace()


class Trace:
    """Collects :class:`SpanRecord` instances from nested spans.

    Nesting is tracked with an explicit stack, so ``span("entropy")``
    opened inside ``span("sz.compress")`` records the path
    ``("sz.compress", "entropy")``.  Records from worker processes are
    grafted in with :meth:`merge`.
    """

    enabled = True

    def __init__(self) -> None:
        self.records: List[SpanRecord] = []
        self._stack: List[Tuple[Span, Tuple[str, ...]]] = []
        self._seq = 0

    # -- recording ------------------------------------------------------

    def span(self, name: str) -> Span:
        """Open a new (not yet entered) span named ``name``."""
        return Span(self, name)

    def _push(self, span: Span) -> None:
        parent = self._stack[-1][1] if self._stack else ()
        self._stack.append((span, parent + (span.name,)))

    def _pop(self, span: Span, duration: float) -> None:
        top, path = self._stack.pop()
        if top is not span:  # pragma: no cover - API misuse guard
            raise RuntimeError("span closed out of order")
        self.records.append(
            SpanRecord(
                path=path,
                seq=self._seq,
                duration_s=duration,
                counters=dict(span.counters),
                gauges=dict(span.gauges),
                # Timeline placement: read at record time so a record
                # created inside a worker carries the *worker's* pid,
                # which is what lets exported traces draw one track per
                # process (see repro.telemetry.export).
                t_start=span._t0,
                pid=os.getpid(),
                tid=threading.get_native_id(),
            )
        )
        self._seq += 1

    def merge(
        self,
        records: Iterable,
        prefix: Sequence[str] = (),
    ) -> None:
        """Graft ``records`` (SpanRecords or their ``as_dict`` forms,
        e.g. shipped back from a worker process) under ``prefix``."""
        base = tuple(prefix)
        if self._stack:
            base = self._stack[-1][1] + base
        for rec in records:
            if isinstance(rec, dict):
                rec = SpanRecord.from_dict(rec)
            self.records.append(
                SpanRecord(
                    path=base + tuple(rec.path),
                    seq=self._seq,
                    duration_s=rec.duration_s,
                    counters=dict(rec.counters),
                    gauges=dict(rec.gauges),
                    # Keep the producer's timeline placement: a worker
                    # record merged into the parent still happened in
                    # the worker's process at the worker's clock.
                    t_start=rec.t_start,
                    pid=rec.pid,
                    tid=rec.tid,
                )
            )
            self._seq += 1

    # -- aggregation and serialization ----------------------------------

    def aggregate(self) -> Dict[Tuple[str, ...], Dict]:
        """Collapse repeated paths: per path, call count, summed
        duration, summed counters and averaged gauges.  Ordered by
        first appearance."""
        out: Dict[Tuple[str, ...], Dict] = {}
        gauge_hits: Dict[Tuple[Tuple[str, ...], str], int] = {}
        for rec in sorted(self.records, key=lambda r: r.seq):
            slot = out.setdefault(
                rec.path,
                {"calls": 0, "duration_s": 0.0, "counters": {}, "gauges": {}},
            )
            slot["calls"] += 1
            slot["duration_s"] += rec.duration_s
            for k, v in rec.counters.items():
                slot["counters"][k] = slot["counters"].get(k, 0) + v
            for k, v in rec.gauges.items():
                slot["gauges"][k] = slot["gauges"].get(k, 0) + v
                gauge_hits[(rec.path, k)] = gauge_hits.get((rec.path, k), 0) + 1
        for (path, k), hits in gauge_hits.items():
            out[path]["gauges"][k] /= hits
        return out

    def as_dict(self, include_timing: bool = True) -> Dict:
        """Aggregated trace as a JSON-able dict.

        Counters live under ``"counters"`` (deterministic); wall-clock
        data under ``"timing"`` (non-deterministic, dropped when
        ``include_timing=False``).
        """
        spans = []
        for path, agg in self.aggregate().items():
            entry = {
                "path": "/".join(path),
                "calls": agg["calls"],
                "counters": dict(agg["counters"]),
                "gauges": dict(agg["gauges"]),
            }
            if include_timing:
                entry["timing"] = {"duration_s": agg["duration_s"]}
            spans.append(entry)
        return {"schema": SCHEMA_VERSION, "spans": spans}

    def deterministic_dict(self) -> Dict:
        """The golden-comparable part of the trace (no timings)."""
        return self.as_dict(include_timing=False)

    def to_json(self, include_timing: bool = True, indent: Optional[int] = 2) -> str:
        """Serialize :meth:`as_dict` as JSON text."""
        return json.dumps(
            self.as_dict(include_timing=include_timing),
            indent=indent,
            sort_keys=True,
        )

    def total_bytes(self, path: Optional[Tuple[str, ...]] = None) -> int:
        """Sum of all ``bytes.*`` counters (optionally for one path)."""
        total = 0
        for rec in self.records:
            if path is not None and rec.path != path:
                continue
            for k, v in rec.counters.items():
                if k.startswith("bytes."):
                    total += int(v)
        return total

    def render(self, show_timing: bool = True) -> str:
        """Human-readable stage-cost tree (what ``--trace`` prints).

        Parents print before children (records close child-first, so
        this re-sorts into tree order); siblings keep first-seen order.
        Intermediate path components that never closed a span of their
        own (e.g. merge prefixes) render as bare group labels.
        """
        agg = self.aggregate()
        first_seq = {
            path: min(r.seq for r in self.records if r.path == path)
            for path in agg
        }
        # Ensure every ancestor exists as a (possibly bare) tree node,
        # ordered where its earliest descendant appeared.
        nodes = set(agg)
        for path in list(agg):
            for i in range(1, len(path)):
                anc = path[:i]
                nodes.add(anc)
                first_seq[anc] = min(first_seq.get(anc, first_seq[path]), first_seq[path])
        children: Dict[Tuple[str, ...], List[Tuple[str, ...]]] = {}
        for path in nodes:
            children.setdefault(path[:-1], []).append(path)

        def order_key(path):
            return first_seq.get(path, float("inf"))

        lines = ["stage-cost tree (counters exact; timings non-deterministic)"]

        def emit(path) -> None:
            indent = "  " * (len(path) - 1)
            cols = [f"{indent}{path[-1]:<{max(1, 34 - len(indent))}}"]
            slot = agg.get(path)
            if slot is not None:
                if show_timing:
                    cols.append(f"{1e3 * slot['duration_s']:9.3f} ms")
                if slot["calls"] > 1:
                    cols.append(f"x{slot['calls']}")
                counters = slot["counters"]
                byte_keys = sorted(k for k in counters if k.startswith("bytes."))
                other = sorted(k for k in counters if not k.startswith("bytes."))
                for k in byte_keys + other:
                    v = counters[k]
                    if isinstance(v, float) and not float(v).is_integer():
                        cols.append(f"{k}={v:.6g}")
                    else:
                        cols.append(f"{k}={int(v)}")
                for k in sorted(slot["gauges"]):
                    v = slot["gauges"][k]
                    if isinstance(v, float) and not float(v).is_integer():
                        cols.append(f"{k}={v:.6g}")
                    else:
                        cols.append(f"{k}={int(v)}")
            lines.append("  ".join(cols).rstrip())
            for child in sorted(children.get(path, ()), key=order_key):
                emit(child)

        for root in sorted(children.get((), ()), key=order_key):
            emit(root)
        return "\n".join(lines)


# -- span hooks ---------------------------------------------------------

#: Registered ``(on_enter, on_exit)`` pairs, called for every *live*
#: span (never for the disabled-path no-op span).  The memory profiler
#: (:mod:`repro.telemetry.memory`) is the canonical client.  The empty
#: default keeps the hot path at one truthiness check.
_SPAN_HOOKS: List[Tuple] = []


def add_span_hook(on_enter, on_exit) -> None:
    """Register a span hook: ``on_enter(span)`` runs when a span opens
    (after it joins the stack, before its timer starts); ``on_exit(span)``
    runs when it closes (after its timer stops, before its record is
    appended -- so hooks may still write gauges/counters).  Exceptions
    raised by hooks are swallowed: observers never abort the pipeline
    operation they observe."""
    _SPAN_HOOKS.append((on_enter, on_exit))


def remove_span_hook(on_enter, on_exit) -> None:
    """Unregister a hook pair registered with :func:`add_span_hook`."""
    try:
        _SPAN_HOOKS.remove((on_enter, on_exit))
    except ValueError:
        pass


# -- active-trace management -------------------------------------------

_ACTIVE: object = NULL_TRACE


def current_trace():
    """The trace instrumented call sites should report to.  Returns
    :data:`NULL_TRACE` unless a trace was activated via
    :func:`use_trace`."""
    return _ACTIVE


class use_trace:
    """Context manager installing ``trace`` as the active trace.

    Re-entrant in the sense that the previous active trace is restored
    on exit, so nested activations (e.g. a worker trace inside tests)
    behave sanely.
    """

    def __init__(self, trace) -> None:
        self.trace = trace
        self._prev: object = NULL_TRACE

    def __enter__(self):
        global _ACTIVE
        self._prev = _ACTIVE
        _ACTIVE = self.trace
        return self.trace

    def __exit__(self, exc_type, exc, tb) -> bool:
        global _ACTIVE
        _ACTIVE = self._prev
        return False


def account_container_bytes(span, streams, total_size: int) -> None:
    """Record exact byte accounting for a serialized container.

    One ``bytes.<stream>`` counter per named stream payload plus
    ``bytes.framing`` for the header/metadata/stream framing, so that
    the span's byte counters sum **exactly** to ``total_size`` (the
    acceptance invariant of the trace regression tests).
    """
    payload_total = 0
    for name, payload in streams:
        span.add_bytes(name, len(payload))
        payload_total += len(payload)
    span.count(FRAMING_KEY, int(total_size) - payload_total)


def traced_pack(container) -> bytes:
    """Serialize ``container`` under a ``pack`` span with exact byte
    accounting.

    ``container`` is duck-typed (anything with ``streams`` and
    ``to_bytes()``), keeping this module dependency-free.  This is the
    one serialization wrapper every codec path shares, so the
    byte-accounting invariant -- ``bytes.framing`` plus all per-stream
    counters sum exactly to the container size -- holds for every
    container this package produces, constant-field short-circuits
    included.
    """
    trace = current_trace()
    with trace.span("pack") as sp:
        blob = container.to_bytes()
        if trace.enabled:
            account_container_bytes(sp, container.streams, len(blob))
    return blob
