"""Refined error-bound derivation for low-PSNR targets (future work).

Why the closed form drifts at low targets
-----------------------------------------
Eq. 6 models the quantization error as uniform on ``[-eb, +eb]``.  For
a prediction-based codec with midpoint reconstruction the reconstructed
values live on the lattice ``anchor + 2*eb*Z`` (see
:mod:`repro.sz.quantizer`), so the *actual* pointwise error is the
"phase" of each value on that lattice.  With narrow bins the phase is
equidistributed and the uniform model is excellent -- the paper's
Table II at 60-120 dB.  With bins that are a sizeable fraction of the
value range (20-40 dB targets: a handful of bins across the whole
range) the phase distribution follows the data distribution, and the
measured PSNR deviates by several dB, usually upward -- exactly the
low-quality degradation the paper reports and defers to future work.

The refinement implemented here replaces the uniform assumption with
the **measured lattice-phase MSE of the field itself**: pick the bin
size whose empirical snap error hits the target MSE.  For this
package's SZ codec the reconstruction *is* the lattice snap, so the
estimator is exact up to subsampling noise, at every target.

A second, analysis-grade estimator based on the prediction-error
histogram (Eq. 3 with an empirical ``P``) lives in
:class:`repro.core.psnr_model.QuantizationModel`; it is what Figure 1
visualises.
"""

from __future__ import annotations

import numpy as np

from repro.core.fixed_psnr import psnr_to_relative_bound
from repro.core.psnr_model import psnr_to_mse
from repro.errors import ParameterError

__all__ = [
    "empirical_quantization_mse",
    "lattice_phase_mse",
    "refined_absolute_bound",
    "refined_relative_bound",
]

#: Sample size used during calibration; keeps the bisection cheap on
#: huge fields without hurting the estimate.
DEFAULT_SAMPLE = 1 << 18


def empirical_quantization_mse(samples: np.ndarray, delta: float) -> float:
    """Measured MSE of a zero-centred uniform midpoint quantizer.

    ``q(x) = delta * rint(x/delta)``; returns ``mean((x - q(x))**2)``.
    This is the exact second-stage distortion of Theorem 1 for a given
    quantizer-input sample (prediction errors or transform
    coefficients).
    """
    if delta <= 0 or not np.isfinite(delta):
        raise ParameterError("delta must be positive and finite")
    s = np.asarray(samples, dtype=np.float64).ravel()
    if s.size == 0:
        raise ParameterError("need at least one sample")
    err = s - delta * np.rint(s / delta)
    return float(np.mean(err * err))


def lattice_phase_mse(values: np.ndarray, anchor: float, delta: float) -> float:
    """Measured MSE of snapping ``values`` to the lattice
    ``anchor + delta*Z`` -- the exact reconstruction error of the SZ
    codec in this package."""
    if delta <= 0 or not np.isfinite(delta):
        raise ParameterError("delta must be positive and finite")
    v = np.asarray(values, dtype=np.float64).ravel()
    if v.size == 0:
        raise ParameterError("need at least one value")
    err = (v - anchor) - delta * np.rint((v - anchor) / delta)
    return float(np.mean(err * err))


def _subsample(x: np.ndarray, limit: int, seed: int = 0) -> np.ndarray:
    flat = np.asarray(x, dtype=np.float64).ravel()
    if flat.size <= limit:
        return flat
    rng = np.random.default_rng(seed)
    return flat[rng.choice(flat.size, size=limit, replace=False)]


def _drop_fill(x: np.ndarray, fill_value) -> np.ndarray:
    """Remove sentinel/fill points before analysing the distribution."""
    if fill_value is None:
        return x
    flat = np.asarray(x, dtype=np.float64).ravel()
    if np.isnan(fill_value):
        return flat[~np.isnan(flat)]
    return flat[flat != fill_value]


def refined_absolute_bound(
    data,
    target_psnr: float,
    sample_limit: int = DEFAULT_SAMPLE,
    max_iterations: int = 80,
    fill_value=None,
) -> float:
    """Absolute error bound whose *measured* lattice-phase MSE on this
    field equals the target PSNR's MSE.

    Strategy: start from the closed-form bound (Eq. 8), bracket the
    target MSE on a geometric grid (the phase MSE saturates at
    ``mean((x-anchor)**2)`` once a single bin swallows the data; it is
    noisy-monotone below saturation), then bisect geometrically.  Falls
    back to the closed form when the target is beyond saturation.
    """
    x = _drop_fill(np.asarray(data, dtype=np.float64), fill_value)
    if x.size == 0:
        raise ParameterError("data must be non-empty (after fill removal)")
    vr = float(x.max() - x.min())
    if vr == 0.0:
        raise ParameterError("refined bound undefined for a constant field")
    anchor = float(x.flat[0])
    target_mse = psnr_to_mse(target_psnr, vr)
    sample = _subsample(x, sample_limit)

    closed_form = psnr_to_relative_bound(target_psnr) * vr

    def f(eb: float) -> float:
        return lattice_phase_mse(sample, anchor, 2.0 * eb)

    saturation = float(np.mean((sample - anchor) ** 2))
    if target_mse >= saturation:
        return closed_form

    lo = closed_form / 16.0
    if f(lo) >= target_mse:
        # Even tiny bins overshoot on this sample (degenerate data,
        # e.g. values already on a coarse grid): the closed form is as
        # good as anything.
        return closed_form
    hi = closed_form
    grow = 0
    while f(hi) < target_mse:
        hi *= 2.0
        grow += 1
        if grow > 60:
            return closed_form
    for _ in range(max_iterations):
        mid = float(np.sqrt(lo * hi))
        if f(mid) < target_mse:
            lo = mid
        else:
            hi = mid
        if hi / lo < 1.0 + 1e-9:
            break
    return float(np.sqrt(lo * hi))


def refined_relative_bound(
    data,
    target_psnr: float,
    sample_limit: int = DEFAULT_SAMPLE,
    fill_value=None,
) -> float:
    """Value-range-relative version of :func:`refined_absolute_bound`."""
    x = _drop_fill(np.asarray(data, dtype=np.float64), fill_value)
    if x.size == 0:
        raise ParameterError("data must be non-empty (after fill removal)")
    vr = float(x.max() - x.min())
    if vr == 0.0:
        raise ParameterError("refined bound undefined for a constant field")
    return (
        refined_absolute_bound(
            data, target_psnr, sample_limit, fill_value=fill_value
        )
        / vr
    )
