"""Analytical distortion model for l2-norm-preserving lossy compression.

Implements Sections III-IV of the paper:

* Theorem 1/2 say the decompressed-data MSE equals the MSE the
  quantization (or embedded-coding) stage introduces on prediction
  errors / transform coefficients, so estimating the latter estimates
  the former.
* :class:`QuantizationModel` is the general form (Eqs. 2-5): arbitrary
  symmetric bins, MSE ~ (1/12) * sum(delta_i^3 * P(m_i)) with P the
  density of the quantizer input.
* :func:`uniform_quantization_mse` / :func:`uniform_quantization_psnr`
  are the uniform-bin closed forms (Eq. 6): with enough bins the density
  drops out entirely and ``PSNR = 20*log10(vr/delta) + 10*log10(12)``.
* :func:`sz_psnr_estimate` specialises to SZ where ``delta = 2*eb_abs``
  (Eq. 7): ``PSNR = 20*log10(vr/eb_abs) + 10*log10(3)``.

Unit conversions between PSNR, NRMSE and MSE are also here because the
whole paper pivots on them (Eqs. 4-5).
"""

from __future__ import annotations

from typing import Optional

import numpy as np

from repro.errors import ParameterError

__all__ = [
    "psnr_to_mse",
    "mse_to_psnr",
    "nrmse_to_psnr",
    "psnr_to_nrmse",
    "uniform_quantization_mse",
    "uniform_quantization_psnr",
    "sz_psnr_estimate",
    "QuantizationModel",
]


# -- unit conversions (Eqs. 4-5) ---------------------------------------


def psnr_to_nrmse(psnr: float) -> float:
    """``NRMSE = 10**(-PSNR/20)`` (inverse of Eq. 5)."""
    return float(10.0 ** (-float(psnr) / 20.0))


def nrmse_to_psnr(nrmse: float) -> float:
    """``PSNR = -20*log10(NRMSE)`` (Eq. 5)."""
    if nrmse <= 0:
        raise ParameterError("NRMSE must be positive for a finite PSNR")
    return float(-20.0 * np.log10(nrmse))


def psnr_to_mse(psnr: float, value_range: float) -> float:
    """MSE corresponding to a PSNR at a given value range (Eqs. 4-5)."""
    if value_range <= 0:
        raise ParameterError("value range must be positive")
    return float((value_range * psnr_to_nrmse(psnr)) ** 2)


def mse_to_psnr(mse: float, value_range: float) -> float:
    """PSNR corresponding to an MSE at a given value range."""
    if value_range <= 0:
        raise ParameterError("value range must be positive")
    if mse <= 0:
        raise ParameterError("MSE must be positive for a finite PSNR")
    return nrmse_to_psnr(float(np.sqrt(mse)) / value_range)


# -- uniform quantization closed forms (Eqs. 6-7) ----------------------


def uniform_quantization_mse(delta: float) -> float:
    """Expected MSE of a uniform midpoint quantizer: ``delta**2 / 12``.

    This is Eq. 6 before taking logs: with many bins the quantizer-input
    density is locally flat, so the error is uniform on
    ``[-delta/2, +delta/2]`` whatever the distribution is (Theorem 3).
    """
    if delta <= 0:
        raise ParameterError("bin size must be positive")
    return float(delta) ** 2 / 12.0


def uniform_quantization_psnr(value_range: float, delta: float) -> float:
    """Eq. 6: ``PSNR = 20*log10(vr/delta) + 10*log10(12)``."""
    if value_range <= 0 or delta <= 0:
        raise ParameterError("value range and bin size must be positive")
    return float(20.0 * np.log10(value_range / delta) + 10.0 * np.log10(12.0))


def sz_psnr_estimate(
    value_range: float, eb_abs: Optional[float] = None, eb_rel: Optional[float] = None
) -> float:
    """Eq. 7: SZ's predicted PSNR from its error bound.

    SZ sets ``delta = 2*eb_abs``, hence
    ``PSNR = 20*log10(vr/eb_abs) + 10*log10(3)``.  Exactly one of
    ``eb_abs`` / ``eb_rel`` must be given; ``eb_rel`` is SZ's
    value-range-based relative bound ``eb_abs/vr``.
    """
    if (eb_abs is None) == (eb_rel is None):
        raise ParameterError("give exactly one of eb_abs / eb_rel")
    if value_range <= 0:
        raise ParameterError("value range must be positive")
    if eb_abs is None:
        eb_abs = eb_rel * value_range
    if eb_abs <= 0:
        raise ParameterError("error bound must be positive")
    return float(20.0 * np.log10(value_range / eb_abs) + 10.0 * np.log10(3.0))


# -- general (non-uniform) quantization model (Eqs. 2-5) ----------------


class QuantizationModel:
    """Distortion model for a symmetric midpoint quantizer (Eqs. 2-5).

    Parameters
    ----------
    bin_edges:
        Monotonically increasing edges covering the quantizer's input
        range; bin *i* is ``[edges[i], edges[i+1])`` with midpoint
        reconstruction.  For the paper's symmetric setting pass edges
        symmetric about zero.

    The density ``P`` is supplied per call, either as a callable or as
    an empirical sample (histogram estimate).
    """

    def __init__(self, bin_edges: np.ndarray) -> None:
        edges = np.asarray(bin_edges, dtype=np.float64)
        if edges.ndim != 1 or edges.size < 2:
            raise ParameterError("need at least two bin edges")
        if (np.diff(edges) <= 0).any():
            raise ParameterError("bin edges must be strictly increasing")
        self.edges = edges
        self.widths = np.diff(edges)
        self.midpoints = 0.5 * (edges[:-1] + edges[1:])

    @classmethod
    def uniform(cls, delta: float, n_bins: int, center: float = 0.0) -> "QuantizationModel":
        """Uniform model with ``n_bins`` bins of width ``delta`` centred
        so that ``center`` is a bin midpoint (SZ's layout: code 0 maps
        to the bin ``[-eb, +eb]``)."""
        if delta <= 0 or n_bins < 1:
            raise ParameterError("delta must be positive and n_bins >= 1")
        # Left edge half a bin below the (n_bins//2)-th midpoint so that
        # ``center`` is exactly a bin midpoint (code-0 bin = [-eb, +eb]).
        left = center - delta * (n_bins // 2 + 0.5)
        edges = left + delta * np.arange(n_bins + 1)
        return cls(edges)

    def density_from_samples(self, samples: np.ndarray) -> np.ndarray:
        """Empirical density at the bin midpoints, ``P(m_i)``.

        Mass outside the modelled range is ignored (the escape path of
        the real compressor handles it); the returned densities are
        normalised by the total sample count so the model stays
        conservative.
        """
        s = np.asarray(samples, dtype=np.float64).ravel()
        if s.size == 0:
            raise ParameterError("need at least one sample")
        counts, _ = np.histogram(s, bins=self.edges)
        return counts / (s.size * self.widths)

    def estimate_mse(self, density) -> float:
        """Eq. 3: ``MSE ~ (1/12) * sum(delta_i^3 * P(m_i))``.

        ``density`` is either a callable evaluated at the midpoints or a
        precomputed array of densities at the midpoints.  (The paper
        writes ``1/6`` with the sum running over one symmetric half;
        summing every bin absorbs the factor 2.)
        """
        if callable(density):
            p = np.asarray(
                [float(density(m)) for m in self.midpoints], dtype=np.float64
            )
        else:
            p = np.asarray(density, dtype=np.float64)
            if p.shape != self.midpoints.shape:
                raise ParameterError("density array must have one value per bin")
        if (p < 0).any():
            raise ParameterError("densities must be non-negative")
        return float(np.sum(self.widths**3 * p) / 12.0)

    def estimate_nrmse(self, density, value_range: float) -> float:
        """Eq. 4: ``NRMSE = sqrt(MSE)/vr``."""
        if value_range <= 0:
            raise ParameterError("value range must be positive")
        return float(np.sqrt(self.estimate_mse(density)) / value_range)

    def estimate_psnr(self, density, value_range: float) -> float:
        """Eq. 5: ``PSNR = -20*log10(NRMSE)``."""
        n = self.estimate_nrmse(density, value_range)
        if n == 0:
            return float("inf")
        return float(-20.0 * np.log10(n))
