"""Fixed-NRMSE and fixed-MSE modes.

The paper's abstract promises control of "the overall data distortion
(such as MSE and PSNR)"; these are the direct corollaries of Eq. 8
expressed in the other two l2 units.  Both reduce to a PSNR target via
the conversions of Eqs. 4-5 and reuse the fixed-PSNR machinery.
"""

from __future__ import annotations

import numpy as np

from repro.core.fixed_psnr import compress_fixed_psnr
from repro.core.psnr_model import mse_to_psnr, nrmse_to_psnr
from repro.errors import ParameterError
from repro.metrics.distortion import value_range

__all__ = ["compress_fixed_nrmse", "compress_fixed_mse"]


def compress_fixed_nrmse(data, target_nrmse: float, **options) -> bytes:
    """Compress so the decompressed NRMSE lands at ``target_nrmse``."""
    if not np.isfinite(target_nrmse) or target_nrmse <= 0:
        raise ParameterError("target NRMSE must be positive and finite")
    return compress_fixed_psnr(data, nrmse_to_psnr(target_nrmse), **options)


def compress_fixed_mse(data, target_mse: float, **options) -> bytes:
    """Compress so the decompressed MSE lands at ``target_mse``.

    MSE is range-dependent, so the data's value range enters the
    conversion (Eq. 4).
    """
    if not np.isfinite(target_mse) or target_mse <= 0:
        raise ParameterError("target MSE must be positive and finite")
    vr = value_range(data)
    if vr == 0:
        raise ParameterError("fixed-MSE mode undefined for a constant field")
    return compress_fixed_psnr(data, mse_to_psnr(target_mse, vr), **options)
