"""Fixed-PSNR error control (Section IV of the paper).

The three-step procedure:

1. take the user's target PSNR;
2. derive SZ's value-range-based relative error bound from Eq. 8,
   ``eb_rel = sqrt(3) * 10**(-PSNR/20)``;
3. run the ordinary error-bounded compressor with that bound.

The only overhead over plain SZ is evaluating Eq. 8 once per field --
benchmarked in ``benchmarks/test_ablation_overhead.py`` to be
negligible, as the paper claims.

An optional ``refine="histogram"`` switch engages the
:mod:`repro.core.calibration` estimator (the paper's future-work
direction) which fixes the systematic over-shoot at low PSNR targets.
"""

from __future__ import annotations

from typing import Optional

import numpy as np

import repro.observe as observe
from repro.errors import ParameterError
from repro.core.codecs import ERROR_BOUNDED_CODECS
from repro.metrics.distortion import value_range as _value_range

__all__ = [
    "psnr_to_relative_bound",
    "psnr_to_absolute_bound",
    "estimate_psnr_from_bound",
    "FixedPSNRCompressor",
    "compress_fixed_psnr",
]

#: Practical PSNR limits: below ~0 dB the quantizer degenerates (bin
#: wider than the value range); above ~300 dB the lattice outgrows exact
#: float64 integers.
MIN_TARGET_PSNR = 0.0
MAX_TARGET_PSNR = 300.0


def _check_target(target_psnr: float) -> float:
    t = float(target_psnr)
    if not np.isfinite(t) or not (MIN_TARGET_PSNR < t < MAX_TARGET_PSNR):
        raise ParameterError(
            f"target PSNR must be in ({MIN_TARGET_PSNR}, {MAX_TARGET_PSNR}) dB, "
            f"got {target_psnr}"
        )
    return t


def psnr_to_relative_bound(target_psnr: float) -> float:
    """Eq. 8: ``eb_rel = sqrt(3) * 10**(-PSNR/20)``.

    This is the value-range-based relative error bound that makes SZ's
    uniform quantizer produce the requested PSNR (Theorem 3).
    """
    t = _check_target(target_psnr)
    return float(np.sqrt(3.0) * 10.0 ** (-t / 20.0))


def psnr_to_absolute_bound(target_psnr: float, value_range: float) -> float:
    """Absolute error bound for a target PSNR at a given value range."""
    if value_range <= 0:
        raise ParameterError("value range must be positive")
    return psnr_to_relative_bound(target_psnr) * float(value_range)


def estimate_psnr_from_bound(
    eb_rel: Optional[float] = None,
    eb_abs: Optional[float] = None,
    value_range: Optional[float] = None,
) -> float:
    """Invert Eq. 8: the PSNR a given bound will produce.

    Give either ``eb_rel``, or ``eb_abs`` together with ``value_range``.
    """
    if (eb_rel is None) == (eb_abs is None):
        raise ParameterError("give exactly one of eb_rel / eb_abs")
    if eb_rel is None:
        if value_range is None or value_range <= 0:
            raise ParameterError("eb_abs needs a positive value_range")
        eb_rel = eb_abs / value_range
    if eb_rel <= 0:
        raise ParameterError("error bound must be positive")
    return float(20.0 * np.log10(np.sqrt(3.0) / eb_rel))


class FixedPSNRCompressor:
    """SZ compressor driven by a target PSNR instead of an error bound.

    Parameters
    ----------
    target_psnr:
        Requested post-decompression PSNR in dB.
    refine:
        ``None`` (paper's closed-form Eq. 8, default) or ``"histogram"``
        (the calibration extension: derive the bound from the empirical
        prediction-error distribution -- tighter at low targets).
    codec:
        ``"sz"`` (Lorenzo prediction, default), ``"transform"``
        (orthogonal block DCT), ``"regression"`` (SZ2-style per-block
        hyperplane prediction), ``"hybrid"`` (per-block
        Lorenzo/regression selection, the full SZ2 scheme) or
        ``"interp"`` (SZ3-style hierarchical interpolation).  All
        quantize uniformly, so Theorem 3 makes Eq. 8 valid for each.
    margin_db:
        Safety margin added to the target before deriving the bound.
        The paper's Figure 2 counts a field as "meeting" the demand when
        the actual PSNR is >= the user-set one; the unbiased estimator
        lands half the smooth fields a hair below, so a small margin
        (0.5-1 dB) trades a sliver of compression ratio for a high meet
        rate.  Default 0 (the paper's plain Eq. 8).
    **compressor_options:
        Forwarded to the chosen compressor class (predictor, block
        size, lossless stage, ...).
    """

    def __init__(
        self,
        target_psnr: float,
        refine: Optional[str] = None,
        codec: str = "sz",
        margin_db: float = 0.0,
        **compressor_options,
    ) -> None:
        self.target_psnr = _check_target(target_psnr)
        if not np.isfinite(margin_db) or margin_db < 0 or margin_db > 20:
            raise ParameterError("margin_db must be in [0, 20]")
        self.margin_db = float(margin_db)
        if refine not in (None, "histogram"):
            raise ParameterError(f"unknown refine mode {refine!r}")
        if codec not in ERROR_BOUNDED_CODECS:
            raise ParameterError(
                f"unknown codec {codec!r}; use one of "
                f"{', '.join(repr(c) for c in ERROR_BOUNDED_CODECS)}"
            )
        if refine == "histogram" and codec != "sz":
            raise ParameterError(
                "histogram refinement models SZ prediction errors; "
                "use codec='sz' with it"
            )
        self.refine = refine
        self.codec = codec
        if "mode" in compressor_options or "error_bound" in compressor_options:
            raise ParameterError(
                "fixed-PSNR mode derives the error bound itself; "
                "do not pass mode/error_bound"
            )
        self._options = compressor_options

    def derive_bound(self, data) -> float:
        """Step 2: the value-range-relative bound for this data."""
        effective = self.target_psnr + self.margin_db
        if self.refine == "histogram":
            from repro.core.calibration import refined_relative_bound

            return refined_relative_bound(
                data, effective, fill_value=self._options.get("fill_value")
            )
        return psnr_to_relative_bound(effective)

    def compress(self, data) -> bytes:
        """Run the full fixed-PSNR pipeline on one field."""
        trace = observe.current_trace()
        with trace.span("fixed_psnr.compress") as root:
            if trace.enabled:
                root.set("target_psnr", self.target_psnr)
            with trace.span("derive_bound") as sp:
                eb_rel = self.derive_bound(data)
                if trace.enabled:
                    sp.set("eb_rel", eb_rel)
                    sp.set("refined", 0 if self.refine is None else 1)
            return self._compress_with_bound(data, eb_rel)

    def _compress_with_bound(self, data, eb_rel: float) -> bytes:
        """Step 3: run the chosen error-bounded codec at ``eb_rel``."""
        from repro.core.codecs import make_compressor

        comp = make_compressor(self.codec, eb_rel, mode="rel", **self._options)
        comp.target_psnr = self.target_psnr
        return comp.compress(data)

    @staticmethod
    def decompress(blob: bytes) -> np.ndarray:
        """Decompress a container from either codec."""
        from repro.sz.compressor import decompress as _dispatch

        return _dispatch(blob)

    def expected_absolute_bound(self, data) -> float:
        """The absolute bound the pipeline will use on this data."""
        return self.derive_bound(data) * _value_range(data)


def compress_fixed_psnr(
    data,
    target_psnr: float,
    refine: Optional[str] = None,
    **compressor_options,
) -> bytes:
    """One-shot fixed-PSNR compression (Section IV's three steps)."""
    return FixedPSNRCompressor(
        target_psnr, refine=refine, **compressor_options
    ).compress(data)
