"""The paper's contribution: distortion estimation and fixed-PSNR mode.

* :mod:`repro.core.psnr_model` -- the analytical machinery of Sections
  III-IV: MSE/NRMSE/PSNR estimation for quantization stages (Eqs. 2-7),
  both the general non-uniform-bin form and the closed uniform form.
* :mod:`repro.core.fixed_psnr` -- the fixed-PSNR error-control mode
  (Eq. 8 and the three-step procedure of Section IV).
* :mod:`repro.core.modes` -- fixed-NRMSE and fixed-MSE modes (direct
  corollaries the paper mentions via "such as MSE and PSNR").
* :mod:`repro.core.calibration` -- histogram-refined bound derivation
  for low-PSNR targets (the paper's stated future work).
"""

from repro.core.psnr_model import (
    QuantizationModel,
    uniform_quantization_mse,
    uniform_quantization_psnr,
    sz_psnr_estimate,
    psnr_to_mse,
    mse_to_psnr,
    nrmse_to_psnr,
    psnr_to_nrmse,
)
from repro.core.fixed_psnr import (
    FixedPSNRCompressor,
    compress_fixed_psnr,
    psnr_to_relative_bound,
    psnr_to_absolute_bound,
    estimate_psnr_from_bound,
)
from repro.core.modes import compress_fixed_nrmse, compress_fixed_mse
from repro.core.calibration import (
    refined_absolute_bound,
    refined_relative_bound,
    empirical_quantization_mse,
)
from repro.core.allocation import (
    estimate_bit_rate,
    psnr_for_budget,
    BudgetResult,
)

__all__ = [
    "QuantizationModel",
    "uniform_quantization_mse",
    "uniform_quantization_psnr",
    "sz_psnr_estimate",
    "psnr_to_mse",
    "mse_to_psnr",
    "nrmse_to_psnr",
    "psnr_to_nrmse",
    "FixedPSNRCompressor",
    "compress_fixed_psnr",
    "psnr_to_relative_bound",
    "psnr_to_absolute_bound",
    "estimate_psnr_from_bound",
    "compress_fixed_nrmse",
    "compress_fixed_mse",
    "refined_absolute_bound",
    "refined_relative_bound",
    "empirical_quantization_mse",
    "estimate_bit_rate",
    "psnr_for_budget",
    "BudgetResult",
]
