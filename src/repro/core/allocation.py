"""Snapshot storage budgeting on top of fixed-PSNR mode.

The paper's introduction frames the problem as a storage budget (HACC:
60 PB of data vs 26 PB of file system).  Fixed-PSNR mode gives the
missing control surface: because quality is now a single scalar that
applies uniformly across heterogeneous fields, "fit this snapshot into
N bytes at the best uniform quality" becomes a 1-D root-finding
problem, solved here by bisection on the target PSNR.

Two evaluation modes:

* ``estimate`` -- per-field bit rate predicted from the empirical
  entropy of the quantization codes (no entropy coding run); one cheap
  array pass per field per probe.
* ``exact`` -- actually compress every field at each probe.  Slower,
  but the returned PSNR is guaranteed feasible.

The default runs the estimate search first and polishes with exact
evaluations.
"""

from __future__ import annotations

from typing import Dict, List, Sequence, Tuple

import numpy as np

from repro.core.fixed_psnr import (
    MAX_TARGET_PSNR,
    MIN_TARGET_PSNR,
    FixedPSNRCompressor,
    psnr_to_relative_bound,
)
from repro.errors import ParameterError
from repro.sz.predictors import lorenzo_difference
from repro.sz.quantizer import LatticeQuantizer

__all__ = ["estimate_bit_rate", "psnr_for_budget", "BudgetResult"]


def estimate_bit_rate(data: np.ndarray, target_psnr: float) -> float:
    """Predicted bits/value of the SZ codec at a fixed-PSNR target.

    Uses the zeroth-order empirical entropy of the Lorenzo quantization
    codes -- the quantity Huffman coding approaches -- plus a small
    fixed overhead for tables/container.  Typically within ~20 % of the
    real rate, which is plenty for bracketing a bisection.
    """
    x = np.asarray(data, dtype=np.float64)
    if x.size == 0:
        raise ParameterError("empty data")
    vr = float(x.max() - x.min())
    if vr == 0.0:
        return 8.0 * 200 / x.size  # constant-field container overhead
    eb = psnr_to_relative_bound(target_psnr) * vr
    quant = LatticeQuantizer(eb, float(x.flat[0]))
    q = lorenzo_difference(quant.quantize(x))
    _, counts = np.unique(q, return_counts=True)
    p = counts / q.size
    entropy = float(-np.sum(p * np.log2(p)))
    # Container + Huffman-table overhead; tables DEFLATE to ~2-3 bytes
    # per distinct symbol in practice.
    overhead_bits = 8.0 * (64 + 3 * counts.size)
    return entropy + overhead_bits / x.size


class BudgetResult:
    """Outcome of a budget allocation."""

    def __init__(
        self,
        target_psnr: float,
        total_bytes: int,
        budget_bytes: int,
        field_bytes: Dict[str, int],
        blobs: Dict[str, bytes],
    ) -> None:
        self.target_psnr = target_psnr
        self.total_bytes = total_bytes
        self.budget_bytes = budget_bytes
        self.field_bytes = field_bytes
        self._blobs = blobs

    @property
    def blobs(self) -> Dict[str, bytes]:
        """Compressed container per field at the chosen PSNR."""
        return self._blobs

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return (
            f"BudgetResult(psnr={self.target_psnr:.2f}, "
            f"{self.total_bytes}/{self.budget_bytes} bytes)"
        )


def _exact_total(
    fields: Sequence[Tuple[str, np.ndarray]], target: float, options: dict
) -> Tuple[int, Dict[str, bytes]]:
    comp = FixedPSNRCompressor(target, **options)
    blobs = {name: comp.compress(data) for name, data in fields}
    return sum(len(b) for b in blobs.values()), blobs


def psnr_for_budget(
    fields: Sequence[Tuple[str, np.ndarray]],
    budget_bytes: int,
    lo: float = 20.0,
    hi: float = 140.0,
    exact_iterations: int = 6,
    estimate_iterations: int = 30,
    **compressor_options,
) -> BudgetResult:
    """Highest uniform target PSNR whose snapshot fits ``budget_bytes``.

    Raises :class:`ParameterError` when even the lowest probe PSNR
    exceeds the budget.  The result's ``blobs`` hold the compressed
    fields at the chosen target, so allocation and compression cost one
    pass.
    """
    fields = list(fields)
    if not fields:
        raise ParameterError("need at least one field")
    if budget_bytes <= 0:
        raise ParameterError("budget must be positive")
    if not (MIN_TARGET_PSNR < lo < hi < MAX_TARGET_PSNR):
        raise ParameterError("bad PSNR bracket")

    n_total = sum(int(np.asarray(d).size) for _, d in fields)

    def estimated_total(target: float) -> float:
        return sum(
            estimate_bit_rate(d, target) * np.asarray(d).size / 8.0
            for _, d in fields
        )

    # Phase 1: bracket with the entropy estimate (monotone increasing
    # in target PSNR up to noise).
    if estimated_total(lo) > budget_bytes:
        e_lo, blobs_lo = _exact_total(fields, lo, compressor_options)
        if e_lo > budget_bytes:
            raise ParameterError(
                f"budget of {budget_bytes} bytes is below the snapshot's "
                f"size even at {lo} dB ({e_lo} bytes, "
                f"{8.0 * e_lo / n_total:.2f} bits/value)"
            )
        # The estimate was pessimistic; fall through with exact search.
    e_lo, e_hi = lo, hi
    for _ in range(estimate_iterations):
        mid = 0.5 * (e_lo + e_hi)
        if estimated_total(mid) <= budget_bytes:
            e_lo = mid
        else:
            e_hi = mid
        if e_hi - e_lo < 0.25:
            break

    # Phase 2: polish with exact compressions around the estimate.
    lo_t, hi_t = max(lo, e_lo - 6.0), min(hi, e_lo + 6.0)
    total_lo, blobs_lo = _exact_total(fields, lo_t, compressor_options)
    while total_lo > budget_bytes:
        hi_t = lo_t
        lo_t = max(lo, lo_t - 10.0)
        if lo_t == hi_t:
            raise ParameterError(
                f"budget of {budget_bytes} bytes infeasible above {lo} dB"
            )
        total_lo, blobs_lo = _exact_total(fields, lo_t, compressor_options)
    # If the estimate was pessimistic, the whole bracket may fit: walk
    # the bracket upward until the top genuinely exceeds the budget.
    while hi_t < hi:
        total_hi, blobs_hi = _exact_total(fields, hi_t, compressor_options)
        if total_hi > budget_bytes:
            break
        lo_t, total_lo, blobs_lo = hi_t, total_hi, blobs_hi
        hi_t = min(hi, hi_t + 8.0)
    best = (lo_t, total_lo, blobs_lo)
    for _ in range(exact_iterations):
        mid = 0.5 * (lo_t + hi_t)
        total_mid, blobs_mid = _exact_total(fields, mid, compressor_options)
        if total_mid <= budget_bytes:
            lo_t = mid
            best = (mid, total_mid, blobs_mid)
        else:
            hi_t = mid
    target, total, blobs = best
    return BudgetResult(
        target_psnr=target,
        total_bytes=total,
        budget_bytes=budget_bytes,
        field_bytes={name: len(b) for name, b in blobs.items()},
        blobs=blobs,
    )
