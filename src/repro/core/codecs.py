"""Codec factory: one place that maps a codec name to a compressor.

The same dispatch used to live in three places (the fixed-PSNR
pipeline, the CLI and now the autotune objective layer); this module
is the single registry they all share.  Every codec listed here is an
error-bounded compressor taking ``error_bound``/``mode`` and exposing
``compress(data) -> bytes``; decompression is format-dispatched by
:func:`repro.sz.compressor.decompress` for all of them.
"""

from __future__ import annotations

from typing import Tuple

from repro.errors import ParameterError

__all__ = ["ERROR_BOUNDED_CODECS", "make_compressor"]

#: Codec names accepted by :func:`make_compressor` (the error-bounded
#: family; the embedded codec is rate-driven and lives outside it).
ERROR_BOUNDED_CODECS: Tuple[str, ...] = (
    "sz",
    "transform",
    "regression",
    "hybrid",
    "interp",
)


def make_compressor(
    codec: str, error_bound: float, mode: str = "rel", **options
):
    """Instantiate the named error-bounded compressor.

    Parameters
    ----------
    codec:
        One of :data:`ERROR_BOUNDED_CODECS`.
    error_bound, mode:
        Forwarded to the compressor (``mode`` is ``"abs"``/``"rel"``,
        plus ``"pw_rel"`` for the sz codec).
    **options:
        Codec-specific keyword options (entropy stage, block size,
        fill value, ...).

    Imports are local so instantiating one codec never pays for the
    others (the CLI and worker processes rely on that).
    """
    if codec == "sz":
        from repro.sz.compressor import SZCompressor

        return SZCompressor(error_bound=error_bound, mode=mode, **options)
    if codec == "transform":
        from repro.transform.compressor import TransformCompressor

        return TransformCompressor(error_bound=error_bound, mode=mode, **options)
    if codec == "regression":
        from repro.sz.regression import RegressionCompressor

        return RegressionCompressor(error_bound=error_bound, mode=mode, **options)
    if codec == "hybrid":
        from repro.sz.hybrid import HybridCompressor

        return HybridCompressor(error_bound=error_bound, mode=mode, **options)
    if codec == "interp":
        from repro.sz.interp import InterpolationCompressor

        return InterpolationCompressor(
            error_bound=error_bound, mode=mode, **options
        )
    raise ParameterError(
        f"unknown codec {codec!r}; use one of {', '.join(ERROR_BOUNDED_CODECS)}"
    )
