"""Exception hierarchy for the :mod:`repro` package.

Every error raised deliberately by this package derives from
:class:`ReproError`, so callers can catch a single base class.  The
subclasses separate the three failure domains a compressor has:
bad *parameters* (caller bug), bad *input bytes* (corrupt stream), and
internal invariant violations during compression itself.
"""

from __future__ import annotations


class ReproError(Exception):
    """Base class for all errors raised by :mod:`repro`."""


class ParameterError(ReproError, ValueError):
    """A caller-supplied parameter is out of range or inconsistent.

    Also a :class:`ValueError` so that generic callers that validate
    with ``except ValueError`` keep working.
    """


class CompressionError(ReproError):
    """Compression failed (e.g. non-finite data with strict mode on)."""


class DecompressionError(ReproError):
    """Decompression failed on a syntactically valid container."""


class FormatError(DecompressionError):
    """The byte stream is not a valid container (bad magic, truncation,
    checksum mismatch, unsupported version)."""
