"""Exception hierarchy for the :mod:`repro` package.

Every error raised deliberately by this package derives from
:class:`ReproError`, so callers can catch a single base class.  The
subclasses separate the three failure domains a compressor has:
bad *parameters* (caller bug), bad *input bytes* (corrupt stream), and
internal invariant violations during compression itself.

Structured error codes
----------------------
Errors raised by the byte-level parsers (and by the resilience layer
on their behalf) carry an optional machine-readable ``code`` attribute
drawn from :class:`ErrorCode`.  Codes are what a
:class:`repro.resilience.salvage.SalvageReport` records per lost
stream, so tooling can aggregate failure causes without parsing
message strings.  ``code`` is ``None`` for errors that predate the
scheme or have no structured cause.
"""

from __future__ import annotations

from typing import Optional


class ErrorCode:
    """String constants identifying structured failure causes.

    Grouped by domain: container/archive parsing (``bad_*``,
    ``truncated``, ``crc_mismatch``, ``trailing_bytes``) and task
    execution (``task_*``, ``poisoned_result``).  The values are
    stable identifiers -- they appear in salvage reports, telemetry
    and the CI fault matrix -- so never repurpose one.
    """

    BAD_MAGIC = "bad_magic"
    BAD_VERSION = "bad_version"
    BAD_CODEC = "bad_codec"
    BAD_META = "bad_meta"
    BAD_INDEX = "bad_index"
    BAD_STREAM_NAME = "bad_stream_name"
    TRUNCATED = "truncated"
    CRC_MISMATCH = "crc_mismatch"
    TRAILING_BYTES = "trailing_bytes"
    MISSING_STREAM = "missing_stream"

    TASK_FAILED = "task_failed"
    TASK_TIMEOUT = "task_timeout"
    POISONED_RESULT = "poisoned_result"

    SHM_RELEASED = "shm_released"
    SHM_UNAVAILABLE = "shm_unavailable"

    CONNECT_FAILED = "connect_failed"
    NODE_UNAVAILABLE = "node_unavailable"

    #: Every defined code, for validation.
    ALL = (
        BAD_MAGIC,
        BAD_VERSION,
        BAD_CODEC,
        BAD_META,
        BAD_INDEX,
        BAD_STREAM_NAME,
        TRUNCATED,
        CRC_MISMATCH,
        TRAILING_BYTES,
        MISSING_STREAM,
        TASK_FAILED,
        TASK_TIMEOUT,
        POISONED_RESULT,
        SHM_RELEASED,
        SHM_UNAVAILABLE,
        CONNECT_FAILED,
        NODE_UNAVAILABLE,
    )


class ReproError(Exception):
    """Base class for all errors raised by :mod:`repro`.

    ``code`` (keyword-only) is an optional :class:`ErrorCode` constant
    naming the structured cause; it defaults to ``None``.
    """

    def __init__(self, *args, code: Optional[str] = None):
        super().__init__(*args)
        self.code = code

    def __reduce__(self):
        # Default Exception pickling drops keyword-only state; carry
        # ``code`` across process boundaries (worker -> parent).
        return (type(self), self.args, self.__dict__)


class ParameterError(ReproError, ValueError):
    """A caller-supplied parameter is out of range or inconsistent.

    Also a :class:`ValueError` so that generic callers that validate
    with ``except ValueError`` keep working.
    """


class CompressionError(ReproError):
    """Compression failed (e.g. non-finite data with strict mode on)."""


class DecompressionError(ReproError):
    """Decompression failed on a syntactically valid container."""


class FormatError(DecompressionError):
    """The byte stream is not a valid container (bad magic, truncation,
    checksum mismatch, unsupported version)."""


class TaskError(ReproError):
    """A parallel task failed in a way the executor accounts for
    (worker exception, deadline exceeded, poisoned result).  Raised
    only when the caller asked for fail-fast semantics; the default
    resilient sweep records the failure in the result instead."""


class TransportError(ReproError):
    """A data-plane transport failed in a way the caller must handle.

    Two domains share this type:

    * Shared memory misuse (double release, use after close, attaching
      an unlinked segment) -- carries :data:`ErrorCode.SHM_RELEASED` or
      :data:`ErrorCode.SHM_UNAVAILABLE`.  Transport *fallbacks* (shm
      missing, payload too small/large) never raise -- they silently
      degrade to pickle and count a metric.
    * Network transport to a compression service node (connection
      refused/reset, dead or mid-restart server) -- carries
      :data:`ErrorCode.CONNECT_FAILED`, or
      :data:`ErrorCode.NODE_UNAVAILABLE` when a cluster router
      exhausted every ring successor.  The cluster failover layer
      treats exactly this type as "try the next node"; HTTP-level
      errors (4xx/5xx responses) stay :class:`ServiceError` and are
      never failed over blindly.
    """
