"""Consistent-hash ring over cache fingerprints.

The routing substrate of the cluster tier: every cacheable job has a
content-addressed fingerprint (the :func:`repro.cache.blob_key`
schema, a SHA-256 hex digest over ``(data_digest, codec, mode,
target, options)``), and the ring maps each fingerprint to the member
node that *owns* it.  Because the same fingerprint always lands on
the same node, repeat submissions of identical work hit that node's
blob cache instead of recompressing -- the cluster-wide analogue of
the single-node admission-time cache hit.

Design: classic consistent hashing with virtual nodes.  Each member
contributes ``vnodes`` points on a 64-bit circle, placed at
``SHA-256(f"{node}#{i}")``; a key is owned by the first point at or
clockwise-after ``SHA-256(key)``.  Virtual nodes flatten the
per-member ownership share toward 1/N (the hypothesis property test
bounds the deviation), and the scheme is *monotone*: removing a
member moves only the keys it owned (to their ring successors), and
adding one steals only the keys it now owns -- about 1/N of the
keyspace -- so membership churn never reshuffles unrelated cache
ownership.

Everything here is pure data structure -- deterministic, no I/O, no
clock -- which is what makes rebalancing reproducible across
coordinator restarts: the same member list always yields the same
ring.
"""

from __future__ import annotations

import bisect
import hashlib
from typing import Dict, List, Sequence

from repro.errors import ParameterError

__all__ = ["HashRing", "ring_point", "RING_BITS"]

#: Width of the hash circle; points live in ``[0, 2**RING_BITS)``.
RING_BITS = 64


def ring_point(label: str) -> int:
    """Deterministic position of ``label`` on the circle: the first 8
    bytes of its SHA-256, big-endian.  Used for both virtual-node
    placement (``"{node}#{i}"``) and key lookup."""
    digest = hashlib.sha256(label.encode("utf-8")).digest()
    return int.from_bytes(digest[: RING_BITS // 8], "big")


class HashRing:
    """A consistent-hash ring with virtual nodes.

    ``nodes`` are opaque strings (member base URLs in the cluster
    tier).  Mutations (:meth:`add`/:meth:`remove`) are cheap and
    deterministic; lookup is ``O(log(n * vnodes))``.
    """

    def __init__(self, nodes: Sequence[str] = (), vnodes: int = 64):
        if vnodes < 1:
            raise ParameterError("vnodes must be >= 1")
        self.vnodes = int(vnodes)
        self._nodes: set = set()
        self._points: List[tuple] = []  # sorted (point, node)
        for node in nodes:
            self.add(node)

    # -- membership -----------------------------------------------------

    def __len__(self) -> int:
        return len(self._nodes)

    def __contains__(self, node: str) -> bool:
        return node in self._nodes

    @property
    def nodes(self) -> List[str]:
        """Current members, sorted (deterministic iteration order)."""
        return sorted(self._nodes)

    def add(self, node: str) -> bool:
        """Add a member (idempotent); returns whether it was new."""
        if not node:
            raise ParameterError("ring nodes must be non-empty strings")
        if node in self._nodes:
            return False
        self._nodes.add(node)
        for i in range(self.vnodes):
            bisect.insort(self._points, (ring_point(f"{node}#{i}"), node))
        return True

    def remove(self, node: str) -> bool:
        """Remove a member (idempotent); returns whether it existed.
        Only keys the member owned move -- each to its ring successor
        (the monotone-remapping guarantee)."""
        if node not in self._nodes:
            return False
        self._nodes.discard(node)
        self._points = [(p, n) for p, n in self._points if n != node]
        return True

    # -- lookup ---------------------------------------------------------

    def owner(self, key: str) -> str:
        """The member that owns ``key``.  Raises on an empty ring."""
        prefs = self.preference(key, 1)
        if not prefs:
            raise ParameterError("hash ring has no nodes")
        return prefs[0]

    def preference(self, key: str, n: int = 0) -> List[str]:
        """The first ``n`` *distinct* members clockwise from ``key``'s
        point: the owner first, then its failover successors in
        deterministic order.  ``n <= 0`` returns every member.  This
        is the exact order the router walks when nodes die."""
        if not self._points:
            return []
        want = len(self._nodes) if n <= 0 else min(n, len(self._nodes))
        # First virtual point at or clockwise-after the key's point
        # ("" sorts before any node label, so ties resolve to the
        # point itself).
        idx = bisect.bisect_left(self._points, (ring_point(key), ""))
        out: List[str] = []
        seen: set = set()
        for off in range(len(self._points)):
            _, node = self._points[(idx + off) % len(self._points)]
            if node not in seen:
                seen.add(node)
                out.append(node)
                if len(out) >= want:
                    break
        return out

    # -- introspection --------------------------------------------------

    def ownership(self) -> Dict[str, float]:
        """Fraction of the keyspace each member owns (sums to 1.0).
        The observability payload behind ``/cluster/ring``."""
        if not self._points:
            return {}
        shares: Dict[str, int] = {n: 0 for n in self._nodes}
        space = 1 << RING_BITS
        for i, (point, node) in enumerate(self._points):
            prev = (
                self._points[i - 1][0] if i else self._points[-1][0] - space
            )
            shares[node] += point - prev
        return {n: shares[n] / space for n in sorted(shares)}

    def as_dict(self) -> Dict:
        """JSON-able ring description (``/cluster/ring``)."""
        return {
            "vnodes": self.vnodes,
            "nodes": self.nodes,
            "points": len(self._points),
            "ownership": {
                n: round(f, 6) for n, f in self.ownership().items()
            },
        }
