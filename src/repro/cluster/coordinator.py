"""The cluster coordinator: one HTTP front door over N member nodes.

``fpzc cluster serve`` runs this process.  It speaks the same
stdlib HTTP/1.1 dialect as the member services
(:mod:`repro.service.http`) and exposes:

=============================  =======================================
``POST /v1/compress``          route one job to its ring owner
``POST /v1/autotune``          (same routing, spec-hash key)
``POST /v1/sweep``             scatter-gather across the members
``GET /v1/jobs/<id>``          a routed job's terminal document
``GET /v1/jobs/<id>/blob``     blob, proxied from the owning member
``GET /healthz /readyz``       coordinator liveness / >=1 member alive
``GET /metrics``               the coordinator's own registry
``GET /cluster/metrics``       member snapshots merged (Prometheus/JSON)
``GET /cluster/ring``          vnode count + per-member ownership
``GET /cluster/nodes``         membership health states
=============================  =======================================

Topology comes from ``--peers`` or a JSON file::

    {"peers": ["http://10.0.0.1:8077", "http://10.0.0.2:8077"],
     "vnodes": 64, "dead_after": 3, "probe_interval_s": 2.0,
     "max_retries": 2, "retry_seed": 0}

Routing, failover and the exactly-once argument live in
:mod:`repro.cluster.router`; health state in
:mod:`repro.cluster.membership`.  The coordinator itself holds no job
queue -- members do their own admission control -- so it stays a thin
asyncio loop: blocking member I/O runs on the default thread-pool
executor, one thread per in-flight forwarded request.

``/cluster/metrics`` is the observability tentpole: it fetches every
routable member's ``/metrics?format=json`` snapshot and folds them
into one registry with
:meth:`repro.telemetry.registry.MetricsRegistry.merge_snapshot` --
counters add, gauges take the member's reading -- then appends the
coordinator's own ``fpzc_cluster_*`` families, so one Prometheus
scrape sees the whole fleet.
"""

from __future__ import annotations

import asyncio
import functools
import itertools
import json
import signal
import time
from dataclasses import dataclass
from pathlib import Path
from typing import Dict, Optional, Tuple

from repro.cluster.membership import Membership
from repro.cluster.ring import HashRing
from repro.cluster.router import ClusterRouter
from repro.errors import ParameterError, ReproError, TransportError
from repro.resilience.retry import RetryPolicy
from repro.service.http import (
    HttpError,
    Request,
    json_body,
    read_request,
    render_response,
)

__all__ = [
    "ClusterConfig",
    "ClusterCoordinator",
    "build_router",
    "load_topology",
    "run_coordinator",
]


def load_topology(path) -> Dict:
    """Parse a topology JSON file: an object with a non-empty
    ``peers`` list plus optional tuning keys (see module docstring)."""
    try:
        doc = json.loads(Path(path).read_text(encoding="utf-8"))
    except OSError as exc:
        raise ParameterError(f"cannot read topology {path}: {exc}")
    except json.JSONDecodeError as exc:
        raise ParameterError(f"topology {path} is not valid JSON: {exc}")
    if not isinstance(doc, dict) or not doc.get("peers"):
        raise ParameterError(
            f"topology {path} must be an object with a non-empty "
            f"'peers' list"
        )
    return doc


@dataclass(frozen=True)
class ClusterConfig:
    """Everything a coordinator process needs."""

    host: str = "127.0.0.1"
    port: int = 8076
    peers: Tuple[str, ...] = ()
    vnodes: int = 64
    dead_after: int = 3
    probe_interval_s: float = 2.0
    probe_timeout_s: float = 5.0
    max_retries: int = 2
    backoff_base: float = 0.05
    retry_seed: int = 0
    request_timeout_s: float = 300.0
    name: str = "coordinator"
    max_body_bytes: int = 16 * 1024 * 1024
    trace_perfetto: Optional[str] = None

    def __post_init__(self):
        if not self.peers:
            raise ParameterError("cluster needs at least one peer")

    @classmethod
    def from_topology(cls, path, **overrides) -> "ClusterConfig":
        doc = load_topology(path)
        kwargs: Dict = {"peers": tuple(str(p) for p in doc["peers"])}
        for key in (
            "vnodes", "dead_after", "probe_interval_s", "probe_timeout_s",
            "max_retries", "backoff_base", "retry_seed",
            "request_timeout_s", "name",
        ):
            if key in doc:
                kwargs[key] = doc[key]
        kwargs.update(
            {k: v for k, v in overrides.items() if v is not None}
        )
        return cls(**kwargs)


def build_router(config: ClusterConfig, trace=None) -> ClusterRouter:
    """Ring + membership + router wired per ``config`` -- shared by
    the coordinator daemon and the ``fpzc sweep --cluster`` CLI path."""
    ring = HashRing(config.peers, vnodes=config.vnodes)
    membership = Membership(
        config.peers,
        dead_after=config.dead_after,
        probe_interval_s=config.probe_interval_s,
        probe_timeout_s=config.probe_timeout_s,
        policy=RetryPolicy(
            max_retries=max(config.max_retries, 1),
            backoff_base=max(config.backoff_base, 0.01),
            backoff_max=max(config.probe_interval_s, 1.0),
            seed=config.retry_seed,
        ),
    )
    return ClusterRouter(
        ring,
        membership,
        policy=RetryPolicy(
            max_retries=config.max_retries,
            backoff_base=config.backoff_base,
            backoff_max=2.0,
            seed=config.retry_seed,
        ),
        timeout_s=config.request_timeout_s,
        name=config.name,
        trace=trace,
    )


class ClusterCoordinator:
    """The asyncio front end around a :class:`ClusterRouter`."""

    def __init__(self, config: ClusterConfig):
        self.config = config
        self.trace = None
        if config.trace_perfetto:
            from repro.observe import Trace

            self.trace = Trace()
        self.router = build_router(config, trace=self.trace)
        self.membership = self.router.membership
        self.ring = self.router.ring
        self._ids = itertools.count(1)
        #: cid -> (node, terminal doc) for routed single jobs.
        self.jobs: Dict[str, Tuple[str, Dict]] = {}
        self._server: Optional[asyncio.AbstractServer] = None
        self._probe_task: Optional[asyncio.Task] = None
        self._stopped = asyncio.Event()
        self._draining = False
        self._started = time.monotonic()

    # -- lifecycle ------------------------------------------------------

    @property
    def port(self) -> int:
        if self._server is None or not self._server.sockets:
            return self.config.port
        return self._server.sockets[0].getsockname()[1]

    async def start(self) -> None:
        loop = asyncio.get_running_loop()
        # Synchronous startup probe so /readyz is truthful immediately.
        await loop.run_in_executor(None, self.membership.probe_all)
        self._server = await asyncio.start_server(
            self._handle, host=self.config.host, port=self.config.port
        )
        self._probe_task = loop.create_task(self._probe_loop())

    async def serve_forever(self, install_signals: bool = True) -> None:
        if self._server is None:
            await self.start()
        if install_signals:
            loop = asyncio.get_running_loop()
            for sig in (signal.SIGTERM, signal.SIGINT):
                try:
                    loop.add_signal_handler(
                        sig,
                        lambda: asyncio.ensure_future(self.shutdown()),
                    )
                except (NotImplementedError, RuntimeError):
                    pass
        await self._stopped.wait()

    async def shutdown(self) -> None:
        if self._draining:
            return
        self._draining = True
        if self._probe_task is not None:
            self._probe_task.cancel()
            await asyncio.gather(self._probe_task, return_exceptions=True)
        if self._server is not None:
            self._server.close()
            await self._server.wait_closed()
        if self.trace is not None and self.config.trace_perfetto:
            from repro.cluster.router import node_lane
            from repro.telemetry.export import write_chrome_trace
            from repro.telemetry.registry import metrics as _reg

            write_chrome_trace(
                self.trace,
                self.config.trace_perfetto,
                snapshot=_reg().snapshot(),
                process_names={
                    node_lane(url): f"node {url}"
                    for url in self.membership.peers
                },
            )
        self._stopped.set()

    async def _probe_loop(self) -> None:
        loop = asyncio.get_running_loop()
        interval = max(0.05, min(self.config.probe_interval_s, 0.5))
        while True:
            await asyncio.sleep(interval)
            await loop.run_in_executor(None, self.membership.probe_due)

    # -- HTTP -----------------------------------------------------------

    async def _handle(self, reader, writer) -> None:
        try:
            try:
                request = await read_request(
                    reader, max_body=self.config.max_body_bytes
                )
            except HttpError as exc:
                writer.write(render_response(
                    exc.status, json.dumps({"error": exc.message}).encode()
                ))
                return
            if request is None:
                return
            try:
                payload = await self._route(request)
            except HttpError as exc:
                payload = self._json(exc.status, {"error": exc.message})
            except TransportError as exc:
                payload = self._json(
                    503, {"error": str(exc), "error_code": exc.code}
                )
            except ReproError as exc:
                payload = self._json(400, {"error": str(exc)})
            except Exception as exc:  # noqa: BLE001 -- last-resort 500
                payload = self._json(
                    500, {"error": f"{type(exc).__name__}: {exc}"}
                )
            status, body, ctype, extra = payload
            writer.write(render_response(status, body, ctype, extra))
        finally:
            try:
                await writer.drain()
                writer.close()
                await writer.wait_closed()
            except (ConnectionError, OSError):
                pass

    @staticmethod
    def _json(status: int, doc: Dict, extra: Tuple = ()):
        return (
            status,
            json.dumps(doc, sort_keys=True).encode(),
            "application/json",
            extra,
        )

    async def _route(self, request: Request):
        method, path = request.method, request.path
        if path == "/healthz" and method == "GET":
            return self._json(200, {
                "ok": True,
                "role": "coordinator",
                "uptime_s": round(time.monotonic() - self._started, 3),
                "nodes": {
                    url: st["status"]
                    for url, st in self.membership.states().items()
                },
            })
        if path == "/readyz" and method == "GET":
            alive = self.membership.n_alive()
            if self._draining or alive == 0:
                return self._json(503, {"ready": False, "alive": alive})
            return self._json(200, {"ready": True, "alive": alive})
        if path == "/metrics" and method == "GET":
            return self._metrics_response(request)
        if path == "/cluster/metrics" and method == "GET":
            return await self._cluster_metrics(request)
        if path == "/cluster/ring" and method == "GET":
            return self._json(200, self.ring.as_dict())
        if path == "/cluster/nodes" and method == "GET":
            return self._json(200, {
                "peers": self.membership.peers,
                "states": self.membership.states(),
            })
        if path.startswith("/v1/"):
            return await self._route_v1(request)
        raise HttpError(404, f"no route for {method} {path}")

    async def _route_v1(self, request: Request):
        method, path = request.method, request.path
        parts = path.split("/")  # ['', 'v1', ...]
        if method == "POST" and len(parts) == 3 and parts[2] in (
            "compress", "sweep", "autotune"
        ):
            kind = parts[2]
            doc = json_body(request)
            loop = asyncio.get_running_loop()
            if kind == "sweep":
                return await loop.run_in_executor(
                    None, functools.partial(self._do_sweep, doc)
                )
            return await loop.run_in_executor(
                None, functools.partial(self._do_single, kind, doc)
            )
        if len(parts) >= 4 and parts[1] == "v1" and parts[2] == "jobs":
            cid = parts[3]
            entry = self.jobs.get(cid)
            if entry is None:
                raise HttpError(404, f"no such job {cid}")
            node, doc = entry
            if method == "GET" and len(parts) == 4:
                return self._json(200, doc)
            if method == "GET" and len(parts) == 5 and parts[4] == "blob":
                remote_id = str(doc.get("id"))
                loop = asyncio.get_running_loop()
                blob = await loop.run_in_executor(
                    None, self.router.fetch_blob, node, remote_id
                )
                return (200, blob, "application/octet-stream", ())
        raise HttpError(404, f"no route for {method} {path}")

    # -- forwarded work (runs on executor threads) ----------------------

    def _do_single(self, kind: str, payload: Dict):
        doc = self.router.submit_and_wait(kind, payload)
        cid = f"c{next(self._ids):06d}"
        node = doc.get("cluster", {}).get("node", "?")
        self.jobs[cid] = (node, doc)
        out = dict(doc)
        out["coordinator_id"] = cid
        return self._json(200, out)

    def _do_sweep(self, payload: Dict):
        targets = [float(t) for t in payload.get("targets") or ()]
        if not targets:
            raise HttpError(400, "sweep jobs need 'targets'")
        dataset = str(payload.get("dataset") or "")
        if not dataset:
            raise HttpError(400, "sweep jobs need a 'dataset'")
        rows = self.router.sweep(
            dataset,
            targets,
            fields=[str(f) for f in payload.get("fields") or ()] or None,
            scale=payload.get("scale"),
            refine=payload.get("refine"),
            codec=str(payload.get("codec") or "sz"),
        )
        failed = [r for r in rows if r.status != "ok"]
        return self._json(200, {
            "state": "done",
            "kind": "sweep",
            "dataset": dataset,
            "n_tasks": len(rows),
            "n_failed": len(failed),
            "rows": [r.as_dict() for r in rows],
        })

    # -- observability --------------------------------------------------

    def _metrics_response(self, request: Request):
        from repro.report import render_prometheus
        from repro.telemetry.registry import metrics as _reg

        snap = _reg().snapshot()
        if request.query.get("format") == "json":
            return self._json(200, snap)
        return (
            200,
            render_prometheus(snap).encode(),
            "text/plain; version=0.0.4",
            (),
        )

    async def _cluster_metrics(self, request: Request):
        """Every member's snapshot + the coordinator's own, merged."""
        loop = asyncio.get_running_loop()
        doc = await loop.run_in_executor(None, self._merged_snapshot)
        if request.query.get("format") == "json":
            return self._json(200, doc)
        from repro.report import render_prometheus

        return (
            200,
            render_prometheus(doc).encode(),
            "text/plain; version=0.0.4",
            (),
        )

    def _merged_snapshot(self) -> Dict:
        from repro.telemetry.registry import MetricsRegistry
        from repro.telemetry.registry import metrics as _reg

        merged = MetricsRegistry()
        merged.merge_snapshot(_reg().snapshot())
        members = {}
        for url in self.membership.peers:
            if not self.membership.routable(url):
                members[url] = "skipped"
                continue
            try:
                snap = self.router._client(url).metrics_json()
            except (ReproError, TransportError) as exc:
                self.membership.report_failure(url, str(exc))
                members[url] = "unreachable"
                continue
            merged.merge_snapshot(snap)
            members[url] = "merged"
        doc = merged.snapshot()
        doc["cluster"] = {"members": members}
        return doc


async def run_coordinator_async(config: ClusterConfig) -> int:
    coordinator = ClusterCoordinator(config)
    await coordinator.start()
    print(
        f"fpzc cluster coordinator on "
        f"http://{config.host}:{coordinator.port} "
        f"({len(config.peers)} peer(s), vnodes={config.vnodes})",
        flush=True,
    )
    await coordinator.serve_forever()
    return 0


def run_coordinator(config: ClusterConfig) -> int:
    """Blocking entry point (``fpzc cluster serve``)."""
    return asyncio.run(run_coordinator_async(config))
