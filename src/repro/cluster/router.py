"""Job routing: fingerprints -> ring owner -> failover successors.

The router is the cluster's data path.  For every job it computes a
**route key** -- for cacheable fixed-PSNR compress jobs the *exact*
blob-cache fingerprint (:func:`repro.cache.blob_key` over the field's
:func:`~repro.cache.data_digest`), so the ring sends repeat
submissions of the same ``(data_digest, codec, mode, target)`` to the
node whose cache already holds the blob; for everything else a
canonical hash of the spec, which at least keeps identical work
pinned to one node.

Failover follows the ring's preference order (owner, then distinct
successors) under :class:`~repro.resilience.retry.RetryPolicy`
semantics: at most ``total_attempts()`` nodes are tried, with the
policy's seeded-jitter delay between hops, and only on
:class:`~repro.errors.TransportError` (dead/unreachable node) --
HTTP-level errors are the member's verdict on the job and are never
re-executed elsewhere.  The route key doubles as the in-flight dedupe
key and travels with the job (``payload["cluster"]``), so a member
that already holds or is computing the same fingerprint answers from
its cache/in-flight table instead of recompressing: a failed-over job
is re-*submitted* but never double-*executed* into the ledger -- the
member that died never recorded it, and the member that finishes
records it exactly once.

``sweep`` is the scatter-gather path: one compress job per
``(target, field)`` task in the exact serial order of
:func:`repro.parallel.executor.sweep_dataset` (targets outer, fields
in registry order), submitted to each task's ring owner, gathered
into :class:`~repro.parallel.executor.FieldResult` rows that compare
equal to the serial sweep's.  Tasks that exhaust every live node
degrade to ``status="failed"`` rows instead of raising.
"""

from __future__ import annotations

import threading
import time
from typing import Dict, List, Optional, Sequence, Tuple

from repro.cluster.membership import Membership
from repro.cluster.ring import HashRing, ring_point
from repro.errors import ErrorCode, TransportError
from repro.parallel.executor import FieldResult, failed_field_result
from repro.resilience.retry import RetryPolicy

__all__ = ["ClusterRouter", "node_lane"]

#: Header the router stamps on every forwarded request, so member
#: access logs can distinguish direct clients from coordinator traffic.
FORWARDED_HEADER = "X-Fpzc-Forwarded-By"


def node_lane(url: str) -> int:
    """A stable synthetic pid for ``url``: Perfetto exports use it as
    the process lane, so traces of one cluster run show one swimlane
    per member node.  Offset past real pids' usual range to avoid
    colliding with the coordinator's own lane."""
    return 100000 + ring_point(f"lane:{url}") % 100000


def _cluster_metrics():
    from repro.telemetry.registry import metrics

    reg = metrics()
    return {
        "routed": reg.counter(
            "cluster.jobs_routed_total",
            help="jobs forwarded to a member node",
            deterministic=False,
        ),
        "failovers": reg.counter(
            "cluster.failovers_total",
            help="jobs re-routed to a ring successor after a "
            "transport failure",
            deterministic=False,
        ),
        "exhausted": reg.counter(
            "cluster.jobs_exhausted_total",
            help="jobs that failed every candidate node and degraded "
            "to a failed row",
            deterministic=False,
        ),
        "sweep_tasks": reg.counter(
            "cluster.sweep_tasks_total",
            help="scatter-gather sweep tasks sharded across members",
            deterministic=False,
        ),
        "nodes_alive": reg.gauge(
            "cluster.nodes_alive",
            help="members currently routable",
            deterministic=False,
        ),
        "nodes_total": reg.gauge(
            "cluster.nodes_total",
            help="members in the topology",
            deterministic=False,
        ),
    }


class ClusterRouter:
    """Routes jobs over a ring + membership pair (thread-safe)."""

    def __init__(
        self,
        ring: HashRing,
        membership: Membership,
        *,
        policy: Optional[RetryPolicy] = None,
        timeout_s: float = 300.0,
        name: str = "coordinator",
        trace=None,
        client_factory=None,
    ):
        self.ring = ring
        self.membership = membership
        self.policy = policy or RetryPolicy(
            max_retries=2, backoff_base=0.05, backoff_max=1.0, seed=0
        )
        self._rng = self.policy.rng()
        self.timeout_s = float(timeout_s)
        self.name = name
        self.trace = trace
        self._client_factory = client_factory or self._default_client
        self._clients: Dict[str, object] = {}
        self._field_memo: Dict[Tuple, Tuple[str, int, int]] = {}
        self._lock = threading.Lock()
        self.metrics = _cluster_metrics()
        self.metrics["nodes_total"].set(len(membership.peers))
        self.metrics["nodes_alive"].set(membership.n_alive())
        # Dead members lose their ring ownership to the successors;
        # a recovered member deterministically takes it back.
        membership.on_transition(self._on_transition)

    def _default_client(self, url: str):
        from repro.service.client import ServiceClient

        # Admission retries happen inside the member's own client
        # budget; the router adds node-level failover on top.
        return ServiceClient(url, timeout=self.timeout_s, retry_429=3)

    def _client(self, url: str):
        with self._lock:
            client = self._clients.get(url)
            if client is None:
                client = self._clients[url] = self._client_factory(url)
            return client

    def _on_transition(self, url: str, old: str, new: str) -> None:
        from repro.cluster.membership import DEAD

        if new == DEAD:
            self.ring.remove(url)
        elif old == DEAD:
            self.ring.add(url)
        self.metrics["nodes_alive"].set(self.membership.n_alive())

    # -- route keys -----------------------------------------------------

    def _field_stats(
        self, dataset: str, field: str, scale: Optional[float]
    ) -> Optional[Tuple[str, int, int]]:
        """(data_digest, nbytes, size) of a registry field, memoized.
        ``None`` when the registry cannot produce it (the job will
        fail through the member's normal path)."""
        memo_key = (dataset, field, scale)
        with self._lock:
            hit = self._field_memo.get(memo_key)
        if hit is not None:
            return hit
        from repro.cache import data_digest
        from repro.datasets.registry import get_dataset

        try:
            data = get_dataset(dataset, scale=scale).field(field)
        except Exception:  # noqa: BLE001 -- unknown dataset/field
            return None
        stats = (data_digest(data), int(data.nbytes), int(data.size))
        with self._lock:
            self._field_memo[memo_key] = stats
        return stats

    def route_key(self, kind: str, payload: Dict) -> str:
        """The ring key for a job.  Fixed-PSNR compress jobs use the
        blob-cache fingerprint itself (cache-owner affinity); other
        kinds hash their canonical spec."""
        mode = str(payload.get("mode") or "psnr")
        if kind == "compress" and mode == "psnr" and payload.get("field"):
            stats = self._field_stats(
                str(payload.get("dataset") or ""),
                str(payload["field"]),
                payload.get("scale"),
            )
            if stats is not None:
                from repro.cache import blob_key

                return blob_key(
                    stats[0],
                    codec=str(payload.get("codec") or "sz"),
                    mode="psnr",
                    target=float(payload.get("target") or 0.0),
                    refine=payload.get("refine"),
                    entropy="huffman",
                )
        import hashlib
        import json

        canon = json.dumps(
            {"kind": kind, "spec": payload}, sort_keys=True, default=str
        )
        return hashlib.sha256(canon.encode("utf-8")).hexdigest()

    # -- single-job forwarding ------------------------------------------

    def candidates(self, key: str) -> List[str]:
        """Preference-ordered routable nodes for ``key``: the ring walk
        filtered by membership (degraded/dead members skipped).  Falls
        back to the full topology walk when the ring lost every member
        (all dead): the caller still gets a deterministic order to
        fail through."""
        prefs = [
            url
            for url in self.ring.preference(key)
            if self.membership.routable(url)
        ]
        if prefs:
            return prefs
        return list(self.membership.peers)

    def submit_and_wait(
        self,
        kind: str,
        payload: Dict,
        *,
        timeout: Optional[float] = None,
        label: Optional[str] = None,
    ) -> Dict:
        """Forward one job to its owner, failing over along the ring.

        Returns the member's terminal job document with a ``cluster``
        section (node, route key, failover count) appended.  Raises
        :class:`~repro.errors.TransportError` with
        :data:`~repro.errors.ErrorCode.NODE_UNAVAILABLE` when every
        candidate is gone.
        """
        timeout = self.timeout_s if timeout is None else timeout
        key = self.route_key(kind, payload)
        candidates = self.candidates(key)[: self.policy.total_attempts()]
        last_error: Optional[str] = None
        for attempt, node in enumerate(candidates):
            if attempt:
                self.metrics["failovers"].inc()
                time.sleep(self.policy.delay(attempt, self._rng))
            body = dict(payload)
            body["cluster"] = {
                "coordinator": self.name,
                "node": node,
                "key": key,
                "attempt": attempt,
                "dedupe_key": key,
            }
            client = self._client(node)
            t0 = time.perf_counter()
            try:
                doc = client.submit_doc(
                    kind, body, headers={FORWARDED_HEADER: self.name}
                )
                if doc.get("state") not in ("done", "failed", "timeout",
                                            "cancelled"):
                    doc = client.wait(str(doc["id"]), timeout=timeout)
                elif "result" not in doc:
                    # Admission-time cache hit: the submit response is
                    # the minimal acknowledgement; the status document
                    # carries the replayed result.
                    doc = client.status(str(doc["id"]))
            except TransportError as exc:
                last_error = str(exc)
                self.membership.report_failure(node, last_error)
                continue
            self.membership.report_success(node)
            self.metrics["routed"].inc()
            self._record_span(
                node, label or f"{kind}:{key[:12]}",
                time.perf_counter() - t0,
            )
            doc["cluster"] = {
                "node": node,
                "key": key,
                "attempt": attempt,
                "failovers": attempt,
            }
            return doc
        self.metrics["exhausted"].inc()
        raise TransportError(
            f"no member node could run this {kind} job "
            f"(tried {len(candidates)}: last error: {last_error})",
            code=ErrorCode.NODE_UNAVAILABLE,
        )

    def fetch_blob(self, node: str, job_id: str) -> bytes:
        """Proxy a member's blob (the coordinator's blob endpoint)."""
        return self._client(node).fetch_blob(job_id)

    # -- scatter-gather sweep -------------------------------------------

    def sweep(
        self,
        dataset: str,
        targets: Sequence[float],
        fields: Optional[Sequence[str]] = None,
        *,
        scale: Optional[float] = None,
        refine: Optional[str] = None,
        codec: str = "sz",
        timeout: Optional[float] = None,
    ) -> List[FieldResult]:
        """Shard a fields x targets sweep across the cluster.

        One compress job per ``(target, field)`` task, routed by that
        task's blob fingerprint, results gathered in the serial
        :func:`~repro.parallel.executor.sweep_dataset` order so the
        merged rows compare equal to a single-node sweep.  A task whose
        every candidate node died degrades to a ``status="failed"``
        row (``error_code="node_unavailable"``); the sweep itself never
        raises for node loss.
        """
        from repro.datasets.registry import get_dataset
        from repro.errors import ParameterError

        ds = get_dataset(dataset, scale=scale)
        names = list(fields) if fields else list(ds.field_names)
        unknown = set(names) - set(ds.field_names)
        if unknown:
            raise ParameterError(
                f"unknown fields for {dataset}: {sorted(unknown)}"
            )
        tasks = [(float(t), f) for t in targets for f in names]
        self.metrics["sweep_tasks"].inc(len(tasks))

        # Scatter: submit every task (cheap POSTs) before waiting on
        # any, so members compress their shards concurrently.
        pending: List[Optional[Tuple[str, str, Dict]]] = []
        for target, field in tasks:
            pending.append(self._sweep_submit(
                dataset, field, target, scale, refine, codec,
            ))
        # Gather in task order; a node that died mid-run surfaces as a
        # TransportError from wait() and the task re-routes.
        results: List[FieldResult] = []
        for (target, field), handle in zip(tasks, pending):
            results.append(self._sweep_gather(
                dataset, field, target, scale, refine, codec, handle,
                timeout,
            ))
        return results

    def _sweep_payload(
        self, dataset, field, target, scale, refine, codec
    ) -> Dict:
        payload: Dict = {
            "dataset": dataset,
            "field": field,
            "mode": "psnr",
            "target": float(target),
            "codec": codec,
            # Blobs stay on the member (its cache keeps them); the
            # gathered row carries measurements only, like a serial
            # sweep's FieldResult.
            "keep_blob": False,
        }
        if scale is not None:
            payload["scale"] = scale
        if refine is not None:
            payload["refine"] = refine
        return payload

    def _sweep_submit(
        self, dataset, field, target, scale, refine, codec
    ) -> Optional[Tuple[str, str, Dict]]:
        """Submit one task to its owner; returns ``(node, job_id,
        payload)`` or ``None`` when no node accepted it."""
        payload = self._sweep_payload(
            dataset, field, target, scale, refine, codec
        )
        key = self.route_key("compress", payload)
        for attempt, node in enumerate(
            self.candidates(key)[: self.policy.total_attempts()]
        ):
            if attempt:
                self.metrics["failovers"].inc()
                time.sleep(self.policy.delay(attempt, self._rng))
            body = dict(payload)
            body["cluster"] = {
                "coordinator": self.name,
                "node": node,
                "key": key,
                "attempt": attempt,
                "dedupe_key": key,
            }
            try:
                doc = self._client(node).submit_doc(
                    "compress", body, headers={FORWARDED_HEADER: self.name}
                )
            except TransportError as exc:
                self.membership.report_failure(node, str(exc))
                continue
            self.membership.report_success(node)
            return (node, str(doc["id"]), payload)
        return None

    def _sweep_gather(
        self, dataset, field, target, scale, refine, codec, handle,
        timeout,
    ) -> FieldResult:
        """Wait for one task, re-routing on node death, and build its
        :class:`FieldResult` row."""
        attempts = 1
        t0 = time.perf_counter()
        if handle is not None:
            node, job_id, payload = handle
            try:
                doc = self._client(node).wait(
                    job_id, timeout=self.timeout_s if timeout is None
                    else timeout,
                )
                self.metrics["routed"].inc()
                self._record_span(
                    node, f"{field}@{target:g}",
                    time.perf_counter() - t0,
                )
                return self._row_from_doc(
                    dataset, field, target, scale, doc, node, attempts
                )
            except TransportError as exc:
                # The owner died holding our job: every instant it
                # spent is lost, but its ledger never saw the result,
                # so a clean re-route stays exactly-once.
                self.membership.report_failure(node, str(exc))
        # Re-route through submit_and_wait (fresh candidate walk,
        # including the backoff schedule); exhaustion degrades to a
        # failed row instead of aborting the sweep.
        payload = self._sweep_payload(
            dataset, field, target, scale, refine, codec
        )
        try:
            doc = self.submit_and_wait(
                "compress", payload, timeout=timeout,
                label=f"{field}@{target:g}",
            )
        except TransportError as exc:
            return failed_field_result(
                dataset, field, target,
                error=str(exc),
                error_code=exc.code or ErrorCode.NODE_UNAVAILABLE,
                attempts=attempts + 1,
            )
        return self._row_from_doc(
            dataset, field, target, scale, doc,
            doc.get("cluster", {}).get("node", "?"),
            attempts + int(doc.get("cluster", {}).get("failovers", 0)) + 1,
        )

    def _row_from_doc(
        self, dataset, field, target, scale, doc, node, attempts
    ) -> FieldResult:
        """A member's terminal compress document -> the FieldResult row
        the serial sweep would have produced for the same task."""
        if doc.get("state") != "done" or not doc.get("result"):
            return failed_field_result(
                dataset, field, target,
                error=str(doc.get("error") or f"job ended {doc.get('state')}"),
                error_code=str(
                    doc.get("error_code") or ErrorCode.TASK_FAILED
                ),
                attempts=attempts,
            )
        result = doc["result"]
        stats = self._field_stats(dataset, field, scale)
        size = stats[2] if stats else 0
        compressed = result.get("compressed_bytes") or 0
        actual = float(result["achieved_psnr"])
        return FieldResult(
            dataset=dataset,
            field=field,
            target_psnr=float(target),
            actual_psnr=actual,
            deviation=float(actual - target),
            met=bool(actual >= target),
            compression_ratio=float(result["ratio"]),
            bit_rate=(
                8.0 * compressed / size if size and compressed
                else float("nan")
            ),
            eb_rel=float(result["eb_rel"]),
            status="ok",
            attempts=attempts,
            cache_hit=bool(result.get("cached")),
        )

    # -- tracing --------------------------------------------------------

    def _record_span(self, node: str, label: str, duration_s: float) -> None:
        """Hand-built span on the node's synthetic Perfetto lane --
        the coordinator's view of remote work, one pid per member."""
        if self.trace is None:
            return
        self.trace.merge(
            [
                {
                    "path": ["cluster.route", node, label],
                    "seq": 0,
                    "duration_s": duration_s,
                    "counters": {"jobs": 1},
                    "gauges": {},
                    "t_start": time.perf_counter() - duration_s,
                    "pid": node_lane(node),
                    "tid": 1,
                }
            ]
        )
