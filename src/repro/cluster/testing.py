"""In-process coordinator harness for tests.

:class:`CoordinatorThread` mirrors
:class:`repro.service.testing.ServiceThread`: a full
:class:`~repro.cluster.coordinator.ClusterCoordinator` -- real
sockets, real probe loop -- on a private event loop in a daemon
thread, so synchronous test code can drive a whole in-process cluster
(member :class:`ServiceThread` instances + this coordinator) with the
blocking :class:`~repro.service.client.ServiceClient`.
"""

from __future__ import annotations

import asyncio
import threading
from typing import Optional

from repro.cluster.coordinator import ClusterConfig, ClusterCoordinator
from repro.errors import ReproError
from repro.service.client import ServiceClient

__all__ = ["CoordinatorThread"]


class CoordinatorThread:
    """A live coordinator on a background event loop::

        with ServiceThread() as a, ServiceThread() as b:
            with CoordinatorThread(peers=(a.url, b.url)) as co:
                client = co.client()
                job = client.submit_compress("ATM", "CLDHGH", target=60.0)
    """

    def __init__(self, config: Optional[ClusterConfig] = None, **overrides):
        if config is None:
            defaults = dict(port=0)
            defaults.update(overrides)
            config = ClusterConfig(**defaults)
        elif overrides:
            raise ReproError("give either config or overrides, not both")
        self.config = config
        self.coordinator: Optional[ClusterCoordinator] = None
        self.loop: Optional[asyncio.AbstractEventLoop] = None
        self._thread: Optional[threading.Thread] = None
        self._ready = threading.Event()
        self._startup_error: Optional[BaseException] = None

    def start(self) -> "CoordinatorThread":
        self._thread = threading.Thread(
            target=self._run, name="fpzc-coordinator", daemon=True
        )
        self._thread.start()
        if not self._ready.wait(timeout=30):
            raise ReproError("coordinator did not start within 30s")
        if self._startup_error is not None:
            raise ReproError(
                f"coordinator failed to start: {self._startup_error}"
            )
        return self

    def _run(self) -> None:
        loop = asyncio.new_event_loop()
        asyncio.set_event_loop(loop)
        self.loop = loop
        try:
            self.coordinator = ClusterCoordinator(self.config)
            loop.run_until_complete(self.coordinator.start())
        except BaseException as exc:  # noqa: BLE001 -- reported to starter
            self._startup_error = exc
            self._ready.set()
            loop.close()
            return
        self._ready.set()
        try:
            loop.run_until_complete(
                self.coordinator.serve_forever(install_signals=False)
            )
        finally:
            loop.close()

    def stop(self) -> None:
        if self.loop is None or self.coordinator is None:
            return
        if self._thread is None or not self._thread.is_alive():
            return
        coro = self.coordinator.shutdown()
        try:
            future = asyncio.run_coroutine_threadsafe(coro, self.loop)
        except RuntimeError:
            coro.close()
        else:
            try:
                future.result(timeout=60)
            except Exception:  # noqa: BLE001 -- loop may be closing
                pass
        self._thread.join(timeout=60)

    def __enter__(self) -> "CoordinatorThread":
        return self.start()

    def __exit__(self, *exc) -> None:
        self.stop()

    @property
    def port(self) -> int:
        assert self.coordinator is not None
        return self.coordinator.port

    @property
    def url(self) -> str:
        return f"http://127.0.0.1:{self.port}"

    @property
    def router(self):
        assert self.coordinator is not None
        return self.coordinator.router

    def client(self, timeout: float = 120.0) -> ServiceClient:
        return ServiceClient(self.url, timeout=timeout)
