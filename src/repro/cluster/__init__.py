"""Multi-node compression cluster: N ``fpzc serve`` daemons as one system.

The distributed tier over the single-node service stack.  One process
runs as **coordinator** (``fpzc cluster serve``) and routes
compress/sweep/autotune jobs to member nodes over the same stdlib
HTTP/1.1 protocol the service already speaks.  The pieces:

:mod:`repro.cluster.ring`
    Consistent-hash ring with virtual nodes over blob-cache
    fingerprints, so repeat submissions of the same
    ``(data_digest, codec, mode, target)`` land on the member whose
    cache already holds the blob.  Monotone: membership change moves
    only ~1/N of the keyspace.
:mod:`repro.cluster.membership`
    Health states (alive/degraded/dead) from ``/readyz`` probes with
    seeded-jitter backoff; dead members lose their ring ownership to
    the successors, deterministically.
:mod:`repro.cluster.router`
    The data path: route key -> owner -> failover along the ring
    under :class:`~repro.resilience.retry.RetryPolicy` semantics,
    dedupe keys traveling with every job (exactly-once ledger
    records); scatter-gather sweeps whose merged
    :class:`~repro.parallel.executor.FieldResult` rows compare equal
    to the serial path.
:mod:`repro.cluster.coordinator`
    The asyncio HTTP front door plus cluster observability:
    ``/cluster/metrics`` (member Prometheus snapshots merged via
    ``merge_snapshot``), ``/cluster/ring``, ``/cluster/nodes``.
:mod:`repro.cluster.testing`
    :class:`~repro.cluster.testing.CoordinatorThread`, the in-process
    harness multi-node e2e tests build clusters from.

See ``docs/CLUSTER.md`` for topology format, routing/failover
semantics and the exactly-once argument.
"""

from repro.cluster.coordinator import (
    ClusterConfig,
    ClusterCoordinator,
    build_router,
    load_topology,
    run_coordinator,
)
from repro.cluster.membership import Membership
from repro.cluster.ring import HashRing
from repro.cluster.router import ClusterRouter

__all__ = [
    "ClusterConfig",
    "ClusterCoordinator",
    "ClusterRouter",
    "HashRing",
    "Membership",
    "build_router",
    "load_topology",
    "run_coordinator",
]
