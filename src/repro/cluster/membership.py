"""Membership and health tracking for cluster member nodes.

Each member is probed through its liveness endpoints (``/readyz``,
falling back to nothing subtler -- a node that cannot answer is not
routable) and classified into one of three states:

``alive``
    The last probe succeeded; the node receives new work.
``degraded``
    1..``dead_after - 1`` consecutive failures; the router skips it
    for *new* keys but probes keep trying to rescue it.
``dead``
    ``dead_after`` consecutive failures; its ring ownership moves to
    the successors (deterministically -- see
    :class:`repro.cluster.ring.HashRing`) until a probe succeeds.

Probe scheduling reuses the :class:`repro.resilience.retry.RetryPolicy`
arithmetic: after the n-th consecutive failure the next probe backs
off by ``policy.delay(n)`` with the policy's *seeded* jitter, so probe
schedules (like every other retry schedule in this codebase) are a
reproducible function of the seed.  Healthy nodes are re-probed every
``probe_interval_s``.

The class is synchronous and thread-safe (one lock); the asyncio
coordinator drives it from an executor thread, tests drive it with a
fake clock and a fake probe function.
"""

from __future__ import annotations

import threading
import time
from typing import Callable, Dict, List, Optional

from repro.errors import ParameterError
from repro.resilience.retry import RetryPolicy

__all__ = ["ALIVE", "DEGRADED", "DEAD", "PeerState", "Membership"]

ALIVE = "alive"
DEGRADED = "degraded"
DEAD = "dead"


def _default_probe(url: str, timeout: float) -> bool:
    """Real probe: ``GET /readyz`` must answer 200.  Transport errors
    propagate (the caller counts them as failures)."""
    from repro.service.client import ServiceClient

    return ServiceClient(url, timeout=timeout, retry_429=0).readyz()


class PeerState:
    """One member's health ledger (owned by :class:`Membership`)."""

    __slots__ = (
        "url", "status", "failures", "probes", "last_error",
        "next_probe_at", "last_change_at",
    )

    def __init__(self, url: str):
        self.url = url
        self.status = ALIVE  # optimistic: route until proven otherwise
        self.failures = 0  # consecutive
        self.probes = 0
        self.last_error: Optional[str] = None
        self.next_probe_at = 0.0  # due immediately
        self.last_change_at = 0.0

    def as_dict(self) -> Dict:
        return {
            "url": self.url,
            "status": self.status,
            "consecutive_failures": self.failures,
            "probes": self.probes,
            "last_error": self.last_error,
        }


class Membership:
    """Tracks which members are routable and when to probe them."""

    def __init__(
        self,
        peers,
        *,
        dead_after: int = 3,
        probe_interval_s: float = 2.0,
        probe_timeout_s: float = 5.0,
        policy: Optional[RetryPolicy] = None,
        probe: Optional[Callable[[str], bool]] = None,
        clock: Callable[[], float] = time.monotonic,
    ):
        peers = list(peers)
        if not peers:
            raise ParameterError("membership needs at least one peer")
        if len(set(peers)) != len(peers):
            raise ParameterError("duplicate peer URLs in topology")
        if dead_after < 1:
            raise ParameterError("dead_after must be >= 1")
        self.dead_after = int(dead_after)
        self.probe_interval_s = float(probe_interval_s)
        self.policy = policy or RetryPolicy(
            max_retries=6, backoff_base=0.25, backoff_max=5.0, seed=0
        )
        self._rng = self.policy.rng()
        self._probe = probe or (
            lambda url: _default_probe(url, probe_timeout_s)
        )
        self._clock = clock
        self._lock = threading.Lock()
        self._states = {url: PeerState(url) for url in peers}
        self._listeners: List[Callable[[str, str, str], None]] = []

    # -- introspection --------------------------------------------------

    @property
    def peers(self) -> List[str]:
        """Every configured member, in topology order."""
        return list(self._states)

    def state(self, url: str) -> str:
        with self._lock:
            return self._states[url].status

    def states(self) -> Dict[str, Dict]:
        """JSON-able health snapshot (``/cluster/nodes``)."""
        with self._lock:
            return {url: st.as_dict() for url, st in self._states.items()}

    def routable(self, url: str) -> bool:
        """Whether new work may be sent to ``url`` (alive only;
        degraded nodes must pass a probe before they earn traffic
        back, dead nodes have lost their ring ownership)."""
        with self._lock:
            st = self._states.get(url)
            return st is not None and st.status == ALIVE

    def n_alive(self) -> int:
        with self._lock:
            return sum(
                1 for st in self._states.values() if st.status == ALIVE
            )

    # -- transitions ----------------------------------------------------

    def on_transition(self, cb: Callable[[str, str, str], None]) -> None:
        """Register ``cb(url, old_status, new_status)``, fired outside
        the lock on every status change (the router uses this to move
        ring ownership)."""
        self._listeners.append(cb)

    def _set_status(self, st: PeerState, status: str):
        old = st.status
        if old == status:
            return None
        st.status = status
        st.last_change_at = self._clock()
        return (st.url, old, status)

    def _fire(self, transition) -> None:
        if transition is None:
            return
        for cb in self._listeners:
            cb(*transition)

    def report_success(self, url: str) -> None:
        """A probe or a real request round-tripped: the node is alive
        and its failure streak resets."""
        with self._lock:
            st = self._states[url]
            st.failures = 0
            st.last_error = None
            st.next_probe_at = self._clock() + self.probe_interval_s
            transition = self._set_status(st, ALIVE)
        self._fire(transition)

    def report_failure(self, url: str, error: Optional[str] = None) -> None:
        """A probe or a forwarded job hit a transport failure.  The
        streak grows, the next probe backs off (seeded jitter), and at
        ``dead_after`` the node is declared dead."""
        with self._lock:
            st = self._states[url]
            st.failures += 1
            st.last_error = error
            retry_index = min(st.failures, self.policy.max_retries + 1)
            st.next_probe_at = self._clock() + self.policy.delay(
                retry_index, self._rng
            )
            status = DEAD if st.failures >= self.dead_after else DEGRADED
            transition = self._set_status(st, status)
        self._fire(transition)

    # -- probing --------------------------------------------------------

    def due(self) -> List[str]:
        """Members whose next probe time has arrived."""
        now = self._clock()
        with self._lock:
            return [
                url
                for url, st in self._states.items()
                if st.next_probe_at <= now
            ]

    def probe_one(self, url: str) -> bool:
        """Probe one member now and record the outcome."""
        with self._lock:
            self._states[url].probes += 1
        try:
            ok = bool(self._probe(url))
            error = None if ok else "readyz answered not-ready"
        except Exception as exc:  # noqa: BLE001 -- any probe failure counts
            ok = False
            error = f"{type(exc).__name__}: {exc}"
        if ok:
            self.report_success(url)
        else:
            self.report_failure(url, error)
        return ok

    def probe_due(self) -> int:
        """Probe every member whose schedule is due; returns how many
        were probed.  The coordinator's health loop calls this."""
        due = self.due()
        for url in due:
            self.probe_one(url)
        return len(due)

    def probe_all(self) -> int:
        """Probe every member regardless of schedule (startup sync)."""
        for url in self.peers:
            self.probe_one(url)
        return len(self._states)
