"""Experiment T2 -- paper Table II: fixed-PSNR accuracy on NYX, ATM and
Hurricane at user-set PSNRs {20, 40, 60, 80, 100, 120} dB.

For every data set and target we compress every field, measure the
actual post-decompression PSNR, and report AVG and STDEV exactly as the
paper's Table II does, side by side with the paper's numbers.

Shape assertions (the paper's qualitative claims):

* accuracy improves with the target -- deviations at 60+ dB are within
  ~1.5 dB and STDEVs small;
* at 20-40 dB the average deviates by up to a few dB, in the *upward*
  direction (actual >= target);
* the overall average |deviation| stays within the paper's 0.1-5.0 dB
  envelope for 40+ dB targets.
"""

import numpy as np

from benchmarks.conftest import bench_scale, render_table
from repro.parallel.executor import run_field_task, sweep_dataset

TARGETS = (20.0, 40.0, 60.0, 80.0, 100.0, 120.0)

#: Paper Table II values: dataset -> target -> (AVG, STDEV).
PAPER = {
    "NYX": {
        20: (24.3, 1.82), 40: (41.9, 2.32), 60: (60.7, 0.74),
        80: (80.1, 0.05), 100: (100.1, 0.07), 120: (120.1, 0.01),
    },
    "ATM": {
        20: (21.9, 3.34), 40: (40.9, 1.80), 60: (60.2, 0.62),
        80: (80.1, 0.35), 100: (100.2, 0.17), 120: (120.2, 0.19),
    },
    "Hurricane": {
        20: (25.0, 6.52), 40: (42.0, 3.97), 60: (60.5, 0.74),
        80: (80.1, 0.32), 100: (100.1, 0.39), 120: (120.3, 0.63),
    },
}


def test_table2_fixed_psnr(benchmark, save_result):
    scale = bench_scale()
    payload = {}
    rows = []
    for dataset in ("NYX", "ATM", "Hurricane"):
        results = sweep_dataset(dataset, targets=TARGETS, scale=scale)
        per_target = {}
        for t in TARGETS:
            actuals = np.array(
                [r.actual_psnr for r in results if r.target_psnr == t]
            )
            avg, std = float(actuals.mean()), float(actuals.std(ddof=0))
            per_target[t] = {
                "avg": avg,
                "stdev": std,
                "actuals": actuals.tolist(),
            }
            p_avg, p_std = PAPER[dataset][int(t)]
            rows.append(
                (
                    dataset,
                    f"{t:.0f}",
                    f"{avg:.1f}",
                    f"{std:.2f}",
                    f"{p_avg:.1f}",
                    f"{p_std:.2f}",
                )
            )
        payload[dataset] = per_target

    text = render_table(
        ["dataset", "user PSNR", "AVG (ours)", "STDEV (ours)",
         "AVG (paper)", "STDEV (paper)"],
        rows,
        title="Table II -- fixed-PSNR accuracy (ours vs paper)",
    )
    print("\n" + text)
    save_result("table2", payload, text)

    for dataset, per_target in payload.items():
        devs = {t: abs(v["avg"] - t) for t, v in per_target.items()}
        # accuracy improves with the target (compare the extremes)
        assert devs[120.0] <= devs[20.0] + 0.5, (dataset, devs)
        # 60+ dB targets are tightly controlled
        for t in (60.0, 80.0, 100.0, 120.0):
            assert devs[t] < 2.5, (dataset, t, devs[t])
            assert per_target[t]["stdev"] < 3.0, (dataset, t)
        # low targets overshoot (the paper's direction): AVG >= target
        for t in (20.0, 40.0):
            assert per_target[t]["avg"] >= t - 1.0, (dataset, t)

    # Benchmark one representative Table II cell task end to end.
    benchmark.pedantic(
        run_field_task,
        args=("NYX", "temperature", 80.0),
        kwargs={"scale": scale},
        rounds=3,
        iterations=1,
    )
