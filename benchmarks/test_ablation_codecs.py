"""Experiment X7 -- codec family comparison (rate-distortion).

The paper's background section surveys prediction-based (SZ) and
transform-based (ZFP/SSEM) compressors and the fixed-rate/-accuracy/
-precision mode taxonomy.  Having implemented one codec of each family
plus an embedded-coding stage, this benchmark draws the actual
rate-distortion picture on one smooth climate field and one rough one:

* SZ (Lorenzo) -- error-bounded, the paper's substrate;
* regression (SZ2-style) -- error-bounded, block hyperplanes;
* transform (block DCT + uniform quantization) -- Theorem 2;
* embedded (block DCT + bitplanes) -- fixed-rate, the EC face.

Expected shape: Lorenzo wins on smooth data at high quality (its
stencil is sharper than an 8x8 hyperplane); the transform codecs are
competitive at low rates; every codec's curve is monotone.
"""

import numpy as np

from benchmarks.conftest import bench_scale, render_table
from repro.datasets.registry import get_dataset
from repro.metrics.analysis import rate_distortion_curve
from repro.metrics.distortion import psnr
from repro.sz.compressor import SZCompressor, decompress
from repro.sz.hybrid import HybridCompressor
from repro.sz.interp import InterpolationCompressor
from repro.sz.legacy import Sz11Compressor
from repro.sz.regression import RegressionCompressor
from repro.transform.compressor import TransformCompressor
from repro.transform.embedded import EmbeddedTransformCompressor

BOUNDS = (1e-2, 1e-3, 1e-4, 1e-5)  # value-range-relative
RATES = (1.0, 2.0, 4.0, 8.0)  # bits/value for the embedded codec


def _curves(field: np.ndarray):
    out = {}
    out["sz"] = rate_distortion_curve(
        field,
        lambda d, b: SZCompressor(b, mode="rel").compress(d),
        decompress,
        BOUNDS,
    )
    out["regression"] = rate_distortion_curve(
        field,
        lambda d, b: RegressionCompressor(b, mode="rel").compress(d),
        decompress,
        BOUNDS,
    )
    out["hybrid"] = rate_distortion_curve(
        field,
        lambda d, b: HybridCompressor(b, mode="rel", block_size=16).compress(d),
        decompress,
        BOUNDS,
    )
    out["sz1.1"] = rate_distortion_curve(
        field,
        lambda d, b: Sz11Compressor(b, mode="rel").compress(d),
        decompress,
        BOUNDS,
    )
    out["interp"] = rate_distortion_curve(
        field,
        lambda d, b: InterpolationCompressor(b, mode="rel").compress(d),
        decompress,
        BOUNDS,
    )
    out["transform"] = rate_distortion_curve(
        field,
        lambda d, b: TransformCompressor(b, mode="rel").compress(d),
        decompress,
        BOUNDS,
    )
    out["embedded"] = rate_distortion_curve(
        field,
        lambda d, r: EmbeddedTransformCompressor(
            mode="fixed_rate", rate=r
        ).compress(d),
        decompress,
        RATES,
    )
    return out


def test_codec_rate_distortion(benchmark, save_result):
    from repro.baselines.lossless import lossless_baseline

    ds = get_dataset("ATM", scale=bench_scale())
    payload = {}
    text_blocks = []
    for fname in ("TS", "U850"):
        field = ds.field(fname)
        curves = _curves(field)
        # the paper's Section II-A yardstick: shuffle+DEFLATE lossless
        _, ll_ratio = lossless_baseline(field)
        curves["lossless"] = [
            {
                "bound": 0.0,
                "bit_rate": 8.0 * field.itemsize / ll_ratio,
                "compression_ratio": ll_ratio,
                "psnr": float("inf"),
            }
        ]
        payload[fname] = curves
        rows = []
        for codec, pts in curves.items():
            for p in pts:
                rows.append(
                    (
                        codec,
                        f"{p['bound']:.0e}",
                        f"{p['bit_rate']:.2f}",
                        f"{p['psnr']:.1f}",
                    )
                )
        text_blocks.append(
            render_table(
                ["codec", "knob", "bits/value", "PSNR"],
                rows,
                title=f"X7 -- rate-distortion on ATM/{fname}",
            )
        )
    text = "\n\n".join(text_blocks)
    print("\n" + text)
    save_result("ablation_codecs", payload, text)

    for fname, curves in payload.items():
        for codec, pts in curves.items():
            if codec == "lossless":
                # the paper's Section II-A claim: CR "up to 2 in general"
                assert pts[0]["compression_ratio"] < 2.5, fname
                continue
            rates = [p["bit_rate"] for p in pts]
            psnrs = [p["psnr"] for p in pts]
            # monotone rate-distortion trade-off per codec
            assert rates == sorted(rates), (fname, codec)
            assert psnrs == sorted(psnrs), (fname, codec)
    # at the tightest bound, Lorenzo beats no-prediction-style codecs
    # on the smooth field (it spends fewer bits for the same quality)
    ts = payload["TS"]
    assert ts["sz"][-1]["bit_rate"] < ts["transform"][-1]["bit_rate"]
    # the IPDPS'17 lineage: SZ 1.4's multidimensional Lorenzo beats
    # SZ 1.1's flat 1-D curve fitting on 2-D data at every bound
    for p14, p11 in zip(ts["sz"], ts["sz1.1"]):
        assert p14["bit_rate"] < p11["bit_rate"]

    field = ds.field("TS")
    comp = SZCompressor(1e-4, mode="rel")
    benchmark(comp.compress, field)


def test_budget_allocation(benchmark, save_result):
    """The HACC/Mira scenario (paper intro): best uniform PSNR within a
    byte budget, via the fixed-PSNR control surface."""
    from repro.core.allocation import psnr_for_budget

    ds = get_dataset("NYX", scale=bench_scale())
    fields = list(ds.fields())
    raw = sum(d.nbytes for _, d in fields)

    rows = []
    payload = {}
    for factor in (4.0, 8.0, 16.0):
        result = psnr_for_budget(fields, int(raw / factor))
        worst = min(
            psnr(d, decompress(result.blobs[n])) for n, d in fields
        )
        payload[str(factor)] = {
            "target_psnr": result.target_psnr,
            "total_bytes": result.total_bytes,
            "worst_field_psnr": float(worst),
        }
        rows.append(
            (
                f"{factor:.0f}x",
                f"{result.target_psnr:.2f}",
                f"{raw / result.total_bytes:.2f}x",
                f"{worst:.2f}",
            )
        )
        assert result.total_bytes <= raw / factor
    text = render_table(
        ["requested", "uniform PSNR", "achieved", "worst field dB"],
        rows,
        title="X7b -- snapshot budget allocation (NYX)",
    )
    print("\n" + text)
    save_result("ablation_budget", payload, text)

    # more budget => higher quality
    assert (
        payload["4.0"]["target_psnr"]
        > payload["8.0"]["target_psnr"]
        > payload["16.0"]["target_psnr"]
    )

    benchmark.pedantic(
        psnr_for_budget,
        args=(fields, int(raw / 8.0)),
        rounds=1,
        iterations=1,
    )
