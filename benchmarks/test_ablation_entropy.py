"""Experiment X9 -- entropy-stage ablation: Huffman vs rANS vs GZIP-only.

The paper's SZ pipeline uses customized Huffman + GZIP (stage 3);
later SZ generations moved to ANS-family coders.  This ablation feeds
all three stage-3 choices the *same* quantization codes from real
fields and compares size and speed:

* ``huffman``  -- canonical Huffman + DEFLATE (the paper's setup);
* ``rans``     -- interleaved range-ANS (fractional-bit coding);
* ``none``     -- DEFLATE directly on raw int16 codes (what you would
  get by skipping the entropy stage, the paper's implicit baseline for
  why Huffman is there at all).

Expected shape: at high targets (wide code alphabets) both real
entropy coders beat DEFLATE-only and land close to each other.  At low
targets the code stream degenerates to long runs of code 0; there the
trailing DEFLATE behind Huffman exploits the *run structure* (a
higher-order correlation a 0-order rANS cannot see), so Huffman+GZIP
wins -- which is precisely why the paper's SZ keeps the GZIP stage.
Reconstructions are bit-identical across entropy stages (stage 3 is
lossless).
"""

import time

import numpy as np

from benchmarks.conftest import bench_scale, render_table
from repro.core.fixed_psnr import psnr_to_relative_bound
from repro.datasets.registry import get_dataset
from repro.encoding.lossless import lossless_compress
from repro.sz.compressor import SZCompressor, decompress
from repro.sz.predictors import lorenzo_difference
from repro.sz.quantizer import LatticeQuantizer


def _raw_codes(field: np.ndarray, eb: float) -> np.ndarray:
    quant = LatticeQuantizer(eb, float(field.flat[0]))
    return lorenzo_difference(quant.quantize(field))


def test_entropy_stage_ablation(benchmark, save_result):
    ds = get_dataset("ATM", scale=bench_scale())
    rows = []
    payload = {}
    for fname, target in (("TS", 80.0), ("TS", 40.0), ("U850", 80.0)):
        field = ds.field(fname).astype(np.float64)
        vr = float(field.max() - field.min())
        eb = psnr_to_relative_bound(target) * vr

        sizes = {}
        recons = {}
        times = {}
        for entropy in ("huffman", "rans", "rans_rle"):
            comp = SZCompressor(eb, mode="abs", entropy=entropy)
            t0 = time.perf_counter()
            blob = comp.compress(field)
            times[entropy] = time.perf_counter() - t0
            sizes[entropy] = len(blob)
            recons[entropy] = decompress(blob)

        # DEFLATE-only baseline on the same codes (int16 fits: radius
        # keeps |q| <= 32768; escaped codes are rare on these fields).
        q = _raw_codes(field, eb)
        clipped = np.clip(q, -32768, 32767).astype(np.int16)
        t0 = time.perf_counter()
        gzip_only = lossless_compress(clipped.tobytes(), "zlib", 6)
        times["gzip-only"] = time.perf_counter() - t0
        sizes["gzip-only"] = len(gzip_only)

        # stage 3 is lossless: identical reconstructions
        assert np.array_equal(recons["huffman"], recons["rans"])
        assert np.array_equal(recons["huffman"], recons["rans_rle"])

        key = f"{fname}@{target:.0f}"
        payload[key] = {
            "sizes": sizes,
            "times_s": times,
            "bit_rates": {k: 8.0 * v / field.size for k, v in sizes.items()},
        }
        for entropy in ("huffman", "rans", "rans_rle", "gzip-only"):
            rows.append(
                (
                    key,
                    entropy,
                    f"{8.0 * sizes[entropy] / field.size:.3f}",
                    f"{1e3 * times[entropy]:.1f} ms",
                )
            )

    text = render_table(
        ["field@target", "stage 3", "bits/value", "encode time"],
        rows,
        title="X9 -- entropy-stage ablation on real quantization codes",
    )
    print("\n" + text)
    save_result("ablation_entropy", payload, text)

    for key, rec in payload.items():
        s = rec["sizes"]
        # Huffman+GZIP (the paper's stage 3) always beats DEFLATE-only
        assert s["huffman"] < s["gzip-only"], key
        # rANS stays within ~30% of Huffman everywhere ...
        assert s["rans"] / s["huffman"] < 1.3, key
        if key.endswith("@80"):
            # ... and at high targets (entropy-dominated codes) it is
            # competitive and beats DEFLATE-only too
            assert s["rans"] < s["gzip-only"], key
            assert 0.8 < s["rans"] / s["huffman"] < 1.25, key
        else:
            # at the run-dominated low target, the RLE split recovers
            # most of what plain rANS loses to the run structure
            assert s["rans_rle"] <= s["rans"] * 1.02, key

    field = ds.field("TS")
    comp = SZCompressor(1e-4, mode="rel", entropy="rans")
    benchmark(comp.compress, field)
