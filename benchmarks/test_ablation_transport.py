"""Experiment X13 -- shared-memory vs pickle transport for sweeps.

The executor fans one field out to many (field, target) tasks; with
the pickle channel each task re-serializes the array, with the
shared-memory data plane (:mod:`repro.parallel.shm`) the field crosses
the process boundary once and every worker maps the same pages.  This
benchmark measures the wall-time ratio at several worker counts and
re-asserts the differential contract the ratio is only meaningful
under: both transports produce identical results.
"""

import time

import numpy as np

from benchmarks.conftest import bench_scale, render_table
from repro.parallel.executor import sweep_dataset
from repro.parallel.shm import shm_available, shm_dir_entries

TARGETS = (30.0, 40.0, 50.0, 60.0)
FIELDS = ("temperature",)


def _timed_sweep(n_workers, transport):
    t0 = time.perf_counter()
    results = sweep_dataset(
        "NYX",
        targets=list(TARGETS),
        fields=list(FIELDS),
        scale=bench_scale(),
        n_workers=n_workers,
        transport=transport,
    )
    return time.perf_counter() - t0, [r.as_dict() for r in results]


def test_transport_sweep_ratio(save_result):
    before = set(shm_dir_entries("fpz"))
    _, serial = _timed_sweep(0, "auto")

    rows = []
    payload = {"shm_available": shm_available(), "workers": {}}
    for n_workers in (2, 4):
        t_pickle, r_pickle = _timed_sweep(n_workers, "pickle")
        t_shm, r_shm = _timed_sweep(n_workers, "shm")
        # The differential contract first -- a fast wrong answer is
        # not a data point.
        assert r_pickle == serial
        assert r_shm == serial
        ratio = t_shm / t_pickle
        payload["workers"][n_workers] = {
            "pickle_wall_s": round(t_pickle, 4),
            "shm_wall_s": round(t_shm, 4),
            "shm_over_pickle": round(ratio, 4),
        }
        rows.append(
            (n_workers, f"{t_pickle:.3f}", f"{t_shm:.3f}", f"{ratio:.2f}")
        )

    text = render_table(
        ["workers", "pickle s", "shm s", "shm/pickle"],
        rows,
        title=(
            "X13 -- transport wall time, NYX/temperature x "
            f"{len(TARGETS)} targets"
        ),
    )
    print("\n" + text)
    save_result("ablation_transport", payload, text)

    # No segment may outlive its sweep, regardless of transport.
    assert set(shm_dir_entries("fpz")) == before
