"""Experiment F1 -- paper Figure 1: distribution of SZ prediction errors
with the uniform quantization bins overlaid, on one ATM field.

The paper plots the (percentage) histogram of Lorenzo prediction errors
of a CESM-ATM field and marks the uniform bin boundaries
``p1, p2, ..., p2n``.  We regenerate the same series: per-bin
percentages of the prediction-error distribution around zero, and
verify the two structural facts the paper reads off the plot --
symmetry about zero and a sharp peak in the central bins (that's what
makes Huffman coding of the codes effective).
"""

import numpy as np

from benchmarks.conftest import bench_scale, render_table
from repro.core.fixed_psnr import psnr_to_absolute_bound
from repro.datasets.registry import get_dataset
from repro.sz.predictors import prediction_errors


def test_figure1_prediction_error_histogram(benchmark, save_result):
    ds = get_dataset("ATM", scale=bench_scale())
    field = ds.field("TS")  # a production-like smooth climate field

    pe = benchmark(prediction_errors, field.astype(np.float64))

    # Uniform quantization layout at a representative 60 dB target:
    # bin size delta = 2*eb, bins centred like SZ's code-0 bin.
    vr = float(field.max() - field.min())
    eb = psnr_to_absolute_bound(60.0, vr)
    delta = 2.0 * eb
    n_side = 12  # bins shown on each side, like the paper's figure
    # 2*n_side+1 bins; the central one spans [-delta/2, +delta/2).
    edges = delta * (np.arange(-n_side, n_side + 2) - 0.5)
    counts, _ = np.histogram(pe, bins=edges)
    pct = 100.0 * counts / pe.size

    rows = [
        (f"bin {i - n_side:+d}", f"[{edges[i]:+.3e}, {edges[i+1]:+.3e})",
         f"{pct[i]:.2f}%")
        for i in range(len(pct))
    ]
    text = render_table(
        ["bin", "interval", "mass"],
        rows,
        title=(
            "Figure 1 -- Lorenzo prediction-error distribution on ATM/TS "
            f"(delta={delta:.3e}, 60 dB target)"
        ),
    )
    from benchmarks.asciiplot import bars

    text += "\n\n" + bars(
        pct,
        labels=[f"{i - n_side:+d}" for i in range(len(pct))],
        title="Figure 1 rendering (per-bin mass %, quantization bins)",
    )
    print("\n" + text)

    center = n_side  # index of the code-0 bin
    payload = {
        "field": "TS",
        "delta": delta,
        "bin_percent": pct.tolist(),
        "center_mass_percent": float(pct[center]),
        "inside_shown_bins_percent": float(pct.sum()),
    }
    save_result("figure1", payload, text)

    # Paper-shape assertions: unimodal peak at the centre, symmetric.
    assert pct[center] == pct.max()
    left = pct[:center][::-1]
    right = pct[center + 1 :]
    # symmetric within a few points of percentage mass
    assert np.abs(left - right).max() < 5.0
    # the distribution is concentrated: the few central bins dominate
    assert pct[center - 1 : center + 2].sum() > 3 * pct[0]
