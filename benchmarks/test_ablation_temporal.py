"""Experiment X8 -- the time dimension: compression vs decimation.

The paper's introduction motivates everything with HACC's predicament:
storage forces *temporal decimation* (keep every k-th snapshot),
"degrading the consecutiveness of simulation in time dimension and
losing important information unexpectedly".  This benchmark plays out
the alternative on a synthetic evolving field:

* **decimation k**: keep every k-th snapshot exactly, interpolate the
  rest -- worst-case quality collapses between checkpoints;
* **fixed-PSNR, every snapshot**: compress all snapshots at the target
  that matches decimation's storage -- quality is uniform in time;
* **temporal prediction**: the streaming codec's extra rate win on
  slowly evolving data, and its graceful degradation on fast dynamics.
"""

import numpy as np

from benchmarks.conftest import render_table
from repro.baselines.decimation import decimation_quality
from repro.core.fixed_psnr import estimate_psnr_from_bound
from repro.datasets.temporal import snapshot_series
from repro.metrics.distortion import psnr
from repro.sz.compressor import compress
from repro.sz.temporal import compress_series, decompress_series

SHAPE = (96, 96)
STEPS = 24


def test_compression_vs_decimation(benchmark, save_result):
    snaps = list(
        snapshot_series(SHAPE, STEPS, seed=42, velocity=(0.2, 0.2),
                        diffusion=0.03, forcing=0.01)
    )
    raw = sum(s.nbytes for s in snaps)

    # Decimation at k=6 stores 1/6 of the snapshots (plus the last).
    k = 6
    dec_quality = decimation_quality(snaps, k)
    dec_bytes = raw * (len([i for i in range(0, STEPS, k)]) + 1) / STEPS
    dec_finite = [q for q in dec_quality if np.isfinite(q)]

    # Fixed-PSNR on EVERY snapshot, tuned to roughly the same bytes:
    # search the target that matches decimation's storage.
    lo_t, hi_t = 30.0, 120.0
    for _ in range(12):
        mid = 0.5 * (lo_t + hi_t)
        blobs = compress_series(snaps, target_psnr=mid, keyframe_interval=8)
        total = sum(len(b) for b in blobs)
        if total <= dec_bytes:
            lo_t = mid
        else:
            hi_t = mid
    target = lo_t
    blobs = compress_series(snaps, target_psnr=target, keyframe_interval=8)
    comp_bytes = sum(len(b) for b in blobs)
    comp_quality = [
        psnr(s, r) for s, r in zip(snaps, decompress_series(blobs))
    ]

    rows = [
        (
            f"decimation k={k}",
            f"{dec_bytes / 1e6:.2f} MB",
            "inf (kept)",
            f"{min(dec_finite):.1f}",
            f"{np.mean(dec_finite):.1f}",
        ),
        (
            f"fixed-PSNR {target:.0f} dB, all steps",
            f"{comp_bytes / 1e6:.2f} MB",
            f"{max(comp_quality):.1f}",
            f"{min(comp_quality):.1f}",
            f"{np.mean(comp_quality):.1f}",
        ),
    ]
    text = render_table(
        ["strategy", "storage", "best step dB", "worst step dB", "mean dB"],
        rows,
        title=f"X8a -- every-snapshot compression vs temporal decimation "
        f"({STEPS} steps of {SHAPE})",
    )
    print("\n" + text)

    payload = {
        "decimation": {
            "k": k,
            "bytes": dec_bytes,
            "per_step_psnr": [float(q) for q in dec_quality],
        },
        "compression": {
            "target": target,
            "bytes": comp_bytes,
            "per_step_psnr": [float(q) for q in comp_quality],
        },
    }

    # The paper's point: at equal storage, compression's WORST step
    # beats decimation's worst step by a wide margin.
    assert comp_bytes <= dec_bytes * 1.05
    assert min(comp_quality) > min(dec_finite) + 10.0

    # -- X8b: temporal-prediction gain vs dynamics speed --------------
    gain_rows = []
    gains = {}
    for label, vel, forcing in (
        ("slow", 0.05, 0.002),
        ("medium", 0.3, 0.01),
        ("fast", 1.5, 0.05),
    ):
        series = list(
            snapshot_series((64, 64), 12, seed=7, velocity=(vel, vel),
                            diffusion=0.02, forcing=forcing)
        )
        eb = 1e-3
        temporal = sum(
            len(b)
            for b in compress_series(
                series, error_bound=eb, mode="abs", keyframe_interval=12
            )
        )
        independent = sum(len(compress(s, eb, mode="abs")) for s in series)
        gains[label] = independent / temporal
        gain_rows.append((label, f"{vel}", f"{gains[label]:.2f}x"))
    text2 = render_table(
        ["dynamics", "cells/step", "temporal gain"],
        gain_rows,
        title="X8b -- temporal-prediction gain vs dynamics speed",
    )
    print("\n" + text2)
    payload["temporal_gain"] = gains
    save_result("ablation_temporal", payload, text + "\n\n" + text2)

    # gain decreases monotonically with dynamics speed ...
    assert gains["slow"] > gains["medium"] > gains["fast"] - 0.05
    # ... and is a real win on slow dynamics
    assert gains["slow"] > 1.2

    # -- X8c: temporal prediction order ---------------------------------
    # Second differences triple the lattice-noise variance first
    # differences double, so order 1 wins at tight bounds even on
    # steadily advecting data (the same trade-off behind SZ's spatial
    # default).  Verify the measured ordering so the documentation's
    # claim stays true.
    steady = list(
        snapshot_series((64, 64), 12, seed=2, velocity=(0.4, 0.4),
                        diffusion=0.0, forcing=0.0)
    )
    order_bytes = {}
    for order in (1, 2):
        order_bytes[order] = sum(
            len(b)
            for b in compress_series(
                steady, error_bound=1e-3, mode="abs",
                keyframe_interval=12, temporal_order=order,
            )
        )
    payload["order_bytes"] = order_bytes
    text3 = render_table(
        ["order", "bytes"],
        [(k, v) for k, v in order_bytes.items()],
        title="X8c -- temporal prediction order (steady advection, eb=1e-3)",
    )
    print("\n" + text3)
    save_result("ablation_temporal", payload, text + "\n\n" + text2 + "\n\n" + text3)
    assert order_bytes[1] < order_bytes[2] * 1.05

    benchmark(
        lambda: compress_series(snaps[:4], target_psnr=70.0, keyframe_interval=8)
    )
