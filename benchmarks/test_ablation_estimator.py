"""Experiment X1 -- estimation accuracy vs quantization-bin size.

The paper explains its low-PSNR degradation by noting that Eq. 3's
approximation worsens as bins grow (Section V, last paragraph).  This
ablation quantifies that: sweep the bin size over five decades on one
ATM field and compare, against the *measured* PSNR of the real codec,

* the closed form of Eq. 6 (what fixed-PSNR mode inverts),
* the general histogram estimator of Eqs. 3/5 fed with the empirical
  prediction-error distribution,
* the lattice-phase estimator used by the refined calibration mode.

Expected shape: the closed form is essentially exact while bins are
narrow and deviates (downward: actual PSNR exceeds it) as bins widen;
the lattice-phase estimator stays within ~0.1 dB everywhere.
"""

import numpy as np

from benchmarks.conftest import bench_scale, render_table
from repro.core.calibration import lattice_phase_mse
from repro.core.psnr_model import QuantizationModel, mse_to_psnr, uniform_quantization_psnr
from repro.datasets.registry import get_dataset
from repro.metrics.distortion import psnr
from repro.sz.compressor import compress, decompress
from repro.sz.predictors import prediction_errors


def test_estimator_accuracy_vs_bin_size(benchmark, save_result):
    ds = get_dataset("ATM", scale=bench_scale())
    field = ds.field("CLDLOW").astype(np.float64)
    vr = float(field.max() - field.min())
    pe = prediction_errors(field)

    rows = []
    records = []
    for eb_rel in (1e-6, 1e-5, 1e-4, 1e-3, 1e-2, 5e-2):
        eb = eb_rel * vr
        delta = 2 * eb

        measured = psnr(field, decompress(compress(field, eb, mode="abs")))
        closed = uniform_quantization_psnr(vr, delta)

        n_bins = min(4097, 2 * int(np.ceil(np.abs(pe).max() / delta)) + 1)
        model = QuantizationModel.uniform(delta, n_bins)
        hist_est = model.estimate_psnr(model.density_from_samples(pe), vr)

        phase = mse_to_psnr(
            lattice_phase_mse(field, float(field.flat[0]), delta), vr
        )

        rows.append(
            (
                f"{eb_rel:.0e}",
                f"{measured:.2f}",
                f"{closed:.2f}",
                f"{hist_est:.2f}",
                f"{phase:.2f}",
            )
        )
        records.append(
            {
                "eb_rel": eb_rel,
                "measured": measured,
                "closed_form": closed,
                "histogram": hist_est,
                "lattice_phase": phase,
            }
        )

    text = render_table(
        ["eb_rel", "measured", "Eq.6 closed", "Eq.3 histogram", "lattice phase"],
        rows,
        title="X1 -- PSNR estimators vs bin size (ATM/CLDLOW)",
    )
    print("\n" + text)
    save_result("ablation_estimator", records, text)

    for rec in records:
        # the exact estimator is always tight
        assert abs(rec["lattice_phase"] - rec["measured"]) < 0.1
    # closed form: tight at narrow bins ...
    assert abs(records[0]["closed_form"] - records[0]["measured"]) < 0.5
    # ... and an *underestimate* at the widest bins (actual PSNR higher)
    assert records[-1]["measured"] > records[-1]["closed_form"]

    # benchmark the cheap part: one closed-form evaluation
    benchmark(uniform_quantization_psnr, vr, 2e-3 * vr)
