"""Experiment X4 -- throughput: vectorized lattice SZ vs the literal
sequential recurrence, plus predictor ablation.

Two claims are measured:

* the exact vectorization (DESIGN.md section 2.1) is orders of
  magnitude faster than the per-point reference implementation while
  producing identical codes;
* the predictor affects only the *compression ratio*, never the PSNR
  (Theorem 3) -- Lorenzo buys its keep in bit rate, not in distortion.
"""

import time

import numpy as np

from benchmarks.conftest import render_table
from repro.metrics.distortion import psnr
from repro.sz.compressor import SZCompressor, decompress
from repro.sz.predictors import lorenzo_difference
from repro.sz.quantizer import LatticeQuantizer
from repro.sz.reference import sequential_lorenzo_quantize


def test_vectorized_vs_reference_speed(benchmark, save_result):
    rng = np.random.default_rng(99)
    x = np.cumsum(np.cumsum(rng.normal(size=(48, 64)), 0), 1)
    eb = 1e-3

    def vectorized():
        quant = LatticeQuantizer(eb, float(x[0, 0]))
        k = quant.quantize(x)
        return lorenzo_difference(k)

    t0 = time.perf_counter()
    q_ref, _ = sequential_lorenzo_quantize(x, eb)
    t_ref = time.perf_counter() - t0

    t0 = time.perf_counter()
    for _ in range(50):
        q_vec = vectorized()
    t_vec = (time.perf_counter() - t0) / 50

    assert np.array_equal(q_ref, q_vec)
    speedup = t_ref / t_vec

    rows = [
        ("sequential reference", f"{1e3 * t_ref:.2f} ms", "1x"),
        ("vectorized lattice", f"{1e3 * t_vec:.3f} ms", f"{speedup:.0f}x"),
    ]
    text = render_table(
        ["implementation", "quantize+predict 48x64", "speedup"],
        rows,
        title="X4a -- exact vectorization speedup",
    )
    print("\n" + text)
    save_result(
        "ablation_throughput",
        {"t_reference_s": t_ref, "t_vectorized_s": t_vec, "speedup": speedup},
        text,
    )
    assert speedup > 20.0

    benchmark(vectorized)


def test_predictor_ablation(benchmark, save_result):
    """Same PSNR (Theorem 3), different compression ratio."""
    rng = np.random.default_rng(7)
    x = np.cumsum(np.cumsum(rng.normal(size=(192, 256)), 0), 1)
    eb_rel = np.sqrt(3) * 10 ** (-80.0 / 20.0)  # 80 dB target

    rows = []
    stats = {}
    for predictor in ("lorenzo", "lorenzo1d", "none"):
        comp = SZCompressor(eb_rel, mode="rel", predictor=predictor)
        blob = comp.compress(x)
        p = psnr(x, decompress(blob))
        cr = x.nbytes / len(blob)
        stats[predictor] = {"psnr": float(p), "cr": float(cr)}
        rows.append((predictor, f"{p:.2f}", f"{cr:.2f}"))

    text = render_table(
        ["predictor", "actual PSNR", "compression ratio"],
        rows,
        title="X4b -- predictor ablation at an 80 dB target",
    )
    print("\n" + text)
    save_result("ablation_predictors", stats, text)

    psnrs = [v["psnr"] for v in stats.values()]
    # Theorem 3: PSNR within a fraction of a dB across predictors ...
    assert max(psnrs) - min(psnrs) < 0.5
    # ... while the ratio ordering shows the predictor's real job.
    assert stats["lorenzo"]["cr"] > stats["lorenzo1d"]["cr"] > stats["none"]["cr"]

    comp = SZCompressor(eb_rel, mode="rel", predictor="lorenzo")
    benchmark(comp.compress, x)


def test_roundtrip_throughput(benchmark, save_result):
    """End-to-end codec throughput on a 1 MB field."""
    rng = np.random.default_rng(3)
    x = np.cumsum(np.cumsum(rng.normal(size=(512, 256)), 0), 1)  # 1 MiB
    comp = SZCompressor(1e-4, mode="rel")

    def roundtrip():
        return decompress(comp.compress(x))

    recon = benchmark(roundtrip)
    assert recon.shape == x.shape
    mb = x.nbytes / 2**20
    # record MB/s from the benchmark's own stats after the run
    save_result(
        "ablation_roundtrip_size",
        {"field_mib": mb, "note": "throughput = field_mib / benchmark mean"},
    )
