"""Experiment X3 -- fixed-PSNR on the orthogonal-transform codec.

Theorem 2 extends the distortion analysis to orthogonal-transform
compressors, and Theorem 3 says any such codec with uniform
quantization is fixed-PSNR with the *same* Eq. 8.  The paper only
evaluates SZ; this extension runs the identical protocol through the
block-DCT codec and checks the control is just as tight at medium/high
targets.
"""

import numpy as np

from benchmarks.conftest import bench_scale, render_table
from repro.core.fixed_psnr import FixedPSNRCompressor
from repro.datasets.registry import get_dataset
from repro.metrics.distortion import psnr

TARGETS = (40.0, 60.0, 80.0, 100.0)
FIELDS = ("TS", "T500", "PSL", "U850", "CLDLOW", "FLNS")


def test_transform_fixed_psnr(benchmark, save_result):
    ds = get_dataset("ATM", scale=bench_scale())
    payload = {}
    rows = []
    for target in TARGETS:
        actuals_sz, actuals_tr = [], []
        for name in FIELDS:
            data = ds.field(name)
            for codec, sink in (("sz", actuals_sz), ("transform", actuals_tr)):
                comp = FixedPSNRCompressor(target, codec=codec)
                recon = comp.decompress(comp.compress(data))
                sink.append(psnr(data, recon))
        sz_arr, tr_arr = np.array(actuals_sz), np.array(actuals_tr)
        payload[str(target)] = {
            "sz": {"avg": float(sz_arr.mean()), "stdev": float(sz_arr.std())},
            "transform": {
                "avg": float(tr_arr.mean()),
                "stdev": float(tr_arr.std()),
            },
        }
        rows.append(
            (
                f"{target:.0f}",
                f"{sz_arr.mean():.2f}",
                f"{sz_arr.std():.2f}",
                f"{tr_arr.mean():.2f}",
                f"{tr_arr.std():.2f}",
            )
        )

    text = render_table(
        ["user PSNR", "SZ AVG", "SZ STDEV", "DCT AVG", "DCT STDEV"],
        rows,
        title=f"X3 -- fixed-PSNR via both codecs ({len(FIELDS)} ATM fields)",
    )
    print("\n" + text)
    save_result("ablation_transform", payload, text)

    devs = []
    for target in TARGETS:
        stats = payload[str(target)]["transform"]
        # The transform codec always meets the demand ...
        assert stats["avg"] >= target - 1.0, (target, stats)
        devs.append(abs(stats["avg"] - target))
    # ... is tightly fixed-PSNR at medium/high targets (Theorem 3) ...
    for target in (80.0, 100.0):
        stats = payload[str(target)]["transform"]
        assert abs(stats["avg"] - target) < 2.0, (target, stats)
        assert stats["stdev"] < 2.0
    # ... and, like SZ, overshoots at low targets -- more so, because
    # AC coefficients concentrate at exactly zero (on-lattice mass).
    assert devs[-1] <= devs[0] + 0.5

    data = ds.field("TS")
    comp = FixedPSNRCompressor(80.0, codec="transform")
    benchmark(comp.compress, data)
