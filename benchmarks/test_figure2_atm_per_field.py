"""Experiment F2 -- paper Figure 2: fixed-PSNR on *all* ATM fields.

The paper compresses every one of the 79 ATM fields at user-set PSNRs
of 40, 80 and 120 dB and plots the actual per-field PSNR against the
red target line, reporting that >90 % of fields "meet" the demand
(actual >= user-set) on average.

We regenerate the full per-field series for the same three targets and
report the meet rate twice: for the paper's plain Eq. 8 derivation and
for the ``margin_db=0.5`` variant (our synthetic fields lack the
mass-concentration bias pervasive in production data, which is what
pushes real fields above the line -- see EXPERIMENTS.md).
"""

import numpy as np

from benchmarks.conftest import bench_scale, render_table
from repro.core.fixed_psnr import FixedPSNRCompressor
from repro.datasets.registry import get_dataset
from repro.metrics.distortion import psnr

TARGETS = (40.0, 80.0, 120.0)
MARGIN = 0.5


def _series(ds, target, margin):
    comp = FixedPSNRCompressor(target, margin_db=margin)
    out = []
    for name, data in ds.fields():
        recon = comp.decompress(comp.compress(data))
        out.append((name, psnr(data, recon)))
    return out


def test_figure2_per_field_psnr(benchmark, save_result):
    ds = get_dataset("ATM", scale=bench_scale())
    assert ds.n_fields == 79

    payload = {"targets": list(TARGETS), "fields": ds.field_names, "series": {}}
    summary_rows = []
    for target in TARGETS:
        plain = _series(ds, target, 0.0)
        with_margin = _series(ds, target, MARGIN)
        actual = np.array([p for _, p in plain])
        actual_m = np.array([p for _, p in with_margin])
        payload["series"][str(target)] = {
            "plain": {n: float(p) for n, p in plain},
            "margin": {n: float(p) for n, p in with_margin},
        }
        summary_rows.append(
            (
                f"{target:.0f} dB",
                f"{actual.mean():.2f}",
                f"{actual.std():.2f}",
                f"{100 * np.mean(actual >= target):.1f}%",
                f"{100 * np.mean(actual_m >= target):.1f}%",
            )
        )
        # Paper-shape assertions: the series hugs the target line.
        assert abs(actual.mean() - target) < 4.0
        # margin variant must meet the paper's >90 % criterion
        assert np.mean(actual_m >= target) >= 0.9

    text = render_table(
        ["user-set", "AVG actual", "STDEV", "meet% (Eq.8)", f"meet% (+{MARGIN}dB)"],
        summary_rows,
        title="Figure 2 -- fixed-PSNR over all 79 ATM fields",
    )
    print("\n" + text)

    # The three panels of the paper's figure, rendered as ASCII.
    from benchmarks.asciiplot import scatter

    for target in TARGETS:
        series = [
            payload["series"][str(target)]["plain"][n] for n in ds.field_names
        ]
        panel = scatter(
            series,
            hline=target,
            title=f"\nFigure 2 panel -- user-set PSNR = {target:.0f} dB",
        )
        text += "\n" + panel
    print(text.split("Figure 2 panel", 1)[0])  # summary already printed

    # Per-field series for the 80 dB panel (the paper's middle plot).
    rows80 = [
        (n, f"{payload['series']['80.0']['plain'][n]:.2f}")
        for n in ds.field_names
    ]
    text += "\n\n" + render_table(
        ["field", "actual PSNR @80"], rows80, title="80 dB panel, per field"
    )
    save_result("figure2", payload, text)

    # Benchmark one representative field/target compression.
    data = ds.field("CLDHGH")
    comp = FixedPSNRCompressor(80.0)
    benchmark(comp.compress, data)
