"""Experiment X10 -- what does a PSNR target mean for the science?

The paper motivates PSNR as "closely related to the visual quality";
analysts care about the sharper version: which *scales* and which
*derived quantities* survive a given target?  This ablation sweeps the
fixed-PSNR knob on a Hurricane wind field and reports

* the spectral fidelity cutoff (smallest preserved scale, as a
  fraction of Nyquist), and
* the PSNR of the derived vorticity field,

giving users a translation table from "target dB" to "trustworthy
physics".
"""

import numpy as np

from benchmarks.conftest import bench_scale, render_table
from repro.core.fixed_psnr import compress_fixed_psnr
from repro.datasets.registry import get_dataset
from repro.metrics.derived import vorticity_z
from repro.metrics.distortion import psnr
from repro.metrics.spectral import fidelity_cutoff
from repro.sz.compressor import decompress

TARGETS = (30.0, 40.0, 60.0, 80.0, 100.0, 120.0)


def test_scale_and_vorticity_preservation(benchmark, save_result):
    ds = get_dataset("Hurricane", scale=bench_scale())
    u = ds.field("U").astype(np.float64)
    v = ds.field("V").astype(np.float64)
    u_mid = u[u.shape[0] // 2]  # mid-level horizontal slice
    v_mid = v[v.shape[0] // 2]
    vort = vorticity_z(u_mid, v_mid)

    rows = []
    records = []
    for target in TARGETS:
        u_rec = decompress(compress_fixed_psnr(u_mid, target))
        v_rec = decompress(compress_fixed_psnr(v_mid, target))
        cutoff = fidelity_cutoff(u_mid, u_rec)
        vort_rec = vorticity_z(u_rec, v_rec)
        vort_psnr = psnr(vort, vort_rec)
        rows.append(
            (
                f"{target:.0f}",
                f"{psnr(u_mid, u_rec):.1f}",
                f"{cutoff:.2f}",
                f"{vort_psnr:.1f}",
            )
        )
        records.append(
            {
                "target": target,
                "u_psnr": float(psnr(u_mid, u_rec)),
                "fidelity_cutoff": float(cutoff),
                "vorticity_psnr": float(vort_psnr),
            }
        )

    text = render_table(
        ["target dB", "U actual dB", "preserved scales (of Nyquist)",
         "vorticity dB"],
        rows,
        title="X10 -- scale and derived-quantity preservation "
        "(Hurricane mid-level winds)",
    )
    print("\n" + text)
    save_result("ablation_spectral", records, text)

    cutoffs = [r["fidelity_cutoff"] for r in records]
    vorts = [r["vorticity_psnr"] for r in records]
    # more dB => more preserved scales and better derived quantities
    assert all(a <= b + 1e-9 for a, b in zip(cutoffs, cutoffs[1:]))
    assert all(a < b for a, b in zip(vorts, vorts[1:]))
    # at 120 dB everything down to Nyquist survives
    assert cutoffs[-1] == 1.0
    # derived quantities always cost dB relative to the values
    for r in records:
        assert r["vorticity_psnr"] < r["u_psnr"]

    benchmark(fidelity_cutoff, u_mid, decompress(compress_fixed_psnr(u_mid, 60.0)))
