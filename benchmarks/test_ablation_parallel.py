"""Experiment X6 -- parallel decompositions preserve semantics.

The paper's motivating workload is compressing 100+ fields per CESM
snapshot on cluster nodes.  Two decompositions matter: per-field task
parallelism (executor) and intra-field slab chunking.  This benchmark
verifies the parallel paths are byte-identical / bound-preserving and
measures the slab-chunked codec against the monolithic one.
"""

import numpy as np

from benchmarks.conftest import bench_scale, render_table
from repro.datasets.registry import get_dataset
from repro.metrics.distortion import max_abs_error, psnr
from repro.parallel.chunking import compress_chunked, decompress_chunked
from repro.sz.compressor import compress, decompress


def test_chunked_vs_monolithic(benchmark, save_result):
    ds = get_dataset("Hurricane", scale=bench_scale())
    field = ds.field("Pf").astype(np.float64)
    eb_rel = 1e-4
    vr = float(field.max() - field.min())
    eb_abs = eb_rel * vr

    mono_blob = compress(field, eb_rel, mode="rel")
    mono = decompress(mono_blob)

    rows = []
    payload = {}
    for n_chunks in (1, 2, 4, 8):
        blob = compress_chunked(field, eb_rel, mode="rel", n_chunks=n_chunks)
        recon = decompress_chunked(blob)
        assert max_abs_error(field, recon) <= eb_abs * (1 + 1e-9)
        p = psnr(field, recon)
        cr = field.nbytes / len(blob)
        payload[n_chunks] = {"psnr": float(p), "cr": float(cr)}
        rows.append((n_chunks, f"{p:.2f}", f"{cr:.2f}"))
    rows.append(
        ("mono", f"{psnr(field, mono):.2f}", f"{field.nbytes / len(mono_blob):.2f}")
    )

    text = render_table(
        ["slabs", "PSNR", "CR"],
        rows,
        title="X6 -- slab-chunked vs monolithic compression (Hurricane/Pf)",
    )
    print("\n" + text)
    save_result("ablation_parallel", payload, text)

    # Chunking costs at most a few percent of ratio and ~0 quality.
    assert abs(payload[8]["psnr"] - psnr(field, mono)) < 1.0
    assert payload[8]["cr"] > 0.85 * field.nbytes / len(mono_blob)

    benchmark(compress_chunked, field, eb_rel, mode="rel", n_chunks=4)
