"""Benchmark-side alias of :mod:`repro.textplot` (kept for the
benchmark modules' imports)."""

from repro.textplot import bars, scatter

__all__ = ["bars", "scatter"]
