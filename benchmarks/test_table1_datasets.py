"""Experiment T1 -- paper Table I: the data-set inventory.

Regenerates the inventory table (dimensions, field counts, sizes,
example fields) from the synthetic registry and benchmarks field
generation throughput.
"""

import numpy as np

from benchmarks.conftest import bench_scale, render_table
from repro.datasets.registry import get_dataset, table1_rows


def test_table1_inventory(benchmark, save_result):
    rows = table1_rows(scale=bench_scale())

    # Paper's Table I for side-by-side comparison.
    paper = {
        "NYX": ("2048x2048x2048", 6, "206 GB"),
        "ATM": ("1800x3600", 79, "1.5 TB"),
        "Hurricane": ("100x500x500", 13, "62.4 GB"),
    }
    table_rows = []
    for r in rows:
        p_dim, p_fields, p_size = paper[r["dataset"]]
        assert r["full_dimensions"] == p_dim
        assert r["n_fields"] == p_fields
        table_rows.append(
            (
                r["dataset"],
                r["full_dimensions"],
                r["n_fields"],
                p_size,
                r["instantiated_dimensions"],
                f"{r['instantiated_size_bytes'] / 1e6:.1f} MB",
                r["example_fields"],
            )
        )
    text = render_table(
        ["Dataset", "Dim. (paper)", "Fields", "Paper size", "Bench dim.",
         "Bench size", "Example fields"],
        table_rows,
        title="Table I -- data sets used in the evaluation",
    )
    print("\n" + text)
    save_result("table1", rows, text)

    # Throughput: generating one ATM field (the most common workload).
    ds = get_dataset("ATM", scale=bench_scale())
    field = benchmark(ds.field, "CLDHGH")
    assert field.shape == ds.shape
    assert np.all(np.isfinite(field))
