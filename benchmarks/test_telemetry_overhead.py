"""Telemetry overhead: metrics ingestion and memory profiling costs.

The observability budget (DESIGN/OBSERVABILITY): tracing off must be
~free, tracing on must stay a small fraction of compression, and the
two opt-in telemetry layers have measured, bounded costs:

* ``record_trace`` (feeding a finished trace into the metrics
  registry) is pure dict arithmetic -- it must be negligible next to
  the compression that produced the trace;
* ``profile_memory`` (tracemalloc) is expected to be *expensive* --
  the point of measuring it is to document why it is opt-in.
"""

import time

import repro.observe as observe
from benchmarks.conftest import bench_scale, render_table
from repro.datasets.registry import get_dataset
from repro.sz.compressor import SZCompressor
from repro.telemetry import MetricsRegistry, record_trace
from repro.telemetry.memory import profile_memory


def _best_of(fn, repeats=5):
    best = float("inf")
    for _ in range(repeats):
        t0 = time.perf_counter()
        fn()
        best = min(best, time.perf_counter() - t0)
    return best


def test_telemetry_overhead(save_result):
    field = get_dataset("ATM", scale=bench_scale()).field("T500")
    sz = SZCompressor(error_bound=1e-3, mode="abs")

    def traced_compress():
        tr = observe.Trace()
        with observe.use_trace(tr):
            sz.compress(field)
        return tr

    def profiled_compress():
        tr = observe.Trace()
        with observe.use_trace(tr), profile_memory():
            sz.compress(field)
        return tr

    t_plain = _best_of(lambda: sz.compress(field))
    t_traced = _best_of(traced_compress)
    t_profiled = _best_of(profiled_compress)
    trace = traced_compress()
    t_ingest = _best_of(
        lambda: record_trace(trace, registry=MetricsRegistry()), repeats=20
    )

    rows = [
        ("plain compression", f"{1e3 * t_plain:.3f} ms", "1x"),
        ("traced", f"{1e3 * t_traced:.3f} ms",
         f"{t_traced / t_plain:.3f}x"),
        ("traced + profile_memory", f"{1e3 * t_profiled:.3f} ms",
         f"{t_profiled / t_plain:.3f}x"),
        ("record_trace ingestion", f"{1e6 * t_ingest:.3f} us",
         f"{100 * t_ingest / t_plain:.4f}%"),
    ]
    text = render_table(
        ["step", "time", "vs plain"],
        rows,
        title="Telemetry overhead (ATM/T500, abs 1e-3)",
    )
    print("\n" + text)
    save_result(
        "telemetry_overhead",
        {
            "plain_s": t_plain,
            "traced_s": t_traced,
            "profiled_s": t_profiled,
            "record_trace_s": t_ingest,
            "ingest_fraction": t_ingest / t_plain,
        },
        text,
    )

    # Ingesting a trace into the registry is dict arithmetic only.
    assert t_ingest / t_plain < 0.05
    # Memory profiling is allowed to be slow (it is opt-in), but not
    # absurdly so for a numpy-dominated workload.
    assert t_profiled / t_plain < 10.0
