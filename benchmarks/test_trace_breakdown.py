"""Experiment X11 -- where does the time go?

Runs the fixed-PSNR pipeline with the :mod:`repro.observe` trace
enabled and persists the stage-cost breakdown as a benchmark artefact.
Two properties are asserted on the way:

* the per-stream byte counters of the ``pack`` span sum **exactly** to
  the container size (the observability layer's accounting invariant);
* tracing leaves the output bitstream byte-identical to an untraced
  run (telemetry never leaks into the format).
"""

import numpy as np

from benchmarks.conftest import bench_scale, render_table
from repro.core.fixed_psnr import FixedPSNRCompressor
from repro.datasets.registry import get_dataset
from repro.observe import Trace, use_trace


def test_trace_stage_breakdown(save_result):
    ds = get_dataset("ATM", scale=bench_scale())
    field = ds.field(ds.field_names[0])
    comp = FixedPSNRCompressor(80.0)

    baseline = comp.compress(field)
    tr = Trace()
    with use_trace(tr):
        blob = comp.compress(field)
    assert blob == baseline, "tracing changed the bitstream"

    pack = [r for r in tr.records if r.path[-1] == "pack"]
    assert pack, "no pack span recorded"
    accounted = sum(
        v
        for k, v in pack[0].counters.items()
        if k.startswith("bytes.")
    )
    assert accounted == len(blob)

    agg = tr.aggregate()
    rows = [
        (
            "/".join(path),
            f"{1e3 * a['duration_s']:.2f} ms",
            a["calls"],
        )
        for path, a in sorted(
            agg.items(), key=lambda kv: -kv[1]["duration_s"]
        )
    ]
    text = render_table(
        ["stage", "time", "calls"], rows, title="X11 -- stage-cost breakdown"
    )
    print("\n" + text)
    save_result("trace_breakdown", tr.as_dict(), text)
