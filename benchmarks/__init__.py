"""Benchmark package regenerating every table and figure of the paper."""
