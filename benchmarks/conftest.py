"""Shared benchmark infrastructure.

Every benchmark regenerates one paper artefact (table/figure) or an
ablation.  Numbers are printed to stdout (run with ``-s`` to watch) and
persisted as JSON + plain text under ``benchmarks/results/`` so
EXPERIMENTS.md can quote them.

``REPRO_BENCH_SCALE`` (a float in (0, 1]) rescales every data set's
dimensions; unset uses the laptop-scale registry defaults documented in
DESIGN.md.
"""

from __future__ import annotations

import json
import os
from pathlib import Path

import pytest

RESULTS_DIR = Path(__file__).parent / "results"


def bench_scale():
    """Optional global dimension scale from the environment."""
    raw = os.environ.get("REPRO_BENCH_SCALE")
    return float(raw) if raw else None


@pytest.fixture(scope="session")
def results_dir():
    RESULTS_DIR.mkdir(parents=True, exist_ok=True)
    return RESULTS_DIR


@pytest.fixture(scope="session")
def save_result(results_dir):
    """Persist a benchmark artefact as <name>.json and <name>.txt."""

    def _save(name: str, payload, text: str = ""):
        (results_dir / f"{name}.json").write_text(
            json.dumps(payload, indent=2, sort_keys=True, default=str)
        )
        if text:
            (results_dir / f"{name}.txt").write_text(text)
        return results_dir / f"{name}.json"

    return _save


def render_table(headers, rows, title=""):
    """Render a plain-text table (also what lands in results/*.txt)."""
    widths = [
        max(len(str(h)), *(len(str(r[i])) for r in rows)) if rows else len(str(h))
        for i, h in enumerate(headers)
    ]
    lines = []
    if title:
        lines.append(title)
    lines.append("  ".join(str(h).rjust(w) for h, w in zip(headers, widths)))
    lines.append("  ".join("-" * w for w in widths))
    for r in rows:
        lines.append("  ".join(str(c).rjust(w) for c, w in zip(r, widths)))
    return "\n".join(lines)
