"""Experiment X2 -- the fixed-PSNR step's overhead is negligible.

The paper claims the only overhead over plain SZ is evaluating Eq. 8
once per field, "which is negligible".  This benchmark measures it:
time the bound derivation alone against a full compression of the same
field, for both the closed form and the histogram-refined variant.
"""

import time

import numpy as np

from benchmarks.conftest import bench_scale, render_table
from repro.core.fixed_psnr import FixedPSNRCompressor, psnr_to_relative_bound
from repro.datasets.registry import get_dataset
from repro.sz.compressor import SZCompressor


def _best_of(fn, repeats=5):
    best = float("inf")
    for _ in range(repeats):
        t0 = time.perf_counter()
        fn()
        best = min(best, time.perf_counter() - t0)
    return best


def test_fixed_psnr_overhead(benchmark, save_result):
    ds = get_dataset("ATM", scale=bench_scale())
    field = ds.field("T500")
    target = 80.0

    eb_rel = psnr_to_relative_bound(target)
    sz = SZCompressor(error_bound=eb_rel, mode="rel")

    t_compress = _best_of(lambda: sz.compress(field))
    t_eq8 = _best_of(lambda: psnr_to_relative_bound(target), repeats=20)
    refined = FixedPSNRCompressor(target, refine="histogram")
    t_refined = _best_of(lambda: refined.derive_bound(field))

    rows = [
        ("SZ compression of the field", f"{1e3 * t_compress:.3f} ms", "1x"),
        (
            "Eq. 8 closed-form derivation",
            f"{1e6 * t_eq8:.3f} us",
            f"{100 * t_eq8 / t_compress:.4f}%",
        ),
        (
            "histogram-refined derivation",
            f"{1e3 * t_refined:.3f} ms",
            f"{100 * t_refined / t_compress:.2f}%",
        ),
    ]
    text = render_table(
        ["step", "time", "vs compression"],
        rows,
        title="X2 -- overhead of the fixed-PSNR step (ATM/T500, 80 dB)",
    )
    print("\n" + text)
    save_result(
        "ablation_overhead",
        {
            "compress_s": t_compress,
            "eq8_s": t_eq8,
            "refined_s": t_refined,
            "eq8_fraction": t_eq8 / t_compress,
            "refined_fraction": t_refined / t_compress,
        },
        text,
    )

    # The paper's claim: closed-form overhead is negligible (<0.1 %).
    assert t_eq8 / t_compress < 1e-3
    # Even the refined derivation stays a modest fraction of compression.
    assert t_refined / t_compress < 2.0

    benchmark(psnr_to_relative_bound, target)
