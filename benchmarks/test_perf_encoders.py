"""Performance gates for the entropy coders and the codec hot paths.

The HPC-Python guides' core demand is that per-element work stays out
of Python; these benchmarks measure the resulting throughput and act
as regression gates (generous thresholds -- CI machines vary).
"""

import numpy as np

from benchmarks.conftest import render_table
from repro.encoding.huffman import huffman_encode
from repro.encoding.rans import rans_encode
from repro.sz.compressor import SZCompressor, decompress


def _mb(nbytes: float) -> float:
    return nbytes / 2**20


def test_huffman_throughput(benchmark, save_result):
    rng = np.random.default_rng(0)
    data = rng.geometric(0.25, size=1 << 20) - 1  # 1M symbols

    payload, bits, code = huffman_encode(data)

    def decode():
        return code.decode(payload, data.size, bits)

    out = benchmark(decode)
    assert np.array_equal(out, data)
    # vectorized decode must sustain > 2M symbols/s on any machine
    assert data.size / benchmark.stats["mean"] > 2e6


def test_rans_throughput(benchmark, save_result):
    rng = np.random.default_rng(1)
    data = rng.geometric(0.25, size=1 << 20) - 1
    payload, coder = rans_encode(data)

    out = benchmark(coder.decode, payload)
    assert np.array_equal(out, data)
    assert data.size / benchmark.stats["mean"] > 2e6


def test_codec_roundtrip_throughput(benchmark, save_result):
    """End-to-end SZ round trip on an 8 MiB field, reported in MB/s."""
    rng = np.random.default_rng(2)
    x = np.cumsum(np.cumsum(rng.normal(size=(1024, 1024)), 0), 1)
    comp = SZCompressor(1e-4, mode="rel")

    recon = benchmark(lambda: decompress(comp.compress(x)))
    assert recon.shape == x.shape
    mbps = _mb(x.nbytes) / benchmark.stats["mean"]
    text = render_table(
        ["metric", "value"],
        [
            ("field", "1024x1024 float64 (8 MiB)"),
            ("round trip", f"{1e3 * benchmark.stats['mean']:.1f} ms"),
            ("throughput", f"{mbps:.1f} MB/s"),
        ],
        title="codec round-trip throughput",
    )
    print("\n" + text)
    save_result(
        "perf_codec",
        {"mean_s": benchmark.stats["mean"], "throughput_mbps": mbps},
        text,
    )
    # pure-Python + NumPy must still exceed 5 MB/s round trip
    assert mbps > 5.0
