"""Experiment X5 -- the paper's future work: low compression-quality
targets.

Table II shows the closed form overshooting by 2-5 dB at 20-40 dB
targets.  The refined calibration mode derives the bound from the
field's own value distribution instead of the uniform assumption.  This
benchmark sweeps the low-target regime on representative fields of all
three data sets and reports |deviation| for both derivations.

Expected shape: refinement cuts the deviation wherever the target is
achievable; where it is not (the snap MSE saturates below the target
MSE -- sparse hydrometeors), both derivations overshoot and the
refined one must not be worse.
"""

import numpy as np

from benchmarks.conftest import bench_scale, render_table
from repro.core.fixed_psnr import FixedPSNRCompressor
from repro.datasets.registry import get_dataset
from repro.metrics.distortion import psnr

TARGETS = (15.0, 20.0, 25.0, 30.0, 40.0)
FIELDS = (
    ("ATM", "CLDHGH"),
    ("ATM", "PRECL"),
    ("NYX", "baryon_density"),
    ("NYX", "temperature"),
    ("Hurricane", "QICE"),
    ("Hurricane", "U"),
)


def test_refined_low_psnr(benchmark, save_result):
    scale = bench_scale()
    records = []
    rows = []
    for dataset, field in FIELDS:
        data = get_dataset(dataset, scale=scale).field(field)
        for target in TARGETS:
            plain = FixedPSNRCompressor(target)
            refined = FixedPSNRCompressor(target, refine="histogram")
            p_plain = psnr(data, plain.decompress(plain.compress(data)))
            p_ref = psnr(data, refined.decompress(refined.compress(data)))
            records.append(
                {
                    "dataset": dataset,
                    "field": field,
                    "target": target,
                    "plain": float(p_plain),
                    "refined": float(p_ref),
                }
            )
            rows.append(
                (
                    f"{dataset}/{field}",
                    f"{target:.0f}",
                    f"{p_plain:.2f}",
                    f"{p_ref:.2f}",
                )
            )

    text = render_table(
        ["field", "target", "actual (Eq.8)", "actual (refined)"],
        rows,
        title="X5 -- low-PSNR targets: closed form vs refined calibration",
    )
    print("\n" + text)

    plain_dev = np.mean([abs(r["plain"] - r["target"]) for r in records])
    ref_dev = np.mean([abs(r["refined"] - r["target"]) for r in records])
    summary = {
        "records": records,
        "mean_abs_deviation_plain": float(plain_dev),
        "mean_abs_deviation_refined": float(ref_dev),
    }
    save_result("ablation_refined_low_psnr", summary, text)
    print(
        f"\nmean |deviation|: Eq.8 {plain_dev:.2f} dB -> refined {ref_dev:.2f} dB"
    )

    # Refinement must improve the regime the paper flags as weak.  The
    # mean only moves a little because saturated cases (targets below
    # the field's achievable-PSNR floor) dominate it; so also check the
    # hit counts directly.
    assert ref_dev < plain_dev
    hits_refined = sum(1 for r in records if abs(r["refined"] - r["target"]) < 0.5)
    hits_plain = sum(1 for r in records if abs(r["plain"] - r["target"]) < 0.5)
    assert hits_refined >= hits_plain + 5
    assert hits_refined >= len(records) // 3
    # And per record it never makes things materially worse.
    for r in records:
        assert abs(r["refined"] - r["target"]) <= abs(r["plain"] - r["target"]) + 0.3

    data = get_dataset("ATM", scale=scale).field("PRECL")
    comp = FixedPSNRCompressor(25.0, refine="histogram")
    benchmark(comp.derive_bound, data)
