"""Unit tests for trial objectives (repro.autotune.objective) and the
block-SSIM metric they rely on."""

import numpy as np
import pytest

from repro.autotune.objective import (
    BUILTIN_OBJECTIVES,
    MetricObjective,
    Trial,
    get_objective,
)
from repro.errors import ParameterError
from repro.metrics.distortion import ssim


class TestGetObjective:
    def test_all_builtins_instantiate(self):
        for name in BUILTIN_OBJECTIVES:
            obj = get_objective(name, 0.5 if name == "ssim" else 10.0)
            assert obj.name == name
            assert obj.target > 0

    def test_unknown_name_rejected(self):
        with pytest.raises(ParameterError, match="unknown objective"):
            get_objective("entropy", 1.0)

    def test_unknown_codec_fails_fast(self):
        with pytest.raises(ParameterError):
            get_objective("ratio", 10.0, codec="nope")

    def test_bad_target_rejected(self):
        for bad in (0.0, -1.0, float("nan"), float("inf")):
            with pytest.raises(ParameterError):
                get_objective("ratio", bad)

    def test_ssim_target_range(self):
        with pytest.raises(ParameterError):
            get_objective("ssim", 1.5)
        assert get_objective("ssim", 1.0).target == 1.0

    def test_monotone_directions(self):
        incr = {"ratio", "nrmse", "mse", "max_error"}
        decr = {"bitrate", "psnr", "ssim"}
        for name in incr:
            assert get_objective(name, 0.5).increasing is True
        for name in decr:
            target = 0.5 if name == "ssim" else 10.0
            assert get_objective(name, target).increasing is False


class TestEvaluate:
    def test_trial_measurements_consistent(self, smooth2d):
        data = np.ascontiguousarray(smooth2d)
        t = get_objective("ratio", 10.0).evaluate(data, 1e-3)
        assert t.value == pytest.approx(data.nbytes / t.compressed_bytes)
        assert t.ratio == pytest.approx(t.value)
        assert t.bit_rate == pytest.approx(
            8.0 * t.compressed_bytes / data.size
        )
        assert t.raw_bytes == data.nbytes
        assert not t.cached
        assert t.blob is None

    def test_keep_blob_round_trips(self, smooth2d):
        from repro.metrics.distortion import max_abs_error
        from repro.sz.compressor import decompress

        data = np.ascontiguousarray(smooth2d)
        t = get_objective("ratio", 10.0).evaluate(data, 1e-3, keep_blob=True)
        recon = decompress(t.blob)
        assert max_abs_error(data, recon) == pytest.approx(t.max_abs_error)

    def test_objective_values_agree_with_metrics(self, smooth2d):
        from repro.metrics.distortion import distortion_report
        from repro.sz.compressor import decompress

        data = np.ascontiguousarray(smooth2d)
        eb = 1e-4
        blob_trial = get_objective("psnr", 60.0).evaluate(
            data, eb, keep_blob=True
        )
        rep = distortion_report(data, decompress(blob_trial.blob))
        assert blob_trial.value == pytest.approx(rep.psnr)
        assert get_objective("nrmse", 1e-4).evaluate(data, eb).value == (
            pytest.approx(rep.nrmse)
        )
        assert get_objective("max_error", 1e-3).evaluate(data, eb).value == (
            pytest.approx(rep.max_abs_error)
        )

    def test_bad_bound_rejected(self, smooth2d):
        obj = get_objective("ratio", 10.0)
        for bad in (0.0, -1e-3, float("nan")):
            with pytest.raises(ParameterError):
                obj.evaluate(smooth2d, bad)

    def test_evaluate_emits_trial_span(self, smooth2d):
        from repro.observe import Trace, use_trace

        tr = Trace()
        with use_trace(tr):
            get_objective("ratio", 10.0).evaluate(smooth2d, 1e-3)
        names = {path[-1] for path, _ in tr.aggregate().items()}
        assert "autotune.trial" in names

    def test_spec_is_picklable_and_rebuilds(self, smooth2d):
        import pickle

        obj = get_objective("bitrate", 4.0, codec="transform")
        spec = pickle.loads(pickle.dumps(obj.spec()))
        clone = get_objective(
            spec["name"], spec["target"], codec=spec["codec"],
            **spec["codec_options"],
        )
        assert clone.name == obj.name
        assert clone.codec == obj.codec


class TestWarmGuesses:
    def test_rate_guesses_scale_with_target(self, smooth2d):
        loose = get_objective("ratio", 5.0).default_guess(smooth2d)
        tight = get_objective("ratio", 50.0).default_guess(smooth2d)
        # A higher ratio target needs a larger bound.
        assert tight > loose > 0

    def test_psnr_guess_is_eq8(self, smooth2d):
        from repro.core.fixed_psnr import psnr_to_relative_bound

        obj = get_objective("psnr", 70.0)
        assert obj.default_guess(smooth2d) == pytest.approx(
            psnr_to_relative_bound(70.0)
        )

    def test_nrmse_guess_is_eq8_via_eq5(self, smooth2d):
        from repro.core.fixed_psnr import psnr_to_relative_bound
        from repro.core.psnr_model import nrmse_to_psnr

        obj = get_objective("nrmse", 1e-4)
        assert obj.default_guess(smooth2d) == pytest.approx(
            psnr_to_relative_bound(nrmse_to_psnr(1e-4))
        )


class TestMetricObjective:
    def test_custom_metric_measures(self, smooth2d):
        def neg_mse(a, b):
            return float(np.mean((a - b) ** 2)) + 1e-30

        obj = MetricObjective(1e-6, neg_mse, name="my_mse", increasing=True)
        t = obj.evaluate(np.ascontiguousarray(smooth2d), 1e-4)
        assert t.value > 0

    def test_non_callable_rejected(self):
        with pytest.raises(ParameterError):
            MetricObjective(1.0, metric="not callable")

    def test_unknown_direction_defaults_to_global(self):
        obj = MetricObjective(1.0, lambda a, b: 1.0)
        assert obj.increasing is None


class TestTrial:
    def test_replace_preserves_equality_modulo_blob(self):
        t = Trial(
            eb_rel=1e-3, value=10.0, ratio=10.0, bit_rate=3.2, psnr=60.0,
            nrmse=1e-3, max_abs_error=0.1, raw_bytes=100, compressed_bytes=10,
        )
        assert t.replace(blob=b"payload") == t
        assert t.replace(cached=True) != t

    def test_as_dict_excludes_blob(self):
        t = Trial(
            eb_rel=1e-3, value=10.0, ratio=10.0, bit_rate=3.2, psnr=60.0,
            nrmse=1e-3, max_abs_error=0.1, raw_bytes=100,
            compressed_bytes=10, blob=b"payload",
        )
        assert "blob" not in t.as_dict()


class TestSSIMMetric:
    def test_identical_fields_score_one(self, smooth2d):
        assert ssim(smooth2d, smooth2d) == pytest.approx(1.0)

    def test_degradation_lowers_score(self, smooth2d, rng):
        a = np.ascontiguousarray(smooth2d)
        small = ssim(a, a + rng.normal(size=a.shape) * 0.01)
        large = ssim(a, a + rng.normal(size=a.shape) * 5.0)
        assert large < small <= 1.0

    def test_score_bounded(self, rough2d, rng):
        a = np.ascontiguousarray(rough2d)
        s = ssim(a, a + rng.normal(size=a.shape))
        assert -1.0 <= s <= 1.0

    def test_window_larger_than_field(self):
        a = np.arange(9.0).reshape(3, 3)
        assert ssim(a, a, window=8) == pytest.approx(1.0)

    def test_shape_mismatch_rejected(self, smooth2d):
        with pytest.raises(ParameterError):
            ssim(smooth2d, smooth2d[:-1])
