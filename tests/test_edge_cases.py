"""Deeper edge cases across modules, beyond the per-module suites."""

import numpy as np
import pytest

from repro.errors import DecompressionError, ParameterError
from repro.metrics.distortion import max_abs_error


class TestHuffmanEdges:
    def test_sequential_fallback_for_long_codes(self, rng):
        """A code built with max_length beyond the table width must
        transparently use the sequential decoder."""
        from repro.encoding.huffman import MAX_TABLE_BITS, CanonicalHuffman

        # 40 symbols on an exponential frequency ladder -> optimal
        # lengths far beyond 18 bits if unconstrained.
        counts = (2 ** np.arange(40)).astype(np.int64)
        symbols = np.arange(40)
        code = CanonicalHuffman.from_counts(
            symbols, counts, max_length=40
        )
        assert code.max_length > MAX_TABLE_BITS
        data = rng.choice(symbols[-5:], size=500)
        payload, bits = code.encode(data)
        out = code.decode(payload, data.size, bits)  # sequential path
        assert np.array_equal(out, data)

    def test_two_symbol_alphabet(self):
        from repro.encoding.huffman import huffman_encode

        data = np.array([5, -5] * 100)
        payload, bits, code = huffman_encode(data)
        assert bits == 200  # 1 bit each
        assert np.array_equal(code.decode(payload, 200, bits), data)

    def test_decode_zero_symbols(self, rng):
        from repro.encoding.huffman import huffman_encode

        _, _, code = huffman_encode(rng.integers(0, 4, 100))
        assert code.decode(b"", 0, 0).size == 0


class TestQuantizationModelEdges:
    def test_uniform_center_offset(self):
        from repro.core.psnr_model import QuantizationModel

        m = QuantizationModel.uniform(0.5, 9, center=2.0)
        assert np.isclose(m.midpoints, 2.0).any()

    def test_single_bin(self):
        from repro.core.psnr_model import QuantizationModel

        m = QuantizationModel.uniform(1.0, 1)
        assert m.widths.tolist() == [1.0]
        assert m.estimate_mse(np.array([1.0])) == pytest.approx(1.0 / 12.0)


class TestCompressorEdges:
    def test_4d_data(self, rng):
        """The lattice/Lorenzo machinery is rank-agnostic."""
        from repro.sz.compressor import compress, decompress

        x = rng.normal(size=(4, 5, 6, 7))
        for axis in range(4):
            x = np.cumsum(x, axis=axis)
        eb = 1e-3
        recon = decompress(compress(x, eb))
        assert max_abs_error(x, recon) <= eb * (1 + 1e-9)

    def test_single_row_and_column(self, rng):
        from repro.sz.compressor import compress, decompress

        for shape in ((1, 50), (50, 1), (1, 1)):
            x = np.cumsum(rng.normal(size=shape), axis=-1)
            recon = decompress(compress(x, 1e-4))
            assert max_abs_error(x, recon) <= 1e-4 * (1 + 1e-9)

    def test_negative_value_range_data(self, rng):
        from repro.sz.compressor import compress, decompress

        x = -np.abs(np.cumsum(rng.normal(size=(30, 30)), axis=0)) - 100.0
        recon = decompress(compress(x, 1e-4, mode="rel"))
        vr = float(x.max() - x.min())
        assert max_abs_error(x, recon) <= 1e-4 * vr * (1 + 1e-9)

    def test_huge_values(self, rng):
        from repro.sz.compressor import compress, decompress

        x = np.cumsum(rng.normal(size=2000)) * 1e30
        eb = 1e25
        recon = decompress(compress(x, eb))
        assert max_abs_error(x, recon) <= eb * (1 + 1e-9)

    def test_tiny_values(self, rng):
        from repro.sz.compressor import compress, decompress

        x = np.cumsum(rng.normal(size=2000)) * 1e-30
        eb = 1e-35
        recon = decompress(compress(x, eb))
        assert max_abs_error(x, recon) <= eb * (1 + 1e-6)

    def test_bound_smaller_than_ulp_rejected_cleanly(self):
        """An error bound far below the data's float spacing must fail
        loudly (lattice overflow), not silently corrupt."""
        from repro.errors import CompressionError
        from repro.sz.compressor import compress

        x = np.linspace(0.0, 1e9, 100)
        with pytest.raises(CompressionError):
            compress(x, 1e-15)


class TestExecutorEdges:
    def test_default_workers_positive(self):
        from repro.parallel.executor import default_workers

        assert default_workers() >= 1

    def test_bit_rate_consistency(self):
        from repro.parallel.executor import run_field_task

        r = run_field_task("NYX", "velocity_y", 70.0)
        # CR and bit rate describe the same blob: CR * bitrate = 32
        # (float32 input)
        assert r.compression_ratio * r.bit_rate == pytest.approx(32.0, rel=1e-6)


class TestAllocationEdges:
    def test_generous_budget_hits_psnr_ceiling(self):
        """With a budget close to raw size the search pushes toward the
        bracket's top without failing."""
        from repro.core.allocation import psnr_for_budget

        rng = np.random.default_rng(3)
        x = np.cumsum(np.cumsum(rng.normal(size=(32, 32)), 0), 1)
        result = psnr_for_budget([("f", x)], int(x.nbytes * 0.9))
        assert result.target_psnr > 100.0

    def test_single_field(self):
        from repro.core.allocation import psnr_for_budget

        rng = np.random.default_rng(4)
        x = np.cumsum(np.cumsum(rng.normal(size=(48, 48)), 0), 1)
        result = psnr_for_budget([("only", x)], x.nbytes // 10)
        assert set(result.field_bytes) == {"only"}
        assert result.total_bytes <= x.nbytes // 10


class TestTemporalEdges:
    def test_single_frame_stream(self):
        from repro.sz.temporal import TemporalCompressor, TemporalDecompressor

        rng = np.random.default_rng(5)
        x = np.cumsum(rng.normal(size=(20, 20)), axis=0)
        comp = TemporalCompressor(error_bound=1e-3)
        blob = comp.push(x)
        recon = TemporalDecompressor().push(blob)
        assert max_abs_error(x, recon) <= 1e-3 * (1 + 1e-9)

    def test_very_long_stream_no_drift(self):
        from repro.sz.temporal import TemporalCompressor, TemporalDecompressor

        rng = np.random.default_rng(6)
        x = np.cumsum(rng.normal(size=(16, 16)), axis=0)
        comp = TemporalCompressor(error_bound=1e-3, keyframe_interval=1000)
        dec = TemporalDecompressor()
        for step in range(60):
            x = x + 0.01 * rng.normal(size=x.shape)
            recon = dec.push(comp.push(x))
            assert max_abs_error(x, recon) <= 1e-3 * (1 + 1e-9), step
