"""Unit tests for the Gaussian-random-field synthesiser."""

import numpy as np
import pytest

from repro.datasets.spectral import gaussian_random_field, radial_coordinates
from repro.errors import ParameterError


class TestGRF:
    def test_deterministic(self):
        a = gaussian_random_field((32, 32), slope=3.0, seed=7)
        b = gaussian_random_field((32, 32), slope=3.0, seed=7)
        assert np.array_equal(a, b)

    def test_seed_changes_field(self):
        a = gaussian_random_field((32, 32), seed=1)
        b = gaussian_random_field((32, 32), seed=2)
        assert not np.array_equal(a, b)

    def test_normalised(self):
        f = gaussian_random_field((64, 64), slope=2.5, seed=3)
        assert f.mean() == pytest.approx(0.0, abs=1e-10)
        assert f.std() == pytest.approx(1.0, rel=1e-10)

    @pytest.mark.parametrize("ndim", [1, 2, 3])
    def test_dimensionality(self, ndim):
        shape = (24,) * ndim
        assert gaussian_random_field(shape, seed=1).shape == shape

    def test_slope_controls_smoothness(self):
        """Higher slope => smoother field => smaller gradients."""
        rough = gaussian_random_field((128, 128), slope=0.5, seed=4)
        smooth = gaussian_random_field((128, 128), slope=4.0, seed=4)
        assert np.abs(np.diff(smooth, axis=0)).mean() < np.abs(
            np.diff(rough, axis=0)
        ).mean()

    def test_white_noise_slope_zero(self):
        """slope=0 leaves the input noise nearly unchanged spectrally:
        neighbouring samples are essentially uncorrelated."""
        f = gaussian_random_field((256, 256), slope=0.0, seed=5)
        corr = np.corrcoef(f[:, :-1].ravel(), f[:, 1:].ravel())[0, 1]
        assert abs(corr) < 0.05

    def test_anisotropy_changes_structure(self):
        iso = gaussian_random_field((64, 64), slope=3.0, seed=6)
        aniso = gaussian_random_field(
            (64, 64), slope=3.0, seed=6, anisotropy=(8.0, 1.0)
        )
        # stretching axis-0 wavenumbers damps axis-0 variation relative
        # to axis-1 variation
        def ratio(f):
            return np.abs(np.diff(f, axis=0)).mean() / np.abs(
                np.diff(f, axis=1)
            ).mean()

        assert ratio(aniso) < ratio(iso)

    def test_bad_shape_raises(self):
        with pytest.raises(ParameterError):
            gaussian_random_field((), seed=1)
        with pytest.raises(ParameterError):
            gaussian_random_field((0, 4), seed=1)

    def test_bad_anisotropy_raises(self):
        with pytest.raises(ParameterError):
            gaussian_random_field((8, 8), anisotropy=(1.0,))

    def test_all_finite(self):
        f = gaussian_random_field((33, 17), slope=3.7, seed=8)
        assert np.all(np.isfinite(f))


class TestRadial:
    def test_center_is_zero(self):
        r = radial_coordinates((11, 11))
        assert r[5, 5] == pytest.approx(0.0)

    def test_edges_at_one(self):
        r = radial_coordinates((11, 21))
        assert r[0, 10] == pytest.approx(1.0)
        assert r[5, 0] == pytest.approx(1.0)

    def test_bad_shape_raises(self):
        with pytest.raises(ParameterError):
            radial_coordinates((0,))
