"""The self-contained HTML dashboard and ``fpzc report --html``."""

import json
import re

import numpy as np
import pytest

from repro.cli.main import main
from repro.report.dashboard import (
    load_bench_dir,
    render_bench_section,
    render_dashboard,
    render_drift_section,
    render_ledger_section,
    render_metrics_section,
    render_service_section,
    render_timeline_section,
    sparkline,
)
from repro.telemetry.drift import drift_report
from repro.telemetry.ledger import LedgerEntry, append_entry, read_entries


def _conf_entry(dev, created="2026-08-08T00:00:00+00:00"):
    return LedgerEntry(
        kind="compress", created=created, dataset="ATM", field="CLDHGH",
        codec="sz", mode="psnr", target=80.0, achieved=80.0 + dev,
        target_psnr=80.0, achieved_psnr=80.0 + dev, ratio=11.5,
        raw_bytes=1000, compressed_bytes=87,
        extra={"conformance": {
            "dataset": "ATM", "codec": "sz", "target_psnr": 80.0,
            "predicted_psnr": 80.0, "achieved_psnr": 80.0 + dev,
            "deviation_db": dev, "n_fields": 1,
        }},
    )


class TestSparkline:
    def test_empty_and_single_point_render(self):
        for values in ([], [1.0]):
            svg = sparkline(values)
            assert svg.startswith("<svg") and svg.endswith("</svg>")
            assert "<polyline" not in svg

    def test_series_renders_polyline_and_dot(self):
        svg = sparkline([1, 2, 3, 2.5], label="x")
        assert 'stroke-width="2"' in svg
        assert "<polyline" in svg and "<circle" in svg
        assert "<title>x</title>" in svg

    def test_non_finite_values_dropped(self):
        svg = sparkline([1.0, float("nan"), float("inf"), 2.0])
        assert "nan" not in svg.lower().replace("</", "")
        for pair in re.search(r'points="([^"]+)"', svg).group(1).split():
            x, y = pair.split(",")
            float(x), float(y)

    def test_constant_series_stays_in_bounds(self):
        svg = sparkline([5.0] * 4, height=32)
        ys = [float(p.split(",")[1]) for p in
              re.search(r'points="([^"]+)"', svg).group(1).split()]
        assert all(0 <= y <= 32 for y in ys)


class TestSectionsEmpty:
    def test_every_section_tolerates_empty_input(self):
        fragments = [
            render_ledger_section([]),
            render_drift_section(None),
            render_drift_section(drift_report([])),
            render_metrics_section(None),
            render_metrics_section({}),
            render_bench_section(None),
            render_bench_section({}),
            render_service_section(),
            render_service_section([], {}),
            render_timeline_section(None),
            render_timeline_section({"traceEvents": []}),
        ]
        for frag in fragments:
            assert frag.startswith("<section")
            assert 'class="empty"' in frag or "insufficient" in frag


class TestSectionsPopulated:
    def test_ledger_section(self):
        entries = [_conf_entry(0.1) for _ in range(3)]
        frag = render_ledger_section(entries, limit=2)
        assert "ATM/CLDHGH" in frag
        assert frag.count("<tr>") == 2 + 1  # limit rows (+0 header rows in tbody counting)
        assert "<svg" in frag  # trajectories present

    def test_ledger_section_escapes_hostile_names(self):
        e = _conf_entry(0.1)
        e.dataset = "<script>alert(1)</script>"
        frag = render_ledger_section([e])
        assert "<script>" not in frag
        assert "&lt;script&gt;" in frag

    def test_drift_section(self):
        entries = [_conf_entry(0.1) for _ in range(4)]
        frag = render_drift_section(drift_report(entries))
        assert "b-ok" in frag and "badge" in frag
        assert "<svg" in frag  # deviation sparkline

    def test_metrics_section_histogram_and_help(self):
        from repro.telemetry.registry import MetricsRegistry

        reg = MetricsRegistry()
        reg.counter("runs.total", help="how many runs").inc(3)
        reg.histogram("dev.db", buckets=(0.0, 1.0)).observe(0.5)
        frag = render_metrics_section(reg.snapshot())
        assert "runs.total" in frag and "how many runs" in frag
        assert "n=1" in frag

    def test_bench_section_real_baselines(self):
        bench = load_bench_dir(".")
        assert bench  # the repo commits its baselines
        frag = render_bench_section(bench)
        assert "BENCH_compress.json" in frag
        assert "ratio=" in frag and "ms" in frag

    def test_bench_section_tolerates_foreign_doc(self):
        frag = render_bench_section({"weird.json": {"cases": ["not-a-dict"]}})
        assert "no cases" in frag

    def test_service_section(self):
        from repro.telemetry.registry import MetricsRegistry

        reg = MetricsRegistry()
        reg.counter("service.jobs_submitted_total").inc(5)
        reg.counter("service.jobs_completed_total").inc(4)
        entry = _conf_entry(0.1)
        entry.extra["service"] = {
            "job_id": "j000042", "priority": 5, "attempts": 1,
            "batched": 3, "queued_s": 0.0042,
        }
        frag = render_service_section([entry], reg.snapshot())
        assert "j000042" in frag
        assert "submitted" in frag and "completed" in frag
        assert "4.2 ms" in frag
        # CLI-only entries (no extra.service) stay out of the table.
        frag2 = render_service_section([_conf_entry(0.1)], reg.snapshot())
        assert "j000042" not in frag2

    def test_timeline_section(self):
        doc = {"traceEvents": [
            {"name": "process_name", "ph": "M", "ts": 0.0, "dur": 0.0,
             "pid": 1, "tid": 1, "args": {"name": "fpzc pid 1"}},
            {"name": "compress", "cat": "c", "ph": "X", "ts": 0.0,
             "dur": 100.0, "pid": 1, "tid": 1, "args": {}},
            {"name": "quantize", "cat": "c", "ph": "X", "ts": 10.0,
             "dur": 50.0, "pid": 1, "tid": 1, "args": {}},
            {"name": "encode", "cat": "c", "ph": "X", "ts": 5.0,
             "dur": 60.0, "pid": 2, "tid": 2, "args": {}},
        ]}
        frag = render_timeline_section(doc)
        assert frag.count("<rect") == 3
        assert "fpzc pid 1" in frag and "pid 2" in frag
        assert "quantize" in frag  # top-spans table


class TestFullDashboard:
    @pytest.fixture()
    def fixture_ledger(self, tmp_path):
        path = str(tmp_path / "ledger.jsonl")
        for dev in (0.1, 0.12, 0.09, 0.11):
            append_entry(_conf_entry(dev), path=path)
        entries, _ = read_entries(path)
        return path, entries

    def test_single_file_no_external_fetches(self, fixture_ledger):
        _, entries = fixture_ledger
        html = render_dashboard(
            entries=entries, bench=load_bench_dir("."),
            title="t", generated="2026-08-08",
        )
        assert html.count("<!DOCTYPE html") == 1
        assert not re.search(r"(src|href)\s*=", html)
        assert "http://" not in html and "https://" not in html
        for anchor in ("ledger", "drift", "timeline", "bench", "metrics"):
            assert f'id="{anchor}"' in html

    def test_drift_computed_from_entries_when_omitted(self, fixture_ledger):
        _, entries = fixture_ledger
        html = render_dashboard(entries=entries)
        assert "b-ok" in html  # verdict rendered without explicit report

    def test_cli_report_html(self, fixture_ledger, tmp_path, capsys):
        ledger, _ = fixture_ledger
        out = tmp_path / "run.html"
        assert main([
            "report", "--html", str(out), "--ledger", ledger,
            "--bench-dir", ".", "--title", "ci run",
        ]) == 0
        html = out.read_text()
        assert "ci run" in html
        assert not re.search(r"(src|href)\s*=", html)
        assert "dashboard written" in capsys.readouterr().out

    def test_cli_report_embeds_trace_and_metrics(self, tmp_path, smooth2d):
        npy = tmp_path / "f.npy"
        np.save(npy, smooth2d.astype(np.float32))
        trace = tmp_path / "t.json"
        metrics_json = tmp_path / "m.json"
        ledger = str(tmp_path / "l.jsonl")
        assert main([
            "compress", str(npy), "-o", str(tmp_path / "f.fpz"),
            "--psnr", "60", "--trace-perfetto", str(trace),
            "--metrics", str(metrics_json), "--ledger", ledger,
        ]) == 0
        out = tmp_path / "run.html"
        assert main([
            "report", "--html", str(out), "--ledger", ledger,
            "--bench-dir", str(tmp_path),  # empty: bench section empty-state
            "--trace", str(trace), "--metrics", str(metrics_json),
        ]) == 0
        html = out.read_text()
        assert "<rect" in html           # timeline bars
        assert "psnr.deviation_db" in html  # embedded snapshot
        assert "no BENCH_" in html       # empty bench state

    def test_cli_report_rejects_bad_json(self, tmp_path, capsys):
        bad = tmp_path / "bad.json"
        bad.write_text("{nope")
        code = main([
            "report", "--html", str(tmp_path / "o.html"),
            "--ledger", str(tmp_path / "l.jsonl"), "--trace", str(bad),
        ])
        assert code == 2
        assert "not valid JSON" in capsys.readouterr().err


class TestLoadBenchDir:
    def test_skips_unreadable_files(self, tmp_path):
        (tmp_path / "BENCH_ok.json").write_text('{"schema": 1}')
        (tmp_path / "BENCH_bad.json").write_text("{nope")
        (tmp_path / "BENCH_list.json").write_text("[1, 2]")
        out = load_bench_dir(tmp_path)
        assert list(out) == ["BENCH_ok.json"]

    def test_empty_dir(self, tmp_path):
        assert load_bench_dir(tmp_path) == {}
